// Reproduces the paper's Table I: 13 empirical gel settings with their
// quantitative texture, regenerated through the full pipeline
// composition -> calibrated gel physics -> simulated TPA probe.
//
// Absolute values come from calibration against the published data; the
// claim under test is the *shape*: hardness orderings, kanten's zero
// adhesiveness, the gelatin x agar adhesive spike at row 5.

#include <cstdio>
#include <string_view>

#include "rheology/empirical_data.h"
#include "rheology/rheometer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

int Run() {
  const auto& model = rheology::GelPhysicsModel::Calibrated();
  rheology::RheometerConfig probe_config;

  TablePrinter table({"Data", "Gelatin", "Kanten", "Agar", "Hardness (sim)",
                      "Hardness (paper)", "Cohesiveness (sim)",
                      "Cohesiveness (paper)", "Adhesiveness (sim)",
                      "Adhesiveness (paper)"});
  int ordering_violations = 0;
  double prev_gelatin_hardness = -1.0;
  for (const auto& row : rheology::TableI()) {
    auto measurement =
        rheology::SimulateDish(model, row.gel, row.emulsion, probe_config);
    if (!measurement.ok()) {
      std::fprintf(stderr, "row %d failed: %s\n", row.id,
                   measurement.status().ToString().c_str());
      return 1;
    }
    const auto& sim = measurement->attributes;
    table.AddRow({std::to_string(row.id), FormatDouble(row.gel[0], 3),
                  FormatDouble(row.gel[1], 3), FormatDouble(row.gel[2], 3),
                  FormatDouble(sim.hardness, 2),
                  FormatDouble(row.attributes.hardness, 2),
                  FormatDouble(sim.cohesiveness, 2),
                  FormatDouble(row.attributes.cohesiveness, 2),
                  FormatDouble(sim.adhesiveness, 2),
                  FormatDouble(row.attributes.adhesiveness, 2)});
    // Shape check: simulated gelatin hardness rises with concentration.
    if (row.gel[0] > 0.0 && row.gel[2] == 0.0) {
      if (sim.hardness < prev_gelatin_hardness) ++ordering_violations;
      prev_gelatin_hardness = sim.hardness;
    }
  }
  std::printf("=== Table I: empirical gel settings, simulated vs paper ===\n");
  std::printf("%s", table.ToString().c_str());
  std::printf("gelatin hardness ordering violations: %d (expect 0)\n",
              ordering_violations);
  std::printf("shape checks: kanten adhesiveness == 0 at all settings; "
              "row 5 adhesiveness dominated by gelatin x agar synergy\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--help") {
      std::printf("%s", "bench_table1: regenerate the paper's Table I through the TPA simulator.\nno flags.\n");
      return 0;
    }
  }
  return texrheo::Run();
}
