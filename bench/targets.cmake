# Bench targets are defined from the top-level CMakeLists (via include())
# so that build/bench/ holds only the bench executables - the documented
# way to regenerate every table/figure is `for b in build/bench/*; do $b; done`.
set(TEXRHEO_ALL_LIBS
  texrheo_ingestion texrheo_serving texrheo_eval texrheo_core texrheo_corpus texrheo_rules
  texrheo_rheology texrheo_recipe texrheo_text texrheo_embed texrheo_math
  texrheo_obs texrheo_util)

function(texrheo_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE ${TEXRHEO_ALL_LIBS})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

texrheo_add_bench(bench_table1)
texrheo_add_bench(bench_fig2_curve)
texrheo_add_bench(bench_table2a)
texrheo_add_bench(bench_table2b)
texrheo_add_bench(bench_fig3)
texrheo_add_bench(bench_fig4)
texrheo_add_bench(bench_corpus_funnel)
texrheo_add_bench(bench_ablation)

add_executable(bench_perf ${CMAKE_SOURCE_DIR}/bench/bench_perf.cc)
target_link_libraries(bench_perf PRIVATE ${TEXRHEO_ALL_LIBS} benchmark::benchmark)
set_target_properties(bench_perf PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
texrheo_add_bench(bench_router)
texrheo_add_bench(bench_similarity)
texrheo_add_bench(bench_rules)
texrheo_add_bench(bench_model_selection)
texrheo_add_bench(bench_convergence)
texrheo_add_bench(bench_ingest)
