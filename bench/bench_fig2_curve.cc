// Reproduces the paper's Figure 2: the rheometer force-time curve of a
// two-bite texture profile analysis, with the F1 peak, the work areas
// a (bite 1), c (bite 2), and the negative adhesion area b.
//
// Prints a decimated force-time series (TSV) plus the extracted attribute
// summary for a 2.5% gelatin gel (Table I row 3's composition).

#include <cstdio>
#include <string_view>

#include "rheology/empirical_data.h"
#include "rheology/rheometer.h"

namespace texrheo {
namespace {

int Run() {
  const auto& model = rheology::GelPhysicsModel::Calibrated();
  math::Vector gel(recipe::kNumGelTypes);
  gel[static_cast<size_t>(recipe::GelType::kGelatin)] = 0.025;
  math::Vector emulsion(recipe::kNumEmulsionTypes);

  rheology::RheometerConfig config;
  auto measurement = rheology::SimulateDish(model, gel, emulsion, config);
  if (!measurement.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 measurement.status().ToString().c_str());
    return 1;
  }
  const auto& m = measurement.value();

  std::printf("=== Fig. 2: simulated TPA force curve (2.5%% gelatin) ===\n");
  std::printf("time_s\tdepth_mm\tforce_ru\tcycle\n");
  // Decimate for readability: ~120 printed points.
  size_t stride = m.curve.size() / 120 + 1;
  for (size_t i = 0; i < m.curve.size(); i += stride) {
    const auto& p = m.curve[i];
    std::printf("%.3f\t%.2f\t%.4f\t%d\n", p.time_s, p.depth_mm, p.force_ru,
                p.cycle);
  }
  std::printf("\nF1 (hardness, peak of bite 1):  %.3f RU\n", m.peak_force_1);
  std::printf("area a (bite-1 positive work):  %.4f RU*s\n", m.area_1);
  std::printf("area c (bite-2 positive work):  %.4f RU*s\n", m.area_2);
  std::printf("area b (adhesive negative work): %.4f RU*s\n",
              m.negative_area);
  std::printf("cohesiveness c/a:                %.3f\n",
              m.attributes.cohesiveness);
  std::printf("adhesiveness:                    %.3f\n",
              m.attributes.adhesiveness);
  std::printf("paper reference (Table I row 3): H 0.72, C 0.17, A 0.57\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--help") {
      std::printf("%s", "bench_fig2_curve: simulated rheometer force-time curve (paper Fig. 2).\nno flags.\n");
      return 0;
    }
  }
  return texrheo::Run();
}
