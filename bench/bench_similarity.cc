// Ablation harness for the SIMILAR ranking backends (kl / embed / lexical
// / fused): every document of a synthetic corpus is replayed as a query
// against one serving engine per run, and each mode's top-k neighbours are
// scored for precision against the corpus generator's ground-truth dish
// templates (two recipes are "relevant" to each other when they were
// stamped from the same template).
//
// Writes bench/out/similarity.json. ci.sh --bench gates on it: the fused
// reciprocal-rank blend must be at least as precise as every single
// backend — otherwise fusion is subtracting information and the default
// mode weights need retuning.
//
// flags: --scale <f>   (default 0.05)
//        --top-k <n>   (default 10)
//        --out <path>  (default bench/out/similarity.json)

#include <sys/stat.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "embed/sgns_trainer.h"
#include "eval/experiment.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "bench_similarity: precision@k of each SIMILAR backend against "
        "ground-truth dish templates.\nflags: --scale <f> (default 0.05), "
        "--top-k <n> (default 10), --out <path>\n");
    return 0;
  }
  const double scale = flags.GetDouble("scale", 0.05).value_or(0.05);
  const size_t top_k =
      static_cast<size_t>(flags.GetInt("top-k", 10).value_or(10));
  const std::string out_path =
      flags.GetString("out", "bench/out/similarity.json");
  SetLogLevel(LogLevel::kWarning);

  eval::ExperimentConfig config = eval::DefaultExperimentConfig(scale);
  auto result_or = eval::RunJointExperiment(config);
  if (!result_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const eval::ExperimentResult& result = result_or.value();
  const recipe::Dataset& dataset = result.dataset;

  // Train the embedding table over the corpus term bags — the same
  // training path `texrheo_serve --toy` uses, but with a real epoch budget.
  std::vector<std::vector<int32_t>> sentences;
  sentences.reserve(dataset.documents.size());
  for (const recipe::Document& doc : dataset.documents) {
    sentences.push_back(doc.term_ids);
  }
  embed::SgnsConfig sgns;
  sgns.dim = 16;
  sgns.epochs = 12;
  auto embeddings_or =
      embed::TrainSgns(sentences, dataset.term_vocab.size(), sgns);
  if (!embeddings_or.ok()) {
    std::fprintf(stderr, "sgns training failed: %s\n",
                 embeddings_or.status().ToString().c_str());
    return 1;
  }

  core::ModelSnapshot model =
      core::MakeSnapshot(result.estimates, dataset.term_vocab);
  auto snapshot_or = serve::ServingSnapshot::FromModel(
      std::move(model), "bench-similarity", *std::move(embeddings_or));
  if (!snapshot_or.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 snapshot_or.status().ToString().c_str());
    return 1;
  }
  serve::QueryEngineConfig engine_config;
  engine_config.batch_linger_micros = 0;
  // Weight overrides for tuning sweeps; defaults are the engine's own.
  engine_config.fusion_kl_weight =
      flags.GetDouble("w-kl", engine_config.fusion_kl_weight)
          .value_or(engine_config.fusion_kl_weight);
  engine_config.fusion_embed_weight =
      flags.GetDouble("w-embed", engine_config.fusion_embed_weight)
          .value_or(engine_config.fusion_embed_weight);
  engine_config.fusion_lexical_weight =
      flags.GetDouble("w-lexical", engine_config.fusion_lexical_weight)
          .value_or(engine_config.fusion_lexical_weight);
  engine_config.fusion_rrf_k =
      flags.GetDouble("rrf-k", engine_config.fusion_rrf_k)
          .value_or(engine_config.fusion_rrf_k);
  auto engine_or = serve::QueryEngine::Create(
      engine_config, *std::move(snapshot_or), &dataset);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  serve::QueryEngine& engine = **engine_or;

  // Ground truth: the generator stamps each recipe with its dish template.
  std::vector<std::string> doc_template(dataset.documents.size());
  for (size_t d = 0; d < dataset.documents.size(); ++d) {
    const recipe::Recipe& r =
        result.recipes[dataset.documents[d].recipe_index];
    auto it = r.metadata.find(corpus::kMetaTemplate);
    doc_template[d] = it != r.metadata.end() ? it->second : "";
  }

  const serve::SimilarityMode kModes[] = {
      serve::SimilarityMode::kKl, serve::SimilarityMode::kEmbed,
      serve::SimilarityMode::kLexical, serve::SimilarityMode::kFused};
  std::map<std::string, double> precision_sum;
  std::map<std::string, size_t> query_count;

  for (size_t d = 0; d < dataset.documents.size(); ++d) {
    const recipe::Document& doc = dataset.documents[d];
    serve::TextureQuery query;
    query.gel_concentration = doc.gel_concentration;
    query.emulsion_concentration = doc.emulsion_concentration;
    for (int32_t id : doc.term_ids) {
      query.texture_terms.push_back(
          std::string(dataset.term_vocab.WordOf(id)));
    }
    if (query.texture_terms.empty()) continue;  // embed mode needs terms
    for (serve::SimilarityMode mode : kModes) {
      // +1 so dropping the query document itself still leaves top_k rows.
      auto similar_or = engine.SimilarRecipes(query, top_k + 1,
                                              serve::kNoDeadline, 0, mode);
      if (!similar_or.ok()) {
        std::fprintf(stderr, "SIMILAR mode=%s failed: %s\n",
                     serve::SimilarityModeName(mode),
                     similar_or.status().ToString().c_str());
        return 1;
      }
      size_t hits = 0;
      size_t judged = 0;
      for (const serve::SimilarRecipe& rec : similar_or->recipes) {
        if (rec.recipe_index == d) continue;  // Self-match: not informative.
        if (judged == top_k) break;
        ++judged;
        if (doc_template[rec.recipe_index] == doc_template[d]) ++hits;
      }
      if (judged == 0) continue;  // Singleton topic: nothing to rank.
      const std::string name = serve::SimilarityModeName(mode);
      precision_sum[name] +=
          static_cast<double>(hits) / static_cast<double>(judged);
      query_count[name] += 1;
    }
  }

  JsonValue root = JsonValue::MakeObject();
  root.AsObject()["scale"] = JsonValue::Number(scale);
  root.AsObject()["top_k"] =
      JsonValue::Number(static_cast<double>(top_k));
  root.AsObject()["documents"] =
      JsonValue::Number(static_cast<double>(dataset.documents.size()));
  JsonValue modes = JsonValue::MakeObject();
  std::printf("=== SIMILAR precision@%zu vs ground-truth templates ===\n",
              top_k);
  for (serve::SimilarityMode mode : kModes) {
    const std::string name = serve::SimilarityModeName(mode);
    const size_t n = query_count[name];
    const double precision = n == 0 ? 0.0 : precision_sum[name] /
                                                static_cast<double>(n);
    JsonValue entry = JsonValue::MakeObject();
    entry.AsObject()["precision_at_10"] = JsonValue::Number(precision);
    entry.AsObject()["queries"] =
        JsonValue::Number(static_cast<double>(n));
    modes.AsObject()[name] = std::move(entry);
    std::printf("%-8s precision@%zu = %.4f over %zu queries\n",
                name.c_str(), top_k, precision, n);
  }
  root.AsObject()["modes"] = std::move(modes);

  // ci.sh pre-creates bench/out; cover direct runs from the repo root too.
  const size_t slash = out_path.rfind('/');
  if (slash != std::string::npos) {
    (void)::mkdir(out_path.substr(0, slash).c_str(), 0755);
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string json = root.Serialize();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
