// google-benchmark microbenchmarks for the hot paths: Gibbs sweeps as a
// function of corpus size and topic count, categorical sampling strategies,
// the dense Cholesky kernel, Normal-Wishart posterior draws, the tokenizer,
// TPA simulation, and word2vec training throughput.

#include <arpa/inet.h>
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/collapsed_sampler.h"
#include "core/joint_topic_model.h"
#include "core/model_binary.h"
#include "core/serialization.h"
#include "corpus/generator.h"
#include "math/alias_table.h"
#include "math/divergence.h"
#include "math/distributions.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recipe/dataset.h"
#include "rules/transactions.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/histogram.h"
#include "rheology/rheometer.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"
#include "util/rng.h"

namespace texrheo {
namespace {

// Shared small corpus + dataset (built once).
const recipe::Dataset& SharedDataset(size_t recipes) {
  static std::map<size_t, recipe::Dataset>& cache =
      *new std::map<size_t, recipe::Dataset>();
  auto it = cache.find(recipes);
  if (it != cache.end()) return it->second;
  corpus::CorpusGenConfig config;
  config.num_recipes = recipes;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto corpus = generator.Generate();
  auto ds = recipe::BuildDataset(corpus, recipe::IngredientDatabase::Embedded(),
                                 text::TextureDictionary::Embedded(), nullptr,
                                 recipe::DatasetConfig());
  return cache.emplace(recipes, std::move(ds).value()).first->second;
}

void BM_GibbsSweep(benchmark::State& state) {
  const recipe::Dataset& ds = SharedDataset(
      static_cast<size_t>(state.range(0)));
  core::JointTopicModelConfig config;
  config.num_topics = static_cast<int>(state.range(1));
  auto model = core::JointTopicModel::Create(config, &ds);
  if (!model.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  for (auto _ : state) {
    if (!model->RunSweeps(1).ok()) {
      state.SkipWithError("sweep failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.documents.size()));
}
BENCHMARK(BM_GibbsSweep)
    ->Args({4000, 10})
    ->Args({16000, 10})
    ->Args({16000, 20})
    ->Unit(benchmark::kMillisecond);

// --- Sparse vs dense z-sampler (BM_SparseGibbsSweep) -------------------
//
// ci.sh --bench filters on 'BM_SparseGibbsSweep' and writes the JSON to
// bench/out/gibbs_sparse.json, then gates on the sparse speedup at K = 64:
// sweeps_per_sec of the {64, sparse} entry must be >= 5x the {64, dense}
// entry. Args are {num_topics, sparse_sampler}.
//
// The corpus is synthetic and deliberately z-heavy: the generator corpora
// behind SharedDataset() survive the ingestion funnel as a few hundred
// documents with ~3 tokens each, so a sweep there is dominated by the
// shared y / Gaussian / likelihood phases and measures nothing about the
// z-sampler decomposition. Here each document draws 600 tokens from a
// 2-theme mixture over an 8000-term vocabulary, which (a) gives the
// per-token dense K-loop a topic-word matrix too large for cache, exactly
// the regime AliasLDA targets, and (b) concentrates n_dk on a handful of
// topics so the active lists are genuinely sparse after burn-in. Burn-in
// happens outside the timed region so those lists reach equilibrium
// sparsity (a freshly initialized chain has near-uniform n_dk and flatters
// neither path); the likelihood trace is thinned so the timed sweep is the
// sampler, not the O(tokens) diagnostic pass; iterations are timed with a
// wall clock for the same reason as BM_GibbsSweepThreads.
const recipe::Dataset& SparseBenchDataset() {
  static recipe::Dataset& ds = *new recipe::Dataset([] {
    recipe::Dataset built;
    constexpr size_t kDocs = 250, kDocLen = 1200, kVocab = 8000, kThemes = 40;
    constexpr double kPurity = 0.95;
    for (size_t v = 0; v < kVocab; ++v) {
      built.term_vocab.Add("term" + std::to_string(v));
    }
    Rng rng(20220919);
    const size_t words_per_theme = kVocab / kThemes;
    for (size_t d = 0; d < kDocs; ++d) {
      recipe::Document doc;
      doc.recipe_index = d;
      const size_t theme_a = rng.NextUint(kThemes);
      const size_t theme_b = rng.NextUint(kThemes);
      for (size_t n = 0; n < kDocLen; ++n) {
        const size_t theme = rng.NextDouble() < kPurity ? theme_a : theme_b;
        doc.term_ids.push_back(static_cast<int32_t>(
            theme * words_per_theme + rng.NextUint(words_per_theme)));
      }
      doc.gel_feature = math::Vector(1, static_cast<double>(theme_a));
      doc.emulsion_feature = math::Vector(1, 0.0);
      doc.gel_concentration = math::Vector(1, 0.01);
      doc.emulsion_concentration = math::Vector(1, 0.1);
      built.documents.push_back(std::move(doc));
    }
    built.funnel.final_dataset = built.documents.size();
    return built;
  }());
  return ds;
}

void BM_SparseGibbsSweep(benchmark::State& state) {
  const recipe::Dataset& ds = SparseBenchDataset();
  core::JointTopicModelConfig config;
  config.num_topics = static_cast<int>(state.range(0));
  config.sparse_sampler = state.range(1) != 0;
  // One MH step per token is throughput-optimal here: the proposal is exact
  // over the sparse bucket and the measured accept rate is ~1.0 after
  // burn-in, so extra steps only re-confirm the same draw. alpha matches
  // the sparse regime the decomposition is built for (small document-topic
  // smoothing keeps the stale bucket mass, and hence MH churn, low).
  config.mh_steps = 1;
  config.alpha = 0.05;
  config.likelihood_interval = 64;
  // A long rebuild interval amortizes the O(K * V) alias reconstruction;
  // staleness only degrades the proposal (and the MH step corrects that),
  // so throughput benchmarks run at the amortization-friendly end.
  config.alias_rebuild_interval = 32;
  auto model = core::JointTopicModel::Create(config, &ds);
  if (!model.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  if (!model->RunSweeps(25).ok()) {
    state.SkipWithError("burn-in failed");
    return;
  }
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    if (!model->RunSweeps(1).ok()) {
      state.SkipWithError("sweep failed");
      return;
    }
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  state.counters["topics"] = static_cast<double>(state.range(0));
  state.counters["sparse"] = static_cast<double>(state.range(1));
  state.counters["sweeps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.documents.size()));
}
BENCHMARK(BM_SparseGibbsSweep)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// The gated speedup measurement. BM_SparseGibbsSweep times each sampler in
// its own benchmark entry, which means the two legs run seconds apart; on a
// shared host a load window that lands on one leg but not the other skews
// the ratio in either direction, and per-leg medians cannot repair a skew
// that covers a whole leg. Here both chains advance inside one timing loop
// (one dense sweep, then one sparse sweep, per iteration), so any
// slowdown longer than a single ~60 ms pair dilates both numerators by the
// same factor and cancels out of the ratio. ci.sh gates on the median
// "speedup" counter across repetitions. The per-chain clocks are separated
// so the entry still reports absolute sweeps/sec for both samplers.
void BM_SparseGibbsSpeedup(benchmark::State& state) {
  const recipe::Dataset& ds = SparseBenchDataset();
  auto make = [&](bool sparse) {
    core::JointTopicModelConfig config;
    config.num_topics = static_cast<int>(state.range(0));
    config.sparse_sampler = sparse;
    config.mh_steps = 1;
    config.alpha = 0.05;
    config.likelihood_interval = 64;
    config.alias_rebuild_interval = 32;
    return core::JointTopicModel::Create(config, &ds);
  };
  auto dense = make(false);
  auto sparse = make(true);
  if (!dense.ok() || !sparse.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  if (!dense->RunSweeps(25).ok() || !sparse->RunSweeps(25).ok()) {
    state.SkipWithError("burn-in failed");
    return;
  }
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!dense->RunSweeps(1).ok()) {
      state.SkipWithError("dense sweep failed");
      return;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (!sparse->RunSweeps(1).ok()) {
      state.SkipWithError("sparse sweep failed");
      return;
    }
    const auto t2 = std::chrono::steady_clock::now();
    dense_seconds += std::chrono::duration<double>(t1 - t0).count();
    sparse_seconds += std::chrono::duration<double>(t2 - t1).count();
    state.SetIterationTime(std::chrono::duration<double>(t2 - t0).count());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["dense_sweeps_per_sec"] = iters / dense_seconds;
  state.counters["sparse_sweeps_per_sec"] = iters / sparse_seconds;
  state.counters["speedup"] = dense_seconds / sparse_seconds;
}
BENCHMARK(BM_SparseGibbsSpeedup)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Parallel-engine scaling: full z + y sweeps per second as a function of
// num_threads (1 = bit-exact serial chain; > 1 = AD-LDA sharded engine).
// The "sweeps_per_sec" counter is what ci.sh extracts from the JSON output
// to report the speedup curve; expect near-linear scaling up to the
// physical core count and a flat line on single-core machines. Iterations
// are timed manually with a wall clock: default rate counters divide by the
// *main thread's* CPU time, which shrinks as work shifts to the pool and
// would fake a speedup even on one core.
void BM_GibbsSweepThreads(benchmark::State& state) {
  const recipe::Dataset& ds = SharedDataset(16000);
  core::JointTopicModelConfig config;
  config.num_topics = 10;
  config.num_threads = static_cast<int>(state.range(0));
  auto model = core::JointTopicModel::Create(config, &ds);
  if (!model.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    if (!model->RunSweeps(1).ok()) {
      state.SkipWithError("sweep failed");
      return;
    }
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["sweeps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.documents.size()));
}
BENCHMARK(BM_GibbsSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_CollapsedSweepThreads(benchmark::State& state) {
  const recipe::Dataset& ds = SharedDataset(4000);
  core::JointTopicModelConfig config;
  config.num_topics = 10;
  config.num_threads = static_cast<int>(state.range(0));
  auto model = core::CollapsedJointTopicModel::Create(config, &ds);
  if (!model.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    if (!model->RunSweeps(1).ok()) {
      state.SkipWithError("sweep failed");
      return;
    }
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["sweeps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.documents.size()));
}
BENCHMARK(BM_CollapsedSweepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Raw cost of the metrics hot path: one pre-registered counter increment,
// one gauge set, and one histogram record per iteration — what a single
// instrumented operation pays. Registration is outside the timed loop, as
// in production.
void BM_MetricsOverhead(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.RegisterCounter("bench.count");
  obs::Gauge* gauge = registry.RegisterGauge("bench.level");
  LatencyHistogram* hist = registry.RegisterHistogram("bench.latency_us");
  uint64_t i = 0;
  for (auto _ : state) {
    counter->Increment();
    gauge->Set(static_cast<double>(i));
    hist->Record(i++ & 1023);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverhead);

// End-to-end instrumentation overhead on the real hot path: two serial
// Gibbs chains with the same seed (bit-identical trajectories, so identical
// work) run alternating sweeps inside every iteration — one with the full
// metrics + trace stack attached (production Tracer config: no record ring,
// histogram export only), one detached. Pairing the sweeps back to back
// cancels clock-frequency / load drift that sequential A-then-B runs pick
// up on a shared single-core box. ci.sh fails the --metrics leg when
// overhead_pct > 2.
void BM_InstrumentedSweep(benchmark::State& state) {
  const recipe::Dataset& ds = SharedDataset(4000);
  core::JointTopicModelConfig config;
  config.num_topics = 10;
  auto plain = core::JointTopicModel::Create(config, &ds);
  auto instrumented = core::JointTopicModel::Create(config, &ds);
  if (!plain.ok() || !instrumented.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr, obs::Tracer::Options{0});  // Production config.
  tracer.ExportDurationsTo(&registry);
  instrumented->SetObservability(&registry, &tracer);
  double plain_secs = 0.0;
  double instrumented_secs = 0.0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    bool ok = plain->RunSweeps(1).ok();
    auto t1 = std::chrono::steady_clock::now();
    ok = ok && instrumented->RunSweeps(1).ok();
    auto t2 = std::chrono::steady_clock::now();
    if (!ok) {
      state.SkipWithError("sweep failed");
      return;
    }
    plain_secs += std::chrono::duration<double>(t1 - t0).count();
    instrumented_secs += std::chrono::duration<double>(t2 - t1).count();
    state.SetIterationTime(std::chrono::duration<double>(t2 - t0).count());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["plain_sweeps_per_sec"] = iters / plain_secs;
  state.counters["instr_sweeps_per_sec"] = iters / instrumented_secs;
  state.counters["overhead_pct"] =
      100.0 * (instrumented_secs / plain_secs - 1.0);
  state.SetItemsProcessed(2 * state.iterations() *
                          static_cast<int64_t>(ds.documents.size()));
}
BENCHMARK(BM_InstrumentedSweep)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_CategoricalLinear(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextCategorical(weights));
  }
}
BENCHMARK(BM_CategoricalLinear)->Arg(10)->Arg(100)->Arg(1000);

void BM_CategoricalAlias(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (double& w : weights) w = rng.NextDouble();
  auto table = math::AliasTable::Build(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Sample(rng));
  }
}
BENCHMARK(BM_CategoricalAlias)->Arg(10)->Arg(100)->Arg(1000);

void BM_Cholesky(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  math::Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.NextGaussian();
  }
  math::Matrix spd = a.Multiply(a.Transposed());
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  for (auto _ : state) {
    auto chol = math::Cholesky::Factor(spd);
    benchmark::DoNotOptimize(chol);
  }
}
BENCHMARK(BM_Cholesky)->Arg(3)->Arg(6)->Arg(16)->Arg(64);

void BM_NormalWishartSample(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  math::NormalWishartParams nw;
  nw.mu0 = math::Vector(dim, 5.0);
  nw.beta = 1.0;
  nw.nu = static_cast<double>(dim) + 3.0;
  nw.scale = math::Matrix::Identity(dim, 0.2);
  Rng rng(3);
  for (auto _ : state) {
    auto g = math::NormalWishartSample(rng, nw);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_NormalWishartSample)->Arg(3)->Arg(6);

void BM_GaussianLogPdf(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, 1.0),
                                         math::Matrix::Identity(dim, 2.0));
  math::Vector x(dim, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->LogPdf(x));
  }
}
BENCHMARK(BM_GaussianLogPdf)->Arg(3)->Arg(6);

void BM_Tokenizer(benchmark::State& state) {
  std::string description =
      "easy bavarois . dissolve the gelatin then whip with raw-cream . the "
      "texture is purupuru and fuwafuwa when chilled . topped with nuts for "
      "a sakusaku accent with nuts . served with strawberry .";
  const auto& dict = text::TextureDictionary::Embedded();
  int64_t bytes = 0;
  for (auto _ : state) {
    auto terms = text::Tokenizer::ExtractTextureTerms(description, dict);
    benchmark::DoNotOptimize(terms);
    bytes += static_cast<int64_t>(description.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_Tokenizer);

void BM_TpaSimulation(benchmark::State& state) {
  const auto& model = rheology::GelPhysicsModel::Calibrated();
  math::Vector gel(recipe::kNumGelTypes);
  gel[0] = 0.02;
  math::Vector emulsion(recipe::kNumEmulsionTypes);
  rheology::RheometerConfig config;
  for (auto _ : state) {
    auto m = rheology::SimulateDish(model, gel, emulsion, config);
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel("full two-bite probe + inversion");
}
BENCHMARK(BM_TpaSimulation)->Unit(benchmark::kMillisecond);

void BM_CorpusGeneration(benchmark::State& state) {
  corpus::CorpusGenConfig config;
  config.num_recipes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    corpus::CorpusGenerator generator(
        config, &rheology::GelPhysicsModel::Calibrated(),
        &text::TextureDictionary::Embedded());
    auto recipes = generator.Generate();
    benchmark::DoNotOptimize(recipes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CorpusGeneration)->Arg(1000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_DiscreteKL(benchmark::State& state) {
  math::Vector p = {0.1, 0.0, 0.0, 0.0, 0.6, 0.3};
  math::Vector q = {0.02, 0.0, 0.0, 0.0, 0.78, 0.2};
  for (auto _ : state) {
    auto kl = math::DiscreteKL(p, q);
    benchmark::DoNotOptimize(kl);
  }
}
BENCHMARK(BM_DiscreteKL);

void BM_AprioriMine(benchmark::State& state) {
  corpus::CorpusGenConfig config;
  config.num_recipes = static_cast<size_t>(state.range(0));
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();
  rules::TransactionBuilder builder;
  auto transactions = builder.EncodeCorpus(
      recipes, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded());
  rules::AprioriConfig apriori;
  apriori.min_support = 0.01;
  apriori.min_confidence = 0.3;
  apriori.max_itemset_size = 3;
  for (auto _ : state) {
    auto rules = rules::Apriori::MineRules(transactions, apriori);
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(transactions.size()));
}
BENCHMARK(BM_AprioriMine)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_ModelSerialization(benchmark::State& state) {
  corpus::CorpusGenConfig config;
  config.num_recipes = 4000;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();
  auto dataset = recipe::BuildDataset(
      recipes, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded(), nullptr, recipe::DatasetConfig());
  core::JointTopicModelConfig model_config;
  model_config.sweeps = 30;
  auto model = core::JointTopicModel::Create(model_config, &dataset.value());
  (void)model->Train();
  core::ModelSnapshot snapshot =
      core::MakeSnapshot(model->Estimate(), dataset->term_vocab);
  for (auto _ : state) {
    std::string serialized = core::SerializeModel(snapshot);
    auto restored = core::DeserializeModel(serialized);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_ModelSerialization)->Unit(benchmark::kMillisecond);

// Checkpoint durability cost: one full save (encode + atomic write-temp +
// fsync + rename) plus a load-and-restore of the same snapshot, on a
// trained mid-size model. "ckpt_bytes" reports the on-disk frame size so
// the JSON output tracks format growth; "saves_per_sec" is the rate a
// training loop pays per checkpoint interval.
void BM_CheckpointSaveRestore(benchmark::State& state) {
  const recipe::Dataset& ds = SharedDataset(4000);
  core::JointTopicModelConfig config;
  config.num_topics = 10;
  auto model = core::JointTopicModel::Create(config, &ds);
  if (!model.ok()) {
    state.SkipWithError("model create failed");
    return;
  }
  if (!model->RunSweeps(5).ok()) {
    state.SkipWithError("warmup sweeps failed");
    return;
  }
  std::string path = "bench_checkpoint_tmp.ckpt";
  double ckpt_bytes = 0.0;
  for (auto _ : state) {
    auto begin = std::chrono::steady_clock::now();
    core::CheckpointState snapshot = model->CaptureCheckpoint();
    if (!core::WriteCheckpointFile(path, snapshot).ok()) {
      state.SkipWithError("checkpoint write failed");
      return;
    }
    auto restored = core::ReadCheckpointFile(path);
    if (!restored.ok() || !model->RestoreFromCheckpoint(*restored).ok()) {
      state.SkipWithError("checkpoint restore failed");
      return;
    }
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count());
    ckpt_bytes = static_cast<double>(core::EncodeCheckpoint(snapshot).size());
  }
  std::remove(path.c_str());
  state.counters["ckpt_bytes"] = ckpt_bytes;
  state.counters["saves_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CheckpointSaveRestore)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// --- Snapshot load: v2 text parse vs mmap (BM_SnapshotLoad*) -----------
//
// ci.sh --bench filters on 'BM_SnapshotLoad' and writes the JSON to
// bench/out/model_load.json, then gates on the warm-mmap speedup: loading
// the packed .dat/.idx pair must be >= 20x faster than parsing the v2
// text file (compare "real_time" across the two entries). The mmap path
// still pays the per-section CRC pass and the summary build; what it
// never pays is text-to-double parsing or a per-load heap copy of phi.

struct SnapshotLoadFiles {
  std::string v2;   ///< v2 text model file.
  std::string idx;  ///< Index of the packed binary pair.
};

/// Persists a deterministic production-shaped model (20 topics over a
/// 6000-word vocabulary — recipe-site scale, far beyond the toy corpora
/// above) in both formats, once.
const SnapshotLoadFiles& SharedModelFiles() {
  static auto& files = *new SnapshotLoadFiles([] {
    constexpr int kTopics = 20;
    constexpr size_t kVocab = 6000;
    Rng rng(20260808);
    core::ModelSnapshot snap;
    for (size_t v = 0; v < kVocab; ++v) {
      snap.vocab.AddWithCount("word" + std::to_string(v),
                              1 + static_cast<int64_t>(rng.NextUint(50)));
    }
    snap.estimates.phi.assign(kTopics, std::vector<double>(kVocab));
    for (auto& row : snap.estimates.phi) {
      double sum = 0.0;
      for (double& p : row) {
        p = 0.01 + rng.NextDouble();
        sum += p;
      }
      for (double& p : row) p /= sum;
    }
    for (int k = 0; k < kTopics; ++k) {
      snap.estimates.gel_topics.push_back(
          math::Gaussian::FromPrecision(math::Vector(3, 1.0 + k),
                                        math::Matrix::Identity(3, 4.0))
              .value());
      snap.estimates.emulsion_topics.push_back(
          math::Gaussian::FromPrecision(math::Vector(6, 0.5 * k),
                                        math::Matrix::Identity(6, 4.0))
              .value());
      snap.estimates.topic_recipe_count.push_back(50 + k);
    }
    SnapshotLoadFiles f;
    f.v2 = "/tmp/texrheo_bench_model_load.txt";
    std::string base = "/tmp/texrheo_bench_model_load_bin";
    if (!core::SaveModel(f.v2, snap).ok() ||
        !core::WriteModelBinary(snap, base).ok()) {
      return SnapshotLoadFiles();
    }
    f.idx = base + ".idx";
    return f;
  }());
  return files;
}

void BM_SnapshotLoadV2Parse(benchmark::State& state) {
  const SnapshotLoadFiles& files = SharedModelFiles();
  if (files.v2.empty()) {
    state.SkipWithError("model files unavailable");
    return;
  }
  for (auto _ : state) {
    auto snapshot = serve::ServingSnapshot::FromModelFile(files.v2);
    if (!snapshot.ok()) {
      state.SkipWithError("v2 load failed");
      return;
    }
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_SnapshotLoadV2Parse)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoadMmapWarm(benchmark::State& state) {
  const SnapshotLoadFiles& files = SharedModelFiles();
  if (files.idx.empty()) {
    state.SkipWithError("model files unavailable");
    return;
  }
  {
    // Prime the page cache so every timed iteration is a warm load.
    auto warmup = serve::ServingSnapshot::FromBinaryFile(files.idx);
    if (!warmup.ok()) {
      state.SkipWithError("mmap load failed");
      return;
    }
    state.counters["mapped_bytes"] =
        static_cast<double>((*warmup)->mapped_bytes());
  }
  for (auto _ : state) {
    auto snapshot = serve::ServingSnapshot::FromBinaryFile(files.idx);
    if (!snapshot.ok()) {
      state.SkipWithError("mmap load failed");
      return;
    }
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_SnapshotLoadMmapWarm)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoadMmapCold(benchmark::State& state) {
  // Best-effort cold-cache load: ask the kernel to drop the .dat pages
  // before each iteration. POSIX_FADV_DONTNEED is advisory, so this is an
  // upper bound on warmth rather than a guaranteed cold read; the gate in
  // ci.sh therefore compares the *warm* number against the v2 parse.
  const SnapshotLoadFiles& files = SharedModelFiles();
  if (files.idx.empty()) {
    state.SkipWithError("model files unavailable");
    return;
  }
  std::string dat = files.idx.substr(0, files.idx.size() - 4) + ".dat";
  for (auto _ : state) {
    state.PauseTiming();
    int fd = open(dat.c_str(), O_RDONLY);
    if (fd >= 0) {
      posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
      close(fd);
    }
    state.ResumeTiming();
    auto snapshot = serve::ServingSnapshot::FromBinaryFile(files.idx);
    if (!snapshot.ok()) {
      state.SkipWithError("mmap load failed");
      return;
    }
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_SnapshotLoadMmapCold)->Unit(benchmark::kMillisecond);

// --- Serving-layer benchmarks (BM_QueryEngine*) ------------------------
//
// ci.sh --bench filters on 'BM_QueryEngine' and writes the JSON to
// bench/out/serve.json. The pair FoldIn / CachedHit is the acceptance
// check for the result cache: the cached p50 must be >= 10x faster than
// the uncached fold-in path (compare "p50_us" across the two entries).

std::shared_ptr<const serve::ServingSnapshot> SharedServingSnapshot() {
  static auto& snapshot =
      *new std::shared_ptr<const serve::ServingSnapshot>([] {
        const recipe::Dataset& ds = SharedDataset(4000);
        core::JointTopicModelConfig config;
        config.num_topics = 10;
        config.sweeps = 30;
        auto model = core::JointTopicModel::Create(config, &ds);
        if (!model.ok() || !model->Train().ok()) {
          return std::shared_ptr<const serve::ServingSnapshot>();
        }
        core::ModelSnapshot snap =
            core::MakeSnapshot(model->Estimate(), ds.term_vocab);
        auto serving = serve::ServingSnapshot::FromModel(snap, "bench");
        return serving.ok()
                   ? *serving
                   : std::shared_ptr<const serve::ServingSnapshot>();
      }());
  return snapshot;
}

serve::TextureQuery BenchQuery() {
  serve::TextureQuery query;
  query.gel_concentration = math::Vector(recipe::kNumGelTypes);
  query.gel_concentration[0] = 0.012;
  query.texture_terms = {"purupuru", "fuwafuwa"};
  return query;
}

// Uncached PredictTexture: cache disabled, so every iteration pays the
// full eq.-5 fold-in through the batcher.
void BM_QueryEngineFoldIn(benchmark::State& state) {
  auto snapshot = SharedServingSnapshot();
  if (snapshot == nullptr) {
    state.SkipWithError("serving snapshot setup failed");
    return;
  }
  serve::QueryEngineConfig config;
  config.cache_capacity = 0;
  config.batch_linger_micros = 0;
  auto engine = serve::QueryEngine::Create(config, snapshot, nullptr);
  if (!engine.ok()) {
    state.SkipWithError("engine create failed");
    return;
  }
  serve::TextureQuery query = BenchQuery();
  for (auto _ : state) {
    auto prediction = (*engine)->PredictTexture(query);
    if (!prediction.ok()) {
      state.SkipWithError("predict failed");
      return;
    }
    benchmark::DoNotOptimize(prediction->topic);
  }
  serve::QueryEngineStats stats = (*engine)->GetStats();
  state.counters["queries_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      static_cast<double>(stats.predict.QuantileUpperBound(0.5));
  state.counters["cache_hit_rate"] = stats.cache.HitRate();
}
BENCHMARK(BM_QueryEngineFoldIn)->Unit(benchmark::kMicrosecond);

// Cached PredictTexture: the same canonical query repeated, so after the
// primer every iteration is an LRU hit.
void BM_QueryEngineCachedHit(benchmark::State& state) {
  auto snapshot = SharedServingSnapshot();
  if (snapshot == nullptr) {
    state.SkipWithError("serving snapshot setup failed");
    return;
  }
  serve::QueryEngineConfig config;
  config.batch_linger_micros = 0;
  auto engine = serve::QueryEngine::Create(config, snapshot, nullptr);
  if (!engine.ok()) {
    state.SkipWithError("engine create failed");
    return;
  }
  serve::TextureQuery query = BenchQuery();
  if (!(*engine)->PredictTexture(query).ok()) {  // Prime the cache.
    state.SkipWithError("primer predict failed");
    return;
  }
  for (auto _ : state) {
    auto prediction = (*engine)->PredictTexture(query);
    if (!prediction.ok() || !prediction->from_cache) {
      state.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(prediction->topic);
  }
  serve::QueryEngineStats stats = (*engine)->GetStats();
  state.counters["queries_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      static_cast<double>(stats.predict.QuantileUpperBound(0.5));
  state.counters["cache_hit_rate"] = stats.cache.HitRate();
}
BENCHMARK(BM_QueryEngineCachedHit)->Unit(benchmark::kMicrosecond);

// Concurrent load through the micro-batcher: each iteration fires
// kClients threads x kPerClient uncached queries with a live linger
// window, so concurrent fold-ins coalesce into shared batches.
// "mean_batch_size" (jobs / batches dispatched) is the grouping the
// batcher actually achieved under this load.
void BM_QueryEngineConcurrent(benchmark::State& state) {
  auto snapshot = SharedServingSnapshot();
  if (snapshot == nullptr) {
    state.SkipWithError("serving snapshot setup failed");
    return;
  }
  serve::QueryEngineConfig config;
  config.cache_capacity = 0;
  config.batch_linger_micros = 200;
  config.batch_max_size = 8;
  auto engine = serve::QueryEngine::Create(config, snapshot, nullptr);
  if (!engine.ok()) {
    state.SkipWithError("engine create failed");
    return;
  }
  constexpr int kClients = 4;
  const int per_client = static_cast<int>(state.range(0));
  serve::TextureQuery query = BenchQuery();
  for (auto _ : state) {
    auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        for (int i = 0; i < per_client; ++i) {
          auto prediction = (*engine)->PredictTexture(query);
          benchmark::DoNotOptimize(prediction);
        }
      });
    }
    for (auto& t : clients) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count());
  }
  serve::QueryEngineStats stats = (*engine)->GetStats();
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kClients * per_client),
      benchmark::Counter::kIsRate);
  state.counters["mean_batch_size"] = stats.batcher.MeanBatchSize();
  state.counters["shed"] = static_cast<double>(stats.batcher.shed);
}
BENCHMARK(BM_QueryEngineConcurrent)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// --- Serving robustness benchmark (BM_ServerUnderSlowClient) -----------
//
// ci.sh --bench filters on 'BM_ServerUnderSlowClient' and writes the JSON
// to bench/out/serve_robustness.json. This is the wire-level isolation
// check: one hostile client parks half a request line on a connection
// (occupying a handler thread inside its idle budget) while healthy
// clients run PREDICT round trips through real sockets. The healthy
// "p50_us" / "p99_us" counters are the acceptance numbers — a stalled
// peer must cost its own connection, never the fleet's latency.

int BenchRawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void BM_ServerUnderSlowClient(benchmark::State& state) {
  auto snapshot = SharedServingSnapshot();
  if (snapshot == nullptr) {
    state.SkipWithError("serving snapshot setup failed");
    return;
  }
  serve::QueryEngineConfig config;
  config.batch_linger_micros = 0;
  auto engine = serve::QueryEngine::Create(config, snapshot, nullptr);
  if (!engine.ok()) {
    state.SkipWithError("engine create failed");
    return;
  }
  serve::ServerOptions options;
  options.idle_timeout_millis = 600000;  // The staller outlives the bench.
  serve::LineProtocolServer server(engine->get(), options);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }

  // The staller: half a request line, then silence for the whole run.
  int staller = BenchRawConnect(server.port());
  if (staller < 0) {
    state.SkipWithError("staller connect failed");
    return;
  }
  (void)::send(staller, "PREDICT gelatin=", 16, MSG_NOSIGNAL);

  constexpr int kHealthy = 4;
  serve::LineClientOptions client_options;
  client_options.io_timeout_millis = 30000;
  std::vector<std::unique_ptr<serve::LineClient>> clients;
  for (int c = 0; c < kHealthy; ++c) {
    auto client =
        serve::LineClient::Connect("127.0.0.1", server.port(), client_options);
    if (!client.ok()) {
      state.SkipWithError("healthy client connect failed");
      ::close(staller);
      return;
    }
    clients.push_back(std::move(client).value());
  }

  LatencyHistogram healthy_latency;
  const std::string command = "PREDICT gelatin=0.012 terms=purupuru,fuwafuwa";
  for (auto _ : state) {
    for (auto& client : clients) {
      auto begin = std::chrono::steady_clock::now();
      auto reply = client->RoundTrip(command);
      healthy_latency.Record(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - begin)
              .count());
      if (!reply.ok() || reply->rfind("OK", 0) != 0) {
        state.SkipWithError("healthy round trip failed under staller");
        ::close(staller);
        return;
      }
      benchmark::DoNotOptimize(reply);
    }
  }
  ::close(staller);

  LatencyHistogram::Snapshot lat = healthy_latency.TakeSnapshot();
  serve::ServerStats stats = server.GetStats();
  state.counters["round_trips_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kHealthy),
      benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      static_cast<double>(lat.QuantileUpperBound(0.5));
  state.counters["p99_us"] =
      static_cast<double>(lat.QuantileUpperBound(0.99));
  state.counters["accepted"] =
      static_cast<double>(stats.connections_accepted);
  state.counters["shed"] = static_cast<double>(stats.connections_shed);
}
BENCHMARK(BM_ServerUnderSlowClient)->Unit(benchmark::kMicrosecond);

void BM_Word2VecEpoch(benchmark::State& state) {
  // Training throughput on a small recipe-like corpus.
  corpus::CorpusGenConfig config;
  config.num_recipes = 2000;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();
  std::vector<std::vector<std::string>> sentences;
  int64_t tokens = 0;
  for (const auto& r : recipes) {
    sentences.push_back(text::Tokenizer::Tokenize(r.description));
    tokens += static_cast<int64_t>(sentences.back().size());
  }
  text::Word2VecConfig w2v;
  w2v.epochs = 1;
  w2v.dim = 32;
  for (auto _ : state) {
    auto model = text::Word2Vec::Train(sentences, w2v);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * tokens);
  state.SetLabel("one epoch, dim 32");
}
BENCHMARK(BM_Word2VecEpoch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace texrheo

BENCHMARK_MAIN();
