// Ablation study over the design choices DESIGN.md calls out:
//   (1) joint topic model vs decoupled LDA-then-GMM vs GMM-only,
//   (2) eq. (3) with vs without the emulsion Gaussian,
//   (3) with vs without the -log information-quantity transform,
//   (4) with vs without the word2vec gel-relatedness screen.
// All variants are scored on the synthetic corpus's ground-truth texture
// classes (purity / NMI / ARI) and on linkage sanity: the fraction of
// Table I settings whose linked topic is dominated by the setting's gel.

#include <cstdio>
#include <string>

#include "core/collapsed_sampler.h"
#include "core/variational.h"
#include "core/gmm_baseline.h"
#include "core/lda_baseline.h"
#include "core/linkage.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

struct Scores {
  eval::ClusteringScores clustering;
  double linkage_accuracy = 0.0;
};

int DominantGel(const math::Vector& gel) {
  int best = -1;
  double best_c = 0.0;
  for (size_t g = 0; g < gel.size(); ++g) {
    if (gel[g] > best_c) {
      best_c = gel[g];
      best = static_cast<int>(g);
    }
  }
  return best;
}

// Fraction of Table I settings whose linked topic's member recipes are
// dominated by the same gel as the setting.
double LinkageAccuracy(const recipe::Dataset& dataset,
                       const std::vector<int>& doc_topic,
                       const std::vector<math::Gaussian>& gel_topics,
                       const recipe::FeatureConfig& feature_config) {
  core::TopicEstimates estimates;
  estimates.gel_topics = gel_topics;
  auto links = core::LinkSettingsToTopics(estimates, rheology::TableI(),
                                          feature_config);
  if (!links.ok()) return 0.0;
  int correct = 0;
  for (const auto& link : *links) {
    const auto& row =
        rheology::TableI()[static_cast<size_t>(link.setting_id - 1)];
    // Dominant gel among recipes assigned to the linked topic.
    math::Vector mean(recipe::kNumGelTypes);
    int count = 0;
    for (size_t d = 0; d < dataset.documents.size(); ++d) {
      if (doc_topic[d] != link.topic) continue;
      mean += dataset.documents[d].gel_concentration;
      ++count;
    }
    if (count == 0) continue;
    if (DominantGel(mean) == DominantGel(row.gel)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(rheology::TableI().size());
}

std::vector<int> GroundTruth(const eval::ExperimentResult& result) {
  std::vector<int> truth;
  for (size_t d = 0; d < result.dataset.documents.size(); ++d) {
    const auto& r = result.recipes[result.dataset.documents[d].recipe_index];
    truth.push_back(std::stoi(r.metadata.at(corpus::kMetaTextureClass)));
  }
  return truth;
}

Scores ScoreAssignments(const eval::ExperimentResult& result,
                        const std::vector<int>& doc_topic,
                        const std::vector<math::Gaussian>& gel_topics) {
  Scores s;
  auto clustering = eval::ScoreClustering(doc_topic, GroundTruth(result));
  if (clustering.ok()) s.clustering = clustering.value();
  recipe::FeatureConfig fc;
  s.linkage_accuracy =
      LinkageAccuracy(result.dataset, doc_topic, gel_topics, fc);
  return s;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_ablation: model/baseline/feature ablations on ground truth.\nflags: --scale <f> (default 0.2)\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.2).value_or(0.2);
  SetLogLevel(LogLevel::kWarning);

  TablePrinter table({"Variant", "Purity", "NMI", "ARI",
                      "Table-I linkage acc", "Notes"});

  auto add_row = [&table](const std::string& name, const Scores& s,
                          const std::string& notes) {
    table.AddRow({name, FormatDouble(s.clustering.purity, 3),
                  FormatDouble(s.clustering.nmi, 3),
                  FormatDouble(s.clustering.ari, 3),
                  FormatDouble(s.linkage_accuracy, 3), notes});
  };

  // --- (1) Joint model, default configuration -----------------------------
  eval::ExperimentConfig base = eval::DefaultExperimentConfig(scale);
  auto joint_or = eval::RunJointExperiment(base);
  if (!joint_or.ok()) {
    std::fprintf(stderr, "joint experiment failed: %s\n",
                 joint_or.status().ToString().c_str());
    return 1;
  }
  const auto& joint = joint_or.value();
  add_row("joint topic model (paper eq. 3)",
          ScoreAssignments(joint, joint.estimates.doc_topic,
                           joint.estimates.gel_topics),
          "words + gel Gaussian in eq. (3)");

  // --- (1b) Decoupled LDA -> post-hoc Gaussians ---------------------------
  {
    core::LdaConfig lda_config;
    lda_config.num_topics = base.model.num_topics;
    lda_config.sweeps = base.model.sweeps;
    auto lda = core::LdaModel::Create(lda_config, &joint.dataset);
    if (lda.ok() && lda->Train().ok()) {
      std::vector<int> doc_topic = lda->DocTopics();
      auto gaussians = core::FitPostHocGaussians(
          joint.dataset, doc_topic, lda_config.num_topics, /*use_gel=*/true,
          joint.resolved_model_config.gel_prior);
      if (gaussians.ok()) {
        add_row("LDA then per-topic Gaussians",
                ScoreAssignments(joint, doc_topic, gaussians.value()),
                "conventional LDA; concentrations post-hoc");
      }
    }
  }

  // --- (1c) GMM on gel+emulsion features only -----------------------------
  {
    std::vector<math::Vector> points;
    for (const auto& doc : joint.dataset.documents) {
      math::Vector v(doc.gel_feature.size() + doc.emulsion_feature.size());
      for (size_t i = 0; i < doc.gel_feature.size(); ++i) {
        v[i] = doc.gel_feature[i];
      }
      for (size_t i = 0; i < doc.emulsion_feature.size(); ++i) {
        v[doc.gel_feature.size() + i] = doc.emulsion_feature[i];
      }
      points.push_back(std::move(v));
    }
    core::GmmConfig gmm_config;
    gmm_config.num_components = base.model.num_topics;
    auto gmm = core::GaussianMixture::Fit(gmm_config, points);
    if (gmm.ok()) {
      std::vector<int> doc_topic = gmm->HardAssignments(points);
      auto gaussians = core::FitPostHocGaussians(
          joint.dataset, doc_topic, gmm_config.num_components, true,
          joint.resolved_model_config.gel_prior);
      if (gaussians.ok()) {
        add_row("GMM on concentrations only",
                ScoreAssignments(joint, doc_topic, gaussians.value()),
                "no texture terms at all");
      }
    }
  }

  // --- (1d) Collapsed Gibbs (Gaussians integrated out) --------------------
  {
    auto collapsed =
        core::CollapsedJointTopicModel::Create(base.model, &joint.dataset);
    if (collapsed.ok() && collapsed->Train().ok()) {
      auto est = collapsed->Estimate();
      if (est.ok()) {
        add_row("collapsed Gibbs sampler",
                ScoreAssignments(joint, est->doc_topic, est->gel_topics),
                "Student-t predictive; eq. 4 integrated out");
      }
    }
  }

  // --- (1e) Deterministic variational inference (CVB0-style) --------------
  {
    auto vb =
        core::VariationalJointTopicModel::Create(base.model, &joint.dataset);
    if (vb.ok() && vb->Train().ok()) {
      auto est = vb->Estimate();
      if (est.ok()) {
        add_row("variational (CVB0)",
                ScoreAssignments(joint, est->doc_topic, est->gel_topics),
                StrFormat("deterministic; converged in %d iters",
                          vb->iterations_run()));
      }
    }
  }

  // --- (2) eq. (3) extended: emulsion Gaussian included in y sampling -----
  {
    eval::ExperimentConfig variant = base;
    variant.model.use_emulsion_likelihood = true;
    auto r = eval::RunJointExperiment(variant);
    if (r.ok()) {
      add_row("joint, + emulsion likelihood",
              ScoreAssignments(*r, r->estimates.doc_topic,
                               r->estimates.gel_topics),
              "graphical-model reading of eq. (3)");
    }
  }

  // --- (3) raw concentrations instead of -log ------------------------------
  {
    eval::ExperimentConfig variant = base;
    variant.dataset.feature.use_information_quantity = false;
    auto r = eval::RunJointExperiment(variant);
    if (r.ok()) {
      add_row("joint, raw concentrations",
              ScoreAssignments(*r, r->estimates.doc_topic,
                               r->estimates.gel_topics),
              "-log transform disabled");
    }
  }

  // --- (4) no word2vec confounder screen ----------------------------------
  {
    eval::ExperimentConfig variant = base;
    variant.use_word2vec_filter = false;
    auto r = eval::RunJointExperiment(variant);
    if (r.ok()) {
      Scores s = ScoreAssignments(*r, r->estimates.doc_topic,
                                  r->estimates.gel_topics);
      add_row("joint, no word2vec screen", s,
              StrFormat("%zu confounder occurrences kept",
                        joint.dataset.funnel
                            .occurrences_removed_by_filter));
    }
  }

  std::printf("=== Ablations (scale %.2f of the 63k corpus) ===\n", scale);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "expected shape: the joint model matches or beats the decoupled "
      "pipelines on linkage accuracy; removing the -log transform or the "
      "word2vec screen degrades scores\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
