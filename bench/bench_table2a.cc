// Reproduces the paper's Table II(a): topics recovered by the joint topic
// model from the (synthetic) Cookpad corpus - per-topic gel concentrations,
// texture terms with probabilities, recipe counts, and the Table I settings
// linked to each topic by gel-concentration KL divergence.
//
// Flags: --scale <f>   corpus scale relative to the paper's 63,000 recipes
//                      (default 0.25); --sweeps, --topics, --seed.

#include <cstdio>

#include "eval/experiment.h"
#include "eval/validation.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/logging.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_table2a: topics + Table I linkage (paper Table II(a)).\nflags: --scale <f> (default 0.25; 1.0 = 63k recipes) --sweeps <n> --topics <k> --seed <s>\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.25).value_or(0.25);
  eval::ExperimentConfig config = eval::DefaultExperimentConfig(scale);
  config.model.sweeps =
      static_cast<int>(flags.GetInt("sweeps", 250).value_or(250));
  config.model.num_topics =
      static_cast<int>(flags.GetInt("topics", 10).value_or(10));
  config.corpus.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 20220501).value_or(20220501));
  SetLogLevel(LogLevel::kWarning);

  auto result_or = eval::RunJointExperiment(config);
  if (!result_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const auto& result = result_or.value();
  const auto& funnel = result.dataset.funnel;

  std::printf("=== Table II(a): topics from the joint topic model ===\n");
  std::printf(
      "corpus %zu recipes (scale %.2f of the paper's 63,000), "
      "%zu with texture terms, %zu after filtering, %zu distinct terms\n\n",
      funnel.total, scale, funnel.with_texture_terms, funnel.final_dataset,
      funnel.distinct_terms);
  std::printf("%s", eval::FormatTopicTable(result).c_str());

  // The synthetic corpus has ground truth, so score the topics too - an
  // evaluation the paper could not run on the real Cookpad crawl.
  std::vector<int> truth, predicted;
  for (size_t d = 0; d < result.dataset.documents.size(); ++d) {
    const auto& recipe =
        result.recipes[result.dataset.documents[d].recipe_index];
    truth.push_back(std::stoi(recipe.metadata.at("texture_class")));
    predicted.push_back(result.estimates.doc_topic[d]);
  }
  auto scores = eval::ScoreClustering(predicted, truth);
  if (scores.ok()) {
    std::printf(
        "\nagainst generator ground truth (texture classes): purity %.3f, "
        "NMI %.3f, ARI %.3f\n",
        scores->purity, scores->nmi, scores->ari);
  }
  std::printf("final complete-data log likelihood: %.1f\n",
              result.final_log_likelihood);

  // The paper's validation step (Section III.C.4): do the linked topics'
  // dictionary categories agree with the measured attribute profiles?
  auto validation = eval::ValidateLinkage(result);
  if (validation.ok()) {
    std::printf(
        "\n=== Linkage validation against dictionary categories ===\n");
    std::printf("%s", eval::FormatValidation(validation.value()).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
