// Reproduces the paper's Table II(b): the Bavarois and Milk jelly dishes
// (gelatin + substantial emulsions) with their quantitative texture, full
// concentration vectors, and the topic each dish is assigned to by gel
// KL divergence against the trained joint topic model.

#include <cstdio>

#include "eval/dish_analysis.h"
#include "eval/experiment.h"
#include "rheology/rheometer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_table2b: Bavarois / Milk jelly dish table (paper Table II(b)).\nflags: --scale <f> (default 0.25)\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.25).value_or(0.25);
  SetLogLevel(LogLevel::kWarning);

  auto result_or =
      eval::RunJointExperiment(eval::DefaultExperimentConfig(scale));
  if (!result_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const auto& result = result_or.value();
  const auto& model = rheology::GelPhysicsModel::Calibrated();

  TablePrinter table({"Dish", "Hardness", "Cohesiveness", "Adhesiveness",
                      "Gelatin", "Kanten", "Agar", "Sugar", "Egg albumen",
                      "Egg yolk", "Raw cream", "Milk", "Yogurt",
                      "Assigned topic"});
  for (const auto& dish : rheology::TableIIb()) {
    auto analysis = eval::AnalyzeDish(result, dish);
    if (!analysis.ok()) {
      std::fprintf(stderr, "dish analysis failed: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    // Regenerate the dish's quantitative texture through the simulator
    // (the paper takes these numbers from refs [20], [21]).
    auto measurement = rheology::SimulateDish(model, dish.gel, dish.emulsion,
                                              rheology::RheometerConfig());
    if (!measurement.ok()) return 1;
    const auto& sim = measurement->attributes;
    table.AddRow(
        {dish.name,
         FormatDouble(sim.hardness, 3) + " (paper " +
             FormatDouble(dish.attributes.hardness, 3) + ")",
         FormatDouble(sim.cohesiveness, 3) + " (paper " +
             FormatDouble(dish.attributes.cohesiveness, 3) + ")",
         FormatDouble(sim.adhesiveness, 3) + " (paper " +
             FormatDouble(dish.attributes.adhesiveness, 3) + ")",
         FormatDouble(dish.gel[0], 3), FormatDouble(dish.gel[1], 3),
         FormatDouble(dish.gel[2], 3), FormatDouble(dish.emulsion[0], 3),
         FormatDouble(dish.emulsion[1], 3), FormatDouble(dish.emulsion[2], 3),
         FormatDouble(dish.emulsion[3], 3), FormatDouble(dish.emulsion[4], 3),
         FormatDouble(dish.emulsion[5], 3),
         std::to_string(analysis->assigned_topic)});
  }
  // The pure-gelatin reference row (Table I data 3) the paper prints below
  // the dishes.
  const auto& row3 = rheology::TableI()[2];
  auto m3 = rheology::SimulateDish(model, row3.gel, row3.emulsion,
                                   rheology::RheometerConfig());
  if (m3.ok()) {
    auto link = eval::AnalyzeDish(
        result, rheology::EmulsionDish{"Data 3 in Table I", row3.gel,
                                       math::Vector(6), row3.attributes});
    table.AddRow({"Data 3 in Table I",
                  FormatDouble(m3->attributes.hardness, 3) + " (paper 0.72)",
                  FormatDouble(m3->attributes.cohesiveness, 3) +
                      " (paper 0.17)",
                  FormatDouble(m3->attributes.adhesiveness, 3) +
                      " (paper 0.57)",
                  "0.025", "0", "0", "0", "0", "0", "0", "0", "0",
                  link.ok() ? std::to_string(link->assigned_topic) : "?"});
  }
  std::printf("=== Table II(b): Bavarois and Milk jelly ===\n");
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "shape check: all three rows share gelatin 2.5%% and should land in "
      "the same topic; Bavarois is harder and more cohesive than Milk "
      "jelly, both harder than the pure gel\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
