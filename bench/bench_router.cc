// Router SLO benchmark: an in-process 3-replica fleet behind
// texrheo_router's ReplicaRouter + front LineProtocolServer, driven by an
// open-loop load generator (arrivals on a fixed schedule, latency measured
// from the *scheduled* start — a backed-up worker makes the numbers worse,
// never invisible, which closed-loop clients get wrong via coordinated
// omission). Keys are Zipf-skewed over ~200 query variants so replica
// caches and consistent-hash affinity matter, a slow-loris connection
// squats on the front socket for the whole run, and one replica is killed
// and restarted mid-run.
//
// Writes bench/out/router_slo.json. ci.sh --bench gates on it:
//   - healthy (outside the kill window): error_rate == 0 and shed_rate == 0
//   - kill window: availability >= 0.99 (retries + breaker ejection must
//     hide a whole-replica outage from clients)
//
// Flags: --qps <n> (default 300) --seconds <n> (default 4)
//        --out <path> (default bench/out/router_slo.json)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/json.h"

namespace texrheo {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

math::Gaussian BenchGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  return *g;
}

core::ModelSnapshot BenchModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.vocab.Add("fuwafuwa");
  model.estimates.phi = {{0.7, 0.2, 0.1}, {0.1, 0.6, 0.3}};
  model.estimates.gel_topics = {BenchGaussian(2.0, 3), BenchGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {BenchGaussian(1.0, 6),
                                     BenchGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

struct ReplicaProcess {
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<serve::LineProtocolServer> server;
  int port = 0;
};

bool StartReplica(std::shared_ptr<const serve::ServingSnapshot> snapshot,
                  ReplicaProcess* replica, int port) {
  serve::QueryEngineConfig config;
  config.fold_in_sweeps = 10;
  config.batch_linger_micros = 0;
  auto engine = serve::QueryEngine::Create(config, std::move(snapshot),
                                           nullptr);
  if (!engine.ok()) return false;
  replica->engine = std::move(engine).value();
  serve::ServerOptions options;
  options.port = port;
  replica->server = std::make_unique<serve::LineProtocolServer>(
      replica->engine.get(), options);
  if (!replica->server->Start().ok()) return false;
  replica->port = replica->server->port();
  return true;
}

/// ~200 query variants: PREDICT dominates (cacheable, fold-in on a miss),
/// NEAREST / TOPIC are the cheap deterministic fillers.
std::vector<std::string> BuildQueryMix() {
  std::vector<std::string> mix;
  for (int v = 0; v < 200; ++v) {
    switch (v % 4) {
      case 0:
      case 1: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "PREDICT gelatin=%.4f terms=katai",
                      0.01 + 1e-4 * v);
        mix.push_back(buf);
        break;
      }
      case 2:
        mix.push_back("NEAREST " + std::to_string(v % 2));
        break;
      default:
        mix.push_back("TOPIC " + std::to_string(v % 2));
    }
  }
  return mix;
}

/// Zipf(s=1.07) CDF over the mix: a hot head (cache hits on the owning
/// replica) and a long tail (fold-in misses keep the batcher honest).
std::vector<double> ZipfCdf(size_t n) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), 1.07);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "bench_router: open-loop SLO bench of the replicated router.\n"
        "flags: --qps <n> (default 300) --seconds <n> (default 4) "
        "--out <path>\n");
    return 0;
  }
  const int qps = static_cast<int>(flags.GetInt("qps", 300).value_or(300));
  const int seconds =
      static_cast<int>(flags.GetInt("seconds", 4).value_or(4));
  const std::string out_path =
      flags.GetString("out", "bench/out/router_slo.json");

  auto snapshot_or =
      serve::ServingSnapshot::FromModel(BenchModel(), "bench_router");
  if (!snapshot_or.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 snapshot_or.status().ToString().c_str());
    return 1;
  }
  auto snapshot = *snapshot_or;

  constexpr int kReplicas = 3;
  std::vector<ReplicaProcess> fleet(kReplicas);
  for (int i = 0; i < kReplicas; ++i) {
    if (!StartReplica(snapshot, &fleet[i], 0)) {
      std::fprintf(stderr, "replica %d failed to start\n", i);
      return 1;
    }
  }

  serve::RouterOptions router_options;
  for (const ReplicaProcess& replica : fleet) {
    router_options.replicas.push_back({"127.0.0.1", replica.port});
  }
  router_options.probe_interval_millis = 100;
  router_options.breaker.failure_threshold = 2;
  router_options.breaker.cooldown_millis = 300;
  router_options.max_tries = 3;
  router_options.hedge_delay_millis = -1;  // Auto: hedge above observed p99.
  router_options.replica_io_timeout_millis = 5000;
  auto router_or = serve::ReplicaRouter::Create(router_options);
  if (!router_or.ok() || !(*router_or)->Start().ok()) {
    std::fprintf(stderr, "router failed to start\n");
    return 1;
  }
  std::unique_ptr<serve::ReplicaRouter> router = std::move(router_or).value();

  serve::ServerOptions front_options;
  front_options.idle_timeout_millis = 600000;  // Loris outlives the run.
  serve::LineProtocolServer front(router.get(), router->metrics(),
                                  front_options);
  if (!front.Start().ok()) {
    std::fprintf(stderr, "front server failed to start\n");
    return 1;
  }

  // The slow loris: half a request line, then silence for the whole run.
  int loris = RawConnect(front.port());
  if (loris >= 0) (void)::send(loris, "PREDICT gelatin=", 16, MSG_NOSIGNAL);

  const std::vector<std::string> mix = BuildQueryMix();
  const std::vector<double> cdf = ZipfCdf(mix.size());
  const long long total_requests =
      static_cast<long long>(qps) * seconds;
  const long long interarrival_us = 1000000ll / std::max(1, qps);

  // Open-loop: request k is *due* at start + k * interarrival regardless of
  // how the previous ones went; workers claim indices from a shared cursor
  // and latency runs from the due time.
  std::atomic<long long> cursor{0};
  std::atomic<long long> ok_healthy{0}, err_healthy{0};
  std::atomic<long long> ok_kill{0}, err_kill{0};
  LatencyHistogram latency;
  std::mutex latency_mu;  // Record is cheap; one histogram, many workers.

  const auto start = steady_clock::now();
  const auto kill_at = start + milliseconds(seconds * 1000 * 2 / 5);
  const auto restart_at = start + milliseconds(seconds * 1000 * 7 / 10);
  std::atomic<bool> killed{false}, restarted{false};

  constexpr int kWorkers = 8;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      serve::LineClientOptions client_options;
      client_options.io_timeout_millis = 30000;
      auto client = serve::LineClient::Connect("127.0.0.1", front.port(),
                                               client_options);
      if (!client.ok()) return;
      std::mt19937_64 rng(0x5105e + w);
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      for (;;) {
        const long long k = cursor.fetch_add(1);
        if (k >= total_requests) break;
        const auto due = start + microseconds(k * interarrival_us);
        std::this_thread::sleep_until(due);  // No-op when already late.
        const double u = unit(rng);
        size_t pick = 0;
        while (pick + 1 < cdf.size() && cdf[pick] < u) ++pick;
        auto reply = (*client)->RoundTrip(mix[pick]);
        const auto now = steady_clock::now();
        const bool good = reply.ok() && reply->rfind("OK", 0) == 0;
        // "During the kill window" = scheduled while replica 1 was down.
        const bool in_kill_window = due >= kill_at && due < restart_at;
        if (in_kill_window) {
          (good ? ok_kill : err_kill).fetch_add(1);
        } else {
          (good ? ok_healthy : err_healthy).fetch_add(1);
        }
        {
          std::lock_guard<std::mutex> lock(latency_mu);
          latency.Record(duration_cast<microseconds>(now - due).count());
        }
        if (!good) {
          // A reply that failed at the transport layer poisons the
          // connection; reconnect rather than misattribute later errors.
          if (!reply.ok()) {
            auto fresh = serve::LineClient::Connect("127.0.0.1", front.port(),
                                                    client_options);
            if (fresh.ok()) client = std::move(fresh);
          }
        }
      }
    });
  }

  // Chaos thread: whole-replica kill + restart on schedule.
  std::thread chaos([&] {
    std::this_thread::sleep_until(kill_at);
    fleet[1].server->Stop();
    killed.store(true);
    std::this_thread::sleep_until(restart_at);
    const int port = fleet[1].port;
    restarted.store(StartReplica(snapshot, &fleet[1], port));
  });

  for (auto& worker : workers) worker.join();
  chaos.join();
  if (loris >= 0) ::close(loris);

  const LatencyHistogram::Snapshot lat = latency.TakeSnapshot();
  const obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  const serve::ServerStats front_stats = front.GetStats();
  front.Stop();
  router->Stop();

  const long long healthy_total = ok_healthy.load() + err_healthy.load();
  const long long kill_total = ok_kill.load() + err_kill.load();
  const double error_rate =
      healthy_total > 0
          ? static_cast<double>(err_healthy.load()) / healthy_total
          : 0.0;
  const double shed_rate =
      front_stats.connections_accepted + front_stats.connections_shed > 0
          ? static_cast<double>(front_stats.connections_shed) /
                static_cast<double>(front_stats.connections_accepted +
                                    front_stats.connections_shed)
          : 0.0;
  const double availability =
      kill_total > 0 ? static_cast<double>(ok_kill.load()) / kill_total : 1.0;
  const uint64_t requests = snap.CounterValue("router.requests");
  const uint64_t retries = snap.CounterValue("router.retries");
  const uint64_t hedges = snap.CounterValue("router.hedges");
  const uint64_t hedge_wins = snap.CounterValue("router.hedge_wins");

  JsonValue root = JsonValue::MakeObject();
  JsonValue config = JsonValue::MakeObject();
  config.AsObject()["qps"] = JsonValue::Number(qps);
  config.AsObject()["seconds"] = JsonValue::Number(seconds);
  config.AsObject()["replicas"] = JsonValue::Number(kReplicas);
  config.AsObject()["workers"] = JsonValue::Number(kWorkers);
  root.AsObject()["config"] = std::move(config);
  root.AsObject()["p50_us"] =
      JsonValue::Number(static_cast<double>(lat.QuantileUpperBound(0.5)));
  root.AsObject()["p99_us"] =
      JsonValue::Number(static_cast<double>(lat.QuantileUpperBound(0.99)));
  root.AsObject()["p999_us"] =
      JsonValue::Number(static_cast<double>(lat.QuantileUpperBound(0.999)));
  JsonValue healthy = JsonValue::MakeObject();
  healthy.AsObject()["requests"] =
      JsonValue::Number(static_cast<double>(healthy_total));
  healthy.AsObject()["errors"] =
      JsonValue::Number(static_cast<double>(err_healthy.load()));
  healthy.AsObject()["error_rate"] = JsonValue::Number(error_rate);
  healthy.AsObject()["shed_rate"] = JsonValue::Number(shed_rate);
  root.AsObject()["healthy"] = std::move(healthy);
  JsonValue kill_window = JsonValue::MakeObject();
  kill_window.AsObject()["requests"] =
      JsonValue::Number(static_cast<double>(kill_total));
  kill_window.AsObject()["ok"] =
      JsonValue::Number(static_cast<double>(ok_kill.load()));
  kill_window.AsObject()["availability"] = JsonValue::Number(availability);
  kill_window.AsObject()["replica_restarted"] =
      JsonValue::Bool(restarted.load());
  root.AsObject()["kill_window"] = std::move(kill_window);
  root.AsObject()["retry_rate"] = JsonValue::Number(
      requests > 0 ? static_cast<double>(retries) / requests : 0.0);
  root.AsObject()["hedge_win_rate"] = JsonValue::Number(
      hedges > 0 ? static_cast<double>(hedge_wins) / hedges : 0.0);
  JsonValue counters = JsonValue::MakeObject();
  counters.AsObject()["requests"] =
      JsonValue::Number(static_cast<double>(requests));
  counters.AsObject()["answered"] = JsonValue::Number(
      static_cast<double>(snap.CounterValue("router.answered")));
  counters.AsObject()["unavailable"] = JsonValue::Number(
      static_cast<double>(snap.CounterValue("router.unavailable")));
  counters.AsObject()["retries"] =
      JsonValue::Number(static_cast<double>(retries));
  counters.AsObject()["hedges"] =
      JsonValue::Number(static_cast<double>(hedges));
  counters.AsObject()["hedge_wins"] =
      JsonValue::Number(static_cast<double>(hedge_wins));
  counters.AsObject()["breaker_trips"] = JsonValue::Number(
      static_cast<double>(snap.CounterValue("router.breaker.trips")));
  counters.AsObject()["breaker_recoveries"] = JsonValue::Number(
      static_cast<double>(snap.CounterValue("router.breaker.recoveries")));
  root.AsObject()["counters"] = std::move(counters);

  // ci.sh pre-creates bench/out; cover direct runs from the repo root too.
  const size_t slash = out_path.rfind('/');
  if (slash != std::string::npos) {
    (void)::mkdir(out_path.substr(0, slash).c_str(), 0755);
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string json = root.Serialize();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);

  std::printf(
      "bench_router: %lld requests @ %d qps | p50=%lldus p99=%lldus "
      "p999=%lldus | healthy errors=%lld shed_rate=%.4f | kill window "
      "availability=%.4f (%lld/%lld) | retries=%llu hedges=%llu "
      "hedge_wins=%llu\n",
      total_requests, qps,
      static_cast<long long>(lat.QuantileUpperBound(0.5)),
      static_cast<long long>(lat.QuantileUpperBound(0.99)),
      static_cast<long long>(lat.QuantileUpperBound(0.999)),
      err_healthy.load(), shed_rate, availability, ok_kill.load(),
      kill_total, static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(hedge_wins));
  std::printf("wrote %s\n", out_path.c_str());

  return (error_rate == 0.0 && shed_rate == 0.0 && availability >= 0.99) ? 0
                                                                         : 1;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
