// Reproduces the paper's Figure 4: scatter of the assigned topic's recipes
// on the consolidated (hardness, cohesiveness) term axes, colored by
// emulsion-KL bucket, with the topic's own centroid as the star mark.
//
// Expected shape: the nearest (bucket-0) recipes sit to the right of the
// topic centroid for both dishes (harder), and Bavarois' near recipes sit
// higher (more cohesive/elastic) than Milk jelly's.

#include <cstdio>

#include "eval/dish_analysis.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/logging.h"

namespace texrheo {
namespace {

void PrintScatter(const eval::DishAnalysis& analysis) {
  std::printf("--- %s (assigned topic %d) ---\n", analysis.dish_name.c_str(),
              analysis.assigned_topic);
  std::printf("hardness_score\tcohesiveness_score\tkl\tbucket\n");
  for (const auto& p : analysis.fig4_points) {
    std::printf("%.4f\t%.4f\t%.4f\t%d\n", p.hardness_score,
                p.cohesiveness_score, p.divergence, p.kl_bucket);
  }
  std::printf("STAR (topic centroid)\t%.4f\t%.4f\n\n",
              analysis.topic_centroid.hardness_score,
              analysis.topic_centroid.cohesiveness_score);

  // Bucket means: the paper's "red plots concentrate in the right area".
  double mean_h[3] = {0, 0, 0}, mean_c[3] = {0, 0, 0};
  int count[3] = {0, 0, 0};
  for (const auto& p : analysis.fig4_points) {
    mean_h[p.kl_bucket] += p.hardness_score;
    mean_c[p.kl_bucket] += p.cohesiveness_score;
    ++count[p.kl_bucket];
  }
  for (int b = 0; b < 3; ++b) {
    if (count[b] == 0) continue;
    std::printf(
        "bucket %d (%s): mean hardness %.3f, mean cohesiveness %.3f, "
        "n=%d\n",
        b, b == 0 ? "nearest" : (b == 1 ? "middle" : "farthest"),
        mean_h[b] / count[b], mean_c[b] / count[b], count[b]);
  }
  std::printf("\n");
}

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_fig4: consolidated hardness/cohesiveness scatter (paper Fig. 4).\nflags: --scale <f> (default 0.25)\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.25).value_or(0.25);
  SetLogLevel(LogLevel::kWarning);

  auto result_or =
      eval::RunJointExperiment(eval::DefaultExperimentConfig(scale));
  if (!result_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Fig. 4: recipes on the consolidated hardness/cohesiveness axes "
      "===\n\n");
  for (const auto& dish : rheology::TableIIb()) {
    auto analysis = eval::AnalyzeDish(result_or.value(), dish);
    if (!analysis.ok()) {
      std::fprintf(stderr, "dish analysis failed: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    PrintScatter(analysis.value());
  }
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
