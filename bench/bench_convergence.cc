// Convergence study of the Gibbs sampler. The paper reports topics "after
// the convergence of Gibbs sampling" without giving a criterion; this bench
// makes that checkable: three independently seeded chains on the same
// dataset, with Geweke z-scores, effective sample sizes, and the
// Gelman-Rubin R-hat over the complete-data log-likelihood traces.

#include <cstdio>

#include "core/joint_topic_model.h"
#include "corpus/generator.h"
#include "eval/convergence.h"
#include "recipe/dataset.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_convergence: Geweke/ESS/R-hat over 3 Gibbs chains.\nflags: --recipes <n> (default 12000) --sweeps <n> (default 400)\n");
    return 0;
  }
  size_t recipes =
      static_cast<size_t>(flags.GetInt("recipes", 12000).value_or(12000));
  int sweeps = static_cast<int>(flags.GetInt("sweeps", 400).value_or(400));

  corpus::CorpusGenConfig corpus_config;
  corpus_config.num_recipes = recipes;
  corpus::CorpusGenerator generator(
      corpus_config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto corpus = generator.Generate();
  auto dataset = recipe::BuildDataset(
      corpus, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded(), nullptr, recipe::DatasetConfig());
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset failed\n");
    return 1;
  }
  std::printf("=== Gibbs convergence: %zu documents, %d sweeps, 3 chains ===\n",
              dataset->documents.size(), sweeps);

  std::vector<std::vector<double>> post_burnin_chains;
  TablePrinter table({"Chain", "Final LL", "Geweke |z|", "ESS",
                      "Verdict"});
  int burn_in = sweeps / 3;
  for (uint64_t seed : {11u, 22u, 33u}) {
    core::JointTopicModelConfig config;
    config.seed = seed;
    config.sweeps = sweeps;
    config.burn_in_sweeps = burn_in;
    auto model = core::JointTopicModel::Create(config, &dataset.value());
    if (!model.ok() || !model->Train().ok()) {
      std::fprintf(stderr, "chain %llu failed\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    const auto& trace = model->likelihood_trace();
    std::vector<double> post(trace.begin() + burn_in, trace.end());
    auto geweke = eval::GewekeDiagnostic(post);
    auto ess = eval::EffectiveSampleSize(post);
    double z = geweke.ok() ? std::abs(geweke->z_score) : -1.0;
    table.AddRow({std::to_string(seed), FormatDouble(trace.back(), 1),
                  FormatDouble(z, 2),
                  ess.ok() ? FormatDouble(*ess, 1) : "-",
                  z >= 0.0 && z < 2.0 ? "converged" : "check"});
    post_burnin_chains.push_back(std::move(post));
  }
  std::printf("%s", table.ToString().c_str());

  auto rhat = eval::PotentialScaleReduction(post_burnin_chains);
  if (rhat.ok()) {
    std::printf("Gelman-Rubin R-hat over the 3 chains: %.3f "
                "(near 1.0 = chains agree)\n",
                *rhat);
  }
  std::printf(
      "note: LL traces of different random initializations can settle on "
      "different mode labellings; R-hat on the LL is a necessary, not "
      "sufficient, check\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
