// Reproduces the paper's Figure 3: within the topic assigned to Bavarois /
// Milk jelly, recipes are ranked by KL divergence of emulsion
// concentrations to the dish and binned; each bin counts texture terms on
// the hard/soft poles (a) and the elastic/crumbly poles (b).
//
// Expected shape (paper Section V.B): the nearest bins are richer in hard
// terms for both dishes; elastic terms concentrate near Bavarois (high
// measured cohesiveness 0.809) far more than near Milk jelly (0.27).

#include <cstdio>

#include "eval/dish_analysis.h"
#include "eval/experiment.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

void PrintHistogram(const eval::DishAnalysis& analysis) {
  std::printf("--- %s (assigned topic %d, %zu recipes in topic) ---\n",
              analysis.dish_name.c_str(), analysis.assigned_topic,
              analysis.ranked.size());
  TablePrinter table({"KL bin", "KL range", "#Recipes", "hard", "soft",
                      "elastic", "crumbly"});
  for (size_t b = 0; b < analysis.fig3_bins.size(); ++b) {
    const auto& bin = analysis.fig3_bins[b];
    table.AddRow({std::to_string(b),
                  FormatDouble(bin.kl_lo, 3) + " - " +
                      FormatDouble(bin.kl_hi, 3),
                  std::to_string(bin.recipes), std::to_string(bin.counts.hard),
                  std::to_string(bin.counts.soft),
                  std::to_string(bin.counts.elastic),
                  std::to_string(bin.counts.crumbly)});
  }
  std::printf("%s", table.ToString().c_str());
  // Aggregate near vs far shape summary.
  size_t half = analysis.fig3_bins.size() / 2;
  int near_hard = 0, far_hard = 0, near_elastic = 0, far_elastic = 0;
  int near_terms = 0, far_terms = 0;
  for (size_t b = 0; b < analysis.fig3_bins.size(); ++b) {
    const auto& c = analysis.fig3_bins[b].counts;
    if (b < half) {
      near_hard += c.hard;
      near_elastic += c.elastic;
      near_terms += c.total;
    } else {
      far_hard += c.hard;
      far_elastic += c.elastic;
      far_terms += c.total;
    }
  }
  auto rate = [](int count, int total) {
    return total > 0 ? static_cast<double>(count) / total : 0.0;
  };
  std::printf(
      "near-half hard-term rate %.3f vs far-half %.3f; "
      "near-half elastic rate %.3f vs far-half %.3f\n\n",
      rate(near_hard, near_terms), rate(far_hard, far_terms),
      rate(near_elastic, near_terms), rate(far_elastic, far_terms));
}

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_fig3: term-category histograms by emulsion-KL rank (paper Fig. 3).\nflags: --scale <f> (default 0.25) --bins <n> (default 6)\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.25).value_or(0.25);
  int bins = static_cast<int>(flags.GetInt("bins", 6).value_or(6));
  SetLogLevel(LogLevel::kWarning);

  auto result_or =
      eval::RunJointExperiment(eval::DefaultExperimentConfig(scale));
  if (!result_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Fig. 3: recipes binned by emulsion-KL similarity to each dish "
      "===\n\n");
  for (const auto& dish : rheology::TableIIb()) {
    auto analysis = eval::AnalyzeDish(result_or.value(), dish, bins);
    if (!analysis.ok()) {
      std::fprintf(stderr, "dish analysis failed: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    PrintHistogram(analysis.value());
  }
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
