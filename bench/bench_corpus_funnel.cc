// Reproduces the paper's Section IV.A data funnel at full scale:
// 63,000 crawled gel recipes (45k gelatin / 15k kanten / 3k agar)
//   -> ~10,000 whose descriptions carry dictionary texture terms
//   -> ~3,000 after excluding recipes >10% unrelated ingredients,
// observing 41 of the 288 dictionary terms.

#include <cstdio>
#include <map>

#include "corpus/generator.h"
#include "recipe/dataset.h"
#include "text/tokenizer.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_corpus_funnel: Section IV.A data funnel at full scale.\nflags: --recipes <n> (default 63000)\n");
    return 0;
  }
  size_t n = static_cast<size_t>(flags.GetInt("recipes", 63000).value_or(63000));

  corpus::CorpusGenConfig config;
  config.num_recipes = n;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();

  // Gel split.
  std::map<std::string, int> by_gel;
  for (const auto& r : recipes) {
    std::string label = r.metadata.at(corpus::kMetaGelLabel);
    std::string bucket = label.find("agar") != std::string::npos ? "agar"
                         : label.find("kanten") != std::string::npos
                             ? "kanten"
                             : "gelatin";
    ++by_gel[bucket];
  }

  auto dataset_or = recipe::BuildDataset(
      recipes, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded(), nullptr, recipe::DatasetConfig());
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  const auto& funnel = dataset_or->funnel;

  std::printf("=== Section IV.A data funnel (synthetic Cookpad) ===\n");
  TablePrinter split({"Gel", "#Recipes (sim)", "#Recipes (paper)"});
  double ratio = static_cast<double>(n) / 63000.0;
  split.AddRow({"gelatin", std::to_string(by_gel["gelatin"]),
                FormatDouble(45000 * ratio, 0)});
  split.AddRow({"kanten", std::to_string(by_gel["kanten"]),
                FormatDouble(15000 * ratio, 0)});
  split.AddRow({"agar", std::to_string(by_gel["agar"]),
                FormatDouble(3000 * ratio, 0)});
  std::printf("%s\n", split.ToString().c_str());

  TablePrinter stages({"Funnel stage", "Sim", "Paper (at 63k)"});
  stages.AddRow({"posted gel recipes", std::to_string(funnel.total),
                 FormatDouble(63000 * ratio, 0)});
  stages.AddRow({"with texture terms",
                 std::to_string(funnel.with_texture_terms),
                 "~" + FormatDouble(10000 * ratio, 0)});
  stages.AddRow({"<=10% unrelated ingredients",
                 std::to_string(funnel.final_dataset),
                 "~" + FormatDouble(3000 * ratio, 0)});
  stages.AddRow({"distinct texture terms",
                 std::to_string(funnel.distinct_terms), "41 (of 288)"});
  std::printf("%s", stages.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
