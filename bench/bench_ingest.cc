// Streaming-ingestion SLO benchmark: an in-process IngestService in front
// of a 3-engine "fleet" (the reload callback walks the replicas the way
// the router's ROLLING_RELOAD does).
//
// Two numbers matter and both are measured here:
//   - arrival -> queryable latency: wall time from calling Ingest() to the
//     recipe's content answering a PREDICT against the live snapshot (WAL
//     append + fsync + content-key dedup + eq.-5 fold-in + query).
//   - refresh-window availability: a fixed-cadence query stream runs
//     across a full refresh cycle (retrain over base + streamed records,
//     pack, verify, rolling reload of all three replicas, WAL compaction);
//     availability is the fraction of queries answered OK. Scheduled
//     arrivals, so a stalled swap shows up as failures, not as silence.
//
// Writes bench/out/ingest.json. ci.sh --bench gates on:
//   - refresh_window.availability >= 0.99
//   - refresh_window.fingerprint_changed == true (the refresh was real)
//
// Flags: --records <n> (default 200) --qps <n> (default 1000)
//        --out <path> (default bench/out/ingest.json)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/record.h"
#include "ingest/service.h"
#include "math/distributions.h"
#include "recipe/dataset.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/json.h"

namespace texrheo {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

math::Gaussian BenchGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  return *g;
}

core::ModelSnapshot BenchModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.vocab.Add("fuwafuwa");
  model.estimates.phi = {{0.8, 0.1, 0.1}, {0.1, 0.45, 0.45}};
  model.estimates.gel_topics = {BenchGaussian(2.0, 3), BenchGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {BenchGaussian(1.0, 6),
                                     BenchGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {16, 16};
  return model;
}

recipe::Dataset BenchCorpus() {
  recipe::Dataset ds;
  ds.term_vocab.Add("katai");
  ds.term_vocab.Add("purupuru");
  ds.term_vocab.Add("fuwafuwa");
  for (int i = 0; i < 32; ++i) {
    recipe::Document doc;
    doc.recipe_index = static_cast<size_t>(i);
    doc.term_ids = i % 2 == 0 ? std::vector<int32_t>{0, 0}
                              : std::vector<int32_t>{1, 2};
    doc.gel_feature = math::Vector(3, i % 2 == 0 ? 2.0 : 6.0);
    doc.gel_concentration = math::Vector(3, 0.01);
    doc.emulsion_feature = math::Vector(6, 1.0 + 0.2 * (i % 4));
    doc.emulsion_concentration = math::Vector(6, 0.1 + 0.05 * (i % 4));
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

ingest::IngestRecord StreamedRecord(int i) {
  ingest::IngestRecord record;
  record.gel = math::Vector(3);
  record.gel[0] = 0.008 + 1e-5 * i;
  record.emulsion = math::Vector(6, 0.1 + 0.01 * (i % 5));
  record.terms = {i % 2 == 0 ? "katai" : "purupuru"};
  return record;
}

int64_t Percentile(const std::vector<int64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  size_t index =
      static_cast<size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "bench_ingest: arrival->queryable latency and refresh-window "
        "availability of the streaming ingestion tier.\n"
        "flags: --records <n> (default 200) --qps <n> (default 1000) "
        "--out <path>\n");
    return 0;
  }
  const int records =
      static_cast<int>(flags.GetInt("records", 200).value_or(200));
  const int qps = static_cast<int>(flags.GetInt("qps", 1000).value_or(1000));
  const std::string out_path =
      flags.GetString("out", "bench/out/ingest.json");
  const char* tmp = std::getenv("TMPDIR");
  const std::string data_dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                               "/texrheo_bench_ingest." +
                               std::to_string(::getpid());
  std::filesystem::remove_all(data_dir);
  std::filesystem::create_directories(data_dir);

  // --- The fleet: three engines over the same base snapshot. -----------
  auto snapshot_or =
      serve::ServingSnapshot::FromModel(BenchModel(), "bench_ingest");
  if (!snapshot_or.ok()) {
    std::fprintf(stderr, "snapshot: %s\n",
                 snapshot_or.status().ToString().c_str());
    return 1;
  }
  constexpr int kReplicas = 3;
  std::vector<recipe::Dataset> corpora;
  std::vector<std::unique_ptr<serve::QueryEngine>> fleet;
  corpora.reserve(kReplicas);
  for (int i = 0; i < kReplicas; ++i) corpora.push_back(BenchCorpus());
  for (int i = 0; i < kReplicas; ++i) {
    serve::QueryEngineConfig config;
    config.fold_in_sweeps = 10;
    config.batch_linger_micros = 0;
    auto engine =
        serve::QueryEngine::Create(config, *snapshot_or, &corpora[i]);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine %d: %s\n", i,
                   engine.status().ToString().c_str());
      return 1;
    }
    fleet.push_back(std::move(engine).value());
  }

  ingest::IngestServiceConfig config;
  config.wal_dir = data_dir + "/wal";
  config.refresh.train.num_topics = 2;
  config.refresh.train.alpha = 0.5;
  config.refresh.train.gamma = 0.5;
  config.refresh.train.burn_in_sweeps = 5;
  config.refresh.train.sweeps = 15;
  config.refresh.train.seed = 77;
  config.refresh.refresh_sweeps = 10;
  config.refresh.model_dir = data_dir + "/models";
  auto service_or = ingest::IngestService::Create(config, fleet[0].get(),
                                                  &corpora[0]);
  if (!service_or.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ingest::IngestService> service =
      std::move(service_or).value();
  if (Status recovered = service->Recover(); !recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n", recovered.ToString().c_str());
    return 1;
  }
  service->SetReloadCallback([&](const std::string& path) -> Status {
    for (auto& replica : fleet) {  // The rolling reload, replica by replica.
      TEXRHEO_RETURN_IF_ERROR(replica->ReloadFromFile(path));
    }
    return Status::OK();
  });

  // --- Phase 1: arrival -> queryable. ----------------------------------
  std::vector<int64_t> latencies_us;
  latencies_us.reserve(static_cast<size_t>(records));
  for (int i = 0; i < records; ++i) {
    ingest::IngestRecord record = StreamedRecord(i);
    serve::TextureQuery query = ingest::RecordToQuery(record);
    const auto t0 = steady_clock::now();
    auto acked = service->Ingest(record);
    if (!acked.ok()) {
      std::fprintf(stderr, "ingest %d: %s\n", i,
                   acked.status().ToString().c_str());
      return 1;
    }
    auto answered = fleet[0]->PredictTexture(query);
    if (!answered.ok()) {
      std::fprintf(stderr, "post-ingest query %d: %s\n", i,
                   answered.status().ToString().c_str());
      return 1;
    }
    latencies_us.push_back(
        duration_cast<microseconds>(steady_clock::now() - t0).count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  int64_t sum_us = 0;
  for (int64_t v : latencies_us) sum_us += v;

  // --- Phase 2: availability across a refresh cycle. -------------------
  // Fixed-cadence queries round-robin over the fleet while the refresh
  // retrains, packs, and rolls all three replicas; the stream keeps going
  // for at least a full second so the window brackets the swap.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> window_queries{0};
  std::atomic<int64_t> window_failures{0};
  std::thread load([&] {
    serve::TextureQuery query;
    query.gel_concentration = math::Vector(3, 0.01);
    query.texture_terms = {"katai"};
    const auto start = steady_clock::now();
    const auto period = microseconds(1000000 / std::max(1, qps));
    int64_t tick = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      serve::QueryEngine* engine =
          fleet[static_cast<size_t>(tick % kReplicas)].get();
      if (!engine->PredictTexture(query).ok()) {
        window_failures.fetch_add(1, std::memory_order_relaxed);
      }
      window_queries.fetch_add(1, std::memory_order_relaxed);
      ++tick;
      std::this_thread::sleep_until(start + period * tick);
    }
  });

  const uint32_t fingerprint_before = fleet[0]->snapshot()->fingerprint();
  const auto refresh_t0 = steady_clock::now();
  auto outcome = service->RefreshWithRetry();
  const int64_t refresh_ms =
      duration_cast<milliseconds>(steady_clock::now() - refresh_t0).count();
  std::this_thread::sleep_until(refresh_t0 + milliseconds(1000));
  stop = true;
  load.join();
  if (!outcome.ok()) {
    std::fprintf(stderr, "refresh: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  bool converged = true;
  for (auto& replica : fleet) {
    converged &=
        replica->snapshot()->fingerprint() == outcome->fingerprint;
  }
  const double availability =
      window_queries.load() == 0
          ? 0.0
          : 1.0 - static_cast<double>(window_failures.load()) /
                      static_cast<double>(window_queries.load());

  JsonValue root = JsonValue::MakeObject();
  JsonValue ingest_obj = JsonValue::MakeObject();
  ingest_obj.AsObject()["records"] =
      JsonValue::Number(static_cast<double>(records));
  ingest_obj.AsObject()["p50_us"] =
      JsonValue::Number(static_cast<double>(Percentile(latencies_us, 0.5)));
  ingest_obj.AsObject()["p99_us"] =
      JsonValue::Number(static_cast<double>(Percentile(latencies_us, 0.99)));
  ingest_obj.AsObject()["mean_us"] = JsonValue::Number(
      latencies_us.empty()
          ? 0.0
          : static_cast<double>(sum_us) /
                static_cast<double>(latencies_us.size()));
  root.AsObject()["ingest"] = std::move(ingest_obj);
  JsonValue window = JsonValue::MakeObject();
  window.AsObject()["queries"] =
      JsonValue::Number(static_cast<double>(window_queries.load()));
  window.AsObject()["failed"] =
      JsonValue::Number(static_cast<double>(window_failures.load()));
  window.AsObject()["availability"] = JsonValue::Number(availability);
  window.AsObject()["refresh_millis"] =
      JsonValue::Number(static_cast<double>(refresh_ms));
  window.AsObject()["fingerprint_changed"] =
      JsonValue::Bool(outcome->fingerprint != fingerprint_before);
  window.AsObject()["fleet_converged"] = JsonValue::Bool(converged);
  window.AsObject()["trained_documents"] =
      JsonValue::Number(static_cast<double>(outcome->trained_documents));
  root.AsObject()["refresh_window"] = std::move(window);

  const size_t slash = out_path.rfind('/');
  if (slash != std::string::npos) {
    std::filesystem::create_directories(out_path.substr(0, slash));
  }
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string json = root.Serialize();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fputc('\n', out);
  std::fclose(out);

  std::printf(
      "bench_ingest: %d records | arrival->queryable p50=%lldus "
      "p99=%lldus | refresh %lldms over %d docs | window %lld queries "
      "%lld failed (availability %.4f, converged=%d)\n",
      records,
      static_cast<long long>(Percentile(latencies_us, 0.5)),
      static_cast<long long>(Percentile(latencies_us, 0.99)),
      static_cast<long long>(refresh_ms),
      static_cast<int>(outcome->trained_documents),
      static_cast<long long>(window_queries.load()),
      static_cast<long long>(window_failures.load()), availability,
      converged ? 1 : 0);

  std::filesystem::remove_all(data_dir);
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
