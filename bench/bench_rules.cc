// The paper's stated future work (Section VI): "detect rules bridging
// between recipe information including ingredient concentrations, cooking
// steps etc., and sensory textures of consumers."
//
// This bench implements that bridge: recipes are encoded as transactions
// over (gel, concentration bin, emulsions, cooking steps, texture poles)
// and Apriori mines association rules with texture consequents. The
// generator plants real step effects (boiling degrades gelatin, whipping
// raises springiness, quick chilling reduces stickiness), so the expected
// shape is that those rules surface with high lift.

#include <algorithm>
#include <cstdio>

#include "corpus/generator.h"
#include "rules/transactions.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_rules: Apriori texture rules (paper Section VI future work).\nflags: --recipes <n> (default 40000) --min-support <f> --min-confidence <f>\n");
    return 0;
  }
  size_t n =
      static_cast<size_t>(flags.GetInt("recipes", 40000).value_or(40000));
  double min_support = flags.GetDouble("min-support", 0.002).value_or(0.002);
  double min_confidence =
      flags.GetDouble("min-confidence", 0.30).value_or(0.30);

  corpus::CorpusGenConfig config;
  config.num_recipes = n;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();

  rules::TransactionBuilder builder;
  std::vector<rules::Transaction> transactions = builder.EncodeCorpus(
      recipes, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded());
  // Texture rules are conditional on the poster describing texture at all
  // (~16% of recipes); keep only transactions with a texture item.
  {
    std::vector<int32_t> texture_items = builder.TextureItemIds();
    std::vector<rules::Transaction> with_texture;
    for (auto& t : transactions) {
      bool has = false;
      for (int32_t item : texture_items) {
        if (std::binary_search(t.begin(), t.end(), item)) has = true;
      }
      if (has) with_texture.push_back(std::move(t));
    }
    transactions = std::move(with_texture);
  }
  std::printf("=== Rule mining (paper Section VI future work) ===\n");
  std::printf("%zu recipes -> %zu transactions over %zu distinct items\n\n",
              recipes.size(), transactions.size(), builder.num_items());

  rules::AprioriConfig apriori;
  apriori.min_support = min_support;
  apriori.min_confidence = min_confidence;
  apriori.min_lift = 1.2;
  apriori.max_itemset_size = 3;
  apriori.consequent_whitelist = builder.TextureItemIds();
  // Texture items may only appear as consequents: we want
  // "recipe info -> texture", not texture-texture tautologies.
  apriori.antecedent_blacklist = builder.TextureItemIds();

  auto rules_or = rules::Apriori::MineRules(transactions, apriori);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 rules_or.status().ToString().c_str());
    return 1;
  }
  std::printf("top texture rules by lift:\n");
  size_t shown = 0;
  for (const auto& rule : rules_or.value()) {
    if (shown++ >= 25) break;
    std::printf("  %s\n", rules::FormatRule(rule, builder).c_str());
  }
  std::printf("\n%zu rules total; planted effects to look for:\n",
              rules_or->size());
  std::printf("  gel=gelatin & step=boil -> texture=soft (boil degrades "
              "gelatin)\n");
  std::printf("  step=whip -> texture=elastic (aeration)\n");
  std::printf("  gel_conc=high & gel=gelatin -> texture=sticky\n");
  std::printf("  gel=kanten -> texture=hard / texture=crumbly\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
