// Model selection / generalization study (an evaluation the paper leaves
// out): sweep the topic count K and compare samplers on held-out data.
//
// The reported metric is the paper's end task made quantitative - predict a
// held-out recipe's texture terms from its concentration vectors alone
// (concentration-conditional perplexity; lower is better). The unigram
// perplexity line shows how much concentration information helps at all.

#include <cstdio>

#include "core/collapsed_sampler.h"
#include "eval/experiment.h"
#include "eval/coherence.h"
#include "eval/heldout.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace texrheo {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "bench_model_selection: held-out perplexity and coherence vs K.\nflags: --scale <f> (default 0.2)\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.2).value_or(0.2);
  SetLogLevel(LogLevel::kWarning);

  // Build one corpus + dataset, then split once so every K sees the same
  // train/test partition.
  eval::ExperimentConfig base = eval::DefaultExperimentConfig(scale);
  corpus::CorpusGenerator generator(
      base.corpus, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();
  auto dataset_or = recipe::BuildDataset(
      recipes, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded(), nullptr, base.dataset);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  eval::HeldOutSplit split =
      eval::SplitDataset(dataset_or.value(), 0.2, /*seed=*/99);
  std::printf("=== Model selection: held-out texture-term prediction ===\n");
  std::printf("train %zu docs, test %zu docs\n\n",
              split.train.documents.size(), split.test.documents.size());

  auto unigram = eval::UnigramPerplexity(split.train, split.test);

  TablePrinter table({"K", "Perplexity (paper sampler)",
                      "Perplexity (collapsed)", "Unigram reference",
                      "UMass coherence"});
  for (int k : {2, 5, 8, 10, 14, 20}) {
    core::JointTopicModelConfig config = base.model;
    config.num_topics = k;

    std::string vanilla_cell = "-", collapsed_cell = "-",
                coherence_cell = "-";
    {
      auto model = core::JointTopicModel::Create(config, &split.train);
      if (model.ok() && model->Train().ok()) {
        core::TopicEstimates est = model->Estimate();
        auto ppl = eval::ConcentrationConditionalPerplexity(
            est, model->config(), split.test);
        if (ppl.ok()) vanilla_cell = FormatDouble(*ppl, 2);
        auto coherence = eval::ComputeUMassCoherence(est.phi, split.train);
        if (coherence.ok()) {
          coherence_cell = FormatDouble(coherence->mean, 1);
        }
      }
    }
    {
      auto model =
          core::CollapsedJointTopicModel::Create(config, &split.train);
      if (model.ok() && model->Train().ok()) {
        auto est = model->Estimate();
        if (est.ok()) {
          auto ppl = eval::ConcentrationConditionalPerplexity(
              est.value(), config, split.test);
          if (ppl.ok()) collapsed_cell = FormatDouble(*ppl, 2);
        }
      }
    }
    table.AddRow({std::to_string(k), vanilla_cell, collapsed_cell,
                  unigram.ok() ? FormatDouble(*unigram, 2) : "-",
                  coherence_cell});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "expected shape: perplexity well below the unigram reference (the "
      "concentrations predict the vocabulary), improving up to around the "
      "number of distinct dish families, then flattening\n");
  return 0;
}

}  // namespace
}  // namespace texrheo

int main(int argc, char** argv) { return texrheo::Run(argc, argv); }
