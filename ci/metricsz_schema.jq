# Validates a METRICSZ document (the bare-JSON line served by the
# `METRICSZ` command and the file written by --metrics-dir) against the
# stable schema contract. Run as:
#
#   jq -e -f ci/metricsz_schema.jq metricsz.json
#
# jq -e exits nonzero when the final expression is false, which is how
# ci.sh turns a schema drift into a red build. Keep this file in sync with
# MetricsSnapshot::ToJson and the "Observability" section of README.md.

def is_num_map: type == "object" and (to_entries | all(.value | type == "number"));

def valid_histogram:
  type == "object"
  and ([.count, .sum_us, .max_us, .mean_us, .p50_us, .p95_us, .p99_us]
       | all(type == "number"));

(.schema_version == 1)
and (.counters | is_num_map)
and (.gauges | is_num_map)
and (.histograms | type == "object")
and (.histograms | to_entries | all(.value | valid_histogram))
and (.model | type == "object")
and (.model.fingerprint | type == "string" and length == 8)
and (.model.topics | type == "number" and . >= 1)
and (.model.vocab | type == "number" and . >= 1)
and (.model.source | type == "string")
# Pipeline monotonicity: one atomic snapshot must never show a downstream
# counter ahead of its upstream.
and (.counters["serve.queries.accepted"] >= .counters["serve.queries.completed"])
# Per-mode SIMILAR counters: all four backends are registered up front,
# and the mode counters increment after accepted (registration order), so
# a snapshot can never show sum(modes) > accepted.
and (.counters | has("serve.similar.mode.kl"))
and (.counters | has("serve.similar.mode.embed"))
and (.counters | has("serve.similar.mode.lexical"))
and (.counters | has("serve.similar.mode.fused"))
and (.counters["serve.queries.accepted"]
     >= (.counters["serve.similar.mode.kl"]
         + .counters["serve.similar.mode.embed"]
         + .counters["serve.similar.mode.lexical"]
         + .counters["serve.similar.mode.fused"]))
and (.counters["serve.server.requests_received"] >= .counters["serve.server.requests_completed"])
and (.counters["serve.batcher.submitted"] >= .counters["serve.batcher.jobs_processed"])
# Reload-breaker transition counters (util/backoff.h listeners; see the
# ServerStats doc in serve/server.h). They register only when the server
# fronts an engine directly (texrheo_serve); a handler-mode front
# (texrheo_ingest) has no reload breaker, so the trio is all-or-none.
# When present, the state machine's arithmetic: every recovery concluded
# an admitted trial, every trial followed a trip.
and (if (.counters | has("serve.breaker.trips")) then
  (.counters | has("serve.breaker.half_open_trials"))
  and (.counters | has("serve.breaker.recoveries"))
  and (.counters["serve.breaker.trips"] >= .counters["serve.breaker.half_open_trials"])
  and (.counters["serve.breaker.half_open_trials"] >= .counters["serve.breaker.recoveries"])
else
  ((.counters | has("serve.breaker.half_open_trials")) | not)
  and ((.counters | has("serve.breaker.recoveries")) | not)
end)
# The stale-vocab contract: the engine registers the counter up front, so
# every snapshot carries it even before the first pending-term query.
and (.counters | has("serve.queries.stale_vocab"))
# Streaming ingestion (present only when an IngestService shares the
# registry, i.e. texrheo_ingest rather than texrheo_serve). Counters
# register in pipeline order — accepted before deduped before folded —
# so one atomic snapshot can never show a downstream stage ahead of its
# upstream; same for the refresh attempt/outcome chain.
and (if (.counters | has("ingest.records.accepted")) then
  (.counters["ingest.records.accepted"] >= .counters["ingest.records.deduped"])
  and (.counters["ingest.records.deduped"] >= .counters["ingest.records.folded"])
  and (.counters["ingest.refresh.attempts"] >= .counters["ingest.refresh.success"])
  and (.counters["ingest.refresh.attempts"] >= .counters["ingest.refresh.failures"])
else true end)
