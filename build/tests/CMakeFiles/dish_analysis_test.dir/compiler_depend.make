# Empty compiler generated dependencies file for dish_analysis_test.
# This may be replaced when dependencies are built.
