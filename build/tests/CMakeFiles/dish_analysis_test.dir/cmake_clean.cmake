file(REMOVE_RECURSE
  "CMakeFiles/dish_analysis_test.dir/dish_analysis_test.cc.o"
  "CMakeFiles/dish_analysis_test.dir/dish_analysis_test.cc.o.d"
  "dish_analysis_test"
  "dish_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dish_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
