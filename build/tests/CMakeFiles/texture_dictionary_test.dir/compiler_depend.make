# Empty compiler generated dependencies file for texture_dictionary_test.
# This may be replaced when dependencies are built.
