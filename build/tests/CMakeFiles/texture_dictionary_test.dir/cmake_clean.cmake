file(REMOVE_RECURSE
  "CMakeFiles/texture_dictionary_test.dir/texture_dictionary_test.cc.o"
  "CMakeFiles/texture_dictionary_test.dir/texture_dictionary_test.cc.o.d"
  "texture_dictionary_test"
  "texture_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texture_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
