# Empty compiler generated dependencies file for lda_baseline_test.
# This may be replaced when dependencies are built.
