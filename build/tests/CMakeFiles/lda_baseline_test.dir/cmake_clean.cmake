file(REMOVE_RECURSE
  "CMakeFiles/lda_baseline_test.dir/lda_baseline_test.cc.o"
  "CMakeFiles/lda_baseline_test.dir/lda_baseline_test.cc.o.d"
  "lda_baseline_test"
  "lda_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lda_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
