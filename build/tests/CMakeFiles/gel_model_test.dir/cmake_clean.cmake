file(REMOVE_RECURSE
  "CMakeFiles/gel_model_test.dir/gel_model_test.cc.o"
  "CMakeFiles/gel_model_test.dir/gel_model_test.cc.o.d"
  "gel_model_test"
  "gel_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gel_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
