# Empty compiler generated dependencies file for gel_model_test.
# This may be replaced when dependencies are built.
