file(REMOVE_RECURSE
  "CMakeFiles/collapsed_sampler_test.dir/collapsed_sampler_test.cc.o"
  "CMakeFiles/collapsed_sampler_test.dir/collapsed_sampler_test.cc.o.d"
  "collapsed_sampler_test"
  "collapsed_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapsed_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
