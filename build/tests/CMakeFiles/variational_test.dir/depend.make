# Empty dependencies file for variational_test.
# This may be replaced when dependencies are built.
