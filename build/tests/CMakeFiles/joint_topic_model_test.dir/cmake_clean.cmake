file(REMOVE_RECURSE
  "CMakeFiles/joint_topic_model_test.dir/joint_topic_model_test.cc.o"
  "CMakeFiles/joint_topic_model_test.dir/joint_topic_model_test.cc.o.d"
  "joint_topic_model_test"
  "joint_topic_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_topic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
