# Empty dependencies file for joint_topic_model_test.
# This may be replaced when dependencies are built.
