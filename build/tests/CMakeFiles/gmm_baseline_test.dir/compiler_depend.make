# Empty compiler generated dependencies file for gmm_baseline_test.
# This may be replaced when dependencies are built.
