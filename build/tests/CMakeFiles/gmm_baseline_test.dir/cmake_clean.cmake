file(REMOVE_RECURSE
  "CMakeFiles/gmm_baseline_test.dir/gmm_baseline_test.cc.o"
  "CMakeFiles/gmm_baseline_test.dir/gmm_baseline_test.cc.o.d"
  "gmm_baseline_test"
  "gmm_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmm_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
