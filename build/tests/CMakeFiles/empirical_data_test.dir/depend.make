# Empty dependencies file for empirical_data_test.
# This may be replaced when dependencies are built.
