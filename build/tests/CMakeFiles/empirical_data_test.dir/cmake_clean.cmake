file(REMOVE_RECURSE
  "CMakeFiles/empirical_data_test.dir/empirical_data_test.cc.o"
  "CMakeFiles/empirical_data_test.dir/empirical_data_test.cc.o.d"
  "empirical_data_test"
  "empirical_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
