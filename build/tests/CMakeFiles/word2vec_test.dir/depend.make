# Empty dependencies file for word2vec_test.
# This may be replaced when dependencies are built.
