file(REMOVE_RECURSE
  "CMakeFiles/word2vec_test.dir/word2vec_test.cc.o"
  "CMakeFiles/word2vec_test.dir/word2vec_test.cc.o.d"
  "word2vec_test"
  "word2vec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word2vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
