file(REMOVE_RECURSE
  "CMakeFiles/heldout_test.dir/heldout_test.cc.o"
  "CMakeFiles/heldout_test.dir/heldout_test.cc.o.d"
  "heldout_test"
  "heldout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heldout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
