# Empty compiler generated dependencies file for heldout_test.
# This may be replaced when dependencies are built.
