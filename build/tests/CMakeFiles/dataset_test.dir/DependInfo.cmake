
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dataset_test.cc" "tests/CMakeFiles/dataset_test.dir/dataset_test.cc.o" "gcc" "tests/CMakeFiles/dataset_test.dir/dataset_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/texrheo_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/texrheo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/texrheo_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/texrheo_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/rheology/CMakeFiles/texrheo_rheology.dir/DependInfo.cmake"
  "/root/repo/build/src/recipe/CMakeFiles/texrheo_recipe.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/texrheo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/texrheo_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/texrheo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
