file(REMOVE_RECURSE
  "CMakeFiles/ingredient_test.dir/ingredient_test.cc.o"
  "CMakeFiles/ingredient_test.dir/ingredient_test.cc.o.d"
  "ingredient_test"
  "ingredient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingredient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
