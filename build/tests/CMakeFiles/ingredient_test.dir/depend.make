# Empty dependencies file for ingredient_test.
# This may be replaced when dependencies are built.
