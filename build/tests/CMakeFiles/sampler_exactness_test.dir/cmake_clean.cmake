file(REMOVE_RECURSE
  "CMakeFiles/sampler_exactness_test.dir/sampler_exactness_test.cc.o"
  "CMakeFiles/sampler_exactness_test.dir/sampler_exactness_test.cc.o.d"
  "sampler_exactness_test"
  "sampler_exactness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_exactness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
