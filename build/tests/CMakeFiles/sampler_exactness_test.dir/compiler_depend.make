# Empty compiler generated dependencies file for sampler_exactness_test.
# This may be replaced when dependencies are built.
