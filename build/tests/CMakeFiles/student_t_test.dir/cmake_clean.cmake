file(REMOVE_RECURSE
  "CMakeFiles/student_t_test.dir/student_t_test.cc.o"
  "CMakeFiles/student_t_test.dir/student_t_test.cc.o.d"
  "student_t_test"
  "student_t_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/student_t_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
