# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for student_t_test.
