# Empty dependencies file for student_t_test.
# This may be replaced when dependencies are built.
