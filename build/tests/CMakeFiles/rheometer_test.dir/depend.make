# Empty dependencies file for rheometer_test.
# This may be replaced when dependencies are built.
