file(REMOVE_RECURSE
  "CMakeFiles/rheometer_test.dir/rheometer_test.cc.o"
  "CMakeFiles/rheometer_test.dir/rheometer_test.cc.o.d"
  "rheometer_test"
  "rheometer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rheometer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
