file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_curve.dir/bench/bench_fig2_curve.cc.o"
  "CMakeFiles/bench_fig2_curve.dir/bench/bench_fig2_curve.cc.o.d"
  "bench/bench_fig2_curve"
  "bench/bench_fig2_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
