file(REMOVE_RECURSE
  "CMakeFiles/bench_table2b.dir/bench/bench_table2b.cc.o"
  "CMakeFiles/bench_table2b.dir/bench/bench_table2b.cc.o.d"
  "bench/bench_table2b"
  "bench/bench_table2b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
