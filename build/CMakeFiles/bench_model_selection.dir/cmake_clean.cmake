file(REMOVE_RECURSE
  "CMakeFiles/bench_model_selection.dir/bench/bench_model_selection.cc.o"
  "CMakeFiles/bench_model_selection.dir/bench/bench_model_selection.cc.o.d"
  "bench/bench_model_selection"
  "bench/bench_model_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
