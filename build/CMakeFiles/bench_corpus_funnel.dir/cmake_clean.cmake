file(REMOVE_RECURSE
  "CMakeFiles/bench_corpus_funnel.dir/bench/bench_corpus_funnel.cc.o"
  "CMakeFiles/bench_corpus_funnel.dir/bench/bench_corpus_funnel.cc.o.d"
  "bench/bench_corpus_funnel"
  "bench/bench_corpus_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corpus_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
