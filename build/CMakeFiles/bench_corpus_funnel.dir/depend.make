# Empty dependencies file for bench_corpus_funnel.
# This may be replaced when dependencies are built.
