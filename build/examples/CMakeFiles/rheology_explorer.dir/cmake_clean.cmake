file(REMOVE_RECURSE
  "CMakeFiles/rheology_explorer.dir/rheology_explorer.cpp.o"
  "CMakeFiles/rheology_explorer.dir/rheology_explorer.cpp.o.d"
  "rheology_explorer"
  "rheology_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rheology_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
