# Empty compiler generated dependencies file for rheology_explorer.
# This may be replaced when dependencies are built.
