# Empty compiler generated dependencies file for texture_search.
# This may be replaced when dependencies are built.
