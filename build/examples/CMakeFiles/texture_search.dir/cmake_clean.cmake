file(REMOVE_RECURSE
  "CMakeFiles/texture_search.dir/texture_search.cpp.o"
  "CMakeFiles/texture_search.dir/texture_search.cpp.o.d"
  "texture_search"
  "texture_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texture_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
