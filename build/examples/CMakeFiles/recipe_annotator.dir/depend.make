# Empty dependencies file for recipe_annotator.
# This may be replaced when dependencies are built.
