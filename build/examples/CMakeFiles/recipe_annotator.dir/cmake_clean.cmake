file(REMOVE_RECURSE
  "CMakeFiles/recipe_annotator.dir/recipe_annotator.cpp.o"
  "CMakeFiles/recipe_annotator.dir/recipe_annotator.cpp.o.d"
  "recipe_annotator"
  "recipe_annotator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recipe_annotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
