# Empty compiler generated dependencies file for texrheo_rules.
# This may be replaced when dependencies are built.
