file(REMOVE_RECURSE
  "libtexrheo_rules.a"
)
