file(REMOVE_RECURSE
  "CMakeFiles/texrheo_rules.dir/apriori.cc.o"
  "CMakeFiles/texrheo_rules.dir/apriori.cc.o.d"
  "CMakeFiles/texrheo_rules.dir/transactions.cc.o"
  "CMakeFiles/texrheo_rules.dir/transactions.cc.o.d"
  "libtexrheo_rules.a"
  "libtexrheo_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
