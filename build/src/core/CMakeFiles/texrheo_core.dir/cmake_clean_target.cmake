file(REMOVE_RECURSE
  "libtexrheo_core.a"
)
