file(REMOVE_RECURSE
  "CMakeFiles/texrheo_core.dir/collapsed_sampler.cc.o"
  "CMakeFiles/texrheo_core.dir/collapsed_sampler.cc.o.d"
  "CMakeFiles/texrheo_core.dir/gmm_baseline.cc.o"
  "CMakeFiles/texrheo_core.dir/gmm_baseline.cc.o.d"
  "CMakeFiles/texrheo_core.dir/joint_topic_model.cc.o"
  "CMakeFiles/texrheo_core.dir/joint_topic_model.cc.o.d"
  "CMakeFiles/texrheo_core.dir/lda_baseline.cc.o"
  "CMakeFiles/texrheo_core.dir/lda_baseline.cc.o.d"
  "CMakeFiles/texrheo_core.dir/linkage.cc.o"
  "CMakeFiles/texrheo_core.dir/linkage.cc.o.d"
  "CMakeFiles/texrheo_core.dir/serialization.cc.o"
  "CMakeFiles/texrheo_core.dir/serialization.cc.o.d"
  "CMakeFiles/texrheo_core.dir/variational.cc.o"
  "CMakeFiles/texrheo_core.dir/variational.cc.o.d"
  "libtexrheo_core.a"
  "libtexrheo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
