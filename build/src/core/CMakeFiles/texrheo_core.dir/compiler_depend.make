# Empty compiler generated dependencies file for texrheo_core.
# This may be replaced when dependencies are built.
