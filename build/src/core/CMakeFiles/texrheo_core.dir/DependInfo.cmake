
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collapsed_sampler.cc" "src/core/CMakeFiles/texrheo_core.dir/collapsed_sampler.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/collapsed_sampler.cc.o.d"
  "/root/repo/src/core/gmm_baseline.cc" "src/core/CMakeFiles/texrheo_core.dir/gmm_baseline.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/gmm_baseline.cc.o.d"
  "/root/repo/src/core/joint_topic_model.cc" "src/core/CMakeFiles/texrheo_core.dir/joint_topic_model.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/joint_topic_model.cc.o.d"
  "/root/repo/src/core/lda_baseline.cc" "src/core/CMakeFiles/texrheo_core.dir/lda_baseline.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/lda_baseline.cc.o.d"
  "/root/repo/src/core/linkage.cc" "src/core/CMakeFiles/texrheo_core.dir/linkage.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/linkage.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/texrheo_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/serialization.cc.o.d"
  "/root/repo/src/core/variational.cc" "src/core/CMakeFiles/texrheo_core.dir/variational.cc.o" "gcc" "src/core/CMakeFiles/texrheo_core.dir/variational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/texrheo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/texrheo_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/texrheo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/recipe/CMakeFiles/texrheo_recipe.dir/DependInfo.cmake"
  "/root/repo/build/src/rheology/CMakeFiles/texrheo_rheology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
