file(REMOVE_RECURSE
  "libtexrheo_math.a"
)
