
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/alias_table.cc" "src/math/CMakeFiles/texrheo_math.dir/alias_table.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/alias_table.cc.o.d"
  "/root/repo/src/math/distributions.cc" "src/math/CMakeFiles/texrheo_math.dir/distributions.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/distributions.cc.o.d"
  "/root/repo/src/math/divergence.cc" "src/math/CMakeFiles/texrheo_math.dir/divergence.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/divergence.cc.o.d"
  "/root/repo/src/math/linalg.cc" "src/math/CMakeFiles/texrheo_math.dir/linalg.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/linalg.cc.o.d"
  "/root/repo/src/math/regression.cc" "src/math/CMakeFiles/texrheo_math.dir/regression.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/regression.cc.o.d"
  "/root/repo/src/math/running_stats.cc" "src/math/CMakeFiles/texrheo_math.dir/running_stats.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/running_stats.cc.o.d"
  "/root/repo/src/math/special.cc" "src/math/CMakeFiles/texrheo_math.dir/special.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/special.cc.o.d"
  "/root/repo/src/math/student_t.cc" "src/math/CMakeFiles/texrheo_math.dir/student_t.cc.o" "gcc" "src/math/CMakeFiles/texrheo_math.dir/student_t.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/texrheo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
