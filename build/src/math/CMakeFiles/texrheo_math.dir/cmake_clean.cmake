file(REMOVE_RECURSE
  "CMakeFiles/texrheo_math.dir/alias_table.cc.o"
  "CMakeFiles/texrheo_math.dir/alias_table.cc.o.d"
  "CMakeFiles/texrheo_math.dir/distributions.cc.o"
  "CMakeFiles/texrheo_math.dir/distributions.cc.o.d"
  "CMakeFiles/texrheo_math.dir/divergence.cc.o"
  "CMakeFiles/texrheo_math.dir/divergence.cc.o.d"
  "CMakeFiles/texrheo_math.dir/linalg.cc.o"
  "CMakeFiles/texrheo_math.dir/linalg.cc.o.d"
  "CMakeFiles/texrheo_math.dir/regression.cc.o"
  "CMakeFiles/texrheo_math.dir/regression.cc.o.d"
  "CMakeFiles/texrheo_math.dir/running_stats.cc.o"
  "CMakeFiles/texrheo_math.dir/running_stats.cc.o.d"
  "CMakeFiles/texrheo_math.dir/special.cc.o"
  "CMakeFiles/texrheo_math.dir/special.cc.o.d"
  "CMakeFiles/texrheo_math.dir/student_t.cc.o"
  "CMakeFiles/texrheo_math.dir/student_t.cc.o.d"
  "libtexrheo_math.a"
  "libtexrheo_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
