# Empty compiler generated dependencies file for texrheo_math.
# This may be replaced when dependencies are built.
