file(REMOVE_RECURSE
  "CMakeFiles/texrheo_eval.dir/coherence.cc.o"
  "CMakeFiles/texrheo_eval.dir/coherence.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/convergence.cc.o"
  "CMakeFiles/texrheo_eval.dir/convergence.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/dish_analysis.cc.o"
  "CMakeFiles/texrheo_eval.dir/dish_analysis.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/experiment.cc.o"
  "CMakeFiles/texrheo_eval.dir/experiment.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/figures.cc.o"
  "CMakeFiles/texrheo_eval.dir/figures.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/heldout.cc.o"
  "CMakeFiles/texrheo_eval.dir/heldout.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/metrics.cc.o"
  "CMakeFiles/texrheo_eval.dir/metrics.cc.o.d"
  "CMakeFiles/texrheo_eval.dir/validation.cc.o"
  "CMakeFiles/texrheo_eval.dir/validation.cc.o.d"
  "libtexrheo_eval.a"
  "libtexrheo_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
