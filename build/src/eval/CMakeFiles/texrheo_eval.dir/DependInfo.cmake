
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/coherence.cc" "src/eval/CMakeFiles/texrheo_eval.dir/coherence.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/coherence.cc.o.d"
  "/root/repo/src/eval/convergence.cc" "src/eval/CMakeFiles/texrheo_eval.dir/convergence.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/convergence.cc.o.d"
  "/root/repo/src/eval/dish_analysis.cc" "src/eval/CMakeFiles/texrheo_eval.dir/dish_analysis.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/dish_analysis.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/texrheo_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/figures.cc" "src/eval/CMakeFiles/texrheo_eval.dir/figures.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/figures.cc.o.d"
  "/root/repo/src/eval/heldout.cc" "src/eval/CMakeFiles/texrheo_eval.dir/heldout.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/heldout.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/texrheo_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/validation.cc" "src/eval/CMakeFiles/texrheo_eval.dir/validation.cc.o" "gcc" "src/eval/CMakeFiles/texrheo_eval.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/texrheo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/texrheo_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/texrheo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/recipe/CMakeFiles/texrheo_recipe.dir/DependInfo.cmake"
  "/root/repo/build/src/rheology/CMakeFiles/texrheo_rheology.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/texrheo_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/texrheo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
