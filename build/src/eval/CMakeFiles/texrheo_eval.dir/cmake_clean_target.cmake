file(REMOVE_RECURSE
  "libtexrheo_eval.a"
)
