# Empty dependencies file for texrheo_eval.
# This may be replaced when dependencies are built.
