# Empty compiler generated dependencies file for texrheo_rheology.
# This may be replaced when dependencies are built.
