file(REMOVE_RECURSE
  "CMakeFiles/texrheo_rheology.dir/empirical_data.cc.o"
  "CMakeFiles/texrheo_rheology.dir/empirical_data.cc.o.d"
  "CMakeFiles/texrheo_rheology.dir/gel_model.cc.o"
  "CMakeFiles/texrheo_rheology.dir/gel_model.cc.o.d"
  "CMakeFiles/texrheo_rheology.dir/rheometer.cc.o"
  "CMakeFiles/texrheo_rheology.dir/rheometer.cc.o.d"
  "libtexrheo_rheology.a"
  "libtexrheo_rheology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_rheology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
