file(REMOVE_RECURSE
  "libtexrheo_rheology.a"
)
