# Empty compiler generated dependencies file for texrheo_recipe.
# This may be replaced when dependencies are built.
