file(REMOVE_RECURSE
  "libtexrheo_recipe.a"
)
