
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recipe/dataset.cc" "src/recipe/CMakeFiles/texrheo_recipe.dir/dataset.cc.o" "gcc" "src/recipe/CMakeFiles/texrheo_recipe.dir/dataset.cc.o.d"
  "/root/repo/src/recipe/features.cc" "src/recipe/CMakeFiles/texrheo_recipe.dir/features.cc.o" "gcc" "src/recipe/CMakeFiles/texrheo_recipe.dir/features.cc.o.d"
  "/root/repo/src/recipe/ingredient.cc" "src/recipe/CMakeFiles/texrheo_recipe.dir/ingredient.cc.o" "gcc" "src/recipe/CMakeFiles/texrheo_recipe.dir/ingredient.cc.o.d"
  "/root/repo/src/recipe/recipe.cc" "src/recipe/CMakeFiles/texrheo_recipe.dir/recipe.cc.o" "gcc" "src/recipe/CMakeFiles/texrheo_recipe.dir/recipe.cc.o.d"
  "/root/repo/src/recipe/units.cc" "src/recipe/CMakeFiles/texrheo_recipe.dir/units.cc.o" "gcc" "src/recipe/CMakeFiles/texrheo_recipe.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/texrheo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/texrheo_math.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/texrheo_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
