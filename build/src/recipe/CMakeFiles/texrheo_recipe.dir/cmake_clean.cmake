file(REMOVE_RECURSE
  "CMakeFiles/texrheo_recipe.dir/dataset.cc.o"
  "CMakeFiles/texrheo_recipe.dir/dataset.cc.o.d"
  "CMakeFiles/texrheo_recipe.dir/features.cc.o"
  "CMakeFiles/texrheo_recipe.dir/features.cc.o.d"
  "CMakeFiles/texrheo_recipe.dir/ingredient.cc.o"
  "CMakeFiles/texrheo_recipe.dir/ingredient.cc.o.d"
  "CMakeFiles/texrheo_recipe.dir/recipe.cc.o"
  "CMakeFiles/texrheo_recipe.dir/recipe.cc.o.d"
  "CMakeFiles/texrheo_recipe.dir/units.cc.o"
  "CMakeFiles/texrheo_recipe.dir/units.cc.o.d"
  "libtexrheo_recipe.a"
  "libtexrheo_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
