# Empty compiler generated dependencies file for texrheo_corpus.
# This may be replaced when dependencies are built.
