file(REMOVE_RECURSE
  "libtexrheo_corpus.a"
)
