file(REMOVE_RECURSE
  "CMakeFiles/texrheo_corpus.dir/generator.cc.o"
  "CMakeFiles/texrheo_corpus.dir/generator.cc.o.d"
  "libtexrheo_corpus.a"
  "libtexrheo_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
