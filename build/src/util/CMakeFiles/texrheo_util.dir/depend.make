# Empty dependencies file for texrheo_util.
# This may be replaced when dependencies are built.
