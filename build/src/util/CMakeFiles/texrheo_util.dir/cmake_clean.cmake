file(REMOVE_RECURSE
  "CMakeFiles/texrheo_util.dir/csv.cc.o"
  "CMakeFiles/texrheo_util.dir/csv.cc.o.d"
  "CMakeFiles/texrheo_util.dir/flags.cc.o"
  "CMakeFiles/texrheo_util.dir/flags.cc.o.d"
  "CMakeFiles/texrheo_util.dir/json.cc.o"
  "CMakeFiles/texrheo_util.dir/json.cc.o.d"
  "CMakeFiles/texrheo_util.dir/logging.cc.o"
  "CMakeFiles/texrheo_util.dir/logging.cc.o.d"
  "CMakeFiles/texrheo_util.dir/rng.cc.o"
  "CMakeFiles/texrheo_util.dir/rng.cc.o.d"
  "CMakeFiles/texrheo_util.dir/status.cc.o"
  "CMakeFiles/texrheo_util.dir/status.cc.o.d"
  "CMakeFiles/texrheo_util.dir/string_util.cc.o"
  "CMakeFiles/texrheo_util.dir/string_util.cc.o.d"
  "CMakeFiles/texrheo_util.dir/table_printer.cc.o"
  "CMakeFiles/texrheo_util.dir/table_printer.cc.o.d"
  "libtexrheo_util.a"
  "libtexrheo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
