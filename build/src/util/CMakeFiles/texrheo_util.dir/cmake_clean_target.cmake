file(REMOVE_RECURSE
  "libtexrheo_util.a"
)
