file(REMOVE_RECURSE
  "libtexrheo_text.a"
)
