file(REMOVE_RECURSE
  "CMakeFiles/texrheo_text.dir/texture_dictionary.cc.o"
  "CMakeFiles/texrheo_text.dir/texture_dictionary.cc.o.d"
  "CMakeFiles/texrheo_text.dir/tokenizer.cc.o"
  "CMakeFiles/texrheo_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/texrheo_text.dir/vocabulary.cc.o"
  "CMakeFiles/texrheo_text.dir/vocabulary.cc.o.d"
  "CMakeFiles/texrheo_text.dir/word2vec.cc.o"
  "CMakeFiles/texrheo_text.dir/word2vec.cc.o.d"
  "libtexrheo_text.a"
  "libtexrheo_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texrheo_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
