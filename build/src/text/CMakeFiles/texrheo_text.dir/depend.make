# Empty dependencies file for texrheo_text.
# This may be replaced when dependencies are built.
