// FileOps decorator that injects storage faults (short writes, ENOSPC,
// fsync failures, crash-before-rename) into the atomic-write path. Shared
// by the atomic-file, serialization, and checkpoint test suites.

#ifndef TEXRHEO_TESTS_FAULT_INJECTION_H_
#define TEXRHEO_TESTS_FAULT_INJECTION_H_

#include <algorithm>
#include <string>

#include "util/atomic_file.h"
#include "util/status.h"

namespace texrheo {

class FaultInjectingFileOps : public FileOps {
 public:
  // Fault knobs. All default to "behave like the real filesystem".
  bool fail_open = false;
  /// Fail every Write call with index >= this (0-based; -1 = never), like
  /// a disk that runs out of space mid-file.
  int fail_write_after = -1;
  /// When > 0, every Write is short: at most this many bytes land.
  size_t max_write_bytes = 0;
  /// When set, Write reports 0 bytes written without failing — a
  /// pathological short write the caller must not spin on forever.
  bool write_returns_zero = false;
  bool fail_sync = false;
  /// Rename fails as if the process died between fsync and rename.
  bool crash_before_rename = false;
  /// Remove silently does nothing (a crashed process cannot clean its temp
  /// file either) — pair with crash_before_rename to leave a *.tmp behind.
  bool skip_remove = false;
  bool fail_remove = false;
  /// Directory fsync fails (e.g. the volume went read-only after the data
  /// fsync succeeded).
  bool fail_sync_dir = false;

  // Observability.
  int open_calls = 0;
  int append_open_calls = 0;
  int write_calls = 0;
  int sync_calls = 0;
  int rename_calls = 0;
  int remove_calls = 0;
  int sync_dir_calls = 0;
  std::string last_open_path;
  std::string last_sync_dir;

  StatusOr<int> OpenForWrite(const std::string& path) override {
    ++open_calls;
    last_open_path = path;
    if (fail_open) return Status::IOError("injected: open failure");
    return FileOps::Real().OpenForWrite(path);
  }

  StatusOr<int> OpenForAppend(const std::string& path) override {
    ++append_open_calls;
    last_open_path = path;
    if (fail_open) return Status::IOError("injected: open failure");
    return FileOps::Real().OpenForAppend(path);
  }

  StatusOr<size_t> Write(int fd, const void* data, size_t size) override {
    int call = write_calls++;
    if (fail_write_after >= 0 && call >= fail_write_after) {
      return Status::IOError("injected: no space left on device");
    }
    if (write_returns_zero) return static_cast<size_t>(0);
    size_t n = size;
    if (max_write_bytes > 0) n = std::min(n, max_write_bytes);
    return FileOps::Real().Write(fd, data, n);
  }

  Status Sync(int fd) override {
    ++sync_calls;
    if (fail_sync) return Status::IOError("injected: fsync failure");
    return FileOps::Real().Sync(fd);
  }

  Status Close(int fd) override { return FileOps::Real().Close(fd); }

  Status Rename(const std::string& from, const std::string& to) override {
    ++rename_calls;
    if (crash_before_rename) {
      return Status::IOError("injected: crash before rename");
    }
    return FileOps::Real().Rename(from, to);
  }

  Status Remove(const std::string& path) override {
    ++remove_calls;
    if (skip_remove) return Status::OK();
    if (fail_remove) return Status::IOError("injected: remove failure");
    return FileOps::Real().Remove(path);
  }

  Status SyncDir(const std::string& dir) override {
    ++sync_dir_calls;
    last_sync_dir = dir;
    if (fail_sync_dir) return Status::IOError("injected: dir fsync failure");
    return FileOps::Real().SyncDir(dir);
  }
};

}  // namespace texrheo

#endif  // TEXRHEO_TESTS_FAULT_INJECTION_H_
