#include "rheology/rheometer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::rheology {
namespace {

MechanicalSample ElasticSample() {
  MechanicalSample s;
  s.stiffness = 10.0;
  s.yield_strain = 1.0;  // Never fractures within the stroke.
  s.damage_retention = 0.9;
  s.tackiness = 0.0;
  return s;
}

TEST(RheometerTest, RejectsInvalidConfig) {
  RheometerConfig config;
  config.probe_speed_mm_s = 0.0;
  Rheometer probe(config);
  EXPECT_FALSE(probe.Measure(ElasticSample()).ok());
}

TEST(RheometerTest, RejectsInvalidSample) {
  Rheometer probe;
  MechanicalSample s = ElasticSample();
  s.stiffness = -1.0;
  EXPECT_FALSE(probe.Measure(s).ok());
}

TEST(RheometerTest, CurveHasTwoBitesAndPause) {
  Rheometer probe;
  auto m = probe.Measure(ElasticSample());
  ASSERT_TRUE(m.ok());
  bool saw_cycle1 = false, saw_cycle2 = false;
  for (const auto& p : m->curve) {
    if (p.cycle == 1) saw_cycle1 = true;
    if (p.cycle == 2) saw_cycle2 = true;
  }
  EXPECT_TRUE(saw_cycle1);
  EXPECT_TRUE(saw_cycle2);
  // Time strictly increases.
  for (size_t i = 1; i < m->curve.size(); ++i) {
    EXPECT_GT(m->curve[i].time_s, m->curve[i - 1].time_s);
  }
}

TEST(RheometerTest, PeakForceMatchesStiffnessTimesStrain) {
  RheometerConfig config;
  Rheometer probe(config);
  auto m = probe.Measure(ElasticSample());
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->peak_force_1, 10.0 * config.compression_fraction, 0.05);
}

TEST(RheometerTest, NoAdhesionWithoutTackiness) {
  Rheometer probe;
  auto m = probe.Measure(ElasticSample());
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->negative_area, 0.0);
  EXPECT_DOUBLE_EQ(m->attributes.adhesiveness, 0.0);
}

TEST(RheometerTest, TackySampleShowsNegativeForceTail) {
  Rheometer probe;
  MechanicalSample s = ElasticSample();
  s.tackiness = 2.0;
  auto m = probe.Measure(s);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->negative_area, 0.0);
  double min_force = 0.0;
  for (const auto& p : m->curve) min_force = std::min(min_force, p.force_ru);
  // The adhesive trough approaches -tackiness (Fig. 2's area "b").
  EXPECT_NEAR(min_force, -2.0, 0.15);
}

TEST(RheometerTest, DamageRetentionControlsSecondBite) {
  Rheometer probe;
  MechanicalSample strong = ElasticSample();
  MechanicalSample weak = ElasticSample();
  weak.damage_retention = 0.2;
  auto m_strong = probe.Measure(strong);
  auto m_weak = probe.Measure(weak);
  ASSERT_TRUE(m_strong.ok() && m_weak.ok());
  EXPECT_GT(m_strong->attributes.cohesiveness,
            m_weak->attributes.cohesiveness);
  // First bites are identical.
  EXPECT_NEAR(m_strong->peak_force_1, m_weak->peak_force_1, 1e-9);
}

TEST(RheometerTest, FractureCapsPeakForce) {
  Rheometer probe;
  MechanicalSample brittle = ElasticSample();
  brittle.yield_strain = 0.15;  // Fractures mid-stroke (max strain 0.30).
  auto m_brittle = probe.Measure(brittle);
  auto m_elastic = probe.Measure(ElasticSample());
  ASSERT_TRUE(m_brittle.ok() && m_elastic.ok());
  EXPECT_LT(m_brittle->peak_force_1, m_elastic->peak_force_1);
  EXPECT_NEAR(m_brittle->peak_force_1, 10.0 * 0.15, 0.05);
}

TEST(RheometerTest, AreasArePositiveAndOrdered) {
  Rheometer probe;
  MechanicalSample s = ElasticSample();
  s.damage_retention = 0.5;
  auto m = probe.Measure(s);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->area_1, 0.0);
  EXPECT_GT(m->area_2, 0.0);
  EXPECT_LT(m->area_2, m->area_1);  // Damaged structure does less work.
  EXPECT_NEAR(m->attributes.cohesiveness, m->area_2 / m->area_1, 1e-12);
}

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, SampleFromAttributesReproducesTargets) {
  // The inversion must reproduce every Table I row through the full
  // force-curve simulation.
  const auto& row = TableI()[static_cast<size_t>(GetParam())];
  const auto& model = GelPhysicsModel::Calibrated();
  TpaAttributes target = model.Predict(row.gel, row.emulsion);
  RheometerConfig config;
  MechanicalSample sample = SampleFromAttributes(target, config);
  Rheometer probe(config);
  auto m = probe.Measure(sample);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->attributes.hardness, target.hardness,
              0.05 * target.hardness + 1e-6);
  EXPECT_NEAR(m->attributes.cohesiveness, target.cohesiveness,
              0.08 * target.cohesiveness + 0.02);
  EXPECT_NEAR(m->attributes.adhesiveness, target.adhesiveness,
              0.05 * target.adhesiveness + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(TableIRows, RoundTripTest, ::testing::Range(0, 13));

TEST(SimulateDishTest, EndToEndPipeline) {
  const auto& model = GelPhysicsModel::Calibrated();
  const auto& dish = TableIIb()[0];  // Bavarois.
  auto m = SimulateDish(model, dish.gel, dish.emulsion, RheometerConfig());
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->attributes.hardness, dish.attributes.hardness, 0.3);
  EXPECT_NEAR(m->attributes.cohesiveness, dish.attributes.cohesiveness, 0.08);
}

TEST(RheometerTest, Fig2CurveShape) {
  // The paper's Fig. 2: positive compression peak, then a negative
  // adhesion trough during the first ascent, then a second (smaller) bite.
  const auto& model = GelPhysicsModel::Calibrated();
  math::Vector gel(recipe::kNumGelTypes);
  gel[0] = 0.025;  // 2.5% gelatin: hard enough to see both features.
  auto m = SimulateDish(model, gel, math::Vector(recipe::kNumEmulsionTypes),
                        RheometerConfig());
  ASSERT_TRUE(m.ok());
  // F1 in cycle 1 precedes the minimum (adhesion trough).
  size_t peak_index = 0, trough_index = 0;
  double peak = 0.0, trough = 0.0;
  for (size_t i = 0; i < m->curve.size(); ++i) {
    if (m->curve[i].cycle != 1) continue;
    if (m->curve[i].force_ru > peak) {
      peak = m->curve[i].force_ru;
      peak_index = i;
    }
    if (m->curve[i].force_ru < trough) {
      trough = m->curve[i].force_ru;
      trough_index = i;
    }
  }
  EXPECT_GT(peak, 0.0);
  EXPECT_LT(trough, 0.0);
  EXPECT_LT(peak_index, trough_index);
  EXPECT_LT(m->peak_force_2, m->peak_force_1);
}

}  // namespace
}  // namespace texrheo::rheology
