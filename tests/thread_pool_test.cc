// Tests for the parallel Gibbs engine's building blocks (ThreadPool, RNG
// stream splitting, shard planning) and for the engine's determinism
// contract: num_threads = 1 is the bit-exact legacy serial chain, and any
// fixed (seed, num_threads) pair replays bit-identically run over run.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/collapsed_sampler.h"
#include "core/joint_topic_model.h"
#include "core/parallel_gibbs.h"
#include "util/rng.h"

namespace texrheo {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.ParallelFor(20, [&](int i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50L * (19 * 20 / 2));
}

TEST(ThreadPoolTest, ZeroAndNegativeTaskCountsAreNoOps) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int) { ran = true; });
  pool.ParallelFor(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, TasksSeeEachOthersPredecessorWrites) {
  // Writes made inside one batch must be visible after ParallelFor returns.
  ThreadPool pool(4);
  std::vector<double> out(256, 0.0);
  pool.ParallelFor(256, [&](int i) {
    out[static_cast<size_t>(i)] = static_cast<double>(i) * 0.5;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (255.0 * 256.0 / 2.0));
}

TEST(RngStreamTest, StreamSeedIsPureAndStreamSensitive) {
  EXPECT_EQ(Rng::StreamSeed(42, 1), Rng::StreamSeed(42, 1));
  EXPECT_NE(Rng::StreamSeed(42, 1), Rng::StreamSeed(42, 2));
  EXPECT_NE(Rng::StreamSeed(42, 1), Rng::StreamSeed(43, 1));
  // Nearby (seed, stream) pairs must not collide into the same stream.
  EXPECT_NE(Rng::StreamSeed(42, 2), Rng::StreamSeed(43, 1));
}

TEST(RngStreamTest, StreamsAreDecorrelated) {
  Rng a = Rng::ForStream(7, 1);
  Rng b = Rng::ForStream(7, 2);
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(ShardPlanTest, CoversAllDocumentsInOrder) {
  std::vector<recipe::Document> docs(17);
  for (size_t d = 0; d < docs.size(); ++d) {
    docs[d].term_ids.assign(1 + d % 5, 0);
  }
  for (int shards : {1, 2, 4, 8, 32}) {
    auto plan = core::PlanShards(docs, shards);
    ASSERT_EQ(plan.size(), static_cast<size_t>(shards));
    size_t expected_begin = 0;
    for (const auto& [lo, hi] : plan) {
      EXPECT_EQ(lo, expected_begin);
      EXPECT_LE(lo, hi);
      expected_begin = hi;
    }
    EXPECT_EQ(expected_begin, docs.size());
  }
}

TEST(ShardPlanTest, BalancesTokens) {
  // 100 docs x 10 tokens over 4 shards: no shard should hog the corpus.
  std::vector<recipe::Document> docs(100);
  for (auto& doc : docs) doc.term_ids.assign(10, 0);
  auto plan = core::PlanShards(docs, 4);
  for (const auto& [lo, hi] : plan) {
    EXPECT_EQ(hi - lo, 25u);
  }
}

TEST(ResolveNumThreadsTest, ZeroMeansHardwareConcurrency) {
  EXPECT_EQ(core::ResolveNumThreads(0), ThreadPool::HardwareConcurrency());
  EXPECT_EQ(core::ResolveNumThreads(1), 1);
  EXPECT_EQ(core::ResolveNumThreads(6), 6);
}

// --- Model-level determinism contract ---------------------------------

recipe::Dataset MediumDataset() {
  Rng rng(42);
  recipe::Dataset ds;
  for (int v = 0; v < 6; ++v) ds.term_vocab.Add("w" + std::to_string(v));
  for (size_t d = 0; d < 40; ++d) {
    recipe::Document doc;
    doc.recipe_index = d;
    size_t tokens = 3 + rng.NextUint(6);
    for (size_t n = 0; n < tokens; ++n) {
      doc.term_ids.push_back(static_cast<int32_t>(rng.NextUint(6)));
    }
    doc.gel_feature = math::Vector(1, 1.0 + rng.NextGaussian() * 0.5 +
                                          (d % 2 == 0 ? 0.0 : 2.0));
    doc.emulsion_feature = math::Vector(1, rng.NextGaussian() * 0.3);
    doc.gel_concentration = math::Vector(1, 0.02);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

core::JointTopicModelConfig MediumConfig(int num_threads) {
  core::JointTopicModelConfig config;
  config.num_topics = 3;
  config.seed = 5;
  config.num_threads = num_threads;
  return config;
}

template <typename Model>
std::pair<std::vector<int>, std::vector<std::vector<int>>> RunAndCapture(
    const recipe::Dataset& ds, int num_threads, int sweeps) {
  auto model = Model::Create(MediumConfig(num_threads), &ds);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_TRUE(model->RunSweeps(sweeps).ok());
  return {model->y(), model->z()};
}

TEST(ParallelGibbsDeterminismTest, SerialReplayIsBitExact) {
  recipe::Dataset ds = MediumDataset();
  auto first = RunAndCapture<core::JointTopicModel>(ds, 1, 25);
  auto second = RunAndCapture<core::JointTopicModel>(ds, 1, 25);
  EXPECT_EQ(first, second);
}

TEST(ParallelGibbsDeterminismTest, DefaultConfigIsTheLegacySerialChain) {
  // num_threads defaults to 1, so an untouched config must replay the
  // legacy chain bit-exactly (golden-regression compatibility).
  core::JointTopicModelConfig config;
  EXPECT_EQ(config.num_threads, 1);
}

TEST(ParallelGibbsDeterminismTest, ParallelReplayIsBitExactAtFixedThreads) {
  recipe::Dataset ds = MediumDataset();
  auto first = RunAndCapture<core::JointTopicModel>(ds, 4, 25);
  auto second = RunAndCapture<core::JointTopicModel>(ds, 4, 25);
  EXPECT_EQ(first, second);
}

TEST(ParallelGibbsDeterminismTest, CollapsedParallelReplayIsBitExact) {
  recipe::Dataset ds = MediumDataset();
  auto first = RunAndCapture<core::CollapsedJointTopicModel>(ds, 4, 15);
  auto second = RunAndCapture<core::CollapsedJointTopicModel>(ds, 4, 15);
  EXPECT_EQ(first, second);
}

TEST(ParallelGibbsDeterminismTest, ParallelChainMovesAllCountersCoherently) {
  // After parallel sweeps the merged global counts must equal a fresh
  // recount of the assignment state (no lost or duplicated deltas).
  recipe::Dataset ds = MediumDataset();
  core::JointTopicModelConfig config = MediumConfig(4);
  auto model = core::JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(10).ok());
  double before = model->LogJointLikelihood();
  // ResyncWithData recounts n_kv/n_k from (z, data); if the merged counts
  // were corrupted, the likelihood would jump.
  ASSERT_TRUE(model->ResyncWithData().ok());
  // The Gaussians are redrawn by the resync, so only the token part of the
  // likelihood is comparable; recompute both ways via a fresh recount.
  auto estimates = model->Estimate();
  for (const auto& row : estimates.phi) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_TRUE(std::isfinite(before));
}

TEST(ParallelGibbsDeterminismTest, HardwareConcurrencyKnobRuns) {
  recipe::Dataset ds = MediumDataset();
  core::JointTopicModelConfig config = MediumConfig(0);  // 0 = hardware.
  auto model = core::JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->RunSweeps(5).ok());
}

TEST(ParallelGibbsDeterminismTest, NegativeThreadCountRejected) {
  recipe::Dataset ds = MediumDataset();
  core::JointTopicModelConfig config = MediumConfig(-2);
  EXPECT_FALSE(core::JointTopicModel::Create(config, &ds).ok());
  EXPECT_FALSE(core::CollapsedJointTopicModel::Create(config, &ds).ok());
}

TEST(ParallelGibbsDeterminismTest, MoreShardsThanDocumentsRuns) {
  recipe::Dataset ds = MediumDataset();
  ds.documents.resize(3);  // Fewer docs than threads: empty shards exist.
  auto model = core::JointTopicModel::Create(MediumConfig(8), &ds);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->RunSweeps(5).ok());
  auto collapsed =
      core::CollapsedJointTopicModel::Create(MediumConfig(8), &ds);
  ASSERT_TRUE(collapsed.ok());
  EXPECT_TRUE(collapsed->RunSweeps(5).ok());
}

}  // namespace
}  // namespace texrheo
