// Format-torture suite for the memory-mapped binary model format
// (core/model_binary.h): byte-for-byte round-trip equivalence against the
// v2 text path, exhaustive truncation of both files, bit-flip corruption
// across every section, structure-aware index mutations (overlaps,
// out-of-bounds offsets, zero/huge counts, misalignment), hostile data
// payloads (NaN phi, duplicate pool words), and mmap fault injection.
// The invariant throughout: a clean Status, never a crash, never a
// partially valid snapshot, never a silent wrong answer.

#include "core/model_binary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/serialization.h"
#include "embed/embedding.h"
#include "math/distributions.h"
#include "serve/snapshot.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

/// Two well-separated topics over a 4-word vocabulary (the serving tests'
/// TinyModel shape: dictionary words on three poles plus one unknown).
ModelSnapshot TinyModel() {
  ModelSnapshot model;
  model.vocab.AddWithCount("katai", 7);
  model.vocab.AddWithCount("purupuru", 5);
  model.vocab.AddWithCount("fuwafuwa", 3);
  model.vocab.AddWithCount("zzz-not-a-texture-word", 1);
  model.estimates.phi = {{0.7, 0.1, 0.1, 0.1}, {0.05, 0.75, 0.1, 0.1}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {1, 2};
  return model;
}

std::string TempBase(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// Packs TinyModel under `name` and returns the base path.
std::string PackTiny(const char* name) {
  std::string base = TempBase(name);
  Status status = WriteModelBinary(TinyModel(), base);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return base;
}

std::string MustRead(const std::string& path) {
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.value_or("");
}

void MustWrite(const std::string& path, std::string_view bytes) {
  Status status = WriteStringToFile(path, bytes);
  ASSERT_TRUE(status.ok()) << status.ToString();
}

/// Applies `mutate` to the parsed index (and optionally the raw dat bytes)
/// of a freshly packed TinyModel, re-encodes the index with a *valid*
/// trailing CRC and refreshed per-section CRCs over the mutated data, and
/// returns the base path. This reaches the deep structural validators
/// instead of bouncing off the checksums.
template <typename Fn>
std::string PackMutated(const char* name, Fn mutate) {
  std::string base = PackTiny(name);
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  auto index = ParseModelBinaryIndex(MustRead(paths.idx));
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  std::string dat = MustRead(paths.dat);
  mutate(*index, dat);
  MustWrite(paths.dat, dat);
  MustWrite(paths.idx, EncodeModelBinaryIndex(*index));
  return base;
}

/// Recomputes one section's CRC after its dat bytes were patched (keeps the
/// mutation "hostile producer"-shaped: everything checksums, content lies).
void RefreshSectionCrc(ModelBinaryIndex& index, std::string& dat,
                       size_t slot) {
  ModelSectionEntry& entry = index.sections[slot];
  entry.crc32 = Crc32(dat.data() + entry.offset, entry.size);
}

// --- CRC-32 known answers ---------------------------------------------------

TEST(Crc32Test, MatchesIeee8023CheckValueAndBytewiseDefinition) {
  // The standard check value pins the polynomial, reflection, and final
  // xor; every CRC in the .idx/.dat framing depends on it.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  // The sliced fast path must agree with the bit-at-a-time definition on
  // buffers of every alignment and tail length.
  std::string buf(1025, '\0');
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<char>(i * 7 + 3);
  }
  for (size_t len : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1024u, 1025u}) {
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i) {
      uint32_t c = (crc ^ static_cast<unsigned char>(buf[i])) & 0xFFu;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      crc = c ^ (crc >> 8);
    }
    EXPECT_EQ(Crc32(buf.data(), len), crc ^ 0xFFFFFFFFu) << "len " << len;
  }
}

// --- Round-trip equivalence -------------------------------------------------

TEST(ModelBinaryTest, PathsForAcceptsBaseIdxAndDat) {
  for (const char* spelling : {"dir/m", "dir/m.idx", "dir/m.dat"}) {
    ModelBinaryPaths paths = ModelBinaryPathsFor(spelling);
    EXPECT_EQ(paths.dat, "dir/m.dat");
    EXPECT_EQ(paths.idx, "dir/m.idx");
  }
}

TEST(ModelBinaryTest, PackUnpackReproducesCanonicalV2Bytes) {
  // Binary pack canonicalizes through the v2 round-trip, so unpacking must
  // reproduce the v2 serialization byte-for-byte (fixed point).
  std::string base = PackTiny("mb_fixed_point");
  auto canonical = DeserializeModel(SerializeModel(TinyModel()));
  ASSERT_TRUE(canonical.ok());
  auto unpacked = ReadModelBinary(base);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(SerializeModel(*unpacked), SerializeModel(*canonical));
}

TEST(ModelBinaryTest, ConvertModelFileMatchesDirectPack) {
  std::string v2_path = TempBase("mb_convert.txt");
  ASSERT_TRUE(SaveModel(v2_path, TinyModel()).ok());
  std::string converted = TempBase("mb_converted");
  ASSERT_TRUE(ConvertModelFileToBinary(v2_path, converted).ok());
  std::string direct = PackTiny("mb_direct");
  EXPECT_EQ(MustRead(converted + ".dat"), MustRead(direct + ".dat"));
  EXPECT_EQ(MustRead(converted + ".idx"), MustRead(direct + ".idx"));
}

TEST(ModelBinaryTest, MappedModelServesExactValues) {
  std::string base = PackTiny("mb_values");
  auto mapped = MappedModel::Open(base);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto canonical = DeserializeModel(SerializeModel(TinyModel()));
  ASSERT_TRUE(canonical.ok());

  EXPECT_EQ((*mapped)->num_topics(), 2);
  EXPECT_EQ((*mapped)->vocab_size(), 4u);
  EXPECT_EQ((*mapped)->gel_dim(), 3u);
  EXPECT_EQ((*mapped)->emulsion_dim(), 6u);
  EXPECT_EQ((*mapped)->fingerprint(), Crc32(SerializeModel(*canonical)));
  for (int k = 0; k < 2; ++k) {
    std::span<const double> row = (*mapped)->phi_row(k);
    ASSERT_EQ(row.size(), 4u);
    for (size_t v = 0; v < row.size(); ++v) {
      // Bit-identical to the v2-loaded values, not merely close.
      EXPECT_EQ(row[v], canonical->estimates.phi[static_cast<size_t>(k)][v]);
    }
    std::span<const double> mean = (*mapped)->gel_mean(k);
    for (size_t i = 0; i < mean.size(); ++i) {
      EXPECT_EQ(mean[i],
                canonical->estimates.gel_topics[static_cast<size_t>(k)]
                    .mean()[i]);
    }
  }
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_EQ((*mapped)->word(v),
              canonical->vocab.WordOf(static_cast<int32_t>(v)));
    EXPECT_EQ((*mapped)->word_count(v),
              canonical->vocab.CountOf(static_cast<int32_t>(v)));
  }
  EXPECT_EQ((*mapped)->recipe_counts()[0], 1);
  EXPECT_EQ((*mapped)->recipe_counts()[1], 2);
}

TEST(ModelBinaryTest, MmapSnapshotEqualsV2Snapshot) {
  std::string v2_path = TempBase("mb_equiv.txt");
  ASSERT_TRUE(SaveModel(v2_path, TinyModel()).ok());
  std::string base = TempBase("mb_equiv");
  ASSERT_TRUE(ConvertModelFileToBinary(v2_path, base).ok());

  auto from_text = serve::ServingSnapshot::FromModelFile(v2_path);
  auto from_map = serve::ServingSnapshot::FromBinaryFile(base + ".idx");
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_map.ok()) << from_map.status().ToString();
  const serve::ServingSnapshot& text = **from_text;
  const serve::ServingSnapshot& mmapped = **from_map;

  EXPECT_FALSE(text.mmap_backed());
  EXPECT_TRUE(mmapped.mmap_backed());
  EXPECT_GT(mmapped.mapped_bytes(), 0u);
  EXPECT_EQ(text.fingerprint(), mmapped.fingerprint());
  ASSERT_EQ(text.num_topics(), mmapped.num_topics());
  ASSERT_EQ(text.vocab_size(), mmapped.vocab_size());
  for (int k = 0; k < text.num_topics(); ++k) {
    std::span<const double> a = text.phi(k);
    std::span<const double> b = mmapped.phi(k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t v = 0; v < a.size(); ++v) EXPECT_EQ(a[v], b[v]);
    // Derived summaries agree too (same inputs, same code path).
    EXPECT_EQ(text.term_summary(k).top_terms,
              mmapped.term_summary(k).top_terms);
  }
  for (size_t v = 0; v < text.vocab_size(); ++v) {
    EXPECT_EQ(text.word(v), mmapped.word(v));
    EXPECT_EQ(text.WordId(text.word(v)), mmapped.WordId(mmapped.word(v)));
  }
  EXPECT_EQ(mmapped.WordId("no-such-word"), text::Vocabulary::kUnknownId);

  // Identical fold-in: same stream, bit-identical theta on both paths.
  Rng rng_a = Rng::ForStream(7, 1);
  Rng rng_b = Rng::ForStream(7, 1);
  auto theta_a = text.FoldInTheta({0, 1, 1}, math::Vector(3, 4.0), 30, 0.3,
                                  rng_a);
  auto theta_b = mmapped.FoldInTheta({0, 1, 1}, math::Vector(3, 4.0), 30,
                                     0.3, rng_b);
  ASSERT_TRUE(theta_a.ok() && theta_b.ok());
  EXPECT_EQ(*theta_a, *theta_b);
  EXPECT_EQ(text.InferTopicForFeatures(math::Vector(3, 6.0)),
            mmapped.InferTopicForFeatures(math::Vector(3, 6.0)));
}

// --- Truncation -------------------------------------------------------------

TEST(ModelBinaryTest, EveryIdxTruncationPrefixRejected) {
  std::string base = PackTiny("mb_trunc_idx");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  std::string idx = MustRead(paths.idx);
  ASSERT_GT(idx.size(), 0u);
  for (size_t len = 0; len < idx.size(); ++len) {
    MustWrite(paths.idx, std::string_view(idx).substr(0, len));
    auto opened = MappedModel::Open(base);
    EXPECT_FALSE(opened.ok()) << "idx prefix of " << len
                              << " bytes was accepted";
  }
  MustWrite(paths.idx, idx);
  EXPECT_TRUE(MappedModel::Open(base).ok());
}

TEST(ModelBinaryTest, EveryDatTruncationPrefixRejected) {
  std::string base = PackTiny("mb_trunc_dat");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  std::string dat = MustRead(paths.dat);
  ASSERT_GT(dat.size(), 0u);
  for (size_t len = 0; len < dat.size(); ++len) {
    MustWrite(paths.dat, std::string_view(dat).substr(0, len));
    auto opened = MappedModel::Open(base);
    EXPECT_FALSE(opened.ok()) << "dat prefix of " << len
                              << " bytes was accepted";
  }
  MustWrite(paths.dat, dat);
  EXPECT_TRUE(MappedModel::Open(base).ok());
}

TEST(ModelBinaryTest, MissingSiblingFilesRejected) {
  std::string base = PackTiny("mb_missing");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  std::string dat = MustRead(paths.dat);
  std::remove(paths.dat.c_str());
  EXPECT_FALSE(MappedModel::Open(base).ok());  // Valid idx, no dat.
  MustWrite(paths.dat, dat);
  std::remove(paths.idx.c_str());
  EXPECT_FALSE(MappedModel::Open(base).ok());  // Valid dat, no idx.
}

// --- Bit-flip corruption ----------------------------------------------------

TEST(ModelBinaryTest, AnySingleBitFlipInIdxRejected) {
  std::string base = PackTiny("mb_flip_idx");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  std::string idx = MustRead(paths.idx);
  for (size_t pos = 0; pos < idx.size(); ++pos) {
    std::string corrupt = idx;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    MustWrite(paths.idx, corrupt);
    auto opened = MappedModel::Open(base);
    EXPECT_FALSE(opened.ok()) << "bit flip at idx byte " << pos
                              << " was accepted";
  }
}

TEST(ModelBinaryTest, BitFlipInEveryDatSectionCaughtByItsCrc) {
  std::string base = PackTiny("mb_flip_dat");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  auto index = ParseModelBinaryIndex(MustRead(paths.idx));
  ASSERT_TRUE(index.ok());
  std::string dat = MustRead(paths.dat);
  for (const ModelSectionEntry& entry : index->sections) {
    ASSERT_GT(entry.size, 0u);
    // Flip one bit at the start, middle, and end of the section.
    for (uint64_t at : {entry.offset, entry.offset + entry.size / 2,
                        entry.offset + entry.size - 1}) {
      std::string corrupt = dat;
      corrupt[at] = static_cast<char>(corrupt[at] ^ 0x01);
      MustWrite(paths.dat, corrupt);
      auto opened = MappedModel::Open(base);
      ASSERT_FALSE(opened.ok())
          << "bit flip in section "
          << ModelSectionName(static_cast<ModelSection>(entry.id))
          << " was accepted";
      EXPECT_NE(opened.status().message().find(ModelSectionName(
                    static_cast<ModelSection>(entry.id))),
                std::string::npos)
          << opened.status().message();
    }
  }
  MustWrite(paths.dat, dat);
  EXPECT_TRUE(MappedModel::Open(base).ok());
}

TEST(ModelBinaryTest, DatMagicMismatchRejected) {
  std::string base = PackMutated("mb_dat_magic",
                                 [](ModelBinaryIndex&, std::string& dat) {
                                   dat[0] = 'X';
                                 });
  auto opened = MappedModel::Open(base);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
}

// --- Embedding section pair (sections 10 and 11) ----------------------------

embed::EmbeddingTable TinyEmbeddings() {
  embed::EmbeddingTable table;
  table.dim = 8;
  table.vectors.resize(4 * table.dim);
  for (size_t i = 0; i < table.vectors.size(); ++i) {
    table.vectors[i] = 0.25f * static_cast<float>(i % 7) - 0.5f;
  }
  table.RecomputeNorms();
  return table;
}

/// Packs TinyModel with the optional embedding pair appended.
std::string PackTinyWithEmbeddings(const char* name) {
  std::string base = TempBase(name);
  embed::EmbeddingTable table = TinyEmbeddings();
  Status status =
      WriteModelBinary(TinyModel(), base, FileOps::Real(), &table);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return base;
}

TEST(ModelBinaryTest, MappedEmbeddingSectionsServeExactBytes) {
  std::string base = PackTinyWithEmbeddings("mb_embed_exact");
  auto opened = MappedModel::Open(base);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MappedModel& mapped = **opened;
  embed::EmbeddingTable table = TinyEmbeddings();
  ASSERT_TRUE(mapped.has_embeddings());
  ASSERT_EQ(mapped.embedding_dim(), table.dim);
  ASSERT_EQ(mapped.embedding_matrix().size(), table.vectors.size());
  EXPECT_EQ(std::memcmp(mapped.embedding_matrix().data(),
                        table.vectors.data(),
                        table.vectors.size() * sizeof(float)),
            0);
  ASSERT_EQ(mapped.embedding_norms().size(), table.norms.size());
  EXPECT_EQ(std::memcmp(mapped.embedding_norms().data(), table.norms.data(),
                        table.norms.size() * sizeof(float)),
            0);
  // The deep-copy helper reproduces the heap table exactly.
  embed::EmbeddingTable copied = CopyEmbeddingTable(mapped);
  EXPECT_EQ(copied.dim, table.dim);
  EXPECT_EQ(copied.vectors, table.vectors);
  EXPECT_EQ(copied.norms, table.norms);
  // A pack written without the pair reports none (legacy contract).
  auto legacy = MappedModel::Open(PackTiny("mb_embed_legacy"));
  ASSERT_TRUE(legacy.ok());
  EXPECT_FALSE((*legacy)->has_embeddings());
  EXPECT_TRUE((*legacy)->embedding_matrix().empty());
}

TEST(ModelBinaryTest, EmbeddingPackEveryTruncationPrefixRejected) {
  std::string base = PackTinyWithEmbeddings("mb_embed_trunc");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  // The longer 11-section index must fail cleanly at every prefix too.
  std::string idx = MustRead(paths.idx);
  for (size_t len = 0; len < idx.size(); ++len) {
    MustWrite(paths.idx, std::string_view(idx).substr(0, len));
    EXPECT_FALSE(MappedModel::Open(base).ok())
        << "idx prefix of " << len << " bytes was accepted";
  }
  MustWrite(paths.idx, idx);
  // Strict truncation of the payload: chopping anywhere — including inside
  // the trailing optional sections — must be rejected, never served as a
  // shorter embedding table.
  std::string dat = MustRead(paths.dat);
  for (size_t len = 0; len < dat.size(); ++len) {
    MustWrite(paths.dat, std::string_view(dat).substr(0, len));
    EXPECT_FALSE(MappedModel::Open(base).ok())
        << "dat prefix of " << len << " bytes was accepted";
  }
  MustWrite(paths.dat, dat);
  EXPECT_TRUE(MappedModel::Open(base).ok());
}

TEST(ModelBinaryTest, EmbeddingSectionBitFlipsCaughtByTheirCrcs) {
  std::string base = PackTinyWithEmbeddings("mb_embed_flip");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  auto index = ParseModelBinaryIndex(MustRead(paths.idx));
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->sections.size(), kModelSectionCountWithEmbeddings);
  std::string dat = MustRead(paths.dat);
  for (ModelSection section :
       {ModelSection::kEmbedding, ModelSection::kEmbeddingNorms}) {
    const ModelSectionEntry& entry =
        index->sections[static_cast<size_t>(section) - 1];
    ASSERT_EQ(entry.id, static_cast<uint32_t>(section));
    ASSERT_GT(entry.size, 0u);
    for (uint64_t at : {entry.offset, entry.offset + entry.size / 2,
                        entry.offset + entry.size - 1}) {
      std::string corrupt = dat;
      corrupt[at] = static_cast<char>(corrupt[at] ^ 0x01);
      MustWrite(paths.dat, corrupt);
      auto opened = MappedModel::Open(base);
      ASSERT_FALSE(opened.ok())
          << "bit flip at dat byte " << at << " in "
          << ModelSectionName(section) << " was accepted";
      EXPECT_NE(opened.status().message().find(ModelSectionName(section)),
                std::string::npos)
          << opened.status().message();
    }
  }
  MustWrite(paths.dat, dat);
  EXPECT_TRUE(MappedModel::Open(base).ok());
}

TEST(ModelBinaryTest, LonelyEmbeddingSectionRejected) {
  // The pair is both-or-neither: an index listing ten sections (matrix
  // without norms) is structurally invalid no matter what it checksums to.
  std::string base = PackTinyWithEmbeddings("mb_embed_lonely");
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  auto index = ParseModelBinaryIndex(MustRead(paths.idx));
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->sections.size(), kModelSectionCountWithEmbeddings);
  index->sections.pop_back();
  MustWrite(paths.idx, EncodeModelBinaryIndex(*index));
  auto opened = MappedModel::Open(base);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("model binary"),
            std::string::npos)
      << opened.status().message();
}

// --- Structure-aware index mutations ---------------------------------------

struct IndexMutation {
  const char* name;
  void (*apply)(ModelBinaryIndex&);
};

TEST(ModelBinaryTest, HostileIndexTableMutationsRejected) {
  const IndexMutation kMutations[] = {
      {"zero_topics", [](ModelBinaryIndex& i) { i.num_topics = 0; }},
      {"huge_topics", [](ModelBinaryIndex& i) { i.num_topics = 1u << 30; }},
      {"huge_vocab",
       [](ModelBinaryIndex& i) { i.vocab_size = 1ull << 40; }},
      {"zero_gel_dim", [](ModelBinaryIndex& i) { i.gel_dim = 0; }},
      {"huge_gel_dim", [](ModelBinaryIndex& i) { i.gel_dim = 4096; }},
      {"huge_emulsion_dim",
       [](ModelBinaryIndex& i) { i.emulsion_dim = 100000; }},
      {"zero_count",
       [](ModelBinaryIndex& i) {
         i.sections[0].count = 0;
         i.sections[0].size = 0;
       }},
      {"huge_count",
       [](ModelBinaryIndex& i) {
         i.sections[0].count = 1ull << 40;
         i.sections[0].size = (1ull << 40) * 8;
       }},
      {"count_size_disagree",
       [](ModelBinaryIndex& i) { i.sections[0].size += 8; }},
      {"misaligned_soa_block",
       [](ModelBinaryIndex& i) { i.sections[2].offset += 8; }},
      {"overlapping_sections",
       [](ModelBinaryIndex& i) {
         i.sections[1].offset = i.sections[0].offset;
       }},
      {"offset_into_header",
       [](ModelBinaryIndex& i) { i.sections[0].offset = 0; }},
      {"out_of_bounds_offset",
       [](ModelBinaryIndex& i) {
         i.sections[8].offset = i.data_file_size + (1u << 20);
       }},
      {"overflowing_offset",
       [](ModelBinaryIndex& i) {
         i.sections[8].offset = ~uint64_t{0} - 63;  // Aligned, wraps on +size.
       }},
      {"duplicate_section",
       [](ModelBinaryIndex& i) { i.sections[1].id = i.sections[0].id; }},
      {"unknown_section_id",
       [](ModelBinaryIndex& i) { i.sections[0].id = 99; }},
      {"dropped_section",
       [](ModelBinaryIndex& i) { i.sections.pop_back(); }},
      {"extra_section",
       [](ModelBinaryIndex& i) { i.sections.push_back(i.sections.back()); }},
      {"out_of_order_sections",
       [](ModelBinaryIndex& i) {
         std::swap(i.sections[0], i.sections[1]);
       }},
      {"data_file_size_lies_short",
       [](ModelBinaryIndex& i) { i.data_file_size -= 64; }},
      {"data_file_size_lies_long",
       [](ModelBinaryIndex& i) { i.data_file_size += 1; }},
  };
  for (const IndexMutation& mutation : kMutations) {
    std::string base = PackMutated(
        (std::string("mb_mut_") + mutation.name).c_str(),
        [&mutation](ModelBinaryIndex& index, std::string&) {
          mutation.apply(index);
        });
    auto opened = MappedModel::Open(base);
    EXPECT_FALSE(opened.ok())
        << "mutation '" << mutation.name << "' was accepted";
    // Clean, descriptive Status - and no partial snapshot to misuse.
    EXPECT_FALSE(opened.status().message().empty());
  }
}

TEST(ModelBinaryTest, UnsupportedVersionRejectedAtParse) {
  std::string base = PackMutated("mb_version",
                                 [](ModelBinaryIndex& index, std::string&) {
                                   index.version = kModelBinaryVersion + 1;
                                 });
  auto opened = MappedModel::Open(base);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("version"), std::string::npos);
}

// --- Hostile data payloads (valid CRCs, lying content) ----------------------

TEST(ModelBinaryTest, NanPhiPassesCrcButSnapshotRejectsIt) {
  // A hostile producer can checksum anything; finiteness is the serving
  // layer's validation. The mapping opens (format-valid) but no snapshot
  // may be built over it.
  std::string base = PackMutated(
      "mb_nan_phi", [](ModelBinaryIndex& index, std::string& dat) {
        double nan = std::nan("");
        std::memcpy(dat.data() + index.sections[0].offset, &nan,
                    sizeof(nan));
        RefreshSectionCrc(index, dat, 0);
      });
  ASSERT_TRUE(MappedModel::Open(base).ok());
  auto snapshot = serve::ServingSnapshot::FromBinaryFile(base + ".idx");
  ASSERT_FALSE(snapshot.ok());
  EXPECT_NE(snapshot.status().message().find("non-finite"),
            std::string::npos);
}

TEST(ModelBinaryTest, VocabPoolFenceMutationsRejected) {
  struct PoolMutation {
    const char* name;
    uint64_t new_first_offset;
  };
  // offsets[0] must be 0; any other start breaks the fence.
  std::string base = PackMutated(
      "mb_pool_fence", [](ModelBinaryIndex& index, std::string& dat) {
        uint64_t bad = 1;
        std::memcpy(dat.data() + index.sections[6].offset, &bad, sizeof(bad));
        RefreshSectionCrc(index, dat, 6);
      });
  auto opened = MappedModel::Open(base);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("vocab_offsets"),
            std::string::npos);

  // Non-monotone offsets (word length would go negative / out of bounds).
  base = PackMutated(
      "mb_pool_monotone", [](ModelBinaryIndex& index, std::string& dat) {
        uint64_t huge = ~uint64_t{0} / 2;
        std::memcpy(dat.data() + index.sections[6].offset + 8, &huge,
                    sizeof(huge));
        RefreshSectionCrc(index, dat, 6);
      });
  EXPECT_FALSE(MappedModel::Open(base).ok());

  // A whitespace byte inside a word would break the v2 fixed point.
  base = PackMutated(
      "mb_pool_whitespace", [](ModelBinaryIndex& index, std::string& dat) {
        dat[index.sections[8].offset] = ' ';
        RefreshSectionCrc(index, dat, 8);
      });
  EXPECT_FALSE(MappedModel::Open(base).ok());
}

TEST(ModelBinaryTest, DuplicatePoolWordsRejectedBySnapshotAndUnpack) {
  // Make word 1 byte-identical to word 0 ("katai" x2) with valid CRCs:
  // rewrite the offsets fence so both words alias the same pool range.
  std::string base = PackMutated(
      "mb_pool_dup", [](ModelBinaryIndex& index, std::string& dat) {
        uint64_t offsets[2];
        std::memcpy(offsets, dat.data() + index.sections[6].offset,
                    sizeof(offsets));
        // offsets[1] = end of word 0; make word 1 = word 0 by aliasing and
        // padding the fence so later words stay in bounds.
        uint64_t word0_len = offsets[1] - offsets[0];
        uint64_t alias[2] = {0, word0_len};
        std::memcpy(dat.data() + index.sections[6].offset, alias,
                    sizeof(alias));
        uint64_t second_start = 0;
        std::memcpy(dat.data() + index.sections[6].offset + 8,
                    &second_start, sizeof(second_start));
        RefreshSectionCrc(index, dat, 6);
      });
  // The fence may or may not stay structurally valid after this surgery;
  // what matters is that no duplicate-word snapshot is ever served.
  auto snapshot = serve::ServingSnapshot::FromBinaryFile(base + ".idx");
  EXPECT_FALSE(snapshot.ok());
  auto unpacked = ReadModelBinary(base);
  EXPECT_FALSE(unpacked.ok());
}

// --- Writer validation ------------------------------------------------------

TEST(ModelBinaryTest, WriterRejectsStructurallyBrokenModels) {
  {
    ModelSnapshot model;  // No topics at all.
    EXPECT_FALSE(WriteModelBinary(model, TempBase("mb_w_empty")).ok());
  }
  {
    ModelSnapshot model = TinyModel();
    model.estimates.gel_topics[1] = MakeGaussian(6.0, 2);  // Non-uniform dim.
    EXPECT_FALSE(WriteModelBinary(model, TempBase("mb_w_dim")).ok());
  }
  {
    ModelSnapshot model = TinyModel();
    model.estimates.phi[1].pop_back();  // Row width != vocab size: the
    // canonical v2 round-trip refuses it before any byte is written.
    EXPECT_FALSE(WriteModelBinary(model, TempBase("mb_w_row")).ok());
  }
}

// --- Mmap fault injection ---------------------------------------------------

/// Delegates to the real mmap but counts maps/unmaps and can fail Map.
class CountingMapOps final : public MemoryMapOps {
 public:
  StatusOr<MappedRegion> Map(const std::string& path) override {
    ++maps;
    if (fail_map) return Status::IOError("injected mmap failure");
    return MemoryMapOps::Map(path);
  }
  void Unmap(MappedRegion region) override {
    ++unmaps;
    MemoryMapOps::Unmap(region);
  }

  int maps = 0;
  int unmaps = 0;
  bool fail_map = false;
};

TEST(ModelBinaryTest, MapFailureSurfacesCleanly) {
  std::string base = PackTiny("mb_fault_map");
  CountingMapOps ops;
  ops.fail_map = true;
  auto opened = MappedModel::Open(base, ops);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("injected"), std::string::npos);
  EXPECT_EQ(ops.unmaps, 0);  // Nothing was mapped, nothing to release.
}

TEST(ModelBinaryTest, RegionUnmappedExactlyOnceOnSuccessAndFailure) {
  std::string base = PackTiny("mb_fault_unmap");
  CountingMapOps ops;
  {
    auto opened = MappedModel::Open(base, ops);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(ops.maps, 1);
    EXPECT_EQ(ops.unmaps, 0);  // Held by the live MappedModel.
  }
  EXPECT_EQ(ops.unmaps, 1);  // Released when the last reference dropped.

  // Validation failure *after* a successful map must still release it.
  ModelBinaryPaths paths = ModelBinaryPathsFor(base);
  std::string dat = MustRead(paths.dat);
  std::string corrupt = dat;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);
  MustWrite(paths.dat, corrupt);
  CountingMapOps ops2;
  EXPECT_FALSE(MappedModel::Open(base, ops2).ok());
  EXPECT_EQ(ops2.maps, 1);
  EXPECT_EQ(ops2.unmaps, 1);
}

}  // namespace
}  // namespace texrheo::core
