// Bit-exactness contract of the SoA batched Gaussian log-density path: for
// every topic, BatchLogPdf, LogPdfScalar, and math::Gaussian::LogPdf must
// return the identical double (same operations, same order), across topic
// counts that are and are not multiples of any plausible SIMD width.

#include "core/topic_gaussians.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/distributions.h"
#include "math/linalg.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

math::Gaussian RandomGaussian(Rng& rng, size_t dim) {
  math::Vector mean(dim);
  for (size_t i = 0; i < dim; ++i) mean[i] = rng.NextGaussian() * 3.0;
  // SPD precision: B^T B + I.
  math::Matrix b(dim, dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) b(r, c) = rng.NextGaussian();
  }
  math::Matrix precision(dim, dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      double s = 0.0;
      for (size_t i = 0; i < dim; ++i) s += b(i, r) * b(i, c);
      precision(r, c) = s + (r == c ? 1.0 : 0.0);
    }
  }
  auto g = math::Gaussian::FromPrecision(std::move(mean), std::move(precision));
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::vector<math::Gaussian> RandomTopics(Rng& rng, size_t k, size_t dim) {
  std::vector<math::Gaussian> topics;
  topics.reserve(k);
  for (size_t i = 0; i < k; ++i) topics.push_back(RandomGaussian(rng, dim));
  return topics;
}

// K values chosen to straddle SIMD widths: 1 (degenerate), 2/4/8/16
// (multiples of every plausible double-lane count), and 3/5/7/13/33
// (remainders that exercise the loop tails).
const size_t kTopicCounts[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 33};

TEST(TopicGaussiansTest, BatchMatchesGaussianLogPdfBitExactly) {
  for (size_t dim : {1u, 2u, 3u}) {
    for (size_t k_count : kTopicCounts) {
      Rng rng(1000 * dim + k_count);
      std::vector<math::Gaussian> topics = RandomTopics(rng, k_count, dim);
      TopicGaussiansSoA soa = TopicGaussiansSoA::FromGaussians(topics);
      ASSERT_EQ(soa.num_topics(), k_count);
      ASSERT_EQ(soa.dim(), dim);

      TopicGaussiansSoA::Scratch scratch;
      std::vector<double> batch(k_count);
      for (int trial = 0; trial < 20; ++trial) {
        math::Vector x(dim);
        for (size_t i = 0; i < dim; ++i) x[i] = rng.NextGaussian() * 4.0;
        soa.BatchLogPdf(x, scratch, batch.data());
        for (size_t k = 0; k < k_count; ++k) {
          const double reference = topics[k].LogPdf(x);
          // Bit-exact, not approximately equal: the contract is that the
          // batch path performs the identical arithmetic.
          EXPECT_EQ(batch[k], reference)
              << "dim=" << dim << " K=" << k_count << " k=" << k;
          EXPECT_EQ(soa.LogPdfScalar(k, x), reference)
              << "dim=" << dim << " K=" << k_count << " k=" << k;
        }
      }
    }
  }
}

TEST(TopicGaussiansTest, EmptyInputYieldsEmptyEvaluator) {
  TopicGaussiansSoA soa = TopicGaussiansSoA::FromGaussians({});
  EXPECT_TRUE(soa.empty());
  EXPECT_EQ(soa.num_topics(), 0u);
}

TEST(TopicGaussiansTest, ScratchIsReusableAcrossShapes) {
  Rng rng(77);
  TopicGaussiansSoA big =
      TopicGaussiansSoA::FromGaussians(RandomTopics(rng, 16, 3));
  TopicGaussiansSoA small =
      TopicGaussiansSoA::FromGaussians(RandomTopics(rng, 2, 1));
  TopicGaussiansSoA::Scratch scratch;
  std::vector<double> out(16);
  math::Vector x3(3, 0.5);
  big.BatchLogPdf(x3, scratch, out.data());
  // Same scratch, smaller shape: must resize down cleanly and still agree
  // with the scalar path.
  math::Vector x1(1, -0.25);
  small.BatchLogPdf(x1, scratch, out.data());
  EXPECT_EQ(out[0], small.LogPdfScalar(0, x1));
  EXPECT_EQ(out[1], small.LogPdfScalar(1, x1));
}

}  // namespace
}  // namespace texrheo::core
