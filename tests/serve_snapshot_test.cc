// ServingSnapshot: structural validation, fingerprint semantics, model-file
// and checkpoint loading, eq.-5 fold-in against point estimates (incl.
// determinism and thread safety of the const read path).

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <atomic>

#include "core/checkpoint.h"
#include "core/joint_topic_model.h"
#include "core/model_binary.h"
#include "core/serialization.h"
#include "embed/embedding.h"
#include "math/distributions.h"
#include "recipe/dataset.h"
#include "util/rng.h"

namespace texrheo::serve {
namespace {

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

/// Two well-separated topics over a 4-word vocabulary. Topic 0 is a "hard"
/// topic (katai-heavy, gel feature around 2); topic 1 is an "elastic" one
/// (purupuru-heavy, gel feature around 6).
core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");      // hard pole
  model.vocab.Add("purupuru");   // elastic pole
  model.vocab.Add("fuwafuwa");   // soft pole
  model.vocab.Add("zzz-not-a-texture-word");
  model.estimates.phi = {{0.7, 0.1, 0.1, 0.1}, {0.05, 0.75, 0.1, 0.1}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.doc_topic = {0, 1, 1};
  model.estimates.topic_recipe_count = {1, 2};
  model.estimates.theta = {{0.9, 0.1}, {0.2, 0.8}, {0.1, 0.9}};
  return model;
}

TEST(ServingSnapshotTest, FromModelExposesModelAndSource) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "unit-test");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->num_topics(), 2);
  EXPECT_EQ((*snapshot)->vocab_size(), 4u);
  EXPECT_EQ((*snapshot)->source(), "unit-test");
  EXPECT_NE((*snapshot)->fingerprint(), 0u);
}

TEST(ServingSnapshotTest, FingerprintIsContentAddressed) {
  auto a = ServingSnapshot::FromModel(TinyModel(), "a");
  auto b = ServingSnapshot::FromModel(TinyModel(), "b");
  ASSERT_TRUE(a.ok() && b.ok());
  // Same model content, different source label: same fingerprint.
  EXPECT_EQ((*a)->fingerprint(), (*b)->fingerprint());

  core::ModelSnapshot changed = TinyModel();
  changed.estimates.phi[0][0] = 0.69;
  changed.estimates.phi[0][1] = 0.11;
  auto c = ServingSnapshot::FromModel(std::move(changed), "c");
  ASSERT_TRUE(c.ok());
  EXPECT_NE((*a)->fingerprint(), (*c)->fingerprint());
}

TEST(ServingSnapshotTest, RejectsStructurallyBrokenModels) {
  {
    core::ModelSnapshot model = TinyModel();
    model.estimates.phi.clear();  // No topics.
    EXPECT_FALSE(ServingSnapshot::FromModel(std::move(model), "x").ok());
  }
  {
    core::ModelSnapshot model = TinyModel();
    model.estimates.phi[1].pop_back();  // Width != vocab size.
    EXPECT_FALSE(ServingSnapshot::FromModel(std::move(model), "x").ok());
  }
  {
    core::ModelSnapshot model = TinyModel();
    model.estimates.phi[0][0] = -0.1;  // Negative probability.
    EXPECT_FALSE(ServingSnapshot::FromModel(std::move(model), "x").ok());
  }
  {
    core::ModelSnapshot model = TinyModel();
    model.estimates.gel_topics.pop_back();  // Gaussian count mismatch.
    EXPECT_FALSE(ServingSnapshot::FromModel(std::move(model), "x").ok());
  }
}

TEST(ServingSnapshotTest, TermSummariesClassifyByDictionaryPole) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "x");
  ASSERT_TRUE(snapshot.ok());
  const TopicTermSummary& hard_topic = (*snapshot)->term_summary(0);
  // Topic 0 puts 0.7 on "katai": hard must dominate and the unknown word's
  // 0.1 must land in `other`.
  EXPECT_GT(hard_topic.masses.hard, 0.5);
  EXPECT_NEAR(hard_topic.masses.other, 0.1, 1e-9);
  ASSERT_FALSE(hard_topic.top_terms.empty());
  EXPECT_EQ(hard_topic.top_terms[0].first, "katai");

  const TopicTermSummary& elastic_topic = (*snapshot)->term_summary(1);
  EXPECT_GT(elastic_topic.masses.elastic, 0.5);
  EXPECT_EQ(elastic_topic.top_terms[0].first, "purupuru");

  // Masses are a distribution over the whole vocabulary.
  const CategoryMasses& m = hard_topic.masses;
  EXPECT_NEAR(m.hard + m.soft + m.elastic + m.crumbly + m.sticky + m.dry +
                  m.other,
              1.0, 1e-9);
}

TEST(ServingSnapshotTest, FoldInThetaIsNormalizedAndTermSensitive) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "x");
  ASSERT_TRUE(snapshot.ok());
  // Features sit exactly on topic 1's mean; terms scream topic 0.
  math::Vector near_topic1(3, 6.0);
  Rng rng_a = Rng::ForStream(7, 1);
  auto hard_terms =
      (*snapshot)->FoldInTheta({0, 0, 0, 0}, near_topic1, 40, 0.3, rng_a);
  ASSERT_TRUE(hard_terms.ok()) << hard_terms.status().ToString();
  ASSERT_EQ(hard_terms->size(), 2u);
  double sum = (*hard_terms)[0] + (*hard_terms)[1];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Four "katai" tokens against one feature observation: the term evidence
  // must pull substantial mass onto topic 0.
  EXPECT_GT((*hard_terms)[0], 0.3);

  Rng rng_b = Rng::ForStream(7, 2);
  auto no_terms = (*snapshot)->FoldInTheta({}, near_topic1, 40, 0.3, rng_b);
  ASSERT_TRUE(no_terms.ok());
  // Feature-only query on topic 1's mean: topic 1 dominates.
  EXPECT_GT((*no_terms)[1], 0.7);
}

TEST(ServingSnapshotTest, FoldInThetaIsDeterministicPerStream) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "x");
  ASSERT_TRUE(snapshot.ok());
  math::Vector feature(3, 4.0);
  Rng rng_a = Rng::ForStream(99, 5);
  Rng rng_b = Rng::ForStream(99, 5);
  auto a = (*snapshot)->FoldInTheta({0, 1}, feature, 25, 0.3, rng_a);
  auto b = (*snapshot)->FoldInTheta({0, 1}, feature, 25, 0.3, rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);  // Bit-identical: same stream, same sweep count.
}

TEST(ServingSnapshotTest, FoldInThetaRejectsBadArguments) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "x");
  ASSERT_TRUE(snapshot.ok());
  math::Vector feature(3, 4.0);
  Rng rng = Rng::ForStream(1, 1);
  EXPECT_FALSE((*snapshot)->FoldInTheta({99}, feature, 25, 0.3, rng).ok());
  EXPECT_FALSE((*snapshot)->FoldInTheta({0}, feature, 0, 0.3, rng).ok());
  EXPECT_FALSE((*snapshot)->FoldInTheta({0}, feature, 25, 0.0, rng).ok());
}

TEST(ServingSnapshotTest, InferTopicForFeaturesPicksNearestGaussian) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "x");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->InferTopicForFeatures(math::Vector(3, 2.0)), 0);
  EXPECT_EQ((*snapshot)->InferTopicForFeatures(math::Vector(3, 6.0)), 1);
}

TEST(ServingSnapshotTest, ConcurrentFoldInsAreSafeAndIndependent) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "x");
  ASSERT_TRUE(snapshot.ok());
  // Reference results computed serially, one per stream.
  std::vector<std::vector<double>> expected(8);
  for (int i = 0; i < 8; ++i) {
    Rng rng = Rng::ForStream(123, static_cast<uint64_t>(i));
    auto theta = (*snapshot)->FoldInTheta({0, 1}, math::Vector(3, 3.0), 20,
                                          0.3, rng);
    ASSERT_TRUE(theta.ok());
    expected[static_cast<size_t>(i)] = *theta;
  }
  // The same fold-ins, raced across threads against the shared const
  // snapshot (TSan leg of ci.sh watches this test).
  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      Rng rng = Rng::ForStream(123, static_cast<uint64_t>(i));
      auto theta = (*snapshot)->FoldInTheta({0, 1}, math::Vector(3, 3.0), 20,
                                            0.3, rng);
      if (!theta.ok() || *theta != expected[static_cast<size_t>(i)]) {
        mismatches[static_cast<size_t>(i)] = 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(mismatches[static_cast<size_t>(i)], 0);
}

TEST(ServingSnapshotTest, FromModelFileRoundTripsFingerprint) {
  std::string path = testing::TempDir() + "/texrheo_serve_snapshot_model.txt";
  core::ModelSnapshot model = TinyModel();
  ASSERT_TRUE(core::SaveModel(path, model).ok());
  auto direct = ServingSnapshot::FromModel(std::move(model), "direct");
  auto loaded = ServingSnapshot::FromModelFile(path);
  ASSERT_TRUE(direct.ok() && loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->fingerprint(), (*direct)->fingerprint());
  EXPECT_EQ((*loaded)->source(), path);
  std::remove(path.c_str());
}

TEST(ServingSnapshotTest, FromModelFileFailsCleanlyOnMissingFile) {
  EXPECT_FALSE(ServingSnapshot::FromModelFile("/nonexistent/model.txt").ok());
}

// --- Memory-mapped binary snapshots ----------------------------------------

/// Packs TinyModel to TempDir under `name` and returns the base path.
std::string PackTinyBinary(const char* name) {
  std::string base = testing::TempDir() + "/" + name;
  EXPECT_TRUE(core::WriteModelBinary(TinyModel(), base).ok());
  return base;
}

TEST(ServingSnapshotTest, FromFileDispatchesOnExtension) {
  std::string v2_path = testing::TempDir() + "/texrheo_dispatch_model.txt";
  ASSERT_TRUE(core::SaveModel(v2_path, TinyModel()).ok());
  std::string base = PackTinyBinary("texrheo_dispatch_model");

  auto text = ServingSnapshot::FromFile(v2_path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_FALSE((*text)->mmap_backed());

  // Either spelling of the pair resolves to the mmap path.
  for (const std::string& path : {base + ".idx", base + ".dat"}) {
    auto mapped = ServingSnapshot::FromFile(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE((*mapped)->mmap_backed());
    EXPECT_GT((*mapped)->mapped_bytes(), 0u);
    EXPECT_EQ((*mapped)->fingerprint(), (*text)->fingerprint());
  }
  std::remove(v2_path.c_str());
}

TEST(ServingSnapshotTest, ConcurrentFoldInsOnMmapSnapshotMatchHeapSnapshot) {
  // The mmap read path (phi rows served straight from the mapping) must be
  // bit-identical to the heap path and safe to race; the TSan leg of ci.sh
  // watches this test like its heap twin above.
  std::string base = PackTinyBinary("texrheo_mmap_concurrent");
  auto heap = ServingSnapshot::FromModel(TinyModel(), "heap");
  auto mapped = ServingSnapshot::FromBinaryFile(base + ".idx");
  ASSERT_TRUE(heap.ok() && mapped.ok()) << mapped.status().ToString();
  std::vector<std::vector<double>> expected(8);
  for (int i = 0; i < 8; ++i) {
    Rng rng = Rng::ForStream(321, static_cast<uint64_t>(i));
    auto theta =
        (*heap)->FoldInTheta({0, 1}, math::Vector(3, 3.0), 20, 0.3, rng);
    ASSERT_TRUE(theta.ok());
    expected[static_cast<size_t>(i)] = *theta;
  }
  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      Rng rng = Rng::ForStream(321, static_cast<uint64_t>(i));
      auto theta =
          (*mapped)->FoldInTheta({0, 1}, math::Vector(3, 3.0), 20, 0.3, rng);
      if (!theta.ok() || *theta != expected[static_cast<size_t>(i)]) {
        mismatches[static_cast<size_t>(i)] = 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(mismatches[static_cast<size_t>(i)], 0);
}

TEST(ServingSnapshotTest, EmbeddingViewIsByteIdenticalAcrossHeapAndMmap) {
  // One trained table, two storage paths: a heap snapshot holding the
  // table and an mmap snapshot of a pack written from the same table must
  // expose bit-identical vectors and norms through embedding_view().
  embed::EmbeddingTable table;
  table.dim = 8;
  table.vectors.resize(4 * table.dim);
  for (size_t i = 0; i < table.vectors.size(); ++i) {
    table.vectors[i] = 0.5f - 0.03125f * static_cast<float>(i);
  }
  table.RecomputeNorms();

  std::string base = testing::TempDir() + "/texrheo_embed_pack";
  ASSERT_TRUE(
      core::WriteModelBinary(TinyModel(), base, FileOps::Real(), &table)
          .ok());
  auto heap = ServingSnapshot::FromModel(TinyModel(), "heap", table);
  auto mapped = ServingSnapshot::FromBinaryFile(base + ".idx");
  ASSERT_TRUE(heap.ok() && mapped.ok()) << mapped.status().ToString();

  ASSERT_TRUE((*heap)->has_embeddings());
  ASSERT_TRUE((*mapped)->has_embeddings());
  embed::EmbeddingView heap_view = (*heap)->embedding_view();
  embed::EmbeddingView mmap_view = (*mapped)->embedding_view();
  ASSERT_EQ(heap_view.dim, mmap_view.dim);
  ASSERT_EQ(heap_view.vocab, mmap_view.vocab);
  ASSERT_EQ(heap_view.vectors.size(), mmap_view.vectors.size());
  EXPECT_EQ(std::memcmp(heap_view.vectors.data(), mmap_view.vectors.data(),
                        heap_view.vectors.size() * sizeof(float)),
            0);
  ASSERT_EQ(heap_view.norms.size(), mmap_view.norms.size());
  EXPECT_EQ(std::memcmp(heap_view.norms.data(), mmap_view.norms.data(),
                        heap_view.norms.size() * sizeof(float)),
            0);
  // Embeddings ride outside the fingerprint: both snapshots identify the
  // same topic model as the table-less pack of it.
  auto plain = ServingSnapshot::FromModel(TinyModel(), "plain");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*heap)->fingerprint(), (*plain)->fingerprint());
  EXPECT_EQ((*mapped)->fingerprint(), (*plain)->fingerprint());
}

TEST(ServingSnapshotTest, LegacySnapshotsReportNoEmbeddings) {
  auto heap = ServingSnapshot::FromModel(TinyModel(), "plain");
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE((*heap)->has_embeddings());
  EXPECT_TRUE((*heap)->embedding_view().vectors.empty());
  auto mapped =
      ServingSnapshot::FromBinaryFile(PackTinyBinary("texrheo_no_embed"));
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE((*mapped)->has_embeddings());
  EXPECT_TRUE((*mapped)->embedding_view().vectors.empty());
}

/// Real mmap plus map/unmap accounting, so tests can observe exactly when
/// the mapping is released relative to snapshot references.
class CountingMapOps final : public core::MemoryMapOps {
 public:
  StatusOr<core::MappedRegion> Map(const std::string& path) override {
    maps.fetch_add(1, std::memory_order_relaxed);
    return core::MemoryMapOps::Map(path);
  }
  void Unmap(core::MappedRegion region) override {
    unmaps.fetch_add(1, std::memory_order_relaxed);
    core::MemoryMapOps::Unmap(region);
  }
  std::atomic<int> maps{0};
  std::atomic<int> unmaps{0};
};

TEST(ServingSnapshotTest, UnmapDeferredUntilLastReferenceDrops) {
  std::string base = PackTinyBinary("texrheo_mmap_refcount");
  CountingMapOps ops;
  auto loaded = ServingSnapshot::FromBinaryFile(base + ".idx", ops);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ops.maps.load(), 1);
  std::shared_ptr<const ServingSnapshot> holder = *loaded;
  loaded->reset();  // "Reload" drops the published pointer...
  EXPECT_EQ(ops.unmaps.load(), 0);  // ...but an in-flight query still reads.
  EXPECT_EQ(holder->phi(0)[0], 0.7);
  holder.reset();
  EXPECT_EQ(ops.unmaps.load(), 1);  // Last reference gone: region released.
}

TEST(ServingSnapshotTest, UnmapWaitsForInFlightQueriesUnderRace) {
  // Threads keep querying their own reference while the main thread drops
  // the published snapshot mid-flight (the reload pattern). The mapping
  // must be released exactly once, only after the stragglers finish; TSan
  // verifies no query ever touches unmapped memory.
  std::string base = PackTinyBinary("texrheo_mmap_reload_race");
  CountingMapOps ops;
  auto loaded = ServingSnapshot::FromBinaryFile(base + ".idx", ops);
  ASSERT_TRUE(loaded.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([snapshot = *loaded, i, &failures] {
      for (int sweep = 0; sweep < 30; ++sweep) {
        Rng rng = Rng::ForStream(55, static_cast<uint64_t>(i * 100 + sweep));
        auto theta =
            snapshot->FoldInTheta({0, 1}, math::Vector(3, 3.0), 5, 0.3, rng);
        if (!theta.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  loaded->reset();  // Unpublish while queries are in flight.
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ops.maps.load(), 1);
  EXPECT_EQ(ops.unmaps.load(), 1);
}

// --- Checkpoint loading -----------------------------------------------------

recipe::Dataset CheckpointDataset() {
  recipe::Dataset ds;
  ds.term_vocab.Add("w0");
  ds.term_vocab.Add("w1");
  auto add = [&ds](std::vector<int32_t> terms, double gel) {
    recipe::Document doc;
    doc.recipe_index = ds.documents.size();
    doc.term_ids = std::move(terms);
    doc.gel_feature = math::Vector(1, gel);
    doc.emulsion_feature = math::Vector(1, 0.0);
    doc.gel_concentration = math::Vector(1, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  };
  add({0, 0}, 1.0);
  add({1}, 3.0);
  add({0, 1}, 1.5);
  return ds;
}

core::JointTopicModelConfig CheckpointConfig() {
  core::JointTopicModelConfig config;
  config.num_topics = 2;
  config.alpha = 0.5;
  config.gamma = 0.5;
  config.use_emulsion_likelihood = false;
  config.seed = 31;
  return config;
}

TEST(ServingSnapshotTest, FromCheckpointFileRebuildsTheTrainedModel) {
  recipe::Dataset ds = CheckpointDataset();
  auto model = core::JointTopicModel::Create(CheckpointConfig(), &ds);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->RunSweeps(10).ok());
  std::string path = testing::TempDir() + "/texrheo_serve_snapshot.ckpt";
  ASSERT_TRUE(
      core::WriteCheckpointFile(path, model->CaptureCheckpoint()).ok());

  auto from_ckpt = ServingSnapshot::FromCheckpointFile(path, ds);
  ASSERT_TRUE(from_ckpt.ok()) << from_ckpt.status().ToString();
  auto direct = ServingSnapshot::FromModel(
      core::MakeSnapshot(model->Estimate(), ds.term_vocab), "direct");
  ASSERT_TRUE(direct.ok());
  // Bit-exact restore => identical serialized content => same fingerprint.
  EXPECT_EQ((*from_ckpt)->fingerprint(), (*direct)->fingerprint());
  std::remove(path.c_str());
}

TEST(ServingSnapshotTest, FromCheckpointFileRefusesWrongCorpus) {
  recipe::Dataset ds = CheckpointDataset();
  auto model = core::JointTopicModel::Create(CheckpointConfig(), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(5).ok());
  std::string path = testing::TempDir() + "/texrheo_serve_snapshot_bad.ckpt";
  ASSERT_TRUE(
      core::WriteCheckpointFile(path, model->CaptureCheckpoint()).ok());

  recipe::Dataset other = CheckpointDataset();
  other.documents.pop_back();  // Different corpus shape.
  EXPECT_FALSE(ServingSnapshot::FromCheckpointFile(path, other).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace texrheo::serve
