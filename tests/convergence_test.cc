#include "eval/convergence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace texrheo::eval {
namespace {

std::vector<double> IidNormalTrace(size_t n, uint64_t seed,
                                   double mean = 0.0, double sd = 1.0) {
  Rng rng(seed);
  std::vector<double> trace(n);
  for (double& v : trace) v = mean + sd * rng.NextGaussian();
  return trace;
}

// AR(1): x_t = rho x_{t-1} + e_t, strongly autocorrelated for rho near 1.
std::vector<double> Ar1Trace(size_t n, double rho, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> trace(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x = rho * x + rng.NextGaussian();
    trace[i] = x;
  }
  return trace;
}

TEST(GewekeTest, StationaryTracePassesDiagnostic) {
  auto trace = IidNormalTrace(2000, 1);
  auto result = GewekeDiagnostic(trace);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(std::abs(result->z_score), 3.0);
}

TEST(GewekeTest, TrendingTraceFailsDiagnostic) {
  std::vector<double> trace(2000);
  Rng rng(2);
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i] = 0.01 * static_cast<double>(i) + rng.NextGaussian();
  }
  auto result = GewekeDiagnostic(trace);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(std::abs(result->z_score), 5.0);
  EXPECT_LT(result->early_mean, result->late_mean);
}

TEST(GewekeTest, RejectsBadFractions) {
  auto trace = IidNormalTrace(100, 3);
  EXPECT_FALSE(GewekeDiagnostic(trace, 0.0, 0.5).ok());
  EXPECT_FALSE(GewekeDiagnostic(trace, 0.6, 0.6).ok());
  EXPECT_FALSE(GewekeDiagnostic({1.0, 2.0}, 0.1, 0.5).ok());
}

TEST(EssTest, IidTraceHasNearFullEss) {
  auto trace = IidNormalTrace(4000, 4);
  auto ess = EffectiveSampleSize(trace);
  ASSERT_TRUE(ess.ok());
  EXPECT_GT(*ess, 2000.0);
}

TEST(EssTest, AutocorrelatedTraceHasReducedEss) {
  auto trace = Ar1Trace(4000, 0.95, 5);
  auto ess = EffectiveSampleSize(trace);
  ASSERT_TRUE(ess.ok());
  // AR(1) with rho=0.95 has ESS ~ n (1-rho)/(1+rho) ~ n/39.
  EXPECT_LT(*ess, 600.0);
  EXPECT_GE(*ess, 1.0);
}

TEST(EssTest, EssOrderingFollowsAutocorrelation) {
  auto weak = EffectiveSampleSize(Ar1Trace(3000, 0.3, 6));
  auto strong = EffectiveSampleSize(Ar1Trace(3000, 0.9, 6));
  ASSERT_TRUE(weak.ok() && strong.ok());
  EXPECT_GT(*weak, *strong);
}

TEST(EssTest, ConstantTraceIsFullSize) {
  std::vector<double> trace(100, 3.14);
  auto ess = EffectiveSampleSize(trace);
  ASSERT_TRUE(ess.ok());
  EXPECT_DOUBLE_EQ(*ess, 100.0);
}

TEST(EssTest, RejectsShortTrace) {
  EXPECT_FALSE(EffectiveSampleSize({1.0, 2.0}).ok());
}

TEST(RhatTest, AgreeingChainsScoreNearOne) {
  std::vector<std::vector<double>> chains = {
      IidNormalTrace(1000, 7, 5.0), IidNormalTrace(1000, 8, 5.0),
      IidNormalTrace(1000, 9, 5.0)};
  auto rhat = PotentialScaleReduction(chains);
  ASSERT_TRUE(rhat.ok());
  EXPECT_NEAR(*rhat, 1.0, 0.05);
}

TEST(RhatTest, DivergentChainsScoreHigh) {
  std::vector<std::vector<double>> chains = {
      IidNormalTrace(1000, 10, 0.0), IidNormalTrace(1000, 11, 10.0)};
  auto rhat = PotentialScaleReduction(chains);
  ASSERT_TRUE(rhat.ok());
  EXPECT_GT(*rhat, 3.0);
}

TEST(RhatTest, RejectsMismatchedChains) {
  EXPECT_FALSE(PotentialScaleReduction({IidNormalTrace(100, 1)}).ok());
  EXPECT_FALSE(PotentialScaleReduction(
                   {IidNormalTrace(100, 1), IidNormalTrace(50, 2)})
                   .ok());
}

}  // namespace
}  // namespace texrheo::eval
