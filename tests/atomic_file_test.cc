#include "util/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fault_injection.h"
#include "util/csv.h"

namespace texrheo {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("atomic_file_test.txt");
    fs::remove(path_);
    fs::remove(path_ + ".tmp");
  }
  void TearDown() override {
    fs::remove(path_);
    fs::remove(path_ + ".tmp");
  }
  std::string path_;
};

TEST_F(AtomicFileTest, WritesContent) {
  ASSERT_TRUE(AtomicWriteFile(path_, "hello durable world").ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello durable world");
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, EmptyContentIsValid) {
  ASSERT_TRUE(AtomicWriteFile(path_, "").ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_F(AtomicFileTest, OverwriteReplacesContent) {
  ASSERT_TRUE(AtomicWriteFile(path_, "version 1").ok());
  ASSERT_TRUE(AtomicWriteFile(path_, "version 2").ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "version 2");
}

TEST_F(AtomicFileTest, ShortWritesAreRetriedToCompletion) {
  FaultInjectingFileOps ops;
  ops.max_write_bytes = 7;
  std::string content(100, 'x');
  content += "tail-marker";
  ASSERT_TRUE(AtomicWriteFile(path_, content, ops).ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
  EXPECT_GT(ops.write_calls, 10);
}

TEST_F(AtomicFileTest, ZeroProgressWriteFailsInsteadOfSpinning) {
  FaultInjectingFileOps ops;
  ops.write_returns_zero = true;
  Status status = AtomicWriteFile(path_, "content", ops);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, WriteFailureLeavesOldFileIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "the good old version").ok());
  FaultInjectingFileOps ops;
  ops.fail_write_after = 0;  // Disk full from the first byte.
  Status status = AtomicWriteFile(path_, "half-written replacement", ops);
  EXPECT_FALSE(status.ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "the good old version");
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, MidStreamDiskFullLeavesOldFileIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "the good old version").ok());
  FaultInjectingFileOps ops;
  ops.max_write_bytes = 4;
  ops.fail_write_after = 3;  // A few chunks land, then the disk fills.
  Status status = AtomicWriteFile(path_, std::string(64, 'y'), ops);
  EXPECT_FALSE(status.ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "the good old version");
}

TEST_F(AtomicFileTest, SyncFailurePropagatesAndPreservesTarget) {
  ASSERT_TRUE(AtomicWriteFile(path_, "the good old version").ok());
  FaultInjectingFileOps ops;
  ops.fail_sync = true;
  EXPECT_FALSE(AtomicWriteFile(path_, "unsynced", ops).ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "the good old version");
}

TEST_F(AtomicFileTest, CrashBeforeRenameLeavesOldFileIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "the good old version").ok());
  FaultInjectingFileOps ops;
  ops.crash_before_rename = true;
  ops.skip_remove = true;  // A dead process cannot clean up either.
  EXPECT_FALSE(AtomicWriteFile(path_, "never renamed", ops).ok());
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "the good old version");
  // The orphaned temp file is the expected crash debris.
  EXPECT_TRUE(fs::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, SyncsParentDirectoryAfterRename) {
  FaultInjectingFileOps ops;
  ASSERT_TRUE(AtomicWriteFile(path_, "durable entry", ops).ok());
  EXPECT_EQ(ops.sync_dir_calls, 1);
  EXPECT_EQ(ops.last_sync_dir, ParentDirOf(path_));
  EXPECT_EQ(ops.rename_calls, 1);
}

TEST_F(AtomicFileTest, DirSyncFailurePropagatesButFileIsRenamed) {
  FaultInjectingFileOps ops;
  ops.fail_sync_dir = true;
  Status status = AtomicWriteFile(path_, "entry at risk", ops);
  EXPECT_FALSE(status.ok());
  // The rename itself happened — the content is visible — but the caller
  // is told the directory entry may not survive power loss.
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "entry at risk");
}

TEST_F(AtomicFileTest, NoDirSyncOnEarlierFailure) {
  FaultInjectingFileOps ops;
  ops.crash_before_rename = true;
  EXPECT_FALSE(AtomicWriteFile(path_, "never renamed", ops).ok());
  EXPECT_EQ(ops.sync_dir_calls, 0);
}

TEST(ParentDirOfTest, HandlesRelativeAbsoluteAndBarePaths) {
  EXPECT_EQ(ParentDirOf("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(ParentDirOf("/c.txt"), "/");
  EXPECT_EQ(ParentDirOf("c.txt"), ".");
  EXPECT_EQ(ParentDirOf("rel/c.txt"), "rel");
}

TEST_F(AtomicFileTest, OpenForAppendPositionsAtEnd) {
  FileOps& real = FileOps::Real();
  for (const char* chunk : {"first|", "second"}) {
    auto fd = real.OpenForAppend(path_);
    ASSERT_TRUE(fd.ok());
    std::string data(chunk);
    ASSERT_TRUE(real.Write(*fd, data.data(), data.size()).ok());
    ASSERT_TRUE(real.Close(*fd).ok());
  }
  auto read = ReadFileToString(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first|second");
}

TEST_F(AtomicFileTest, OpenFailurePropagates) {
  FaultInjectingFileOps ops;
  ops.fail_open = true;
  EXPECT_FALSE(AtomicWriteFile(path_, "content", ops).ok());
  EXPECT_FALSE(fs::exists(path_));
}

TEST_F(AtomicFileTest, WritesIntoMissingDirectoryFails) {
  Status status =
      AtomicWriteFile("/nonexistent-texrheo-dir/file.txt", "content");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace texrheo
