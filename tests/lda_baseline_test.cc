#include "core/lda_baseline.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

// Word-only planted dataset: cluster 0 uses terms {0,1}, cluster 1 {2,3}.
recipe::Dataset WordClusterDataset(size_t docs_per_cluster, uint64_t seed) {
  recipe::Dataset ds;
  for (const char* w : {"w0", "w1", "w2", "w3"}) ds.term_vocab.Add(w);
  Rng rng(seed);
  for (int cluster = 0; cluster < 2; ++cluster) {
    for (size_t i = 0; i < docs_per_cluster; ++i) {
      recipe::Document doc;
      doc.recipe_index = ds.documents.size();
      int n = 4 + static_cast<int>(rng.NextUint(4));
      for (int t = 0; t < n; ++t) {
        doc.term_ids.push_back(cluster * 2 +
                               static_cast<int32_t>(rng.NextUint(2)));
      }
      doc.gel_feature = math::Vector(3, cluster == 0 ? 4.0 : 8.0);
      doc.emulsion_feature = math::Vector(2, 1.0);
      doc.gel_concentration = math::Vector(3, 0.01);
      doc.emulsion_concentration = math::Vector(2, 0.1);
      ds.documents.push_back(std::move(doc));
    }
  }
  return ds;
}

LdaConfig SmallConfig() {
  LdaConfig config;
  config.num_topics = 2;
  config.sweeps = 100;
  config.seed = 5;
  return config;
}

TEST(LdaModelTest, CreateValidates) {
  recipe::Dataset ds = WordClusterDataset(10, 1);
  EXPECT_FALSE(LdaModel::Create(SmallConfig(), nullptr).ok());
  LdaConfig bad = SmallConfig();
  bad.gamma = -1.0;
  EXPECT_FALSE(LdaModel::Create(bad, &ds).ok());
}

TEST(LdaModelTest, RecoversWordClusters) {
  recipe::Dataset ds = WordClusterDataset(50, 2);
  auto model = LdaModel::Create(SmallConfig(), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 50 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(model->DocTopics(), truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.95);
}

TEST(LdaModelTest, PhiAndThetaAreDistributions) {
  recipe::Dataset ds = WordClusterDataset(20, 3);
  auto model = LdaModel::Create(SmallConfig(), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  for (const auto& row : model->Phi()) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (const auto& row : model->Theta()) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LdaModelTest, LikelihoodImprovesWithTraining) {
  recipe::Dataset ds = WordClusterDataset(50, 4);
  auto model = LdaModel::Create(SmallConfig(), &ds);
  ASSERT_TRUE(model.ok());
  double before = model->LogLikelihood();
  ASSERT_TRUE(model->Train().ok());
  EXPECT_GT(model->LogLikelihood(), before);
}

TEST(FitPostHocGaussiansTest, FitsPerTopicMeans) {
  recipe::Dataset ds = WordClusterDataset(50, 5);
  std::vector<int> doc_topic(ds.documents.size());
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    doc_topic[d] = d < 50 ? 0 : 1;
  }
  math::NormalWishartParams prior;
  prior.mu0 = math::Vector(3, 6.0);
  prior.beta = 0.5;
  prior.nu = 6.0;
  prior.scale = math::Matrix::Identity(3, 0.5);
  auto gaussians =
      FitPostHocGaussians(ds, doc_topic, 2, /*use_gel=*/true, prior);
  ASSERT_TRUE(gaussians.ok());
  ASSERT_EQ(gaussians->size(), 2u);
  EXPECT_NEAR((*gaussians)[0].mean()[0], 4.0, 0.2);
  EXPECT_NEAR((*gaussians)[1].mean()[0], 8.0, 0.2);
}

TEST(FitPostHocGaussiansTest, EmptyTopicFallsBackToPrior) {
  recipe::Dataset ds = WordClusterDataset(10, 6);
  std::vector<int> doc_topic(ds.documents.size(), 0);  // Topic 1 empty.
  math::NormalWishartParams prior;
  prior.mu0 = math::Vector(3, 6.0);
  prior.beta = 0.5;
  prior.nu = 6.0;
  prior.scale = math::Matrix::Identity(3, 0.5);
  auto gaussians = FitPostHocGaussians(ds, doc_topic, 2, true, prior);
  ASSERT_TRUE(gaussians.ok());
  EXPECT_EQ((*gaussians)[1].mean(), prior.mu0);
}

TEST(FitPostHocGaussiansTest, RejectsSizeMismatch) {
  recipe::Dataset ds = WordClusterDataset(5, 7);
  math::NormalWishartParams prior;
  prior.mu0 = math::Vector(3, 6.0);
  prior.beta = 0.5;
  prior.nu = 6.0;
  prior.scale = math::Matrix::Identity(3, 0.5);
  EXPECT_FALSE(FitPostHocGaussians(ds, {0, 1}, 2, true, prior).ok());
}

}  // namespace
}  // namespace texrheo::core
