#include "util/status.h"

#include <gtest/gtest.h>

namespace texrheo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotFound("missing file").message(), "missing file");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  TEXRHEO_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseAssignOrReturn(-1, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(out, 0);
}

TEST(StatusMacrosTest, AssignOrReturnAssignsOnSuccess) {
  int out = 0;
  Status s = UseAssignOrReturn(21, &out);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(out, 42);
}

Status UseReturnIfError(bool fail) {
  TEXRHEO_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusMacrosTest, ReturnIfErrorShortCircuits) {
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
  EXPECT_EQ(UseReturnIfError(false).code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  // The serving wire protocol prints this name in ERR lines; clients
  // string-match it to distinguish shed requests from hard failures.
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace texrheo
