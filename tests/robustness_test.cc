// Fuzz-style robustness tests: the parsers (quantities, CSV, recipe rows,
// model files) must reject or survive arbitrary byte soup without crashing
// or violating invariants. Inputs are generated from seeded RNGs so every
// failure is reproducible.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/serialization.h"
#include "recipe/recipe.h"
#include "recipe/units.h"
#include "text/tokenizer.h"
#include "util/csv.h"
#include "util/rng.h"

namespace texrheo {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.NextUint(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-ish byte soup plus the delimiters parsers care about.
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 \t\n\".,;=/-+eE";
    s.push_back(kAlphabet[rng.NextUint(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

class FuzzSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeedTest, ParseQuantityNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    std::string input = RandomBytes(rng, 24);
    auto q = recipe::ParseQuantity(input);
    if (q.ok()) {
      EXPECT_GE(q->amount, 0.0) << "input: '" << input << "'";
    }
  }
}

TEST_P(FuzzSeedTest, CsvParserNeverCrashesAndRoundTripsWhenOk) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 1000; ++i) {
    std::string input = RandomBytes(rng, 64);
    auto row = ParseCsvLine(input);
    if (row.ok()) {
      // Reformatting and reparsing a successfully parsed row is stable.
      auto again = ParseCsvLine(FormatCsvLine(*row));
      ASSERT_TRUE(again.ok()) << "input: '" << input << "'";
      EXPECT_EQ(*again, *row);
    }
  }
}

TEST_P(FuzzSeedTest, CsvReaderHandlesArbitraryDocuments) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  for (int i = 0; i < 300; ++i) {
    auto rows = CsvReader::ReadAll(RandomBytes(rng, 256));
    if (rows.ok()) {
      for (const auto& row : *rows) {
        EXPECT_GE(row.size(), 1u);
      }
    }
  }
}

TEST_P(FuzzSeedTest, RecipeRowParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::string> row;
    size_t fields = rng.NextUint(7);
    for (size_t f = 0; f < fields; ++f) {
      row.push_back(RandomBytes(rng, 32));
    }
    auto parsed = recipe::RecipeFromRow(row);
    if (parsed.ok()) {
      // A successfully parsed recipe serializes back without error.
      auto round = recipe::RecipeFromRow(recipe::RecipeToRow(*parsed));
      EXPECT_TRUE(round.ok());
    }
  }
}

TEST_P(FuzzSeedTest, ModelDeserializerNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 4000);
  for (int i = 0; i < 200; ++i) {
    std::string content = "texrheo-model 1\n" + RandomBytes(rng, 200);
    auto snapshot = core::DeserializeModel(content);
    // Virtually all random bodies are rejected; none may crash.
    (void)snapshot;
  }
}

TEST_P(FuzzSeedTest, TokenizerHandlesArbitraryText) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  const auto& dict = text::TextureDictionary::Embedded();
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(rng, 128);
    auto tokens = text::Tokenizer::Tokenize(input);
    for (const auto& t : tokens) EXPECT_FALSE(t.empty());
    auto terms = text::Tokenizer::ExtractTextureTerms(input, dict);
    for (const auto& t : terms) EXPECT_TRUE(dict.Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(0, 5));

TEST(RobustnessTest, QuantityParserEdgeInputs) {
  // Handcrafted adversarial inputs.
  for (const char* input :
       {"", " ", "/", "1/", "/2", "1//2", "1/0", "-5 g", "1e308 g",
        "0x10 g", "1.2.3 g", "1 1 g", "999999999999999999999 g",
        ".5 cup", "1. g", "\t\n", "g 5", "1 / 2 cup"}) {
    auto q = recipe::ParseQuantity(input);
    if (q.ok()) {
      EXPECT_GE(q->amount, 0.0) << input;
      EXPECT_TRUE(std::isfinite(q->amount)) << input;
    }
  }
}

TEST(RobustnessTest, NegativeQuantityRejected) {
  EXPECT_FALSE(recipe::ParseQuantity("-5 g").ok());
}

TEST(RobustnessTest, HugeButFiniteQuantityAccepted) {
  auto q = recipe::ParseQuantity("100000 g");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 100000.0);
}

}  // namespace
}  // namespace texrheo
