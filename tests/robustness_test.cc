// Fuzz-style robustness tests: the parsers (quantities, CSV, recipe rows,
// model files) must reject or survive arbitrary byte soup without crashing
// or violating invariants. Inputs are generated from seeded RNGs so every
// failure is reproducible.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "core/checkpoint.h"
#include "core/joint_topic_model.h"
#include "core/model_binary.h"
#include "core/serialization.h"
#include "embed/embedding.h"
#include "recipe/dataset.h"
#include "recipe/recipe.h"
#include "recipe/units.h"
#include "text/tokenizer.h"
#include "util/csv.h"
#include "util/rng.h"

namespace texrheo {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.NextUint(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Printable-ish byte soup plus the delimiters parsers care about,
    // spiked with NULs, high bytes, and invalid UTF-8 lead/continuation
    // bytes so parsers see genuinely hostile input too.
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 \t\n\".,;=/-+eE"
        "\x00\x01\x7f\x80\xbf\xc0\xe0\xf0\xfe\xff";
    // sizeof - 1 drops only the terminating NUL; the embedded one stays.
    s.push_back(kAlphabet[rng.NextUint(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

class FuzzSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeedTest, ParseQuantityNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    std::string input = RandomBytes(rng, 24);
    auto q = recipe::ParseQuantity(input);
    if (q.ok()) {
      EXPECT_GE(q->amount, 0.0) << "input: '" << input << "'";
    }
  }
}

TEST_P(FuzzSeedTest, CsvParserNeverCrashesAndRoundTripsWhenOk) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 1000; ++i) {
    std::string input = RandomBytes(rng, 64);
    auto row = ParseCsvLine(input);
    if (row.ok()) {
      // Reformatting and reparsing a successfully parsed row is stable.
      auto again = ParseCsvLine(FormatCsvLine(*row));
      ASSERT_TRUE(again.ok()) << "input: '" << input << "'";
      EXPECT_EQ(*again, *row);
    }
  }
}

TEST_P(FuzzSeedTest, CsvReaderHandlesArbitraryDocuments) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  for (int i = 0; i < 300; ++i) {
    auto rows = CsvReader::ReadAll(RandomBytes(rng, 256));
    if (rows.ok()) {
      for (const auto& row : *rows) {
        EXPECT_GE(row.size(), 1u);
      }
    }
  }
}

TEST_P(FuzzSeedTest, RecipeRowParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::string> row;
    size_t fields = rng.NextUint(7);
    for (size_t f = 0; f < fields; ++f) {
      row.push_back(RandomBytes(rng, 32));
    }
    auto parsed = recipe::RecipeFromRow(row);
    if (parsed.ok()) {
      // A successfully parsed recipe serializes back without error.
      auto round = recipe::RecipeFromRow(recipe::RecipeToRow(*parsed));
      EXPECT_TRUE(round.ok());
    }
  }
}

TEST_P(FuzzSeedTest, ModelDeserializerNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 4000);
  for (int i = 0; i < 200; ++i) {
    std::string content = "texrheo-model 2\n" + RandomBytes(rng, 200);
    auto snapshot = core::DeserializeModel(content);
    // Virtually all random bodies are rejected; none may crash.
    (void)snapshot;
  }
}

TEST_P(FuzzSeedTest, CheckpointDecoderNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 6000);
  for (int i = 0; i < 200; ++i) {
    auto state = core::DecodeCheckpoint(RandomBytes(rng, 400));
    EXPECT_FALSE(state.ok());  // Random soup never checksums.
  }
  // Byte soup behind a valid frame header must be rejected cleanly too:
  // the length/CRC fields are attacker-controlled.
  for (int i = 0; i < 200; ++i) {
    std::string framed = "TXRCKPT1" + RandomBytes(rng, 400);
    EXPECT_FALSE(core::DecodeCheckpoint(framed).ok());
  }
}

TEST_P(FuzzSeedTest, BinaryIndexParserNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 7000);
  for (int i = 0; i < 400; ++i) {
    // Raw soup, then soup behind a valid magic so the parser gets past the
    // first gate and exercises the frame/CRC/entry decoding on hostile
    // length and count fields.
    std::string soup = RandomBytes(rng, 512);
    auto parsed = core::ParseModelBinaryIndex(soup);
    if (!parsed.ok()) EXPECT_FALSE(parsed.status().message().empty());
    auto framed = core::ParseModelBinaryIndex("texrmbi1" + soup);
    if (framed.ok()) {
      // Astronomically unlikely CRC collision aside, anything that parses
      // must still pass structural validation or fail with a clean Status.
      (void)core::ValidateModelBinaryIndex(*framed);
    }
  }
}

// Structure-aware index fuzz: take a *valid* packed model, mutate random
// header/section-table fields to adversarial values, re-encode with a
// correct trailing CRC (so the checksum gate cannot save us), and open.
// Every rejection must be a position-noted Status — section name or byte
// offset — and every acceptance must describe the original model.
TEST_P(FuzzSeedTest, BinaryIndexMutationsAlwaysYieldCleanStatus) {
  core::ModelSnapshot snapshot;
  snapshot.vocab.Add("purupuru");
  snapshot.vocab.Add("fuwafuwa");
  snapshot.vocab.Add("katai");
  snapshot.estimates.phi = {{0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}};
  for (int k = 0; k < 2; ++k) {
    snapshot.estimates.gel_topics.push_back(
        math::Gaussian::FromPrecision(math::Vector(2, 1.0 + k),
                                      math::Matrix::Identity(2))
            .value());
    snapshot.estimates.emulsion_topics.push_back(
        math::Gaussian::FromPrecision(math::Vector(3, 2.0 * k),
                                      math::Matrix::Identity(3))
            .value());
  }
  snapshot.estimates.topic_recipe_count = {3, 4};
  std::string base = testing::TempDir() + "/robust_binary_fuzz_" +
                     std::to_string(GetParam());
  ASSERT_TRUE(core::WriteModelBinary(snapshot, base).ok());
  core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(base);
  auto idx_bytes = ReadFileToString(paths.idx);
  ASSERT_TRUE(idx_bytes.ok());
  auto pristine = core::ParseModelBinaryIndex(*idx_bytes);
  ASSERT_TRUE(pristine.ok());

  static constexpr uint64_t kHostileValues[] = {
      0,  1,  7,  63, 64, 65, 4096, uint64_t{1} << 20, uint64_t{1} << 31,
      uint64_t{1} << 40, ~uint64_t{0}, ~uint64_t{0} - 63};
  Rng rng(static_cast<uint64_t>(GetParam()) + 8000);
  for (int i = 0; i < 300; ++i) {
    core::ModelBinaryIndex mutated = *pristine;
    size_t edits = 1 + rng.NextUint(3);
    for (size_t e = 0; e < edits; ++e) {
      uint64_t value = kHostileValues[rng.NextUint(
          sizeof(kHostileValues) / sizeof(kHostileValues[0]))];
      size_t slot = rng.NextUint(mutated.sections.size());
      switch (rng.NextUint(10)) {
        case 0: mutated.num_topics = static_cast<uint32_t>(value); break;
        case 1: mutated.vocab_size = value; break;
        case 2: mutated.gel_dim = static_cast<uint32_t>(value); break;
        case 3: mutated.emulsion_dim = static_cast<uint32_t>(value); break;
        case 4: mutated.data_file_size = value; break;
        case 5: mutated.sections[slot].id = static_cast<uint32_t>(value); break;
        case 6: mutated.sections[slot].offset = value; break;
        case 7: mutated.sections[slot].size = value; break;
        case 8: mutated.sections[slot].count = value; break;
        case 9:
          std::swap(mutated.sections[slot],
                    mutated.sections[rng.NextUint(mutated.sections.size())]);
          break;
      }
    }
    Status written =
        WriteStringToFile(paths.idx, core::EncodeModelBinaryIndex(mutated));
    ASSERT_TRUE(written.ok());
    auto opened = core::MappedModel::Open(base);
    if (!opened.ok()) {
      const std::string& message = opened.status().message();
      EXPECT_FALSE(message.empty());
      EXPECT_TRUE(message.find("model binary") != std::string::npos ||
                  message.find("mmap:") != std::string::npos)
          << "unlabelled rejection: " << message;
    } else {
      // The mutations happened to cancel out; the model served must be the
      // original, never a reinterpretation of its bytes.
      EXPECT_EQ((*opened)->num_topics(), 2);
      EXPECT_EQ((*opened)->vocab_size(), 3u);
      EXPECT_EQ((*opened)->fingerprint(), pristine->fingerprint);
    }
  }
  // Restore the pristine index: the pair still opens after the barrage.
  ASSERT_TRUE(
      WriteStringToFile(paths.idx, core::EncodeModelBinaryIndex(*pristine))
          .ok());
  EXPECT_TRUE(core::MappedModel::Open(base).ok());
}

// The same barrage against an 11-section pack: the optional embedding pair
// widens the index surface (two more id/offset/size/count quadruples and
// the both-or-neither rule), so it gets its own fuzz rounds. Acceptance
// must serve the original embeddings bit-for-bit, never a reinterpretation.
TEST_P(FuzzSeedTest, EmbeddingPackIndexMutationsAlwaysYieldCleanStatus) {
  core::ModelSnapshot snapshot;
  snapshot.vocab.Add("purupuru");
  snapshot.vocab.Add("fuwafuwa");
  snapshot.vocab.Add("katai");
  snapshot.estimates.phi = {{0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}};
  for (int k = 0; k < 2; ++k) {
    snapshot.estimates.gel_topics.push_back(
        math::Gaussian::FromPrecision(math::Vector(2, 1.0 + k),
                                      math::Matrix::Identity(2))
            .value());
    snapshot.estimates.emulsion_topics.push_back(
        math::Gaussian::FromPrecision(math::Vector(3, 2.0 * k),
                                      math::Matrix::Identity(3))
            .value());
  }
  snapshot.estimates.topic_recipe_count = {3, 4};
  embed::EmbeddingTable table;
  table.dim = 4;
  table.vectors.resize(3 * table.dim);
  for (size_t i = 0; i < table.vectors.size(); ++i) {
    table.vectors[i] = 0.125f * static_cast<float>(i) - 0.5f;
  }
  table.RecomputeNorms();
  std::string base = testing::TempDir() + "/robust_embed_fuzz_" +
                     std::to_string(GetParam());
  ASSERT_TRUE(
      core::WriteModelBinary(snapshot, base, FileOps::Real(), &table).ok());
  core::ModelBinaryPaths paths = core::ModelBinaryPathsFor(base);
  auto idx_bytes = ReadFileToString(paths.idx);
  ASSERT_TRUE(idx_bytes.ok());
  auto pristine = core::ParseModelBinaryIndex(*idx_bytes);
  ASSERT_TRUE(pristine.ok());
  ASSERT_EQ(pristine->sections.size(),
            core::kModelSectionCountWithEmbeddings);

  static constexpr uint64_t kHostileValues[] = {
      0,  1,  7,  63, 64, 65, 4096, uint64_t{1} << 20, uint64_t{1} << 31,
      uint64_t{1} << 40, ~uint64_t{0}, ~uint64_t{0} - 63};
  Rng rng(static_cast<uint64_t>(GetParam()) + 9000);
  for (int i = 0; i < 300; ++i) {
    core::ModelBinaryIndex mutated = *pristine;
    size_t edits = 1 + rng.NextUint(3);
    for (size_t e = 0; e < edits; ++e) {
      uint64_t value = kHostileValues[rng.NextUint(
          sizeof(kHostileValues) / sizeof(kHostileValues[0]))];
      // Bias half the section edits onto the trailing embedding pair so the
      // new validators see the hostile values, not just the legacy nine.
      size_t slot = rng.NextUint(2) == 0
                        ? 9 + rng.NextUint(2)
                        : rng.NextUint(mutated.sections.size());
      switch (rng.NextUint(11)) {
        case 0: mutated.num_topics = static_cast<uint32_t>(value); break;
        case 1: mutated.vocab_size = value; break;
        case 2: mutated.gel_dim = static_cast<uint32_t>(value); break;
        case 3: mutated.emulsion_dim = static_cast<uint32_t>(value); break;
        case 4: mutated.data_file_size = value; break;
        case 5: mutated.sections[slot].id = static_cast<uint32_t>(value); break;
        case 6: mutated.sections[slot].offset = value; break;
        case 7: mutated.sections[slot].size = value; break;
        case 8: mutated.sections[slot].count = value; break;
        case 9:
          std::swap(mutated.sections[slot],
                    mutated.sections[rng.NextUint(mutated.sections.size())]);
          break;
        case 10:
          // Structural downgrade: drop one or both trailing sections.
          mutated.sections.resize(9 + rng.NextUint(2));
          break;
      }
    }
    Status written =
        WriteStringToFile(paths.idx, core::EncodeModelBinaryIndex(mutated));
    ASSERT_TRUE(written.ok());
    auto opened = core::MappedModel::Open(base);
    if (!opened.ok()) {
      const std::string& message = opened.status().message();
      EXPECT_FALSE(message.empty());
      EXPECT_TRUE(message.find("model binary") != std::string::npos ||
                  message.find("mmap:") != std::string::npos)
          << "unlabelled rejection: " << message;
    } else {
      EXPECT_EQ((*opened)->num_topics(), 2);
      EXPECT_EQ((*opened)->vocab_size(), 3u);
      EXPECT_EQ((*opened)->fingerprint(), pristine->fingerprint);
      // Dropping both trailing sections yields a *legal* legacy view of
      // the same dat — embeddings reported absent, never half-served. Any
      // accepted index that still lists the pair must serve it bit-exact.
      if ((*opened)->has_embeddings()) {
        ASSERT_EQ((*opened)->embedding_matrix().size(),
                  table.vectors.size());
        EXPECT_EQ(std::memcmp((*opened)->embedding_matrix().data(),
                              table.vectors.data(),
                              table.vectors.size() * sizeof(float)),
                  0);
      } else {
        EXPECT_TRUE((*opened)->embedding_matrix().empty());
        EXPECT_TRUE((*opened)->embedding_norms().empty());
      }
    }
  }
  ASSERT_TRUE(
      WriteStringToFile(paths.idx, core::EncodeModelBinaryIndex(*pristine))
          .ok());
  EXPECT_TRUE(core::MappedModel::Open(base).ok());
}

TEST_P(FuzzSeedTest, TokenizerHandlesArbitraryText) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  const auto& dict = text::TextureDictionary::Embedded();
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(rng, 128);
    auto tokens = text::Tokenizer::Tokenize(input);
    for (const auto& t : tokens) EXPECT_FALSE(t.empty());
    auto terms = text::Tokenizer::ExtractTextureTerms(input, dict);
    for (const auto& t : terms) EXPECT_TRUE(dict.Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(0, 5));

// Truncation fuzz: a crash can cut a file at *any* byte; every strict
// prefix of both durable formats must be rejected, never half-loaded.
TEST(RobustnessTest, TruncatedModelAndCheckpointFilesAreAlwaysRejected) {
  core::ModelSnapshot snapshot;
  snapshot.vocab.Add("purupuru");
  snapshot.vocab.Add("fuwafuwa");
  snapshot.estimates.phi = {{0.6, 0.4}};
  snapshot.estimates.gel_topics.push_back(
      math::Gaussian::FromPrecision({1.0}, math::Matrix::Identity(1))
          .value());
  snapshot.estimates.emulsion_topics.push_back(
      math::Gaussian::FromPrecision({0.0}, math::Matrix::Identity(1))
          .value());
  snapshot.estimates.topic_recipe_count = {2};
  std::string model_bytes = core::SerializeModel(snapshot);
  for (size_t len = 0; len < model_bytes.size(); ++len) {
    EXPECT_FALSE(core::DeserializeModel(model_bytes.substr(0, len)).ok())
        << "model prefix of length " << len << " accepted";
  }

  recipe::Dataset ds;
  ds.term_vocab.Add("w0");
  recipe::Document doc;
  doc.recipe_index = 0;
  doc.term_ids = {0};
  doc.gel_feature = math::Vector(1, 1.0);
  doc.emulsion_feature = math::Vector(1, 0.0);
  doc.gel_concentration = math::Vector(1, 0.01);
  doc.emulsion_concentration = math::Vector(1, 0.1);
  ds.documents.push_back(std::move(doc));
  core::JointTopicModelConfig config;
  config.num_topics = 1;
  config.seed = 4;
  auto model = core::JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  std::string ckpt_bytes = core::EncodeCheckpoint(model->CaptureCheckpoint());
  for (size_t len = 0; len < ckpt_bytes.size(); ++len) {
    EXPECT_FALSE(
        core::DecodeCheckpoint(std::string_view(ckpt_bytes).substr(0, len))
            .ok())
        << "checkpoint prefix of length " << len << " accepted";
  }
}

TEST(RobustnessTest, QuantityParserEdgeInputs) {
  // Handcrafted adversarial inputs.
  for (const char* input :
       {"", " ", "/", "1/", "/2", "1//2", "1/0", "-5 g", "1e308 g",
        "0x10 g", "1.2.3 g", "1 1 g", "999999999999999999999 g",
        ".5 cup", "1. g", "\t\n", "g 5", "1 / 2 cup"}) {
    auto q = recipe::ParseQuantity(input);
    if (q.ok()) {
      EXPECT_GE(q->amount, 0.0) << input;
      EXPECT_TRUE(std::isfinite(q->amount)) << input;
    }
  }
}

TEST(RobustnessTest, NegativeQuantityRejected) {
  EXPECT_FALSE(recipe::ParseQuantity("-5 g").ok());
}

TEST(RobustnessTest, HugeButFiniteQuantityAccepted) {
  auto q = recipe::ParseQuantity("100000 g");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 100000.0);
}

}  // namespace
}  // namespace texrheo
