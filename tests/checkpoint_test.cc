// Checkpoint/resume correctness and crash-safety: bit-exact golden
// trajectories for the serial samplers, deterministic resume for the
// parallel engine, fingerprint/corpus validation, and a fault-injection
// suite proving recovery always lands on the newest valid checkpoint (or a
// clean Status) — never on a torn or poisoned state.

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/collapsed_sampler.h"
#include "core/joint_topic_model.h"
#include "recipe/dataset.h"
#include "fault_injection.h"
#include "util/csv.h"

namespace texrheo::core {
namespace {

namespace fs = std::filesystem;

constexpr int kTopics = 2;

// Same tiny corpus as sampler_exactness_test: 3 documents, 1-D features.
recipe::Dataset TinyDataset() {
  recipe::Dataset ds;
  ds.term_vocab.Add("w0");
  ds.term_vocab.Add("w1");
  auto add = [&ds](std::vector<int32_t> terms, double gel) {
    recipe::Document doc;
    doc.recipe_index = ds.documents.size();
    doc.term_ids = std::move(terms);
    doc.gel_feature = math::Vector(1, gel);
    doc.emulsion_feature = math::Vector(1, 0.0);
    doc.gel_concentration = math::Vector(1, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  };
  add({0, 0}, 1.0);
  add({1}, 3.0);
  add({0, 1}, 1.5);
  return ds;
}

math::NormalWishartParams TinyPrior() {
  math::NormalWishartParams nw;
  nw.mu0 = math::Vector(1, 2.0);
  nw.beta = 1.0;
  nw.nu = 3.0;
  nw.scale = math::Matrix::Identity(1, 0.5);
  return nw;
}

JointTopicModelConfig TinyConfig(uint64_t seed) {
  JointTopicModelConfig config;
  config.num_topics = kTopics;
  config.alpha = 0.5;
  config.gamma = 0.5;
  config.auto_prior = false;
  config.gel_prior = TinyPrior();
  config.emulsion_prior = TinyPrior();
  config.use_emulsion_likelihood = false;
  config.seed = seed;
  return config;
}

// Fresh per-test checkpoint directory.
std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/texrheo_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Frame format.

TEST(CheckpointFrameTest, EncodeDecodeRoundTrip) {
  recipe::Dataset ds = TinyDataset();
  auto model = JointTopicModel::Create(TinyConfig(11), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(5).ok());
  CheckpointState state = model->CaptureCheckpoint();

  auto decoded = DecodeCheckpoint(EncodeCheckpoint(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->fingerprint, state.fingerprint);
  EXPECT_EQ(decoded->completed_sweeps, 5);
  EXPECT_EQ(decoded->y, state.y);
  EXPECT_EQ(decoded->z, state.z);
  EXPECT_EQ(decoded->n_dk, state.n_dk);
  EXPECT_EQ(decoded->n_kv, state.n_kv);
  EXPECT_EQ(decoded->n_k, state.n_k);
  EXPECT_EQ(decoded->m_k, state.m_k);
  EXPECT_EQ(decoded->likelihood_trace, state.likelihood_trace);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(decoded->master_rng.words[i], state.master_rng.words[i]);
  }
  EXPECT_EQ(decoded->master_rng.has_cached_gaussian,
            state.master_rng.has_cached_gaussian);
  EXPECT_EQ(decoded->master_rng.cached_gaussian_bits,
            state.master_rng.cached_gaussian_bits);
  ASSERT_EQ(decoded->gel_topics.size(), state.gel_topics.size());
  for (size_t k = 0; k < state.gel_topics.size(); ++k) {
    EXPECT_EQ(decoded->gel_topics[k].mean().data(),
              state.gel_topics[k].mean().data());
    EXPECT_TRUE(decoded->gel_topics[k].precision() ==
                state.gel_topics[k].precision());
  }
}

TEST(CheckpointFrameTest, EveryStrictPrefixIsRejected) {
  recipe::Dataset ds = TinyDataset();
  auto model = JointTopicModel::Create(TinyConfig(3), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(2).ok());
  std::string bytes = EncodeCheckpoint(model->CaptureCheckpoint());
  ASSERT_GT(bytes.size(), 64u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeCheckpoint(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(CheckpointFrameTest, TrailingGarbageIsRejected) {
  recipe::Dataset ds = TinyDataset();
  auto model = JointTopicModel::Create(TinyConfig(3), &ds);
  ASSERT_TRUE(model.ok());
  std::string bytes = EncodeCheckpoint(model->CaptureCheckpoint());
  EXPECT_FALSE(DecodeCheckpoint(bytes + "x").ok());
  EXPECT_FALSE(DecodeCheckpoint(bytes + std::string(100, '\0')).ok());
}

TEST(CheckpointFrameTest, BitFlipsAreRejected) {
  recipe::Dataset ds = TinyDataset();
  auto model = JointTopicModel::Create(TinyConfig(3), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(1).ok());
  std::string bytes = EncodeCheckpoint(model->CaptureCheckpoint());
  for (size_t pos = 0; pos < bytes.size(); pos += 17) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    auto decoded = DecodeCheckpoint(corrupted);
    if (!decoded.ok()) continue;
    // A flip that still decodes must have produced the identical payload
    // (impossible here) — treat any acceptance as failure.
    ADD_FAILURE() << "bit flip at byte " << pos << " went undetected";
  }
}

TEST(CheckpointFrameTest, CollapsedStateRoundTripsWithStats) {
  recipe::Dataset ds = TinyDataset();
  auto model = CollapsedJointTopicModel::Create(TinyConfig(21), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(4).ok());
  CheckpointState state = model->CaptureCheckpoint();
  ASSERT_EQ(state.fingerprint.sampler, SamplerKind::kCollapsed);
  ASSERT_EQ(state.gel_stats.size(), static_cast<size_t>(kTopics));

  auto decoded = DecodeCheckpoint(EncodeCheckpoint(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  for (size_t k = 0; k < state.gel_stats.size(); ++k) {
    EXPECT_EQ(decoded->gel_stats[k].n, state.gel_stats[k].n);
    EXPECT_EQ(decoded->gel_stats[k].sum, state.gel_stats[k].sum);
    EXPECT_EQ(decoded->gel_stats[k].sum_outer, state.gel_stats[k].sum_outer);
  }
}

TEST(CheckpointFrameTest, SparseStateRoundTripsWithStaleSnapshot) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(23);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 2;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(5).ok());
  CheckpointState state = model->CaptureCheckpoint();
  ASSERT_TRUE(state.fingerprint.sparse_sampler);
  EXPECT_EQ(state.fingerprint.alias_rebuild_interval, 2);
  EXPECT_EQ(state.fingerprint.mh_steps, 2);
  // Rebuilds fire at epochs 0, 2, 4 (first build, then staleness >= R), so
  // the snapshot carries the epoch of the last one.
  ASSERT_FALSE(state.stale_n_kv.empty());
  ASSERT_GE(state.last_alias_rebuild_sweep, 0);

  auto decoded = DecodeCheckpoint(EncodeCheckpoint(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->fingerprint, state.fingerprint);
  EXPECT_EQ(decoded->last_alias_rebuild_sweep, state.last_alias_rebuild_sweep);
  EXPECT_EQ(decoded->stale_n_kv, state.stale_n_kv);
  EXPECT_EQ(decoded->stale_n_k, state.stale_n_k);
}

// ---------------------------------------------------------------------------
// Golden trajectories: resume must be bit-exact for serial chains.

TEST(CheckpointResumeTest, SerialJointChainResumesBitExactly) {
  recipe::Dataset ds = TinyDataset();
  auto straight = JointTopicModel::Create(TinyConfig(42), &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(200).ok());

  auto first_half = JointTopicModel::Create(TinyConfig(42), &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(100).ok());
  // Round-trip the snapshot through the binary frame, as a real resume
  // after a crash would.
  auto state = DecodeCheckpoint(EncodeCheckpoint(first_half->CaptureCheckpoint()));
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  auto resumed = JointTopicModel::Create(TinyConfig(42), &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(*state).ok());
  EXPECT_EQ(resumed->completed_sweeps(), 100);
  ASSERT_TRUE(resumed->RunSweeps(100).ok());

  EXPECT_EQ(resumed->completed_sweeps(), straight->completed_sweeps());
  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
  // The likelihood trace is doubles; bit-exact resume means *equality*,
  // not approximate agreement.
  ASSERT_EQ(resumed->likelihood_trace().size(),
            straight->likelihood_trace().size());
  for (size_t i = 0; i < straight->likelihood_trace().size(); ++i) {
    EXPECT_EQ(resumed->likelihood_trace()[i], straight->likelihood_trace()[i])
        << "trace diverged at sweep " << i;
  }
}

TEST(CheckpointResumeTest, SerialCollapsedChainResumesBitExactly) {
  recipe::Dataset ds = TinyDataset();
  auto straight = CollapsedJointTopicModel::Create(TinyConfig(7), &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(200).ok());

  auto first_half = CollapsedJointTopicModel::Create(TinyConfig(7), &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(100).ok());
  auto state = DecodeCheckpoint(EncodeCheckpoint(first_half->CaptureCheckpoint()));
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  auto resumed = CollapsedJointTopicModel::Create(TinyConfig(7), &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(*state).ok());
  ASSERT_TRUE(resumed->RunSweeps(100).ok());

  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
  // The collapsed sampler's sufficient statistics carry round-off from
  // incremental removes; bit-exact restore means the predictive likelihood
  // is *equal*, not merely close.
  auto ll_straight = straight->PredictiveLogLikelihood();
  auto ll_resumed = resumed->PredictiveLogLikelihood();
  ASSERT_TRUE(ll_straight.ok());
  ASSERT_TRUE(ll_resumed.ok());
  EXPECT_EQ(*ll_resumed, *ll_straight);
}

// Sparse/alias/MH chain: the stale snapshot is part of the state, so resume
// must be bit-exact even when the capture point falls *between* alias
// rebuilds — the resumed chain must keep serving the same stale proposal
// (not a freshly rebuilt one) until the next scheduled rebuild. R = 5 with
// a capture at sweep 98 puts the capture three sweeps past the last rebuild
// (epoch 95).
TEST(CheckpointResumeTest, SerialSparseChainResumesBitExactlyBetweenRebuilds) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(44);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 5;
  config.mh_steps = 2;

  auto straight = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(200).ok());

  auto first_half = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(98).ok());
  CheckpointState captured = first_half->CaptureCheckpoint();
  // The capture really is mid-interval: last rebuild at epoch 95.
  ASSERT_EQ(captured.last_alias_rebuild_sweep, 95);
  auto state = DecodeCheckpoint(EncodeCheckpoint(captured));
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(*state).ok());
  EXPECT_EQ(resumed->completed_sweeps(), 98);
  ASSERT_TRUE(resumed->RunSweeps(102).ok());

  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
  ASSERT_EQ(resumed->likelihood_trace().size(),
            straight->likelihood_trace().size());
  for (size_t i = 0; i < straight->likelihood_trace().size(); ++i) {
    EXPECT_EQ(resumed->likelihood_trace()[i], straight->likelihood_trace()[i])
        << "trace diverged at sweep " << i;
  }
}

TEST(CheckpointResumeTest, SparseChainResumesBitExactlyAtRebuildBoundary) {
  // Capture with staleness exactly at R (last rebuild at epoch 95, capture
  // at sweep 100): the very next sweep triggers a rebuild on both the
  // straight and the resumed chain; both must schedule it identically.
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(46);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 5;

  auto straight = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(120).ok());

  auto first_half = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(100).ok());
  CheckpointState captured = first_half->CaptureCheckpoint();
  ASSERT_EQ(captured.last_alias_rebuild_sweep, 95);

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(captured).ok());
  ASSERT_TRUE(resumed->RunSweeps(20).ok());
  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
}

TEST(CheckpointResumeTest, ParallelSparseChainResumesDeterministically) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(48);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 4;
  config.num_threads = 2;

  auto straight = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(60).ok());

  auto first_half = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(30).ok());
  CheckpointState state = first_half->CaptureCheckpoint();
  EXPECT_FALSE(state.shard_rngs.empty());

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(state).ok());
  ASSERT_TRUE(resumed->RunSweeps(30).ok());
  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
}

TEST(CheckpointResumeTest, OptimizedAlphaSurvivesResume) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(9);
  config.optimize_alpha = true;
  config.burn_in_sweeps = 5;
  config.alpha_update_interval = 5;

  auto straight = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(60).ok());

  auto first_half = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(30).ok());
  CheckpointState state = first_half->CaptureCheckpoint();
  EXPECT_EQ(state.fingerprint.alpha, 0.5);  // Initial, not drifted.
  EXPECT_EQ(state.current_alpha, first_half->alpha());

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(state).ok());
  EXPECT_EQ(resumed->alpha(), first_half->alpha());
  ASSERT_TRUE(resumed->RunSweeps(30).ok());
  EXPECT_EQ(resumed->alpha(), straight->alpha());
  EXPECT_EQ(resumed->y(), straight->y());
}

TEST(CheckpointResumeTest, ParallelChainResumesDeterministically) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(13);
  config.num_threads = 2;

  auto straight = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(60).ok());

  auto first_half = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(first_half.ok());
  ASSERT_TRUE(first_half->RunSweeps(30).ok());
  CheckpointState state = first_half->CaptureCheckpoint();
  EXPECT_FALSE(state.shard_rngs.empty());

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->RestoreFromCheckpoint(state).ok());
  ASSERT_TRUE(resumed->RunSweeps(30).ok());
  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
}

// ---------------------------------------------------------------------------
// Resume safety: wrong config / wrong corpus.

TEST(CheckpointSafetyTest, FingerprintMismatchIsRefused) {
  recipe::Dataset ds = TinyDataset();
  auto source = JointTopicModel::Create(TinyConfig(1), &ds);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(source->RunSweeps(3).ok());
  CheckpointState state = source->CaptureCheckpoint();

  // Different seed.
  auto other_seed = JointTopicModel::Create(TinyConfig(2), &ds);
  ASSERT_TRUE(other_seed.ok());
  Status status = other_seed->RestoreFromCheckpoint(state);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos);

  // Different topic count.
  JointTopicModelConfig wide = TinyConfig(1);
  wide.num_topics = 3;
  auto other_k = JointTopicModel::Create(wide, &ds);
  ASSERT_TRUE(other_k.ok());
  EXPECT_EQ(other_k->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);

  // Different alpha.
  JointTopicModelConfig hot = TinyConfig(1);
  hot.alpha = 0.9;
  auto other_alpha = JointTopicModel::Create(hot, &ds);
  ASSERT_TRUE(other_alpha.ok());
  EXPECT_EQ(other_alpha->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);

  // Different thread plan.
  JointTopicModelConfig threaded = TinyConfig(1);
  threaded.num_threads = 2;
  auto other_threads = JointTopicModel::Create(threaded, &ds);
  ASSERT_TRUE(other_threads.ok());
  EXPECT_EQ(other_threads->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);

  // A collapsed model must refuse a joint checkpoint outright.
  auto collapsed = CollapsedJointTopicModel::Create(TinyConfig(1), &ds);
  ASSERT_TRUE(collapsed.ok());
  EXPECT_EQ(collapsed->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointSafetyTest, ModifiedCorpusIsRefused) {
  recipe::Dataset ds = TinyDataset();
  auto source = JointTopicModel::Create(TinyConfig(5), &ds);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(source->RunSweeps(3).ok());
  CheckpointState state = source->CaptureCheckpoint();

  // Same shape, different token: the count cross-check must catch it.
  recipe::Dataset modified = TinyDataset();
  modified.documents[0].term_ids[0] = 1;
  auto target = JointTopicModel::Create(TinyConfig(5), &modified);
  ASSERT_TRUE(target.ok());
  Status status = target->RestoreFromCheckpoint(state);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("corpus"), std::string::npos);

  // A well-matched model still accepts it (sanity check on the test).
  auto clean = JointTopicModel::Create(TinyConfig(5), &ds);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->RestoreFromCheckpoint(state).ok());
}

// ---------------------------------------------------------------------------
// File-level checkpointing, retention, and recovery.

TEST(CheckpointFileTest, TrainingWritesAndResumesFromDirectory) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(31);
  config.checkpoint_interval = 5;
  config.checkpoint_dir = FreshDir("train_resume");
  config.checkpoint_keep_last = 3;

  auto straight = JointTopicModel::Create(TinyConfig(31), &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(20).ok());

  auto writer = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->RunSweeps(10).ok());
  std::vector<std::string> files = ListCheckpointFiles(config.checkpoint_dir);
  ASSERT_EQ(files.size(), 2u);  // Sweeps 10 (newest) and 5.
  EXPECT_NE(files[0].find("ckpt-000000010.ckpt"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt-000000005.ckpt"), std::string::npos);

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->Resume().ok());
  EXPECT_EQ(resumed->completed_sweeps(), 10);
  ASSERT_TRUE(resumed->RunSweeps(10).ok());
  // checkpoint_interval is not part of the fingerprint, so the resumed
  // chain matches a straight-through run with checkpointing off.
  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
}

// Crash mid-training with the sparse sampler: checkpoint_interval = 3 and
// R = 5 guarantee the newest surviving checkpoint (sweep 9) falls between
// alias rebuilds (epochs 0 and 5), so Resume() must reconstruct the stale
// bank from the snapshot rather than rebuilding from live counts — and the
// continuation must be bit-identical to a run that never crashed.
TEST(CheckpointFileTest, SparseTrainingCrashResumesBitExactly) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(43);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 5;
  config.checkpoint_interval = 3;
  config.checkpoint_dir = FreshDir("sparse_crash");

  JointTopicModelConfig no_ckpt = config;
  no_ckpt.checkpoint_interval = 0;
  no_ckpt.checkpoint_dir.clear();
  auto straight = JointTopicModel::Create(no_ckpt, &ds);
  ASSERT_TRUE(straight.ok());
  ASSERT_TRUE(straight->RunSweeps(30).ok());

  // "Crash" after 10 sweeps: the process dies, losing sweep 10; the newest
  // checkpoint on disk is sweep 9.
  {
    auto doomed = JointTopicModel::Create(config, &ds);
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(doomed->RunSweeps(10).ok());
  }
  std::string winner;
  auto newest = LoadLatestValidCheckpoint(config.checkpoint_dir, &winner);
  ASSERT_TRUE(newest.ok());
  ASSERT_EQ(newest->completed_sweeps, 9);
  ASSERT_EQ(newest->last_alias_rebuild_sweep, 5);  // Mid-interval.

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->Resume().ok());
  EXPECT_EQ(resumed->completed_sweeps(), 9);
  ASSERT_TRUE(resumed->RunSweeps(21).ok());
  EXPECT_EQ(resumed->z(), straight->z());
  EXPECT_EQ(resumed->y(), straight->y());
  ASSERT_EQ(resumed->likelihood_trace().size(),
            straight->likelihood_trace().size());
  for (size_t i = 0; i < straight->likelihood_trace().size(); ++i) {
    EXPECT_EQ(resumed->likelihood_trace()[i], straight->likelihood_trace()[i])
        << "trace diverged at sweep " << i;
  }
}

TEST(CheckpointSafetyTest, SparseKnobMismatchIsRefused) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig sparse = TinyConfig(45);
  sparse.sparse_sampler = true;
  sparse.alias_rebuild_interval = 5;
  auto source = JointTopicModel::Create(sparse, &ds);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(source->RunSweeps(3).ok());
  CheckpointState state = source->CaptureCheckpoint();

  // A dense model must refuse a sparse checkpoint: the staleness schedule
  // is part of the trajectory.
  auto dense = JointTopicModel::Create(TinyConfig(45), &ds);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);

  // So must a sparse model with a different rebuild interval or MH budget.
  JointTopicModelConfig other_r = sparse;
  other_r.alias_rebuild_interval = 9;
  auto model_r = JointTopicModel::Create(other_r, &ds);
  ASSERT_TRUE(model_r.ok());
  EXPECT_EQ(model_r->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);

  JointTopicModelConfig other_mh = sparse;
  other_mh.mh_steps = 4;
  auto model_mh = JointTopicModel::Create(other_mh, &ds);
  ASSERT_TRUE(model_mh.ok());
  EXPECT_EQ(model_mh->RestoreFromCheckpoint(state).code(),
            StatusCode::kFailedPrecondition);

  // And a matching sparse model accepts it.
  auto clean = JointTopicModel::Create(sparse, &ds);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->RestoreFromCheckpoint(state).ok());
}

TEST(CheckpointFileTest, RetentionKeepsOnlyNewestFiles) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(33);
  config.checkpoint_interval = 1;
  config.checkpoint_dir = FreshDir("retention");
  config.checkpoint_keep_last = 2;

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(5).ok());
  std::vector<std::string> files = ListCheckpointFiles(config.checkpoint_dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("ckpt-000000005.ckpt"), std::string::npos);
  EXPECT_NE(files[1].find("ckpt-000000004.ckpt"), std::string::npos);
}

// Retention pruning racing a concurrent Resume(): the online-refresh path
// (src/ingest) resumes from the newest checkpoint while the training side
// keeps writing and pruning. A reader must always land on *some* valid
// checkpoint (atomic writes mean a listed file is whole; a pruned file is
// skipped as unreadable) or a clean NotFound — never a torn restore, an
// unexpected error, or a crash.
TEST(CheckpointFileTest, PruneRacingResumeLandsOnValidStateOrCleanNotFound) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(41);
  config.checkpoint_dir = FreshDir("prune_race");
  config.checkpoint_keep_last = 64;  // The racing prune below is stricter.

  auto writer = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(writer.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> resumed{0};
  std::atomic<int> not_found{0};
  std::mutex bad_mu;
  std::vector<std::string> bad;
  std::thread reader([&] {
    recipe::Dataset local = TinyDataset();
    while (!stop.load(std::memory_order_relaxed)) {
      auto model = JointTopicModel::Create(config, &local);
      if (!model.ok()) continue;
      Status status = model->Resume();
      if (status.ok()) {
        resumed.fetch_add(1, std::memory_order_relaxed);
        // A successful resume restored a complete sweep's state.
        if (model->completed_sweeps() < 1) {
          std::lock_guard<std::mutex> lock(bad_mu);
          bad.push_back("resumed at sweep 0");
        }
      } else if (status.code() == StatusCode::kNotFound) {
        not_found.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::lock_guard<std::mutex> lock(bad_mu);
        bad.push_back(status.ToString());
      }
    }
  });

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(writer->RunSweeps(1).ok());
    ASSERT_TRUE(writer->WriteCheckpointNow().ok());
    // Aggressive retention: only the newest two survive each round, so
    // the reader keeps seeing files vanish under its directory listing.
    ASSERT_TRUE(PruneCheckpoints(config.checkpoint_dir, 2).ok());
  }
  stop = true;
  reader.join();

  {
    std::lock_guard<std::mutex> lock(bad_mu);
    EXPECT_TRUE(bad.empty()) << bad.front();
  }
  EXPECT_GT(resumed.load() + not_found.load(), 0);

  // After the dust settles, a straight resume lands on the final sweep.
  auto final_model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(final_model.ok());
  ASSERT_TRUE(final_model->Resume().ok());
  EXPECT_EQ(final_model->completed_sweeps(), 40);
}

TEST(CheckpointFileTest, RecoverySkipsCorruptNewestFile) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(35);
  config.checkpoint_interval = 5;
  config.checkpoint_dir = FreshDir("skip_corrupt");

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(10).ok());

  // Flip one byte in the newest checkpoint.
  std::string newest =
      ListCheckpointFiles(config.checkpoint_dir).front();
  auto bytes = ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(newest, corrupted).ok());

  std::string winner;
  auto state = LoadLatestValidCheckpoint(config.checkpoint_dir, &winner);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->completed_sweeps, 5);
  EXPECT_NE(winner.find("ckpt-000000005.ckpt"), std::string::npos);

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->Resume().ok());
  EXPECT_EQ(resumed->completed_sweeps(), 5);
}

TEST(CheckpointFileTest, RecoverySkipsTruncatedNewestFile) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(37);
  config.checkpoint_interval = 5;
  config.checkpoint_dir = FreshDir("skip_truncated");

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(10).ok());

  std::string newest = ListCheckpointFiles(config.checkpoint_dir).front();
  auto bytes = ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  // Several torn-write lengths, including an empty file.
  for (size_t len : {size_t{0}, size_t{5}, bytes->size() / 3,
                     bytes->size() - 1}) {
    ASSERT_TRUE(WriteStringToFile(newest, bytes->substr(0, len)).ok());
    auto state = LoadLatestValidCheckpoint(config.checkpoint_dir);
    ASSERT_TRUE(state.ok()) << "torn length " << len;
    EXPECT_EQ(state->completed_sweeps, 5) << "torn length " << len;
  }
}

TEST(CheckpointFileTest, NoValidCheckpointIsNotFound) {
  std::string dir = FreshDir("none_valid");
  EXPECT_EQ(LoadLatestValidCheckpoint(dir).status().code(),
            StatusCode::kNotFound);

  // Garbage, stray, and torn-temp files must not confuse recovery.
  ASSERT_TRUE(WriteStringToFile(dir + "/ckpt-000000003.ckpt", "junk").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/ckpt-000000009.ckpt.tmp", "x").ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/notes.txt", "unrelated").ok());
  EXPECT_EQ(LoadLatestValidCheckpoint(dir).status().code(),
            StatusCode::kNotFound);

  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(39);
  config.checkpoint_dir = dir;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Resume().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Fault injection on the checkpoint write path.

TEST(CheckpointFaultTest, CrashBeforeRenamePreservesPreviousCheckpoint) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(51);
  config.checkpoint_interval = 5;
  config.checkpoint_dir = FreshDir("crash_rename");

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(5).ok());  // Clean checkpoint at sweep 5.

  FaultInjectingFileOps faulty;
  faulty.crash_before_rename = true;
  faulty.skip_remove = true;
  model->set_checkpoint_file_ops(&faulty);
  Status status = model->RunSweeps(5);  // Checkpoint at sweep 10 "crashes".
  EXPECT_FALSE(status.ok());
  model->set_checkpoint_file_ops(nullptr);

  // Recovery lands on the sweep-5 checkpoint; the orphaned temp file and
  // the failed sweep-10 write are invisible to it.
  std::string winner;
  auto state = LoadLatestValidCheckpoint(config.checkpoint_dir, &winner);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->completed_sweeps, 5);

  auto resumed = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->Resume().ok());
  EXPECT_EQ(resumed->completed_sweeps(), 5);
}

TEST(CheckpointFaultTest, DiskFullMidWritePreservesPreviousCheckpoint) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(53);
  config.checkpoint_interval = 5;
  config.checkpoint_dir = FreshDir("disk_full");

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(5).ok());

  FaultInjectingFileOps faulty;
  faulty.max_write_bytes = 64;
  faulty.fail_write_after = 3;  // A few chunks land, then ENOSPC.
  model->set_checkpoint_file_ops(&faulty);
  EXPECT_FALSE(model->RunSweeps(5).ok());
  model->set_checkpoint_file_ops(nullptr);

  auto state = LoadLatestValidCheckpoint(config.checkpoint_dir);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->completed_sweeps, 5);
}

TEST(CheckpointFaultTest, ShortWritesStillProduceValidCheckpoints) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(55);
  config.checkpoint_interval = 2;
  config.checkpoint_dir = FreshDir("short_writes");

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  FaultInjectingFileOps slow;
  slow.max_write_bytes = 13;  // Every write is short; all must be retried.
  model->set_checkpoint_file_ops(&slow);
  ASSERT_TRUE(model->RunSweeps(4).ok());
  model->set_checkpoint_file_ops(nullptr);

  auto state = LoadLatestValidCheckpoint(config.checkpoint_dir);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->completed_sweeps, 4);
}

TEST(CheckpointFaultTest, CollapsedSamplerRecoversFromFaultyWrites) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(57);
  config.checkpoint_interval = 3;
  config.checkpoint_dir = FreshDir("collapsed_faults");

  auto model = CollapsedJointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(3).ok());

  FaultInjectingFileOps faulty;
  faulty.crash_before_rename = true;
  faulty.skip_remove = true;
  model->set_checkpoint_file_ops(&faulty);
  EXPECT_FALSE(model->RunSweeps(3).ok());
  model->set_checkpoint_file_ops(nullptr);

  auto resumed = CollapsedJointTopicModel::Create(config, &ds);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->Resume().ok());
  EXPECT_EQ(resumed->completed_sweeps(), 3);
}

// ---------------------------------------------------------------------------
// Numerical-health guards.

TEST(NumericalHealthTest, HealthyModelsPass) {
  recipe::Dataset ds = TinyDataset();
  auto joint = JointTopicModel::Create(TinyConfig(61), &ds);
  ASSERT_TRUE(joint.ok());
  ASSERT_TRUE(joint->RunSweeps(5).ok());
  EXPECT_TRUE(joint->CheckNumericalHealth().ok());

  auto collapsed = CollapsedJointTopicModel::Create(TinyConfig(61), &ds);
  ASSERT_TRUE(collapsed.ok());
  ASSERT_TRUE(collapsed->RunSweeps(5).ok());
  EXPECT_TRUE(collapsed->CheckNumericalHealth().ok());
}

TEST(NumericalHealthTest, PoisonedDataStopsTrainingBeforeCheckpointing) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(63);
  config.checkpoint_interval = 1;
  config.checkpoint_dir = FreshDir("poisoned");

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(2).ok());  // Sweeps 1 and 2 checkpointed.

  // Poison the corpus mid-run, as a corrupted feature pipeline would.
  ds.documents[1].gel_feature[0] = std::nan("");
  Status status = model->RunSweeps(3);
  EXPECT_FALSE(status.ok());

  // Every surviving checkpoint decodes cleanly and predates the poison.
  std::vector<std::string> files = ListCheckpointFiles(config.checkpoint_dir);
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    auto state = ReadCheckpointFile(file);
    ASSERT_TRUE(state.ok()) << file;
    EXPECT_LE(state->completed_sweeps, 2) << file;
  }
}

TEST(NumericalHealthTest, CheckpointWithNonFiniteGaussianIsRejected) {
  recipe::Dataset ds = TinyDataset();
  auto model = JointTopicModel::Create(TinyConfig(65), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(2).ok());
  CheckpointState state = model->CaptureCheckpoint();

  // Scribble a NaN into a stored Gaussian's mean bytes: the decode path
  // must reject the frame (CRC passes only if we re-encode, so corrupt the
  // struct and re-encode to exercise the structural validation).
  std::string bytes = EncodeCheckpoint(state);
  auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok());
  // Find the first stored mean double and overwrite it with NaN in-place,
  // then fix nothing else: CRC now mismatches -> clean rejection.
  double nan_value = std::nan("");
  std::string nan_bytes(reinterpret_cast<const char*>(&nan_value),
                        sizeof(nan_value));
  double mean0 = state.gel_topics[0].mean()[0];
  std::string mean_bytes(reinterpret_cast<const char*>(&mean0),
                         sizeof(mean0));
  size_t pos = bytes.find(mean_bytes);
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, nan_bytes.size(), nan_bytes);
  EXPECT_FALSE(DecodeCheckpoint(bytes).ok());
}

}  // namespace
}  // namespace texrheo::core
