#include "rheology/empirical_data.h"

#include <gtest/gtest.h>

namespace texrheo::rheology {
namespace {

using recipe::GelType;

TEST(TableITest, HasThirteenSettings) {
  EXPECT_EQ(TableI().size(), 13u);
}

TEST(TableITest, IdsAreSequential) {
  const auto& table = TableI();
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].id, static_cast<int>(i) + 1);
  }
}

TEST(TableITest, MatchesPaperSpotValues) {
  const auto& table = TableI();
  // Row 1: gelatin 0.018 -> H 0.20, C 0.60, A 0.10.
  EXPECT_DOUBLE_EQ(table[0].gel[static_cast<size_t>(GelType::kGelatin)],
                   0.018);
  EXPECT_DOUBLE_EQ(table[0].attributes.hardness, 0.20);
  // Row 5: the gelatin+agar mixture with extreme adhesiveness.
  EXPECT_DOUBLE_EQ(table[4].gel[static_cast<size_t>(GelType::kAgar)], 0.03);
  EXPECT_DOUBLE_EQ(table[4].attributes.adhesiveness, 12.6);
  // Row 9: kanten 0.02 -> hardness 5.67.
  EXPECT_DOUBLE_EQ(table[8].gel[static_cast<size_t>(GelType::kKanten)], 0.02);
  EXPECT_DOUBLE_EQ(table[8].attributes.hardness, 5.67);
}

TEST(TableITest, EachRowHasASingleGelExceptRow5) {
  for (const auto& row : TableI()) {
    int gels = 0;
    for (size_t g = 0; g < row.gel.size(); ++g) {
      if (row.gel[g] > 0.0) ++gels;
    }
    if (row.id == 5) {
      EXPECT_EQ(gels, 2) << "row " << row.id;
    } else {
      EXPECT_EQ(gels, 1) << "row " << row.id;
    }
    // Table I settings carry no emulsions.
    EXPECT_DOUBLE_EQ(row.emulsion.Sum(), 0.0);
  }
}

TEST(TableITest, KantenRowsHaveZeroAdhesiveness) {
  for (const auto& row : TableI()) {
    if (row.gel[static_cast<size_t>(GelType::kKanten)] > 0.0) {
      EXPECT_DOUBLE_EQ(row.attributes.adhesiveness, 0.0) << row.id;
    }
  }
}

TEST(TableITest, HardnessIncreasesWithConcentrationPerGel) {
  // Within each pure-gel series the paper's hardness is non-decreasing,
  // except the known row 12 -> 13 agar dip.
  const auto& table = TableI();
  EXPECT_LT(table[0].attributes.hardness, table[3].attributes.hardness);
  EXPECT_LT(table[5].attributes.hardness, table[8].attributes.hardness);
  EXPECT_LT(table[9].attributes.hardness, table[11].attributes.hardness);
}

TEST(TableIIbTest, TwoDishesWithPaperValues) {
  const auto& dishes = TableIIb();
  ASSERT_EQ(dishes.size(), 2u);
  EXPECT_EQ(dishes[0].name, "Bavarois");
  EXPECT_DOUBLE_EQ(dishes[0].attributes.hardness, 3.860);
  EXPECT_DOUBLE_EQ(dishes[0].attributes.cohesiveness, 0.809);
  EXPECT_EQ(dishes[1].name, "Milk jelly");
  EXPECT_DOUBLE_EQ(dishes[1].attributes.adhesiveness, 0.44);
  // Both share the gelatin 2.5% base (same as Table I row 3).
  for (const auto& dish : dishes) {
    EXPECT_DOUBLE_EQ(dish.gel[static_cast<size_t>(GelType::kGelatin)], 0.025);
  }
}

TEST(TableIIbTest, EmulsionCompositionsMatchPaper) {
  const auto& dishes = TableIIb();
  using recipe::EmulsionType;
  EXPECT_DOUBLE_EQ(
      dishes[0].emulsion[static_cast<size_t>(EmulsionType::kRawCream)], 0.2);
  EXPECT_DOUBLE_EQ(
      dishes[0].emulsion[static_cast<size_t>(EmulsionType::kMilk)], 0.4);
  EXPECT_DOUBLE_EQ(
      dishes[1].emulsion[static_cast<size_t>(EmulsionType::kMilk)], 0.787);
  EXPECT_DOUBLE_EQ(
      dishes[1].emulsion[static_cast<size_t>(EmulsionType::kSugar)], 0.032);
}

TEST(UnitConversionTest, RuFactorsAreConsistent) {
  EXPECT_DOUBLE_EQ(ToRuFactor(ForceUnit::kRheologicalUnit), 1.0);
  // 0.98 N == 1 RU by the anchoring.
  EXPECT_NEAR(ConvertToRu(0.98, ForceUnit::kNewton), 1.0, 1e-12);
  // 100 gf == 0.980665 N -> slightly over 1 RU.
  EXPECT_NEAR(ConvertToRu(100.0, ForceUnit::kGramForce), 1.0007, 1e-3);
  // 9.8 kPa over 1 cm^2 == 0.98 N.
  EXPECT_NEAR(ConvertToRu(9.8, ForceUnit::kKiloPascalCm2), 1.0, 1e-12);
}

TEST(UnitConversionTest, ConversionIsLinear) {
  for (ForceUnit u : {ForceUnit::kNewton, ForceUnit::kGramForce,
                      ForceUnit::kKiloPascalCm2}) {
    EXPECT_NEAR(ConvertToRu(5.0, u), 5.0 * ConvertToRu(1.0, u), 1e-12);
    EXPECT_DOUBLE_EQ(ConvertToRu(0.0, u), 0.0);
  }
}

}  // namespace
}  // namespace texrheo::rheology
