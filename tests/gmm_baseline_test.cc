#include "core/gmm_baseline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

std::vector<math::Vector> TwoBlobPoints(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<math::Vector> points;
  for (int blob = 0; blob < 2; ++blob) {
    double cx = blob == 0 ? -3.0 : 3.0;
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({cx + 0.5 * rng.NextGaussian(),
                        0.5 * rng.NextGaussian()});
    }
  }
  return points;
}

GmmConfig SmallConfig(int k = 2) {
  GmmConfig config;
  config.num_components = k;
  config.seed = 3;
  return config;
}

TEST(GaussianMixtureTest, RejectsBadInput) {
  EXPECT_FALSE(GaussianMixture::Fit(SmallConfig(), {}).ok());
  GmmConfig bad = SmallConfig(0);
  EXPECT_FALSE(GaussianMixture::Fit(bad, TwoBlobPoints(10, 1)).ok());
}

TEST(GaussianMixtureTest, SeparatesTwoBlobs) {
  auto points = TwoBlobPoints(100, 2);
  auto model = GaussianMixture::Fit(SmallConfig(2), points);
  ASSERT_TRUE(model.ok());
  std::vector<int> assignments = model->HardAssignments(points);
  std::vector<int> truth;
  for (size_t i = 0; i < points.size(); ++i) {
    truth.push_back(i < 100 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(assignments, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.98);
}

TEST(GaussianMixtureTest, RecoversComponentMeans) {
  auto points = TwoBlobPoints(200, 4);
  auto model = GaussianMixture::Fit(SmallConfig(2), points);
  ASSERT_TRUE(model.ok());
  double m0 = model->components()[0].mean()[0];
  double m1 = model->components()[1].mean()[0];
  if (m0 > m1) std::swap(m0, m1);
  EXPECT_NEAR(m0, -3.0, 0.2);
  EXPECT_NEAR(m1, 3.0, 0.2);
}

TEST(GaussianMixtureTest, WeightsFormDistribution) {
  auto model = GaussianMixture::Fit(SmallConfig(3), TwoBlobPoints(60, 5));
  ASSERT_TRUE(model.ok());
  double sum = 0.0;
  for (double w : model->weights()) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GaussianMixtureTest, LikelihoodNonDecreasingAcrossFits) {
  // EM guarantees monotone improvement; the converged LL must be at least
  // that of a single-component fit.
  auto points = TwoBlobPoints(150, 6);
  auto one = GaussianMixture::Fit(SmallConfig(1), points);
  auto two = GaussianMixture::Fit(SmallConfig(2), points);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_GT(two->final_log_likelihood(), one->final_log_likelihood());
}

TEST(GaussianMixtureTest, ConvergesBeforeMaxIterations) {
  auto points = TwoBlobPoints(150, 7);
  auto model = GaussianMixture::Fit(SmallConfig(2), points);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->iterations_run(), SmallConfig().max_iterations);
}

TEST(GaussianMixtureTest, LogLikelihoodAccessorsAgree) {
  auto points = TwoBlobPoints(50, 8);
  auto model = GaussianMixture::Fit(SmallConfig(2), points);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->LogLikelihood(points), model->final_log_likelihood(),
              1e-6);
}

TEST(GaussianMixtureTest, MoreComponentsThanPointsStillFits) {
  auto points = TwoBlobPoints(3, 9);  // 6 points, 6 components.
  auto model = GaussianMixture::Fit(SmallConfig(6), points);
  EXPECT_TRUE(model.ok());
}

TEST(GaussianMixtureTest, DeterministicGivenSeed) {
  auto points = TwoBlobPoints(50, 10);
  auto a = GaussianMixture::Fit(SmallConfig(2), points);
  auto b = GaussianMixture::Fit(SmallConfig(2), points);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->final_log_likelihood(), b->final_log_likelihood());
}

}  // namespace
}  // namespace texrheo::core
