#include "math/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/running_stats.h"

namespace texrheo::math {
namespace {

class GammaMomentsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatchTheory) {
  auto [shape, scale] = GetParam();
  texrheo::Rng rng(99);
  RunningStats stats;
  for (int i = 0; i < 60000; ++i) {
    double x = GammaSample(rng, shape, scale);
    EXPECT_GT(x, 0.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), shape * scale, 0.05 * shape * scale + 0.01);
  EXPECT_NEAR(stats.variance(), shape * scale * scale,
              0.1 * shape * scale * scale + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeScale, GammaMomentsTest,
    ::testing::Values(std::make_pair(0.5, 1.0), std::make_pair(1.0, 2.0),
                      std::make_pair(3.0, 0.5), std::make_pair(10.0, 1.0)));

TEST(ChiSquaredTest, MeanEqualsDof) {
  texrheo::Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.Add(ChiSquaredSample(rng, 7.0));
  EXPECT_NEAR(stats.mean(), 7.0, 0.15);
  EXPECT_NEAR(stats.variance(), 14.0, 0.8);
}

TEST(BetaTest, MomentsMatchTheory) {
  texrheo::Rng rng(6);
  double a = 2.0, b = 5.0;
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    double x = BetaSample(rng, a, b);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), a / (a + b), 0.01);
}

TEST(DirichletTest, SamplesLieOnSimplex) {
  texrheo::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    Vector v = DirichletSample(rng, 4, 0.5);
    EXPECT_NEAR(v.Sum(), 1.0, 1e-12);
    for (size_t j = 0; j < v.size(); ++j) EXPECT_GE(v[j], 0.0);
  }
}

TEST(DirichletTest, MeanMatchesNormalizedConcentration) {
  texrheo::Rng rng(8);
  Vector alpha = {1.0, 2.0, 3.0};
  Vector mean(3);
  const int n = 40000;
  for (int i = 0; i < n; ++i) mean += DirichletSample(rng, alpha);
  mean *= 1.0 / n;
  EXPECT_NEAR(mean[0], 1.0 / 6.0, 0.01);
  EXPECT_NEAR(mean[1], 2.0 / 6.0, 0.01);
  EXPECT_NEAR(mean[2], 3.0 / 6.0, 0.01);
}

TEST(GaussianTest, LogPdfMatchesClosedFormInOneDim) {
  auto g = Gaussian::FromPrecision({0.0}, Matrix::Identity(1, 4.0));
  ASSERT_TRUE(g.ok());
  // N(0, sigma^2 = 1/4): logpdf(x) = -0.5 log(2 pi sigma^2) - x^2/(2 sigma^2).
  double sigma2 = 0.25;
  for (double x : {-1.0, 0.0, 0.7}) {
    double expected =
        -0.5 * std::log(2.0 * M_PI * sigma2) - x * x / (2.0 * sigma2);
    EXPECT_NEAR(g->LogPdf({x}), expected, 1e-12);
  }
}

TEST(GaussianTest, FromCovarianceAgreesWithFromPrecision) {
  Matrix cov(2, 2);
  cov(0, 0) = 2.0;
  cov(0, 1) = 0.5;
  cov(1, 0) = 0.5;
  cov(1, 1) = 1.0;
  auto a = Gaussian::FromCovariance({1.0, -1.0}, cov);
  ASSERT_TRUE(a.ok());
  auto b = Gaussian::FromPrecision({1.0, -1.0}, a->precision());
  ASSERT_TRUE(b.ok());
  Vector x = {0.3, 0.4};
  EXPECT_NEAR(a->LogPdf(x), b->LogPdf(x), 1e-12);
  EXPECT_LT(a->Covariance().MaxAbsDiff(cov), 1e-10);
}

TEST(GaussianTest, PdfIntegratesToOneOnGrid) {
  auto g = Gaussian::FromPrecision({0.0}, Matrix::Identity(1, 1.0));
  ASSERT_TRUE(g.ok());
  double sum = 0.0, dx = 0.01;
  for (double x = -8.0; x < 8.0; x += dx) sum += std::exp(g->LogPdf({x})) * dx;
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(GaussianTest, SampleMomentsMatchParameters) {
  Matrix precision(2, 2);
  precision(0, 0) = 2.0;
  precision(0, 1) = -0.4;
  precision(1, 0) = -0.4;
  precision(1, 1) = 1.0;
  auto g = Gaussian::FromPrecision({3.0, -2.0}, precision);
  ASSERT_TRUE(g.ok());
  texrheo::Rng rng(9);
  RunningMoments moments(2);
  for (int i = 0; i < 60000; ++i) moments.Add(g->Sample(rng));
  EXPECT_NEAR(moments.Mean()[0], 3.0, 0.02);
  EXPECT_NEAR(moments.Mean()[1], -2.0, 0.02);
  Matrix expected_cov = g->Covariance();
  EXPECT_LT(moments.Covariance().MaxAbsDiff(expected_cov), 0.05);
}

TEST(GaussianTest, RejectsDimensionMismatch) {
  EXPECT_FALSE(Gaussian::FromPrecision({0.0, 0.0},
                                       Matrix::Identity(3)).ok());
}

TEST(GaussianKLTest, ZeroForIdenticalDistributions) {
  auto g = Gaussian::FromPrecision({1.0, 2.0}, Matrix::Identity(2, 3.0));
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(GaussianKL(*g, *g), 0.0, 1e-12);
}

TEST(GaussianKLTest, MatchesClosedFormOneDim) {
  // KL(N(m1, s1^2) || N(m2, s2^2)) =
  //   log(s2/s1) + (s1^2 + (m1-m2)^2) / (2 s2^2) - 1/2.
  double m1 = 1.0, s1 = 0.5, m2 = -1.0, s2 = 2.0;
  auto p = Gaussian::FromPrecision({m1}, Matrix::Identity(1, 1.0 / (s1 * s1)));
  auto q = Gaussian::FromPrecision({m2}, Matrix::Identity(1, 1.0 / (s2 * s2)));
  ASSERT_TRUE(p.ok() && q.ok());
  double expected = std::log(s2 / s1) +
                    (s1 * s1 + (m1 - m2) * (m1 - m2)) / (2.0 * s2 * s2) - 0.5;
  EXPECT_NEAR(GaussianKL(*p, *q), expected, 1e-10);
}

TEST(GaussianKLTest, NonNegativeAndAsymmetric) {
  auto p = Gaussian::FromPrecision({0.0}, Matrix::Identity(1, 1.0));
  auto q = Gaussian::FromPrecision({2.0}, Matrix::Identity(1, 0.25));
  ASSERT_TRUE(p.ok() && q.ok());
  double pq = GaussianKL(*p, *q);
  double qp = GaussianKL(*q, *p);
  EXPECT_GT(pq, 0.0);
  EXPECT_GT(qp, 0.0);
  EXPECT_NE(pq, qp);
}

TEST(WishartTest, MeanIsNuTimesScale) {
  Matrix scale = Matrix::Diagonal({0.5, 0.25});
  double nu = 6.0;
  texrheo::Rng rng(10);
  Matrix mean(2, 2);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto w = WishartSample(rng, nu, scale);
    ASSERT_TRUE(w.ok());
    mean += *w;
  }
  mean *= 1.0 / n;
  Matrix expected = nu * scale;
  EXPECT_LT(mean.MaxAbsDiff(expected), 0.1);
}

TEST(WishartTest, SamplesArePositiveDefinite) {
  texrheo::Rng rng(11);
  Matrix scale = Matrix::Identity(3, 0.5);
  for (int i = 0; i < 200; ++i) {
    auto w = WishartSample(rng, 5.0, scale);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(Cholesky::Factor(*w).ok());
  }
}

TEST(WishartTest, RejectsInvalidDof) {
  EXPECT_FALSE([] {
    texrheo::Rng rng(1);
    return WishartSample(rng, 1.0, Matrix::Identity(3));
  }()
                   .ok());
}

TEST(WishartLogPdfTest, FiniteAndPeaksNearMode) {
  Matrix scale = Matrix::Identity(2, 1.0);
  double nu = 6.0;
  // Mode of Wishart = (nu - d - 1) S = 3 I; density there should exceed
  // density at a far point.
  auto at_mode = WishartLogPdf(Matrix::Identity(2, 3.0), nu, scale);
  auto far = WishartLogPdf(Matrix::Identity(2, 30.0), nu, scale);
  ASSERT_TRUE(at_mode.ok() && far.ok());
  EXPECT_GT(*at_mode, *far);
}

TEST(NormalWishartTest, ValidateCatchesBadParams) {
  NormalWishartParams nw;
  nw.mu0 = Vector{0.0, 0.0};
  nw.beta = 1.0;
  nw.nu = 4.0;
  nw.scale = Matrix::Identity(2);
  EXPECT_TRUE(nw.Validate().ok());
  nw.beta = -1.0;
  EXPECT_FALSE(nw.Validate().ok());
  nw.beta = 1.0;
  nw.nu = 0.5;  // Must exceed dim - 1 = 1.
  EXPECT_FALSE(nw.Validate().ok());
}

TEST(NormalWishartTest, PosteriorUpdatesMatchConjugateFormulas) {
  NormalWishartParams prior;
  prior.mu0 = Vector{0.0};
  prior.beta = 2.0;
  prior.nu = 3.0;
  prior.scale = Matrix::Identity(1, 0.5);

  // Three observations with mean 2 and scatter 8.
  Vector mean = {2.0};
  Matrix scatter = Matrix::Identity(1, 8.0);
  NormalWishartParams post = prior.Posterior(3, mean, scatter);
  EXPECT_DOUBLE_EQ(post.beta, 5.0);
  EXPECT_DOUBLE_EQ(post.nu, 6.0);
  EXPECT_NEAR(post.mu0[0], (3.0 * 2.0 + 2.0 * 0.0) / 5.0, 1e-12);
  // S_c^{-1} = S^{-1} + scatter + (n beta / (n + beta)) (mean - mu0)^2.
  double s_inv = 1.0 / 0.5 + 8.0 + (3.0 * 2.0 / 5.0) * 4.0;
  EXPECT_NEAR(post.scale(0, 0), 1.0 / s_inv, 1e-12);
}

TEST(NormalWishartTest, PosteriorWithNoDataIsPrior) {
  NormalWishartParams prior;
  prior.mu0 = Vector{1.0, -1.0};
  prior.beta = 1.5;
  prior.nu = 4.0;
  prior.scale = Matrix::Identity(2, 0.3);
  NormalWishartParams post = prior.Posterior(0, Vector(2), Matrix(2, 2));
  EXPECT_DOUBLE_EQ(post.beta, prior.beta);
  EXPECT_DOUBLE_EQ(post.nu, prior.nu);
  EXPECT_EQ(post.mu0, prior.mu0);
}

TEST(NormalWishartTest, PosteriorConcentratesWithData) {
  // With many observations the sampled mean approaches the data mean.
  NormalWishartParams prior;
  prior.mu0 = Vector{0.0};
  prior.beta = 1.0;
  prior.nu = 3.0;
  prior.scale = Matrix::Identity(1, 1.0);
  Vector data_mean = {5.0};
  Matrix scatter = Matrix::Identity(1, 100.0);  // var 0.1 over 1000 points.
  NormalWishartParams post = prior.Posterior(1000, data_mean, scatter);
  texrheo::Rng rng(12);
  RunningStats mu_stats;
  for (int i = 0; i < 500; ++i) {
    auto g = NormalWishartSample(rng, post);
    ASSERT_TRUE(g.ok());
    mu_stats.Add(g->mean()[0]);
  }
  EXPECT_NEAR(mu_stats.mean(), 5.0, 0.05);
}

TEST(NormalWishartTest, MeanGaussianUsesExpectedPrecision) {
  NormalWishartParams nw;
  nw.mu0 = Vector{1.0, 2.0};
  nw.beta = 1.0;
  nw.nu = 5.0;
  nw.scale = Matrix::Identity(2, 0.2);
  auto g = NormalWishartMean(nw);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->mean(), nw.mu0);
  EXPECT_LT(g->precision().MaxAbsDiff(Matrix::Identity(2, 1.0)), 1e-12);
}

}  // namespace
}  // namespace texrheo::math
