#include "core/variational.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

recipe::Dataset PlantedDataset(size_t docs_per_cluster, uint64_t seed) {
  recipe::Dataset ds;
  for (const char* w : {"soft0", "soft1", "hard0", "hard1"}) {
    ds.term_vocab.Add(w);
  }
  Rng rng(seed);
  for (int cluster = 0; cluster < 2; ++cluster) {
    for (size_t i = 0; i < docs_per_cluster; ++i) {
      recipe::Document doc;
      doc.recipe_index = ds.documents.size();
      int n = 2 + static_cast<int>(rng.NextUint(3));
      for (int t = 0; t < n; ++t) {
        doc.term_ids.push_back(cluster * 2 +
                               static_cast<int32_t>(rng.NextUint(2)));
      }
      doc.gel_feature = math::Vector(3, 9.0);
      doc.emulsion_feature = math::Vector(2, 9.0);
      if (cluster == 0) {
        doc.gel_feature[0] = 4.0 + 0.3 * rng.NextGaussian();
      } else {
        doc.gel_feature[1] = 5.0 + 0.3 * rng.NextGaussian();
      }
      doc.gel_concentration = math::Vector(3, 0.01);
      doc.emulsion_concentration = math::Vector(2, 0.1);
      ds.documents.push_back(std::move(doc));
    }
  }
  return ds;
}

JointTopicModelConfig SmallConfig(int topics = 2) {
  JointTopicModelConfig config;
  config.num_topics = topics;
  config.sweeps = 60;
  config.seed = 7;
  return config;
}

TEST(VariationalTest, CreateValidates) {
  recipe::Dataset ds = PlantedDataset(10, 1);
  EXPECT_FALSE(
      VariationalJointTopicModel::Create(SmallConfig(), nullptr).ok());
  JointTopicModelConfig bad = SmallConfig();
  bad.alpha = 0.0;
  EXPECT_FALSE(VariationalJointTopicModel::Create(bad, &ds).ok());
}

TEST(VariationalTest, RecoversPlantedClusters) {
  recipe::Dataset ds = PlantedDataset(50, 2);
  auto model = VariationalJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  auto est = model->Estimate();
  ASSERT_TRUE(est.ok());
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 50 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(est->doc_topic, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.95);
}

TEST(VariationalTest, ObjectiveIncreasesMonotonically) {
  recipe::Dataset ds = PlantedDataset(40, 3);
  auto model = VariationalJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  double previous = -1e300;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(model->Run(1, 0.0).ok());
    double obj = model->Objective();
    EXPECT_GE(obj, previous - 1e-6) << "iteration " << i;
    previous = obj;
  }
}

TEST(VariationalTest, ConvergesEarlyWithTolerance) {
  recipe::Dataset ds = PlantedDataset(40, 4);
  auto model = VariationalJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Run(500, 1e-6).ok());
  EXPECT_LT(model->iterations_run(), 500);
}

TEST(VariationalTest, DeterministicGivenSeed) {
  recipe::Dataset ds = PlantedDataset(30, 5);
  auto a = VariationalJointTopicModel::Create(SmallConfig(2), &ds);
  auto b = VariationalJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->Run(20).ok());
  ASSERT_TRUE(b->Run(20).ok());
  EXPECT_DOUBLE_EQ(a->Objective(), b->Objective());
}

TEST(VariationalTest, EstimatesAreWellFormed) {
  recipe::Dataset ds = PlantedDataset(25, 6);
  auto model = VariationalJointTopicModel::Create(SmallConfig(4), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Run(30).ok());
  auto est = model->Estimate();
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->phi.size(), 4u);
  for (const auto& row : est->phi) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  int total = 0;
  for (int c : est->topic_recipe_count) total += c;
  EXPECT_EQ(total, static_cast<int>(ds.documents.size()));
}

TEST(VariationalTest, AgreesWithGibbsSampler) {
  recipe::Dataset ds = PlantedDataset(60, 8);
  auto vb = VariationalJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(vb.ok());
  ASSERT_TRUE(vb->Train().ok());
  auto vb_est = vb->Estimate();
  ASSERT_TRUE(vb_est.ok());

  JointTopicModelConfig gibbs_config = SmallConfig(2);
  gibbs_config.sweeps = 80;
  auto gibbs = JointTopicModel::Create(gibbs_config, &ds);
  ASSERT_TRUE(gibbs.ok());
  ASSERT_TRUE(gibbs->Train().ok());
  TopicEstimates gibbs_est = gibbs->Estimate();

  auto agreement =
      eval::ScoreClustering(vb_est->doc_topic, gibbs_est.doc_topic);
  ASSERT_TRUE(agreement.ok());
  EXPECT_GT(agreement->nmi, 0.9);
}

}  // namespace
}  // namespace texrheo::core
