// Gold-standard correctness test for the Gibbs samplers: on a tiny dataset
// the exact posterior over the latent assignments can be computed by brute
// force (the words are Dirichlet-multinomial and the concentration vectors
// have a closed-form Normal-Wishart marginal likelihood). Long Gibbs runs
// must reproduce the exact marginal p(y_0 = k | data) for both the paper's
// sampler (which instantiates the Gaussians) and the collapsed sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/collapsed_sampler.h"
#include "core/joint_topic_model.h"
#include "core/topic_gaussians.h"
#include "corpus/generator.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "eval/geweke.h"
#include "math/special.h"
#include "recipe/dataset.h"
#include "rheology/gel_model.h"
#include "text/texture_dictionary.h"

namespace texrheo::core {
namespace {

constexpr int kTopics = 2;

// Tiny dataset: 3 documents, <= 2 tokens each, 1-D gel features.
recipe::Dataset TinyDataset() {
  recipe::Dataset ds;
  ds.term_vocab.Add("w0");
  ds.term_vocab.Add("w1");
  auto add = [&ds](std::vector<int32_t> terms, double gel) {
    recipe::Document doc;
    doc.recipe_index = ds.documents.size();
    doc.term_ids = std::move(terms);
    doc.gel_feature = math::Vector(1, gel);
    doc.emulsion_feature = math::Vector(1, 0.0);
    doc.gel_concentration = math::Vector(1, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  };
  add({0, 0}, 1.0);
  add({1}, 3.0);
  add({0, 1}, 1.5);
  return ds;
}

math::NormalWishartParams TinyPrior() {
  math::NormalWishartParams nw;
  nw.mu0 = math::Vector(1, 2.0);
  nw.beta = 1.0;
  nw.nu = 3.0;
  nw.scale = math::Matrix::Identity(1, 0.5);
  return nw;
}

JointTopicModelConfig TinyConfig(uint64_t seed) {
  JointTopicModelConfig config;
  config.num_topics = kTopics;
  config.alpha = 0.5;
  config.gamma = 0.5;
  config.auto_prior = false;
  config.gel_prior = TinyPrior();
  config.emulsion_prior = TinyPrior();
  config.use_emulsion_likelihood = false;
  config.seed = seed;
  return config;
}

// Closed-form log marginal likelihood of 1-D observations under the
// Normal-Wishart prior (Murphy 2007 eq. 266, with T = S^{-1}):
//   p(X) = pi^{-n/2} (beta/beta_n)^{1/2} |T|^{nu/2}/|T_n|^{nu_n/2}
//          Gamma(nu_n/2)/Gamma(nu/2).
double LogMarginal1D(const std::vector<double>& xs,
                     const math::NormalWishartParams& nw) {
  double n = static_cast<double>(xs.size());
  if (xs.empty()) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x / n;
  double scatter = 0.0;
  for (double x : xs) scatter += (x - mean) * (x - mean);
  double t = 1.0 / nw.scale(0, 0);
  double beta_n = nw.beta + n;
  double nu_n = nw.nu + n;
  double t_n = t + scatter +
               (nw.beta * n / beta_n) * (mean - nw.mu0[0]) *
                   (mean - nw.mu0[0]);
  return -0.5 * n * std::log(M_PI) + 0.5 * std::log(nw.beta / beta_n) +
         0.5 * nw.nu * std::log(t) - 0.5 * nu_n * std::log(t_n) +
         std::lgamma(0.5 * nu_n) - std::lgamma(0.5 * nw.nu);
}

// Log joint of one complete assignment (z for every token, y for every
// document), with phi and theta integrated out and the Gaussian marginals
// in closed form.
double LogJoint(const recipe::Dataset& ds, const JointTopicModelConfig& cfg,
                const std::vector<std::vector<int>>& z,
                const std::vector<int>& y) {
  size_t vocab = ds.term_vocab.size();
  // Words | Z: Dirichlet-multinomial per topic.
  std::vector<std::vector<int>> n_kv(kTopics, std::vector<int>(vocab, 0));
  std::vector<int> n_k(kTopics, 0);
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    for (size_t n = 0; n < ds.documents[d].term_ids.size(); ++n) {
      int k = z[d][n];
      ++n_kv[static_cast<size_t>(k)]
            [static_cast<size_t>(ds.documents[d].term_ids[n])];
      ++n_k[static_cast<size_t>(k)];
    }
  }
  double vg = static_cast<double>(vocab) * cfg.gamma;
  double log_p = 0.0;
  for (int k = 0; k < kTopics; ++k) {
    log_p += std::lgamma(vg) -
             std::lgamma(vg + static_cast<double>(n_k[static_cast<size_t>(k)]));
    for (size_t v = 0; v < vocab; ++v) {
      log_p += std::lgamma(cfg.gamma +
                           n_kv[static_cast<size_t>(k)][v]) -
               std::lgamma(cfg.gamma);
    }
  }
  // (Z, Y) | alpha: Dirichlet-multinomial per document over the word topics
  // plus the one y pseudo-token.
  double ka = cfg.alpha * kTopics;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    std::vector<int> n_dk(kTopics, 0);
    for (int k : z[d]) ++n_dk[static_cast<size_t>(k)];
    ++n_dk[static_cast<size_t>(y[d])];
    double total = static_cast<double>(z[d].size()) + 1.0;
    log_p += std::lgamma(ka) - std::lgamma(ka + total);
    for (int k = 0; k < kTopics; ++k) {
      log_p += std::lgamma(cfg.alpha + n_dk[static_cast<size_t>(k)]) -
               std::lgamma(cfg.alpha);
    }
  }
  // G | Y: Normal-Wishart marginal per topic.
  for (int k = 0; k < kTopics; ++k) {
    std::vector<double> xs;
    for (size_t d = 0; d < ds.documents.size(); ++d) {
      if (y[d] == k) xs.push_back(ds.documents[d].gel_feature[0]);
    }
    log_p += LogMarginal1D(xs, cfg.gel_prior);
  }
  return log_p;
}

// Exact p(y_0 = 0 | data) by enumerating every assignment.
double ExactPosteriorY0(const recipe::Dataset& ds,
                        const JointTopicModelConfig& cfg) {
  // Tokens: doc0 has 2, doc1 has 1, doc2 has 2 -> 5 topic choices; plus 3 y
  // choices: 2^8 = 256 assignments.
  std::vector<size_t> token_counts;
  size_t total_tokens = 0;
  for (const auto& doc : ds.documents) {
    token_counts.push_back(doc.term_ids.size());
    total_tokens += doc.term_ids.size();
  }
  size_t dims = total_tokens + ds.documents.size();
  double numerator = 0.0, denominator = 0.0;
  for (size_t code = 0; code < (1u << dims); ++code) {
    std::vector<std::vector<int>> z(ds.documents.size());
    std::vector<int> y(ds.documents.size());
    size_t bit = 0;
    for (size_t d = 0; d < ds.documents.size(); ++d) {
      z[d].resize(token_counts[d]);
      for (size_t n = 0; n < token_counts[d]; ++n) {
        z[d][n] = static_cast<int>((code >> bit++) & 1u);
      }
    }
    for (size_t d = 0; d < ds.documents.size(); ++d) {
      y[d] = static_cast<int>((code >> bit++) & 1u);
    }
    double p = std::exp(LogJoint(ds, cfg, z, y));
    denominator += p;
    if (y[0] == 0) numerator += p;
  }
  return numerator / denominator;
}

TEST(SamplerExactnessTest, CollapsedSamplerMatchesExactPosterior) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(101);
  double exact = ExactPosteriorY0(ds, config);
  // Sanity: the exact value is nontrivial.
  EXPECT_GT(exact, 0.1);
  EXPECT_LT(exact, 0.9);

  auto model = CollapsedJointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(200).ok());  // Burn-in.
  int hits = 0;
  const int samples = 6000;
  for (int s = 0; s < samples; ++s) {
    ASSERT_TRUE(model->RunSweeps(1).ok());
    if (model->y()[0] == 0) ++hits;
  }
  double empirical = static_cast<double>(hits) / samples;
  EXPECT_NEAR(empirical, exact, 0.04)
      << "exact " << exact << " vs empirical " << empirical;
}

TEST(SamplerExactnessTest, PaperSamplerMatchesExactPosterior) {
  // The paper's sampler instantiates the Gaussians (eq. 4) instead of
  // collapsing them, but targets the same marginal posterior over y.
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(202);
  double exact = ExactPosteriorY0(ds, config);

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(200).ok());
  int hits = 0;
  const int samples = 6000;
  for (int s = 0; s < samples; ++s) {
    ASSERT_TRUE(model->RunSweeps(1).ok());
    if (model->y()[0] == 0) ++hits;
  }
  double empirical = static_cast<double>(hits) / samples;
  EXPECT_NEAR(empirical, exact, 0.05)
      << "exact " << exact << " vs empirical " << empirical;
}

// The sparse/alias/MH decomposition targets the identical stationary
// distribution as the dense sampler (the MH step corrects for the stale
// proposal exactly), so the same brute-force check applies. A small rebuild
// interval keeps several rebuilds inside the run; mh_steps = 2 exercises
// repeated proposals per token.
TEST(SamplerExactnessTest, SparseSamplerMatchesExactPosterior) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(303);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 3;
  config.mh_steps = 2;
  double exact = ExactPosteriorY0(ds, config);

  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(200).ok());
  int hits = 0;
  const int samples = 6000;
  for (int s = 0; s < samples; ++s) {
    ASSERT_TRUE(model->RunSweeps(1).ok());
    if (model->y()[0] == 0) ++hits;
  }
  double empirical = static_cast<double>(hits) / samples;
  EXPECT_NEAR(empirical, exact, 0.05)
      << "exact " << exact << " vs empirical " << empirical;
}

// --- MH proposal mass vs. acceptance-ratio mass: detailed balance -------
//
// The independence-MH step is exact only if the proposal mass each topic
// receives from the two-bucket construction equals the per-topic mass the
// acceptance ratio recomputes (coef * w + alpha * q). The hazardous corner
// is a token that is the last of its topic in the document while y_d equals
// that topic: the active-list slot already carries the y-indicator
// (coefficient 0 - 1 + 1 = 1), so an extra y_d slot keyed on the *removed*
// count instead of the physical count would give that topic its mass twice
// in the proposal but only once in the ratio — a localized detailed-balance
// violation that the sweep-level statistical certifications (Geweke, moment
// equivalence) are poorly placed to detect. Single-token documents make
// every token that corner candidate whenever y_d lands on its topic; the
// test is deterministic (no chain randomness is consumed) and demands
// bit-exact equality, since both sides are built from identical
// floating-point expressions.
TEST(SamplerExactnessTest, SparseProposalMassMatchesAcceptanceRatioMass) {
  recipe::Dataset ds;
  ds.term_vocab.Add("w0");
  ds.term_vocab.Add("w1");
  for (int i = 0; i < 12; ++i) {
    recipe::Document doc;
    doc.recipe_index = ds.documents.size();
    doc.term_ids = {static_cast<int32_t>(i % 2)};
    doc.gel_feature = math::Vector(1, 1.0 + 0.2 * i);
    doc.emulsion_feature = math::Vector(1, 0.0);
    doc.gel_concentration = math::Vector(1, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  }
  JointTopicModelConfig config = TinyConfig(77);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 4;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());

  bool corner_seen = false;
  auto check_all_tokens = [&](const char* stage) {
    for (size_t d = 0; d < ds.documents.size(); ++d) {
      auto dbg = model->DebugSparseProposal(d, 0);
      ASSERT_TRUE(dbg.ok()) << dbg.status().ToString();
      corner_seen = corner_seen || dbg->last_token_of_self_topic;
      ASSERT_EQ(dbg->bucket_mass.size(), static_cast<size_t>(kTopics));
      ASSERT_EQ(dbg->ratio_mass.size(), static_cast<size_t>(kTopics));
      for (size_t k = 0; k < static_cast<size_t>(kTopics); ++k) {
        EXPECT_EQ(dbg->bucket_mass[k], dbg->ratio_mass[k])
            << stage << ": doc " << d << " topic " << k
            << " (corner=" << dbg->last_token_of_self_topic << ")";
      }
    }
  };
  check_all_tokens("after init");
  // A few sweeps churn the counts and let the alias bank go stale; the
  // invariant must hold in evolved states too.
  ASSERT_TRUE(model->RunSweeps(3).ok());
  check_all_tokens("after sweeps");
  // With 12 single-token documents and 2 topics, at least one document has
  // y_d on its token's topic at a fixed seed — the double-count hazard the
  // test exists to pin. Guard against silently losing that coverage.
  EXPECT_TRUE(corner_seen)
      << "no token exercised the old_k == y_d last-token corner; "
         "adjust the seed or corpus so the hazard case is covered";
}

// --- SoA batched Gaussian log-density: bit-exactness --------------------
//
// The y-sweep evaluates all K per-topic Gaussians through the SoA batch
// path. Its contract is bit-exactness against math::Gaussian::LogPdf — not
// approximate agreement — across K values that are and are not multiples of
// any plausible SIMD lane count, so the vectorized loop's tail handling is
// covered.
TEST(SamplerExactnessTest, BatchedGaussianLogPdfBitExactAcrossTopicCounts) {
  Rng rng(555);
  for (size_t k_count : {1u, 3u, 4u, 7u, 8u, 16u, 31u}) {
    std::vector<math::Gaussian> topics;
    for (size_t k = 0; k < k_count; ++k) {
      math::Vector mean(2);
      mean[0] = rng.NextGaussian();
      mean[1] = rng.NextGaussian();
      math::Matrix prec(2, 2);
      const double a = 1.0 + rng.NextDouble();
      const double c = 1.0 + rng.NextDouble();
      const double b = 0.4 * rng.NextDouble();
      prec(0, 0) = a;
      prec(1, 1) = c;
      prec(0, 1) = prec(1, 0) = b;  // Diagonally dominant => SPD.
      auto g = math::Gaussian::FromPrecision(std::move(mean), std::move(prec));
      ASSERT_TRUE(g.ok());
      topics.push_back(std::move(g).value());
    }
    TopicGaussiansSoA soa = TopicGaussiansSoA::FromGaussians(topics);
    TopicGaussiansSoA::Scratch scratch;
    std::vector<double> batch(k_count);
    for (int trial = 0; trial < 10; ++trial) {
      math::Vector x(2);
      x[0] = rng.NextGaussian() * 2.0;
      x[1] = rng.NextGaussian() * 2.0;
      soa.BatchLogPdf(x, scratch, batch.data());
      for (size_t k = 0; k < k_count; ++k) {
        ASSERT_EQ(batch[k], topics[k].LogPdf(x)) << "K=" << k_count
                                                 << " k=" << k;
      }
    }
  }
}

// --- Observability is a pure observer ----------------------------------
//
// Attaching the full metrics + tracing stack must not perturb the sampler:
// instrumentation reads state and stamps clocks but never touches the RNG,
// so a serial chain with observability on is bit-identical to one with it
// off, sweep by sweep. A violation here would silently invalidate every
// instrumented experiment.
TEST(SamplerExactnessTest, InstrumentationDoesNotPerturbTrajectory) {
  recipe::Dataset ds_plain = TinyDataset();
  recipe::Dataset ds_observed = TinyDataset();
  constexpr uint64_t kSeed = 777;
  constexpr int kSweeps = 50;

  auto plain = JointTopicModel::Create(TinyConfig(kSeed), &ds_plain);
  ASSERT_TRUE(plain.ok());

  obs::MetricsRegistry registry;
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.ExportDurationsTo(&registry);
  auto observed = JointTopicModel::Create(TinyConfig(kSeed), &ds_observed);
  ASSERT_TRUE(observed.ok());
  observed->SetObservability(&registry, &tracer);

  // Interleave sweep-by-sweep so any divergence is pinned to its sweep.
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    ASSERT_TRUE(plain->RunSweeps(1).ok());
    clock.AdvanceMicros(13);  // Nonzero span durations, just to be real.
    ASSERT_TRUE(observed->RunSweeps(1).ok());
    ASSERT_EQ(plain->z(), observed->z()) << "z diverged at sweep " << sweep;
    ASSERT_EQ(plain->y(), observed->y()) << "y diverged at sweep " << sweep;
  }
  EXPECT_EQ(plain->likelihood_trace(), observed->likelihood_trace());

  // Detaching must also be inert: keep sampling with observability removed.
  observed->SetObservability(nullptr, nullptr);
  ASSERT_TRUE(plain->RunSweeps(10).ok());
  ASSERT_TRUE(observed->RunSweeps(10).ok());
  EXPECT_EQ(plain->z(), observed->z());
  EXPECT_EQ(plain->y(), observed->y());

  // And the observer did actually observe.
  obs::MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("train.sweeps_completed"),
            static_cast<uint64_t>(kSweeps));
}

// --- Serial vs parallel posterior-moment equivalence ------------------
//
// The parallel (AD-LDA style) chain is not bit-identical to the serial one,
// but both must mix to the same posterior. On a synthetic K=3 corpus the
// post-burn-in moments (phi, corpus topic shares, per-topic gel means) of a
// serial and a 4-thread chain must agree within Monte Carlo tolerance after
// topic alignment.

const recipe::Dataset& SyntheticCorpus() {
  static const recipe::Dataset& ds = *[] {
    corpus::CorpusGenConfig config;
    config.num_recipes = 4000;
    corpus::CorpusGenerator generator(
        config, &rheology::GelPhysicsModel::Calibrated(),
        &text::TextureDictionary::Embedded());
    auto corpus = generator.Generate();
    auto built = recipe::BuildDataset(
        corpus, recipe::IngredientDatabase::Embedded(),
        text::TextureDictionary::Embedded(), nullptr, recipe::DatasetConfig());
    return new recipe::Dataset(std::move(built).value());
  }();
  return ds;
}

JointTopicModelConfig EquivalenceConfig(uint64_t seed) {
  JointTopicModelConfig config;
  config.num_topics = 3;
  config.seed = seed;
  return config;
}

TEST(SerialVsParallelTest, InstantiatedSamplerMomentsMatch) {
  auto result = eval::CompareSerialVsParallelMoments(
      EquivalenceConfig(31), SyntheticCorpus(), eval::SamplerKind::kInstantiated,
      /*parallel_threads=*/4, /*burn_in_sweeps=*/100, /*measure_sweeps=*/250);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->phi_max_abs_diff, 0.05)
      << "phi diff " << result->phi_max_abs_diff;
  EXPECT_LT(result->topic_share_max_abs_diff, 0.05)
      << "share diff " << result->topic_share_max_abs_diff;
  EXPECT_LT(result->gel_mean_max_abs_diff, 0.35)
      << "gel mean diff " << result->gel_mean_max_abs_diff;
}

TEST(SerialVsParallelTest, CollapsedSamplerMomentsMatch) {
  auto result = eval::CompareSerialVsParallelMoments(
      EquivalenceConfig(32), SyntheticCorpus(), eval::SamplerKind::kCollapsed,
      /*parallel_threads=*/4, /*burn_in_sweeps=*/60, /*measure_sweeps=*/120);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->phi_max_abs_diff, 0.05)
      << "phi diff " << result->phi_max_abs_diff;
  EXPECT_LT(result->topic_share_max_abs_diff, 0.05)
      << "share diff " << result->topic_share_max_abs_diff;
  EXPECT_LT(result->gel_mean_max_abs_diff, 0.35)
      << "gel mean diff " << result->gel_mean_max_abs_diff;
}

// The sparse/alias/MH chain and the dense chain are different Markov chains
// with the same stationary distribution, so their trajectories differ but
// their post-burn-in moments must agree. Stale tables (R = 6) make the MH
// correction do real work here.
TEST(SerialVsParallelTest, SparseVsDenseSamplerMomentsMatch) {
  JointTopicModelConfig dense = EquivalenceConfig(33);
  JointTopicModelConfig sparse = EquivalenceConfig(34);
  sparse.sparse_sampler = true;
  sparse.alias_rebuild_interval = 6;
  sparse.mh_steps = 2;
  auto result = eval::CompareConfigsMoments(
      dense, sparse, SyntheticCorpus(), eval::SamplerKind::kInstantiated,
      /*burn_in_sweeps=*/100, /*measure_sweeps=*/250);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->phi_max_abs_diff, 0.05)
      << "phi diff " << result->phi_max_abs_diff;
  EXPECT_LT(result->topic_share_max_abs_diff, 0.05)
      << "share diff " << result->topic_share_max_abs_diff;
  EXPECT_LT(result->gel_mean_max_abs_diff, 0.35)
      << "gel mean diff " << result->gel_mean_max_abs_diff;
}

// --- Degenerate-input edge cases ---------------------------------------

TEST(SamplerEdgeCaseTest, EmptyCorpusRejectedByBothSamplers) {
  recipe::Dataset empty;
  empty.term_vocab.Add("w0");
  JointTopicModelConfig config = TinyConfig(1);
  EXPECT_FALSE(JointTopicModel::Create(config, &empty).ok());
  EXPECT_FALSE(CollapsedJointTopicModel::Create(config, &empty).ok());
  EXPECT_FALSE(JointTopicModel::Create(config, nullptr).ok());
  EXPECT_FALSE(CollapsedJointTopicModel::Create(config, nullptr).ok());
}

recipe::Dataset SingleDocumentDataset() {
  recipe::Dataset ds = TinyDataset();
  ds.documents.resize(1);
  return ds;
}

template <typename Model>
void RunSingleDocumentCase(int num_threads) {
  recipe::Dataset ds = SingleDocumentDataset();
  JointTopicModelConfig config = TinyConfig(7);
  config.num_threads = num_threads;
  auto model = Model::Create(config, &ds);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->RunSweeps(30).ok());
  auto estimates = [&] {
    if constexpr (std::is_same_v<Model, CollapsedJointTopicModel>) {
      auto e = model->Estimate();
      EXPECT_TRUE(e.ok());
      return *std::move(e);
    } else {
      return model->Estimate();
    }
  }();
  ASSERT_EQ(estimates.theta.size(), 1u);
  double sum = 0.0;
  for (double p : estimates.theta[0]) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GE(estimates.doc_topic[0], 0);
  EXPECT_LT(estimates.doc_topic[0], kTopics);
}

TEST(SamplerEdgeCaseTest, SingleDocumentInstantiatedSerial) {
  RunSingleDocumentCase<JointTopicModel>(1);
}

TEST(SamplerEdgeCaseTest, SingleDocumentInstantiatedParallel) {
  // More shards than documents: most shards are empty.
  RunSingleDocumentCase<JointTopicModel>(4);
}

TEST(SamplerEdgeCaseTest, SingleDocumentCollapsedSerial) {
  RunSingleDocumentCase<CollapsedJointTopicModel>(1);
}

TEST(SamplerEdgeCaseTest, SingleDocumentCollapsedParallel) {
  RunSingleDocumentCase<CollapsedJointTopicModel>(4);
}

template <typename Model>
void RunSingleTopicCase(int num_threads) {
  recipe::Dataset ds = TinyDataset();
  JointTopicModelConfig config = TinyConfig(9);
  config.num_topics = 1;
  config.num_threads = num_threads;
  auto model = Model::Create(config, &ds);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->RunSweeps(20).ok());
  // With K = 1 every assignment is forced to topic 0 and the chain must
  // still be numerically healthy.
  for (int yd : model->y()) EXPECT_EQ(yd, 0);
  for (const auto& zd : model->z()) {
    for (int zn : zd) EXPECT_EQ(zn, 0);
  }
  if constexpr (std::is_same_v<Model, JointTopicModel>) {
    EXPECT_TRUE(std::isfinite(model->LogJointLikelihood()));
  }
}

TEST(SamplerEdgeCaseTest, SingleTopicInstantiated) {
  RunSingleTopicCase<JointTopicModel>(1);
  RunSingleTopicCase<JointTopicModel>(2);
}

TEST(SamplerEdgeCaseTest, SingleTopicCollapsed) {
  RunSingleTopicCase<CollapsedJointTopicModel>(1);
  RunSingleTopicCase<CollapsedJointTopicModel>(2);
}

TEST(SamplerExactnessTest, ExactPosteriorRespondsToEvidence) {
  // Moving doc 0's gel feature toward doc 1's flips the preferred grouping.
  recipe::Dataset near_doc1 = TinyDataset();
  near_doc1.documents[0].gel_feature[0] = 3.0;  // Same as doc 1.
  JointTopicModelConfig config = TinyConfig(1);
  double base = ExactPosteriorY0(TinyDataset(), config);
  double moved = ExactPosteriorY0(near_doc1, config);
  // The posterior must change in response; direction depends on labeling
  // symmetry breaking by the words, so only inequality is asserted.
  EXPECT_NE(base, moved);
}

}  // namespace
}  // namespace texrheo::core
