#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fault_injection.h"
#include "util/csv.h"

namespace texrheo::core {
namespace {

ModelSnapshot SampleSnapshot() {
  ModelSnapshot snapshot;
  snapshot.vocab.Add("purupuru");
  snapshot.vocab.Add("katai");
  snapshot.vocab.Add("fuwafuwa");
  snapshot.estimates.phi = {{0.7, 0.2, 0.1}, {0.1, 0.8, 0.1}};
  math::Matrix precision(2, 2);
  precision(0, 0) = 3.0;
  precision(0, 1) = 0.5;
  precision(1, 0) = 0.5;
  precision(1, 1) = 2.0;
  snapshot.estimates.gel_topics.push_back(
      math::Gaussian::FromPrecision({4.5, 9.2}, precision).value());
  snapshot.estimates.gel_topics.push_back(
      math::Gaussian::FromPrecision({9.2, 5.1}, precision).value());
  snapshot.estimates.emulsion_topics.push_back(
      math::Gaussian::FromPrecision({1.0, 2.0},
                                    math::Matrix::Identity(2, 1.5))
          .value());
  snapshot.estimates.emulsion_topics.push_back(
      math::Gaussian::FromPrecision({2.0, 1.0},
                                    math::Matrix::Identity(2, 1.5))
          .value());
  snapshot.estimates.topic_recipe_count = {12, 30};
  return snapshot;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  ModelSnapshot original = SampleSnapshot();
  auto loaded = DeserializeModel(SerializeModel(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->vocab.size(), 3u);
  EXPECT_EQ(loaded->vocab.WordOf(0), "purupuru");
  EXPECT_EQ(loaded->vocab.IdOf("katai"), 1);

  ASSERT_EQ(loaded->estimates.phi.size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    for (size_t v = 0; v < 3; ++v) {
      EXPECT_NEAR(loaded->estimates.phi[k][v],
                  original.estimates.phi[k][v], 1e-10);
    }
  }
  ASSERT_EQ(loaded->estimates.gel_topics.size(), 2u);
  EXPECT_NEAR(loaded->estimates.gel_topics[0].mean()[0], 4.5, 1e-10);
  EXPECT_LT(loaded->estimates.gel_topics[0].precision().MaxAbsDiff(
                original.estimates.gel_topics[0].precision()),
            1e-10);
  EXPECT_EQ(loaded->estimates.topic_recipe_count,
            (std::vector<int>{12, 30}));
}

TEST(SerializationTest, LogPdfSurvivesRoundTrip) {
  ModelSnapshot original = SampleSnapshot();
  auto loaded = DeserializeModel(SerializeModel(original));
  ASSERT_TRUE(loaded.ok());
  math::Vector x = {4.0, 8.0};
  EXPECT_NEAR(loaded->estimates.gel_topics[0].LogPdf(x),
              original.estimates.gel_topics[0].LogPdf(x), 1e-9);
}

TEST(SerializationTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/texrheo_model_test.txt";
  ModelSnapshot original = SampleSnapshot();
  ASSERT_TRUE(SaveModel(path, original).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_topics(), 2);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeModel("").ok());
  EXPECT_FALSE(DeserializeModel("not-a-model 1\n").ok());
  EXPECT_FALSE(DeserializeModel("texrheo-model 99\n").ok());
  // Format 1 predates the 'end' sentinel; refuse rather than mis-parse.
  EXPECT_FALSE(DeserializeModel("texrheo-model 1\nvocab 0\ntopics 0 0\n").ok());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  std::string content = SerializeModel(SampleSnapshot());
  // Chop off the last gaussian lines.
  std::string truncated = content.substr(0, content.size() / 2);
  EXPECT_FALSE(DeserializeModel(truncated).ok());
}

TEST(SerializationTest, RejectsEveryStrictPrefix) {
  std::string content = SerializeModel(SampleSnapshot());
  ASSERT_GT(content.size(), 100u);
  for (size_t len = 0; len < content.size(); ++len) {
    auto loaded = DeserializeModel(content.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(SerializationTest, RejectsContentAfterEndMarker) {
  std::string content = SerializeModel(SampleSnapshot());
  EXPECT_FALSE(DeserializeModel(content + "stray trailing line\n").ok());
}

TEST(SerializationTest, ErrorsCarryLineNumbersAndExcerpts) {
  std::string content = SerializeModel(SampleSnapshot());

  // Header on line 1.
  auto bad_header = DeserializeModel("texrheo-model zero\nrest\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("line 1"), std::string::npos)
      << bad_header.status().ToString();

  // Corrupt the vocab count (line 2: "vocab 3").
  std::string bad = content;
  size_t pos = bad.find("vocab 3");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 7, "vocab x");
  auto loaded = DeserializeModel(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().ToString();
  // The offending line is excerpted in the message.
  EXPECT_NE(loaded.status().message().find("vocab x"), std::string::npos)
      << loaded.status().ToString();
}

TEST(SerializationTest, ErrorsCarryByteOffsets) {
  std::string content = SerializeModel(SampleSnapshot());

  // Line 1 starts at byte 0.
  auto bad_header = DeserializeModel("texrheo-model zero\nrest\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("@ byte 0"), std::string::npos)
      << bad_header.status().ToString();

  // Corrupt the vocab count: the reported offset is where line 2 starts,
  // i.e. the length of line 1 plus its newline.
  std::string bad = content;
  size_t pos = bad.find("vocab 3");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 7, "vocab x");
  auto loaded = DeserializeModel(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("@ byte " + std::to_string(pos)),
            std::string::npos)
      << loaded.status().ToString();

  // Deep corruption (a gaussian line) points far into the file, not at 0.
  size_t gel_pos = content.find("gel_topic");
  ASSERT_NE(gel_pos, std::string::npos);
  std::string deep = content;
  deep.replace(gel_pos, 9, "gel_tpoic");
  auto deep_loaded = DeserializeModel(deep);
  ASSERT_FALSE(deep_loaded.ok());
  EXPECT_NE(
      deep_loaded.status().message().find("@ byte " + std::to_string(gel_pos)),
      std::string::npos)
      << deep_loaded.status().ToString();
}

TEST(SerializationTest, MissingEndMarkerNamesTheLastLine) {
  std::string content = SerializeModel(SampleSnapshot());
  // Drop the "end\n" sentinel but keep the file newline-terminated.
  size_t pos = content.rfind("end\n");
  ASSERT_NE(pos, std::string::npos);
  auto loaded = DeserializeModel(content.substr(0, pos));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("end"), std::string::npos)
      << loaded.status().ToString();
}

TEST(SerializationTest, SaveModelCrashBeforeRenameKeepsOldModel) {
  std::string path = testing::TempDir() + "/texrheo_atomic_model.txt";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  ModelSnapshot original = SampleSnapshot();
  ASSERT_TRUE(SaveModel(path, original).ok());
  auto before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  // The process dies between fsync and rename; the temp file cannot be
  // cleaned up either.
  ModelSnapshot changed = SampleSnapshot();
  changed.vocab.Add("tsurutsuru");
  FaultInjectingFileOps ops;
  ops.crash_before_rename = true;
  ops.skip_remove = true;
  EXPECT_FALSE(SaveModel(path, changed, ops).ok());

  // The previously saved model is untouched and still loads.
  auto after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocab.size(), 3u);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(SerializationTest, RejectsCorruptedPrecision) {
  std::string content = SerializeModel(SampleSnapshot());
  // Make a precision matrix non-positive-definite by negating a diagonal.
  size_t pos = content.find("gel_topic 0");
  ASSERT_NE(pos, std::string::npos);
  size_t val = content.find("3.0", pos);
  ASSERT_NE(val, std::string::npos);
  content.replace(val, 3, "-3.");
  EXPECT_FALSE(DeserializeModel(content).ok());
}

TEST(SerializationTest, MakeSnapshotStripsPerDocumentState) {
  TopicEstimates estimates;
  estimates.phi = {{1.0}};
  estimates.theta = {{1.0}, {1.0}};
  estimates.doc_topic = {0, 0};
  estimates.topic_recipe_count = {2};
  estimates.gel_topics.push_back(
      math::Gaussian::FromPrecision({0.0}, math::Matrix::Identity(1))
          .value());
  estimates.emulsion_topics.push_back(
      math::Gaussian::FromPrecision({0.0}, math::Matrix::Identity(1))
          .value());
  text::Vocabulary vocab;
  vocab.Add("term");
  ModelSnapshot snapshot = MakeSnapshot(estimates, vocab);
  EXPECT_TRUE(snapshot.estimates.theta.empty());
  EXPECT_TRUE(snapshot.estimates.doc_topic.empty());
  EXPECT_EQ(snapshot.estimates.phi.size(), 1u);
  EXPECT_EQ(snapshot.vocab.size(), 1u);
}

TEST(SerializationTest, LoadMissingFileIsIOError) {
  auto loaded = LoadModel("/nonexistent/texrheo/model.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace texrheo::core
