#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "math/running_stats.h"

namespace texrheo {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleNonZeroNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleNonZero(), 0.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  math::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextDouble());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, NextUintCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextUint(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values hit in 1000 draws.
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(19);
  math::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalSingleElement) {
  Rng rng(1);
  EXPECT_EQ(rng.NextCategorical({5.0}), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // Probability of identity is ~1/50!.
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng b = a.Fork();
  // Forked stream differs from parent's continuation.
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextUniformRange) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextUniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, SaveRestoreRoundTripsBitExactly) {
  Rng rng(44);
  // Burn a few draws so the state is mid-stream.
  for (int i = 0; i < 17; ++i) rng.NextU64();
  Rng::State state = rng.SaveState();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.NextU64());

  Rng restored(999);  // Different seed; RestoreState must overwrite fully.
  restored.RestoreState(state);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.NextU64(), expected[static_cast<size_t>(i)]) << i;
  }
}

TEST(RngTest, SaveRestorePreservesCachedGaussianSpare) {
  Rng rng(45);
  // An odd number of NextGaussian() calls leaves a Marsaglia-polar spare
  // cached; dropping it would desynchronize a restored chain by one draw.
  rng.NextGaussian();
  Rng::State state = rng.SaveState();
  EXPECT_TRUE(state.has_cached_gaussian);
  std::vector<double> expected;
  for (int i = 0; i < 8; ++i) expected.push_back(rng.NextGaussian());

  Rng restored(999);
  restored.RestoreState(state);
  for (int i = 0; i < 8; ++i) {
    // Bit-exact equality, not approximate.
    EXPECT_EQ(restored.NextGaussian(), expected[static_cast<size_t>(i)]) << i;
  }
}

}  // namespace
}  // namespace texrheo
