#include "rheology/gel_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::rheology {
namespace {

using recipe::EmulsionType;
using recipe::GelType;

math::Vector GelOnly(GelType type, double c) {
  math::Vector v(recipe::kNumGelTypes);
  v[static_cast<size_t>(type)] = c;
  return v;
}

math::Vector NoEmulsion() { return math::Vector(recipe::kNumEmulsionTypes); }

TEST(GelPhysicsModelTest, CalibrationSucceeds) {
  EXPECT_TRUE(GelPhysicsModel::Calibrate().ok());
}

TEST(GelPhysicsModelTest, ZeroGelHasNoTexture) {
  const auto& m = GelPhysicsModel::Calibrated();
  TpaAttributes a =
      m.Predict(math::Vector(recipe::kNumGelTypes), NoEmulsion());
  EXPECT_DOUBLE_EQ(a.hardness, 0.0);
  EXPECT_DOUBLE_EQ(a.adhesiveness, 0.0);
}

TEST(GelPhysicsModelTest, HardnessIsMonotoneInConcentration) {
  const auto& m = GelPhysicsModel::Calibrated();
  for (GelType g :
       {GelType::kGelatin, GelType::kKanten, GelType::kAgar}) {
    double prev = 0.0;
    for (double c = 0.004; c <= 0.05; c += 0.002) {
      double h = m.PureHardness(g, c);
      EXPECT_GT(h, prev) << GelTypeName(g) << " at " << c;
      prev = h;
    }
  }
}

TEST(GelPhysicsModelTest, KantenIsHardestAtEqualConcentration) {
  // The defining shape of Table I: at ~1% kanten is far harder than
  // gelatin and harder than agar.
  const auto& m = GelPhysicsModel::Calibrated();
  double c = 0.01;
  EXPECT_GT(m.PureHardness(GelType::kKanten, c),
            m.PureHardness(GelType::kGelatin, c));
  EXPECT_GT(m.PureHardness(GelType::kKanten, c),
            m.PureHardness(GelType::kAgar, c));
}

TEST(GelPhysicsModelTest, KantenNeverAdhesive) {
  const auto& m = GelPhysicsModel::Calibrated();
  for (double c = 0.004; c < 0.04; c += 0.004) {
    EXPECT_DOUBLE_EQ(m.PureAdhesiveness(GelType::kKanten, c), 0.0);
  }
}

TEST(GelPhysicsModelTest, AgarAdhesivenessSpikesAtHighConcentration) {
  const auto& m = GelPhysicsModel::Calibrated();
  // Table I: ~0.01-0.02 at 1-1.2%, 1.95 at 3%.
  EXPECT_LT(m.PureAdhesiveness(GelType::kAgar, 0.01), 0.2);
  EXPECT_GT(m.PureAdhesiveness(GelType::kAgar, 0.03), 1.0);
}

TEST(GelPhysicsModelTest, CohesivenessDecaysWithConcentration) {
  const auto& m = GelPhysicsModel::Calibrated();
  for (GelType g :
       {GelType::kGelatin, GelType::kKanten, GelType::kAgar}) {
    EXPECT_GE(m.PureCohesiveness(g, 0.005), m.PureCohesiveness(g, 0.03))
        << GelTypeName(g);
  }
}

TEST(GelPhysicsModelTest, ReproducesTableIShape) {
  // Within-factor-of-2 agreement with every published hardness value and
  // correct ordering of the gelatin series.
  const auto& m = GelPhysicsModel::Calibrated();
  for (const auto& row : TableI()) {
    TpaAttributes predicted = m.Predict(row.gel, row.emulsion);
    double ratio = predicted.hardness /
                   std::max(row.attributes.hardness, 1e-6);
    EXPECT_GT(ratio, 0.45) << "row " << row.id;
    EXPECT_LT(ratio, 2.2) << "row " << row.id;
  }
}

TEST(GelPhysicsModelTest, GelatinAgarSynergyDominatesRow5Adhesiveness) {
  const auto& m = GelPhysicsModel::Calibrated();
  math::Vector mixed(recipe::kNumGelTypes);
  mixed[static_cast<size_t>(GelType::kGelatin)] = 0.03;
  mixed[static_cast<size_t>(GelType::kAgar)] = 0.03;
  TpaAttributes a = m.Predict(mixed, NoEmulsion());
  EXPECT_NEAR(a.adhesiveness, 12.6, 1.0);
  // Far exceeds the sum of the pure curves.
  double pure_sum = m.PureAdhesiveness(GelType::kGelatin, 0.03) +
                    m.PureAdhesiveness(GelType::kAgar, 0.03);
  EXPECT_GT(a.adhesiveness, 3.0 * pure_sum);
}

TEST(GelPhysicsModelTest, ReproducesTableIIbExactly) {
  // Table II(b) is the emulsion-coefficient calibration target; the model
  // must reproduce it to numerical precision.
  const auto& m = GelPhysicsModel::Calibrated();
  for (const auto& dish : TableIIb()) {
    TpaAttributes predicted = m.Predict(dish.gel, dish.emulsion);
    EXPECT_NEAR(predicted.hardness, dish.attributes.hardness, 1e-6)
        << dish.name;
    EXPECT_NEAR(predicted.cohesiveness, dish.attributes.cohesiveness, 1e-6)
        << dish.name;
    EXPECT_NEAR(predicted.adhesiveness, dish.attributes.adhesiveness, 1e-6)
        << dish.name;
  }
}

TEST(GelPhysicsModelTest, EmulsionsHardenGels) {
  // Subordinate effect of [19]: emulsion fillers raise hardness.
  const auto& m = GelPhysicsModel::Calibrated();
  math::Vector gel = GelOnly(GelType::kGelatin, 0.02);
  math::Vector emulsion = NoEmulsion();
  double plain = m.Predict(gel, emulsion).hardness;
  emulsion[static_cast<size_t>(EmulsionType::kRawCream)] = 0.2;
  double creamy = m.Predict(gel, emulsion).hardness;
  EXPECT_GT(creamy, plain);
}

TEST(GelPhysicsModelTest, FoamEmulsionsRaiseCohesiveness) {
  const auto& m = GelPhysicsModel::Calibrated();
  math::Vector gel = GelOnly(GelType::kGelatin, 0.025);
  math::Vector emulsion = NoEmulsion();
  double plain = m.Predict(gel, emulsion).cohesiveness;
  emulsion[static_cast<size_t>(EmulsionType::kRawCream)] = 0.25;
  emulsion[static_cast<size_t>(EmulsionType::kEggYolk)] = 0.08;
  double foam = m.Predict(gel, emulsion).cohesiveness;
  EXPECT_GT(foam, plain);
}

TEST(GelPhysicsModelTest, EmulsionsDampAdhesiveness) {
  const auto& m = GelPhysicsModel::Calibrated();
  math::Vector gel = GelOnly(GelType::kGelatin, 0.025);
  math::Vector emulsion = NoEmulsion();
  double plain = m.Predict(gel, emulsion).adhesiveness;
  emulsion[static_cast<size_t>(EmulsionType::kRawCream)] = 0.3;
  EXPECT_LT(m.Predict(gel, emulsion).adhesiveness, plain);
}

TEST(GelPhysicsModelTest, CohesivenessStaysInValidRange) {
  const auto& m = GelPhysicsModel::Calibrated();
  math::Vector emulsion = NoEmulsion();
  emulsion[static_cast<size_t>(EmulsionType::kRawCream)] = 0.5;
  emulsion[static_cast<size_t>(EmulsionType::kEggYolk)] = 0.2;
  for (double c = 0.002; c < 0.08; c += 0.01) {
    TpaAttributes a = m.Predict(GelOnly(GelType::kGelatin, c), emulsion);
    EXPECT_GE(a.cohesiveness, 0.0);
    EXPECT_LE(a.cohesiveness, 0.95);
    EXPECT_GE(a.hardness, 0.0);
    EXPECT_GE(a.adhesiveness, 0.0);
  }
}

}  // namespace
}  // namespace texrheo::rheology
