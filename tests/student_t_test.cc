#include "math/student_t.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/running_stats.h"
#include "util/rng.h"

namespace texrheo::math {
namespace {

TEST(StudentTTest, RejectsBadParameters) {
  EXPECT_FALSE(StudentT::Create({0.0}, Matrix::Identity(1), 0.0).ok());
  EXPECT_FALSE(StudentT::Create({0.0, 0.0}, Matrix::Identity(1), 3.0).ok());
  EXPECT_FALSE(
      StudentT::Create({0.0}, Matrix::Identity(1, -1.0), 3.0).ok());
}

TEST(StudentTTest, OneDimMatchesClosedForm) {
  // St(x | 0, 1, nu) = Gamma((nu+1)/2) / (Gamma(nu/2) sqrt(nu pi))
  //                    (1 + x^2/nu)^{-(nu+1)/2}.
  double nu = 5.0;
  auto t = StudentT::Create({0.0}, Matrix::Identity(1), nu);
  ASSERT_TRUE(t.ok());
  for (double x : {-2.0, 0.0, 0.5, 3.0}) {
    double expected = std::lgamma(0.5 * (nu + 1.0)) -
                      std::lgamma(0.5 * nu) -
                      0.5 * std::log(nu * M_PI) -
                      0.5 * (nu + 1.0) * std::log1p(x * x / nu);
    EXPECT_NEAR(t->LogPdf({x}), expected, 1e-12) << x;
  }
}

TEST(StudentTTest, ApproachesGaussianForLargeDof) {
  auto t = StudentT::Create({0.0, 0.0}, Matrix::Identity(2), 1e6);
  auto g = Gaussian::FromPrecision({0.0, 0.0}, Matrix::Identity(2));
  ASSERT_TRUE(t.ok() && g.ok());
  for (double x : {-1.5, 0.0, 2.0}) {
    EXPECT_NEAR(t->LogPdf({x, 0.5}), g->LogPdf({x, 0.5}), 1e-4);
  }
}

TEST(StudentTTest, HeavierTailsThanGaussian) {
  auto t = StudentT::Create({0.0}, Matrix::Identity(1), 3.0);
  auto g = Gaussian::FromPrecision({0.0}, Matrix::Identity(1));
  ASSERT_TRUE(t.ok() && g.ok());
  // Far in the tail the Student-t density dominates.
  EXPECT_GT(t->LogPdf({6.0}), g->LogPdf({6.0}));
}

TEST(StudentTTest, PdfIntegratesToOneOnGrid) {
  auto t = StudentT::Create({1.0}, Matrix::Identity(1, 2.0), 4.0);
  ASSERT_TRUE(t.ok());
  double sum = 0.0, dx = 0.005;
  for (double x = -60.0; x < 60.0; x += dx) {
    sum += std::exp(t->LogPdf({x})) * dx;
  }
  EXPECT_NEAR(sum, 1.0, 2e-3);
}

TEST(StudentTTest, CovarianceFormula) {
  Matrix sigma = Matrix::Diagonal({2.0, 0.5});
  auto t = StudentT::Create({0.0, 0.0}, sigma, 6.0);
  ASSERT_TRUE(t.ok());
  auto cov = t->Covariance();
  ASSERT_TRUE(cov.ok());
  EXPECT_NEAR((*cov)(0, 0), 6.0 / 4.0 * 2.0, 1e-12);
  EXPECT_NEAR((*cov)(1, 1), 6.0 / 4.0 * 0.5, 1e-12);
  auto low_dof = StudentT::Create({0.0}, Matrix::Identity(1), 2.0);
  ASSERT_TRUE(low_dof.ok());
  EXPECT_FALSE(low_dof->Covariance().ok());
}

TEST(StudentTTest, PosteriorPredictiveMatchesSampledCompound) {
  // Draw (mu, Lambda) ~ NW, then x ~ N(mu, Lambda^{-1}); the compound
  // empirical moments must match the Student-t predictive's.
  NormalWishartParams nw;
  nw.mu0 = Vector{2.0};
  nw.beta = 3.0;
  nw.nu = 7.0;
  nw.scale = Matrix::Identity(1, 0.5);
  auto predictive = StudentT::PosteriorPredictive(nw);
  ASSERT_TRUE(predictive.ok());
  EXPECT_NEAR(predictive->dof(), 7.0, 1e-12);  // nu - d + 1 with d = 1.
  EXPECT_DOUBLE_EQ(predictive->mean()[0], 2.0);

  texrheo::Rng rng(21);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    auto g = NormalWishartSample(rng, nw);
    ASSERT_TRUE(g.ok());
    stats.Add(g->Sample(rng)[0]);
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.01);
  auto cov = predictive->Covariance();
  ASSERT_TRUE(cov.ok());
  EXPECT_NEAR(stats.variance(), (*cov)(0, 0), 0.05 * (*cov)(0, 0));
}

TEST(StudentTTest, PosteriorPredictiveRejectsTinyDof) {
  NormalWishartParams nw;
  nw.mu0 = Vector(3);
  nw.beta = 1.0;
  nw.nu = 2.5;  // nu - d + 1 = 0.5 > 0 but Validate wants nu > d - 1 = 2.
  nw.scale = Matrix::Identity(3, 0.5);
  EXPECT_TRUE(StudentT::PosteriorPredictive(nw).ok());
  nw.nu = 1.5;
  EXPECT_FALSE(StudentT::PosteriorPredictive(nw).ok());
}

TEST(StudentTTest, LogPdfPeaksAtMean) {
  auto t = StudentT::Create({1.0, -2.0}, Matrix::Identity(2, 0.7), 5.0);
  ASSERT_TRUE(t.ok());
  double at_mean = t->LogPdf({1.0, -2.0});
  texrheo::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Vector x = {1.0 + rng.NextGaussian(), -2.0 + rng.NextGaussian()};
    EXPECT_LE(t->LogPdf(x), at_mean + 1e-12);
  }
}

}  // namespace
}  // namespace texrheo::math
