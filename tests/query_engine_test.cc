// QueryEngine: all four query types, result caching, micro-batching,
// admission control, concurrent mixed-type queries, and hot reload with
// zero in-flight failures. Runs on a hand-built two-topic model so the
// suite stays fast; ci.sh re-runs it under TSan.

#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/model_binary.h"
#include "embed/embedding.h"
#include "math/distributions.h"
#include "obs/metrics.h"
#include "recipe/dataset.h"
#include "recipe/ingredient.h"
#include "serve/snapshot.h"

namespace texrheo::serve {
namespace {

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

/// Topic 0: hard, gel features near 2. Topic 1: elastic, features near 6.
core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.vocab.Add("fuwafuwa");
  model.vocab.Add("zzz-not-a-texture-word");
  model.estimates.phi = {{0.7, 0.1, 0.1, 0.1}, {0.05, 0.75, 0.1, 0.1}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {3, 3};
  return model;
}

std::shared_ptr<const ServingSnapshot> TinySnapshot(
    const std::string& label = "tiny") {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), label);
  EXPECT_TRUE(snapshot.ok());
  return *snapshot;
}

/// Six documents, three per topic (by gel feature), with emulsion
/// concentrations at increasing distance from {0.1 x6}.
recipe::Dataset TinyCorpus() {
  recipe::Dataset ds;
  ds.term_vocab.Add("katai");
  for (int i = 0; i < 6; ++i) {
    recipe::Document doc;
    doc.recipe_index = static_cast<size_t>(i);
    doc.term_ids = {0};
    doc.gel_feature = math::Vector(3, i < 3 ? 2.0 : 6.0);
    doc.gel_concentration = math::Vector(3, 0.01);
    doc.emulsion_feature = math::Vector(6, 1.0);
    doc.emulsion_concentration = math::Vector(6, 0.1 + 0.05 * (i % 3));
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

QueryEngineConfig FastConfig() {
  QueryEngineConfig config;
  config.fold_in_sweeps = 10;
  config.batch_linger_micros = 0;  // Tests shouldn't sleep.
  return config;
}

TextureQuery HardQuery() {
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.texture_terms = {"katai", "katai"};
  return query;
}

TEST(QueryEngineTest, CreateValidatesConfig) {
  auto corpus = TinyCorpus();
  QueryEngineConfig bad = FastConfig();
  bad.fold_in_sweeps = 0;
  EXPECT_FALSE(QueryEngine::Create(bad, TinySnapshot(), &corpus).ok());
  bad = FastConfig();
  bad.cache_quantum = 0.0;
  EXPECT_FALSE(QueryEngine::Create(bad, TinySnapshot(), &corpus).ok());
  bad = FastConfig();
  bad.alpha = -1.0;
  EXPECT_FALSE(QueryEngine::Create(bad, TinySnapshot(), &corpus).ok());
  EXPECT_FALSE(QueryEngine::Create(FastConfig(), nullptr, &corpus).ok());
}

TEST(QueryEngineTest, PredictTextureAnswersAndCaches) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto first = (*engine)->PredictTexture(HardQuery());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);
  ASSERT_EQ(first->theta.size(), 2u);
  EXPECT_NEAR(first->theta[0] + first->theta[1], 1.0, 1e-9);
  EXPECT_FALSE(first->top_terms.empty());
  EXPECT_NE(first->model_fingerprint, 0u);

  auto second = (*engine)->PredictTexture(HardQuery());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->theta, first->theta);
  EXPECT_EQ(second->topic, first->topic);

  QueryEngineStats stats = (*engine)->GetStats();
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.batcher.submitted, 1u);  // Only the miss folded in.
  EXPECT_EQ(stats.predict.count, 2u);
}

TEST(QueryEngineTest, CacheKeyIsIngredientOrderIndependent) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  auto a = QueryFromIngredients({{"gelatin", 0.01}, {"milk", 0.2}},
                                {"katai", "purupuru"});
  auto b = QueryFromIngredients({{"milk", 0.2}, {"gelatin", 0.01}},
                                {"purupuru", "katai"});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*engine)->PredictTexture(*a).ok());
  auto hit = (*engine)->PredictTexture(*b);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_cache);
}

TEST(QueryEngineTest, UnknownTermsAreCountedNotFatal) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  TextureQuery query = HardQuery();
  query.texture_terms = {"katai", "not-in-vocab"};
  ASSERT_TRUE((*engine)->PredictTexture(query).ok());
  EXPECT_EQ((*engine)->GetStats().unknown_terms, 1u);
}

TEST(QueryEngineTest, PredictTextureRejectsBadDimensions) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(2, 0.01);  // Must be 3.
  EXPECT_FALSE((*engine)->PredictTexture(query).ok());
  query.gel_concentration = math::Vector(3, 2.0);  // Ratio > 1.
  EXPECT_FALSE((*engine)->PredictTexture(query).ok());
}

TEST(QueryEngineTest, NearestRheologyRanksAscendingAndChecksRange) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  auto matches = (*engine)->NearestRheology(0);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  ASSERT_GT(matches->size(), 1u);
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_LE((*matches)[i - 1].divergence, (*matches)[i].divergence);
  }
  EXPECT_FALSE((*engine)->NearestRheology(-1).ok());
  EXPECT_FALSE((*engine)->NearestRheology(2).ok());
}

TEST(QueryEngineTest, NearestRheologyHonoursMethodOverride) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  core::LinkageOptions euclid;
  euclid.method = core::LinkageMethod::kEuclidean;
  auto kl = (*engine)->NearestRheology(0);
  auto eu = (*engine)->NearestRheology(0, &euclid);
  ASSERT_TRUE(kl.ok() && eu.ok());
  // Different scoring functions produce different divergence values.
  EXPECT_NE((*kl)[0].divergence, (*eu)[0].divergence);
}

TEST(QueryEngineTest, SimilarRecipesStaysInTopicAndRanks) {
  auto corpus = TinyCorpus();
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.emulsion_concentration = math::Vector(6, 0.1);
  auto result = (*engine)->SimilarRecipes(query, 10);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Feature-only query near exp(-2): lands in a topic with 3 documents.
  EXPECT_EQ(result->recipes.size(), 3u);
  for (const SimilarRecipe& r : result->recipes) {
    EXPECT_EQ(r.recipe_index < 3, result->topic == 0);
  }
  for (size_t i = 1; i < result->recipes.size(); ++i) {
    EXPECT_LE(result->recipes[i - 1].divergence,
              result->recipes[i].divergence);
  }
  // top_n truncates.
  auto top1 = (*engine)->SimilarRecipes(query, 1);
  ASSERT_TRUE(top1.ok());
  EXPECT_EQ(top1->recipes.size(), 1u);
}

/// Vocab-aligned with TinyModel (4 rows): the three dictionary words get
/// well-separated directions, the non-texture word a distinct fourth.
embed::EmbeddingTable TinyEmbeddingTable() {
  embed::EmbeddingTable table;
  table.dim = 4;
  table.vectors = {
      0.9f,  0.1f, 0.0f,  0.1f,   // katai
      0.1f,  0.9f, 0.1f,  0.0f,   // purupuru
      0.0f,  0.1f, 0.9f,  0.1f,   // fuwafuwa
      -0.5f, 0.2f, -0.5f, 0.6f,   // zzz-not-a-texture-word
  };
  table.RecomputeNorms();
  return table;
}

std::shared_ptr<const ServingSnapshot> TinyEmbedSnapshot(
    const std::string& label = "tiny-embed") {
  auto snapshot =
      ServingSnapshot::FromModel(TinyModel(), label, TinyEmbeddingTable());
  EXPECT_TRUE(snapshot.ok());
  return *snapshot;
}

/// TinyCorpus with per-document term bags that actually differ, so the
/// embed and lexical backends have something to disagree about.
recipe::Dataset EmbedCorpus() {
  recipe::Dataset ds = TinyCorpus();
  const std::vector<std::vector<int32_t>> bags = {
      {0}, {0, 1}, {1}, {2}, {1, 2}, {0, 2}};
  for (size_t i = 0; i < ds.documents.size(); ++i) {
    ds.documents[i].term_ids = bags[i];
  }
  return ds;
}

TEST(QueryEngineTest, EmbedAndFusedModesRequireEmbeddings) {
  auto corpus = EmbedCorpus();
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.texture_terms = {"katai"};
  for (SimilarityMode mode :
       {SimilarityMode::kEmbed, SimilarityMode::kFused}) {
    auto result =
        (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0, mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
        << result.status().ToString();
  }
  // kl and lexical stay available on an embedding-less snapshot.
  for (SimilarityMode mode : {SimilarityMode::kKl, SimilarityMode::kLexical}) {
    EXPECT_TRUE(
        (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0, mode).ok());
  }
}

TEST(QueryEngineTest, EmbedModeNeedsAnInVocabularyTerm) {
  auto corpus = EmbedCorpus();
  auto engine =
      QueryEngine::Create(FastConfig(), TinyEmbedSnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  auto no_terms = (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0,
                                            SimilarityMode::kEmbed);
  ASSERT_FALSE(no_terms.ok());
  EXPECT_EQ(no_terms.status().code(), StatusCode::kInvalidArgument);
  // Out-of-vocabulary terms resolve to nothing: same rejection.
  query.texture_terms = {"no-such-texture-word"};
  auto unknown = (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0,
                                           SimilarityMode::kEmbed);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // fused degrades gracefully: no terms just means kl carries the blend.
  query.texture_terms = {};
  EXPECT_TRUE((*engine)
                  ->SimilarRecipes(query, 5, kNoDeadline, 0,
                                   SimilarityMode::kFused)
                  .ok());
}

TEST(QueryEngineTest, AllSimilarityModesRankWithinTopicAndCount) {
  auto corpus = EmbedCorpus();
  auto engine =
      QueryEngine::Create(FastConfig(), TinyEmbedSnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.emulsion_concentration = math::Vector(6, 0.1);
  query.texture_terms = {"katai", "purupuru"};
  for (SimilarityMode mode :
       {SimilarityMode::kKl, SimilarityMode::kEmbed, SimilarityMode::kLexical,
        SimilarityMode::kFused}) {
    auto result = (*engine)->SimilarRecipes(query, 10, kNoDeadline, 0, mode);
    ASSERT_TRUE(result.ok()) << SimilarityModeName(mode) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->mode, mode);
    ASSERT_FALSE(result->recipes.empty());
    for (const SimilarRecipe& r : result->recipes) {
      EXPECT_EQ(r.recipe_index < 3, result->topic == 0)
          << SimilarityModeName(mode);
    }
    for (size_t i = 1; i < result->recipes.size(); ++i) {
      EXPECT_LE(result->recipes[i - 1].divergence,
                result->recipes[i].divergence)
          << SimilarityModeName(mode);
    }
    // Per-mode counter ticked exactly for this mode's traffic.
    EXPECT_EQ((*engine)->metrics()->TakeSnapshot().CounterValue(
                  std::string("serve.similar.mode.") +
                  SimilarityModeName(mode)),
              1u);
  }
}

TEST(QueryEngineTest, SimilarCacheIsPerModeAndFlushedOnReload) {
  auto corpus = EmbedCorpus();
  auto engine =
      QueryEngine::Create(FastConfig(), TinyEmbedSnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.emulsion_concentration = math::Vector(6, 0.1);
  auto first = (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0,
                                         SimilarityMode::kKl);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto again = (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0,
                                         SimilarityMode::kKl);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  // A kl answer can never satisfy a lexical probe for the same recipe.
  auto lexical = (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0,
                                           SimilarityMode::kLexical);
  ASSERT_TRUE(lexical.ok());
  EXPECT_FALSE(lexical->from_cache);
  // Nor a different top_n under the same mode.
  auto wider = (*engine)->SimilarRecipes(query, 2, kNoDeadline, 0,
                                         SimilarityMode::kKl);
  ASSERT_TRUE(wider.ok());
  EXPECT_FALSE(wider->from_cache);
  // Reload flushes the similar cache alongside the predict cache.
  ASSERT_TRUE((*engine)->Reload(TinyEmbedSnapshot("v2")).ok());
  auto after = (*engine)->SimilarRecipes(query, 5, kNoDeadline, 0,
                                         SimilarityMode::kKl);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);
}

TEST(QueryEngineTest, MmapEmbeddingAnswersMatchHeapByteForByte) {
  // The acceptance bar for the zero-copy sections: an engine serving
  // embeddings straight out of the mapping must answer every mode exactly
  // as the heap-table engine does. Both engines are fresh (fold-in stream
  // sequence 0), so even the sampled topic assignment paths align.
  embed::EmbeddingTable table = TinyEmbeddingTable();
  std::string base = testing::TempDir() + "/qe_embed_pack";
  ASSERT_TRUE(
      core::WriteModelBinary(TinyModel(), base, FileOps::Real(), &table)
          .ok());
  auto heap_snapshot =
      ServingSnapshot::FromModel(TinyModel(), "heap", std::move(table));
  auto mmap_snapshot = ServingSnapshot::FromBinaryFile(base + ".idx");
  ASSERT_TRUE(heap_snapshot.ok() && mmap_snapshot.ok())
      << mmap_snapshot.status().ToString();
  auto heap_corpus = EmbedCorpus();
  auto mmap_corpus = EmbedCorpus();
  auto heap_engine =
      QueryEngine::Create(FastConfig(), *heap_snapshot, &heap_corpus);
  auto mmap_engine =
      QueryEngine::Create(FastConfig(), *mmap_snapshot, &mmap_corpus);
  ASSERT_TRUE(heap_engine.ok() && mmap_engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.emulsion_concentration = math::Vector(6, 0.1);
  query.texture_terms = {"katai", "purupuru"};
  for (SimilarityMode mode :
       {SimilarityMode::kKl, SimilarityMode::kEmbed, SimilarityMode::kLexical,
        SimilarityMode::kFused}) {
    auto heap_result =
        (*heap_engine)->SimilarRecipes(query, 10, kNoDeadline, 0, mode);
    auto mmap_result =
        (*mmap_engine)->SimilarRecipes(query, 10, kNoDeadline, 0, mode);
    ASSERT_TRUE(heap_result.ok() && mmap_result.ok())
        << SimilarityModeName(mode);
    EXPECT_EQ(heap_result->topic, mmap_result->topic);
    ASSERT_EQ(heap_result->recipes.size(), mmap_result->recipes.size())
        << SimilarityModeName(mode);
    for (size_t i = 0; i < heap_result->recipes.size(); ++i) {
      EXPECT_EQ(heap_result->recipes[i].recipe_index,
                mmap_result->recipes[i].recipe_index)
          << SimilarityModeName(mode) << " rank " << i;
      // Bit-identical, not merely close: both paths read the same float
      // bytes and run the same double arithmetic over them.
      EXPECT_EQ(heap_result->recipes[i].divergence,
                mmap_result->recipes[i].divergence)
          << SimilarityModeName(mode) << " rank " << i;
    }
  }
}

TEST(QueryEngineTest, SimilarRecipesRequiresCorpus) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  auto result = (*engine)->SimilarRecipes(query);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryEngineTest, TopicCardSummarizesTopic) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  auto card = (*engine)->TopicCard(0);
  ASSERT_TRUE(card.ok()) << card.status().ToString();
  EXPECT_EQ(card->topic, 0);
  EXPECT_EQ(card->recipe_count, 3);
  ASSERT_FALSE(card->top_terms.empty());
  EXPECT_EQ(card->top_terms[0].first, "katai");
  EXPECT_GT(card->categories.hard, 0.5);
  // Gaussian mean (feature space 2.0) maps back to exp(-2) concentration.
  ASSERT_EQ(card->gel_mean_concentration.size(), 3u);
  EXPECT_NEAR(card->gel_mean_concentration[0], std::exp(-2.0), 1e-6);
  EXPECT_FALSE((*engine)->TopicCard(7).ok());
}

TEST(QueryEngineTest, ReloadSwapsModelAndFlushesCache) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  auto before = (*engine)->PredictTexture(HardQuery());
  ASSERT_TRUE(before.ok());

  core::ModelSnapshot changed = TinyModel();
  changed.estimates.phi[0] = {0.1, 0.1, 0.7, 0.1};  // Now fuwafuwa-heavy.
  changed.estimates.phi[1] = {0.1, 0.1, 0.2, 0.6};
  auto new_snapshot = ServingSnapshot::FromModel(std::move(changed), "v2");
  ASSERT_TRUE(new_snapshot.ok());
  ASSERT_TRUE((*engine)->Reload(*new_snapshot).ok());

  EXPECT_EQ((*engine)->snapshot()->fingerprint(),
            (*new_snapshot)->fingerprint());
  auto after = (*engine)->PredictTexture(HardQuery());
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);  // Cache was flushed.
  EXPECT_EQ(after->model_fingerprint, (*new_snapshot)->fingerprint());
  QueryEngineStats stats = (*engine)->GetStats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.model_fingerprint, (*new_snapshot)->fingerprint());
  EXPECT_FALSE((*engine)->Reload(nullptr).ok());
}

TEST(QueryEngineTest, StatszMentionsEverySection) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->PredictTexture(HardQuery()).ok());
  std::string statsz = (*engine)->Statsz();
  for (const char* section :
       {"model:", "cache:", "batcher:", "errors:", "predict_texture:",
        "nearest_rheology:", "similar_recipes:", "topic_card:"}) {
    EXPECT_NE(statsz.find(section), std::string::npos) << section;
  }
}

TEST(QueryEngineTest, AdmissionControlShedsWithUnavailable) {
  // max_queue 1 with a batcher throttled by a slow fold-in: flood with
  // distinct queries from several threads and require at least one clean
  // Unavailable shed plus zero crashes.
  QueryEngineConfig config = FastConfig();
  config.cache_capacity = 0;  // Every query must fold in.
  config.max_queue = 1;
  config.batch_max_size = 1;
  config.fold_in_sweeps = 2000;  // Slow enough to back up the queue.
  auto engine = QueryEngine::Create(config, TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        TextureQuery query;
        query.texture_terms = {"katai", "purupuru", "katai", "fuwafuwa"};
        query.gel_concentration = math::Vector(3);
        query.gel_concentration[0] = 0.001 * (t * 8 + i + 1);
        auto result = (*engine)->PredictTexture(query);
        if (result.ok()) {
          ++ok;
        } else if (result.status().code() == StatusCode::kUnavailable) {
          ++shed;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(shed.load(), 0);
  QueryEngineStats stats = (*engine)->GetStats();
  EXPECT_EQ(stats.batcher.shed, static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(stats.errors, static_cast<uint64_t>(shed.load()));
}

TEST(QueryEngineTest, ExpiredDeadlineIsShedBeforeFoldIn) {
  QueryEngineConfig config = FastConfig();
  config.cache_capacity = 0;  // Force the fold-in path.
  auto engine = QueryEngine::Create(config, TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());

  // A deadline already in the past must be rejected at admission — it
  // never occupies a batch slot.
  Deadline expired = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(10);
  auto result = (*engine)->PredictTexture(HardQuery(), expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  QueryEngineStats stats = (*engine)->GetStats();
  EXPECT_GE(stats.batcher.deadline_expired, 1u);
  EXPECT_EQ(stats.batcher.jobs_processed, 0u);  // Never reached a batch.
}

TEST(QueryEngineTest, GenerousDeadlineAnswersNormally) {
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());

  auto with_deadline =
      (*engine)->PredictTexture(HardQuery(), DeadlineAfterMillis(60000));
  ASSERT_TRUE(with_deadline.ok()) << with_deadline.status().ToString();

  // Same query without a deadline: identical answer — the deadline only
  // gates admission, it never perturbs the fold-in arithmetic.
  auto fresh = QueryEngine::Create(FastConfig(), TinySnapshot(), nullptr);
  ASSERT_TRUE(fresh.ok());
  auto unlimited = (*fresh)->PredictTexture(HardQuery());
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(with_deadline->theta, unlimited->theta);
  EXPECT_EQ(with_deadline->topic, unlimited->topic);
  EXPECT_EQ((*engine)->GetStats().batcher.deadline_expired, 0u);
}

TEST(QueryEngineTest, SimilarRecipesHonorsDeadline) {
  auto corpus = TinyCorpus();
  auto engine = QueryEngine::Create(FastConfig(), TinySnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  Deadline expired = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(10);
  // Terms force the fold-in path (feature-only queries are placed by the
  // gel Gaussian directly and never enter the batcher).
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.01);
  query.texture_terms = {"katai"};
  auto result = (*engine)->SimilarRecipes(query, 3, expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryEngineTest, ConcurrentBatchedFoldInsMatchSerialResults) {
  // Determinism across batch layouts: each query's RNG stream is keyed on
  // its admission sequence, so with a fixed submission order the theta must
  // not depend on how the dispatcher grouped the jobs.
  QueryEngineConfig config = FastConfig();
  config.cache_capacity = 0;
  config.batch_linger_micros = 500;  // Encourage multi-job batches.
  config.batch_max_size = 8;
  auto engine = QueryEngine::Create(config, TinySnapshot(), nullptr);
  ASSERT_TRUE(engine.ok());

  // One fixed query, submitted 8 times: every submission draws a distinct
  // sequence number (and therefore RNG stream), so the 8 thetas form a
  // fixed multiset {f(stream 0), ..., f(stream 7)} however they were
  // batched or raced.
  TextureQuery query;
  query.gel_concentration = math::Vector(3, 0.005);
  query.texture_terms = {"katai", "purupuru"};
  std::vector<std::vector<double>> serial(8);
  for (int i = 0; i < 8; ++i) {
    auto p = (*engine)->PredictTexture(query);
    ASSERT_TRUE(p.ok());
    serial[static_cast<size_t>(i)] = p->theta;
  }
  auto engine2 = QueryEngine::Create(config, TinySnapshot(), nullptr);
  ASSERT_TRUE(engine2.ok());
  std::vector<std::vector<double>> concurrent(8);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      auto p = (*engine2)->PredictTexture(query);
      if (p.ok()) concurrent[static_cast<size_t>(i)] = p->theta;
    });
  }
  for (auto& t : threads) t.join();
  // Sequence numbers were raced across threads, so compare as multisets.
  auto sorted = [](std::vector<std::vector<double>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(serial), sorted(concurrent));
  EXPECT_GE((*engine2)->GetStats().batcher.max_batch_size, 1u);
}

TEST(QueryEngineTest, MixedQueryTypesRaceSafely) {
  auto corpus = TinyCorpus();
  QueryEngineConfig config = FastConfig();
  config.num_threads = 2;
  auto engine = QueryEngine::Create(config, TinySnapshot(), &corpus);
  ASSERT_TRUE(engine.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        bool ok = true;
        switch ((t + i) % 4) {
          case 0: {
            TextureQuery query;
            query.gel_concentration = math::Vector(3);
            query.gel_concentration[0] = 0.001 * ((i % 5) + 1);
            ok = (*engine)->PredictTexture(query).ok();
            break;
          }
          case 1:
            ok = (*engine)->NearestRheology(i % 2).ok();
            break;
          case 2: {
            TextureQuery query;
            query.gel_concentration = math::Vector(3, 0.01);
            query.emulsion_concentration = math::Vector(6, 0.1);
            ok = (*engine)->SimilarRecipes(query).ok();
            break;
          }
          case 3:
            ok = (*engine)->TopicCard(i % 2).ok();
            break;
        }
        if (!ok) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  QueryEngineStats stats = (*engine)->GetStats();
  EXPECT_EQ(stats.predict.count + stats.nearest.count + stats.similar.count +
                stats.topic_card.count,
            6u * 20u);
}

TEST(QueryEngineTest, ReloadUnderLoadFailsZeroQueries) {
  // The acceptance criterion: hot reload swaps models while queries are in
  // flight, and not a single query fails because of it.
  auto corpus = TinyCorpus();
  QueryEngineConfig config = FastConfig();
  config.cache_capacity = 0;  // Force every predict through fold-in.
  config.fold_in_sweeps = 30;
  auto engine = QueryEngine::Create(config, TinySnapshot("v1"), &corpus);
  ASSERT_TRUE(engine.ok());

  auto alt_model = [] {
    core::ModelSnapshot model = TinyModel();
    model.estimates.phi[0] = {0.4, 0.2, 0.2, 0.2};
    return model;
  };
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        TextureQuery query;
        query.gel_concentration = math::Vector(3);
        query.gel_concentration[0] = 0.001 * ((i + t) % 20 + 1);
        auto result = (*engine)->PredictTexture(query);
        // Shedding is admission control, not a reload failure; anything
        // else non-OK is.
        if (result.ok()) {
          ++served;
        } else if (result.status().code() != StatusCode::kUnavailable) {
          ++failures;
        }
      }
    });
  }
  // Hammer reloads while the clients run.
  for (int r = 0; r < 20; ++r) {
    auto snapshot = ServingSnapshot::FromModel(
        r % 2 == 0 ? alt_model() : TinyModel(),
        "reload-" + std::to_string(r));
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE((*engine)->Reload(*snapshot).ok());
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ((*engine)->GetStats().reloads, 20u);
}

TEST(QueryEngineTest, ReloadFromBinaryFileUnderLoadFailsZeroQueries) {
  // Same acceptance bar as ReloadUnderLoadFailsZeroQueries, but the reload
  // path is the mmap-backed binary pair: each swap maps a new .dat and the
  // previous mapping may only be released once its last in-flight query
  // finishes. TSan (ci.sh) watches this for use-after-unmap.
  std::string base_a = testing::TempDir() + "/texrheo_qe_reload_a";
  std::string base_b = testing::TempDir() + "/texrheo_qe_reload_b";
  core::ModelSnapshot alt = TinyModel();
  alt.estimates.phi[0] = {0.4, 0.2, 0.2, 0.2};
  ASSERT_TRUE(core::WriteModelBinary(TinyModel(), base_a).ok());
  ASSERT_TRUE(core::WriteModelBinary(alt, base_b).ok());

  auto corpus = TinyCorpus();
  QueryEngineConfig config = FastConfig();
  config.cache_capacity = 0;  // Force every predict through fold-in.
  config.fold_in_sweeps = 30;
  auto engine = QueryEngine::Create(config, TinySnapshot("v1"), &corpus);
  ASSERT_TRUE(engine.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        TextureQuery query;
        query.gel_concentration = math::Vector(3);
        query.gel_concentration[0] = 0.001 * ((i + t) % 20 + 1);
        auto result = (*engine)->PredictTexture(query);
        if (result.ok()) {
          ++served;
        } else if (result.status().code() != StatusCode::kUnavailable) {
          ++failures;
        }
      }
    });
  }
  for (int r = 0; r < 20; ++r) {
    std::string idx = (r % 2 == 0 ? base_b : base_a) + ".idx";
    ASSERT_TRUE((*engine)->ReloadFromFile(idx).ok());
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ((*engine)->GetStats().reloads, 20u);
  // The published snapshot is the last binary reload, served off the map.
  auto expected = ServingSnapshot::FromBinaryFile(base_a + ".idx");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*engine)->GetStats().model_fingerprint,
            (*expected)->fingerprint());
}

TEST(QueryFromIngredientsTest, ResolvesAndAccumulates) {
  auto query = QueryFromIngredients(
      {{"gelatin", 0.01}, {"milk", 0.2}, {"gelatin", 0.005}}, {"katai"});
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->gel_concentration.size(),
            static_cast<size_t>(recipe::kNumGelTypes));
  EXPECT_NEAR(query->gel_concentration[0], 0.015, 1e-12);  // Accumulated.
  EXPECT_EQ(query->texture_terms.size(), 1u);
}

TEST(QueryFromIngredientsTest, RejectsUnknownAndOutOfRange) {
  EXPECT_FALSE(QueryFromIngredients({{"unobtainium", 0.1}}).ok());
  EXPECT_FALSE(QueryFromIngredients({{"gelatin", 1.5}}).ok());
  EXPECT_FALSE(QueryFromIngredients({{"gelatin", -0.1}}).ok());
}

TEST(QueryFromIngredientsTest, IgnoresNonModelIngredients) {
  auto query = QueryFromIngredients({{"water", 0.9}, {"gelatin", 0.01}});
  ASSERT_TRUE(query.ok());
  double gel_total = 0.0;
  for (size_t i = 0; i < query->gel_concentration.size(); ++i) {
    gel_total += query->gel_concentration[i];
  }
  EXPECT_NEAR(gel_total, 0.01, 1e-12);  // Water contributed nothing.
}

}  // namespace
}  // namespace texrheo::serve
