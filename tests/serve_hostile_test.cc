// Hostile-input suite: a live LineProtocolServer attacked with raw
// sockets — oversized request lines, binary garbage, abrupt disconnects,
// slow-loris clients, pipelining, and connection floods. The server must
// answer cleanly, reap abusers within its configured budgets, and keep
// healthy clients fast. ci.sh re-runs this suite under ASan (hostile
// framing is where buffer bugs live).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/json.h"

namespace texrheo::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.estimates.phi = {{0.8, 0.2}, {0.1, 0.9}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

// ---------------------------------------------------------------------------
// Raw-socket attacker toolkit. LineClient is deliberately NOT used here:
// hostile behavior (half lines, binary blobs, silent stalls) needs direct
// byte-level control of the wire.

int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawSendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// Reads one '\n'-terminated line (newline stripped) with a poll-based
/// budget. Empty return = EOF or timeout before a complete line.
std::string RawReadLine(int fd, std::string* carry, int timeout_millis) {
  auto deadline = steady_clock::now() + milliseconds(timeout_millis);
  for (;;) {
    size_t pos = carry->find('\n');
    if (pos != std::string::npos) {
      std::string line = carry->substr(0, pos);
      carry->erase(0, pos + 1);
      return line;
    }
    int remaining = static_cast<int>(
        std::chrono::duration_cast<milliseconds>(deadline - steady_clock::now())
            .count());
    if (remaining <= 0) return "";
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      return "";
    }
    char buf[512];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return "";  // Peer closed (or errored) before a full line.
    }
    carry->append(buf, static_cast<size_t>(n));
  }
}

/// True when the peer closes the connection within the budget (recv -> 0).
bool RawWaitForClose(int fd, int timeout_millis) {
  auto deadline = steady_clock::now() + milliseconds(timeout_millis);
  for (;;) {
    int remaining = static_cast<int>(
        std::chrono::duration_cast<milliseconds>(deadline - steady_clock::now())
            .count());
    if (remaining <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      return false;
    }
    char buf[512];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0 && errno != EINTR) return true;  // Reset counts as closed.
  }
}

class HostileTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions{},
                   int fold_in_sweeps = 10, size_t batch_max_size = 0) {
    auto snapshot = ServingSnapshot::FromModel(TinyModel(), "hostile-test");
    ASSERT_TRUE(snapshot.ok());
    QueryEngineConfig config;
    config.fold_in_sweeps = fold_in_sweeps;
    config.batch_linger_micros = 0;
    if (batch_max_size > 0) config.batch_max_size = batch_max_size;
    auto engine = QueryEngine::Create(config, *snapshot, nullptr);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    server_ = std::make_unique<LineProtocolServer>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// Sanity probe: the server still answers a well-behaved client.
  void ExpectServerAlive() {
    int fd = RawConnect(server_->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(RawSendAll(fd, "PING\n"));
    std::string carry;
    EXPECT_EQ(RawReadLine(fd, &carry, 2000), "OK pong");
    ::close(fd);
  }

  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<LineProtocolServer> server_;
};

TEST_F(HostileTest, OversizedLineGetsOneErrThenClose) {
  ServerOptions options;
  options.max_line_bytes = 256;
  StartServer(options);

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  std::string attack(2048, 'A');
  attack += '\n';
  ASSERT_TRUE(RawSendAll(fd, attack));
  std::string carry;
  std::string reply = RawReadLine(fd, &carry, 2000);
  EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  EXPECT_NE(reply.find("line"), std::string::npos) << reply;
  EXPECT_TRUE(RawWaitForClose(fd, 2000));
  ::close(fd);

  EXPECT_GE(server_->GetStats().oversized_rejected, 1u);
  ExpectServerAlive();
}

TEST_F(HostileTest, OversizedLineWithoutNewlineIsAlsoRejected) {
  // The buffer cap must fire even when the attacker never sends '\n' —
  // otherwise an unterminated stream grows server memory without bound.
  ServerOptions options;
  options.max_line_bytes = 256;
  StartServer(options);

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(RawSendAll(fd, std::string(4096, 'B')));  // No newline, ever.
  std::string carry;
  std::string reply = RawReadLine(fd, &carry, 2000);
  EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  EXPECT_TRUE(RawWaitForClose(fd, 2000));
  ::close(fd);
  EXPECT_GE(server_->GetStats().oversized_rejected, 1u);
}

TEST_F(HostileTest, BinaryGarbageGetsErrNotCrash) {
  StartServer();
  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  // NUL bytes, high-bit bytes, control characters — all inside one line.
  std::string garbage;
  garbage.push_back('\0');
  garbage += "\x01\x02\xff\xfe PREDICT \x00\x7f garbage";
  garbage.push_back('\0');
  garbage += "\n";
  ASSERT_TRUE(RawSendAll(fd, garbage));
  std::string carry;
  std::string reply = RawReadLine(fd, &carry, 2000);
  EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;

  // The connection survives garbage: a valid command still works on it.
  ASSERT_TRUE(RawSendAll(fd, "PING\n"));
  EXPECT_EQ(RawReadLine(fd, &carry, 2000), "OK pong");
  ::close(fd);
}

TEST_F(HostileTest, AbruptDisconnectMidCommandLeavesServerHealthy) {
  StartServer();
  for (int i = 0; i < 3; ++i) {
    int fd = RawConnect(server_->port());
    ASSERT_GE(fd, 0);
    // Half a command, then vanish without a close handshake.
    ASSERT_TRUE(RawSendAll(fd, "PREDICT gelatin=0.0"));
    struct linger hard_close {1, 0};  // RST instead of FIN.
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
    ::close(fd);
  }
  // Give the handlers a beat to observe the disconnects, then verify the
  // server still answers and has reaped the dead connections.
  ExpectServerAlive();
  auto deadline = steady_clock::now() + milliseconds(2000);
  while (server_->GetStats().current_connections > 1 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_LE(server_->GetStats().current_connections, 1u);
}

TEST_F(HostileTest, NeverWritingClientIsReapedByIdleTimeout) {
  ServerOptions options;
  options.idle_timeout_millis = 150;
  StartServer(options);

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  // Send nothing. The server must reap us: one ERR line, then close.
  std::string carry;
  auto begin = steady_clock::now();
  std::string reply = RawReadLine(fd, &carry, 5000);
  auto waited = std::chrono::duration_cast<milliseconds>(
                    steady_clock::now() - begin)
                    .count();
  EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  EXPECT_NE(reply.find("idle"), std::string::npos) << reply;
  EXPECT_TRUE(RawWaitForClose(fd, 2000));
  ::close(fd);
  // Reaped around the configured budget — not instantly, not at the
  // default 30s.
  EXPECT_GE(waited, 100);
  EXPECT_LT(waited, 3000);
  EXPECT_GE(server_->GetStats().idle_reaped, 1u);
}

TEST_F(HostileTest, SlowLorisDrippingBytesIsStillReaped) {
  // Feeding one byte at a time must not reset the idle clock: only
  // complete request lines count as progress.
  ServerOptions options;
  options.idle_timeout_millis = 200;
  StartServer(options);

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  std::string carry;
  std::string reply;
  auto begin = steady_clock::now();
  // Drip a byte every 50 ms — well inside any per-byte timeout, but the
  // line never completes.
  for (int i = 0; i < 100; ++i) {
    if (!RawSendAll(fd, "P")) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) > 0) {
      reply = RawReadLine(fd, &carry, 1000);
      break;
    }
  }
  auto waited = std::chrono::duration_cast<milliseconds>(
                    steady_clock::now() - begin)
                    .count();
  EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  EXPECT_LT(waited, 3000);  // Reaped near 200 ms, not after 100 drips.
  ::close(fd);
  EXPECT_GE(server_->GetStats().idle_reaped, 1u);
}

TEST_F(HostileTest, PipelinedCommandsAnswerInOrder) {
  StartServer();
  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  // All three commands in a single segment, before reading anything.
  ASSERT_TRUE(RawSendAll(fd, "PING\nTOPIC 0\nPING\n"));
  std::string carry;
  EXPECT_EQ(RawReadLine(fd, &carry, 2000), "OK pong");
  std::string topic = RawReadLine(fd, &carry, 2000);
  EXPECT_EQ(topic.rfind("OK", 0), 0u) << topic;
  EXPECT_EQ(RawReadLine(fd, &carry, 2000), "OK pong");
  ::close(fd);
}

TEST_F(HostileTest, ConnectionCapShedsWithErrLine) {
  ServerOptions options;
  options.max_connections = 2;
  StartServer(options);

  // Two legitimate occupants (a PING each proves they're registered).
  int a = RawConnect(server_->port());
  int b = RawConnect(server_->port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  std::string carry_a, carry_b;
  ASSERT_TRUE(RawSendAll(a, "PING\n"));
  ASSERT_TRUE(RawSendAll(b, "PING\n"));
  ASSERT_EQ(RawReadLine(a, &carry_a, 2000), "OK pong");
  ASSERT_EQ(RawReadLine(b, &carry_b, 2000), "OK pong");

  // Third connection: shed at accept time with one ERR, then closed.
  int c = RawConnect(server_->port());
  ASSERT_GE(c, 0);
  std::string carry_c;
  std::string reply = RawReadLine(c, &carry_c, 2000);
  EXPECT_EQ(reply.rfind("ERR Unavailable", 0), 0u) << reply;
  EXPECT_TRUE(RawWaitForClose(c, 2000));
  ::close(c);
  EXPECT_GE(server_->GetStats().connections_shed, 1u);
  EXPECT_EQ(server_->GetStats().peak_connections, 2u);

  // An occupant leaving frees a slot for a newcomer.
  ASSERT_TRUE(RawSendAll(a, "QUIT\n"));
  EXPECT_EQ(RawReadLine(a, &carry_a, 2000), "OK bye");
  ::close(a);
  auto deadline = steady_clock::now() + milliseconds(2000);
  int d = -1;
  std::string carry_d, pong;
  while (steady_clock::now() < deadline) {
    d = RawConnect(server_->port());
    if (d >= 0) {
      ASSERT_TRUE(RawSendAll(d, "PING\n"));
      pong = RawReadLine(d, &carry_d, 500);
      ::close(d);
      if (pong == "OK pong") break;
    }
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_EQ(pong, "OK pong");
  ::close(b);
}

TEST_F(HostileTest, StalledClientDoesNotDelayHealthyClients) {
  ServerOptions options;
  options.idle_timeout_millis = 5000;  // The staller survives the test.
  StartServer(options);

  // The staller: half a request line, then silence, holding its thread.
  int staller = RawConnect(server_->port());
  ASSERT_GE(staller, 0);
  ASSERT_TRUE(RawSendAll(staller, "PREDICT gelatin="));

  // Healthy traffic must be unaffected: every round trip far below the
  // staller's timeout.
  for (int i = 0; i < 5; ++i) {
    int fd = RawConnect(server_->port());
    ASSERT_GE(fd, 0);
    auto begin = steady_clock::now();
    ASSERT_TRUE(RawSendAll(fd, "PREDICT gelatin=0.01 terms=katai\n"));
    std::string carry;
    std::string reply = RawReadLine(fd, &carry, 2000);
    auto took = std::chrono::duration_cast<milliseconds>(
                    steady_clock::now() - begin)
                    .count();
    EXPECT_EQ(reply.rfind("OK", 0), 0u) << reply;
    EXPECT_LT(took, 1500) << "healthy client delayed behind a staller";
    ::close(fd);
  }
  ::close(staller);
}

TEST_F(HostileTest, GracefulDrainFlushesInFlightResponse) {
  // An expensive query (many fold-in sweeps) is in flight when Stop()
  // begins. The drain contract: the computed response is flushed to the
  // client, not dropped.
  // Sweep count sized so the query is reliably still in flight when
  // Stop() begins (hundreds of ms in a normal build) yet comfortably
  // inside the drain deadline even under ASan's ~10x slowdown.
  ServerOptions options;
  options.drain_deadline_millis = 30000;
  StartServer(options, /*fold_in_sweeps=*/5000000);

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(RawSendAll(fd, "PREDICT gelatin=0.013 terms=katai\n"));

  // Let the command reach the engine, then drain concurrently with it.
  std::this_thread::sleep_for(milliseconds(30));
  std::thread stopper([&] { server_->Stop(); });

  std::string carry;
  std::string reply = RawReadLine(fd, &carry, 30000);
  EXPECT_EQ(reply.rfind("OK topic=", 0), 0u)
      << "in-flight response lost by drain: '" << reply << "'";
  // After the response is flushed the drain closes the connection.
  EXPECT_TRUE(RawWaitForClose(fd, 5000));
  ::close(fd);
  stopper.join();

  // Fully stopped: new connections are refused or go unanswered.
  int post = RawConnect(server_->port());
  if (post >= 0) {
    std::string post_carry;
    RawSendAll(post, "PING\n");
    EXPECT_EQ(RawReadLine(post, &post_carry, 300), "");
    ::close(post);
  }
}

TEST_F(HostileTest, RequestDeadlineShedsAsDeadlineExceeded) {
  // Deadline shedding needs a backed-up queue: connection A's expensive
  // fold-in occupies the dispatcher while connection B's request — with
  // the same small budget — expires waiting behind it. B must get
  // DeadlineExceeded (and the batcher must count the shed) rather than
  // burning a batch slot on a dead request.
  ServerOptions options;
  options.request_deadline_millis = 50;
  StartServer(options, /*fold_in_sweeps=*/5000000, /*batch_max_size=*/1);

  int slow = RawConnect(server_->port());
  ASSERT_GE(slow, 0);
  // A is admitted and dispatched immediately (empty queue), well inside
  // its budget; the fold-in itself then runs for hundreds of ms.
  ASSERT_TRUE(RawSendAll(slow, "PREDICT gelatin=0.011 terms=katai\n"));
  std::this_thread::sleep_for(milliseconds(100));

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(RawSendAll(fd, "PREDICT gelatin=0.022 terms=katai\n"));
  std::string carry;
  std::string reply = RawReadLine(fd, &carry, 30000);
  EXPECT_EQ(reply.rfind("ERR DeadlineExceeded", 0), 0u) << reply;
  ::close(fd);
  ::close(slow);

  EXPECT_GE(server_->GetStats().deadlines_exceeded, 1u);
  QueryEngineStats engine_stats = engine_->GetStats();
  EXPECT_GE(engine_stats.batcher.deadline_expired, 1u);
}

TEST_F(HostileTest, ReloadBreakerTripsOnRepeatedFailures) {
  ServerOptions options;
  options.reload_failure_threshold = 2;
  options.reload_cooldown_millis = 60000;  // Stays open for the test.
  StartServer(options);

  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  std::string carry;
  // Two failing reloads trip the breaker...
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(RawSendAll(fd, "RELOAD /nonexistent/model.txt\n"));
    std::string reply = RawReadLine(fd, &carry, 2000);
    EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  }
  // ...after which RELOAD is rejected up front, without touching the file.
  ASSERT_TRUE(RawSendAll(fd, "RELOAD /nonexistent/model.txt\n"));
  std::string rejected = RawReadLine(fd, &carry, 2000);
  EXPECT_NE(rejected.find("circuit breaker"), std::string::npos) << rejected;
  ::close(fd);

  ServerStats stats = server_->GetStats();
  EXPECT_EQ(stats.reload_failures, 2u);
  EXPECT_GE(stats.reload_rejected_by_breaker, 1u);
  EXPECT_EQ(stats.breaker_state, CircuitBreaker::State::kOpen);
  EXPECT_EQ(stats.breaker.opened, 1u);
}

// Counter consistency under fire: a METRICSZ snapshot taken while PREDICTs
// are in flight must never show a pipeline-downstream counter ahead of its
// upstream (completions ahead of admissions, processed ahead of submitted).
// The registry guarantees this via reverse-registration-order snapshot
// reads; this test is the live regression for the old Statsz() glitch where
// independently-read atomics could disagree mid-request.
TEST_F(HostileTest, MetricsStayMonotoneConsistentUnderConcurrentLoad) {
  StartServer();
  const int port = server_->port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([port, t, &stop] {
      int fd = RawConnect(port);
      ASSERT_GE(fd, 0);
      std::string carry;
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Distinct concentrations defeat the result cache so every request
        // takes the full admission -> batch -> fold-in path.
        std::string cmd = "PREDICT gelatin=0.0" + std::to_string(t) +
                          std::to_string(++i % 1000) + " terms=katai\n";
        ASSERT_TRUE(RawSendAll(fd, cmd));
        std::string reply = RawReadLine(fd, &carry, 5000);
        ASSERT_FALSE(reply.empty());
      }
      ::close(fd);
    });
  }

  int fd = RawConnect(port);
  ASSERT_GE(fd, 0);
  std::string carry;
  for (int snap = 0; snap < 200; ++snap) {
    ASSERT_TRUE(RawSendAll(fd, "METRICSZ\n"));
    std::string line = RawReadLine(fd, &carry, 5000);
    ASSERT_FALSE(line.empty());
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const JsonValue* counters = parsed->Find("counters");
    ASSERT_NE(counters, nullptr);
    auto counter = [counters](const char* name) {
      const JsonValue* v = counters->Find(name);
      return v == nullptr ? 0.0 : v->AsNumber();
    };
    EXPECT_GE(counter("serve.queries.accepted"),
              counter("serve.queries.completed"))
        << "snapshot " << snap << ": completions ahead of admissions";
    EXPECT_GE(counter("serve.server.requests_received"),
              counter("serve.server.requests_completed"))
        << "snapshot " << snap
        << ": request completions ahead of receptions";
    EXPECT_GE(counter("serve.batcher.submitted"),
              counter("serve.batcher.jobs_processed"))
        << "snapshot " << snap << ": batcher processed ahead of submitted";
    EXPECT_GE(counter("serve.queries.accepted"),
              counter("serve.batcher.submitted"))
        << "snapshot " << snap << ": batcher submissions ahead of admissions";
  }
  ::close(fd);
  stop.store(true);
  for (std::thread& t : hammers) t.join();

  // Quiescent: the pipeline drains to exact equality.
  auto snap = engine_->TakeMetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("serve.queries.accepted"),
            snap.CounterValue("serve.queries.completed"));
}

}  // namespace
}  // namespace texrheo::serve
