// LineProtocolServer + LineClient: end-to-end TCP sessions on an ephemeral
// port, protocol parsing (including malformed input), concurrent clients,
// and clean shutdown with connections open.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace texrheo::serve {
namespace {

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.estimates.phi = {{0.8, 0.2}, {0.1, 0.9}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto snapshot = ServingSnapshot::FromModel(TinyModel(), "server-test");
    ASSERT_TRUE(snapshot.ok());
    QueryEngineConfig config;
    config.fold_in_sweeps = 10;
    config.batch_linger_micros = 0;
    auto engine = QueryEngine::Create(config, *snapshot, nullptr);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    server_ = std::make_unique<LineProtocolServer>(engine_.get(),
                                                   ServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<LineProtocolServer> server_;
};

TEST_F(ServerTest, PingPong) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK pong");
}

TEST_F(ServerTest, FullScriptedSession) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto predict =
      (*client)->RoundTrip("PREDICT gelatin=0.01 terms=katai,katai");
  ASSERT_TRUE(predict.ok());
  EXPECT_EQ(predict->rfind("OK topic=", 0), 0u) << *predict;
  EXPECT_NE(predict->find("cached=0"), std::string::npos);

  auto cached = (*client)->RoundTrip("PREDICT gelatin=0.01 terms=katai,katai");
  ASSERT_TRUE(cached.ok());
  EXPECT_NE(cached->find("cached=1"), std::string::npos) << *cached;

  auto nearest = (*client)->RoundTrip("NEAREST 0");
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->rfind("OK setting=", 0), 0u) << *nearest;

  auto topic = (*client)->RoundTrip("TOPIC 1");
  ASSERT_TRUE(topic.ok());
  EXPECT_NE(topic->find("top=purupuru"), std::string::npos) << *topic;

  ASSERT_TRUE((*client)->SendLine("STATSZ").ok());
  auto statsz = (*client)->ReadUntilDot();
  ASSERT_TRUE(statsz.ok());
  EXPECT_NE(statsz->find("cache:"), std::string::npos);

  auto bye = (*client)->RoundTrip("QUIT");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK bye");
}

TEST_F(ServerTest, MalformedCommandsGetErrNotDisconnect) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  for (const char* bad :
       {"FROBNICATE", "PREDICT", "PREDICT gelatin", "PREDICT gelatin=x",
        "PREDICT unobtainium=0.5", "NEAREST", "NEAREST abc", "NEAREST 42",
        "NEAREST 0 method=cosine", "TOPIC -3", "SIMILAR -",
        "RELOAD /nonexistent/model.txt"}) {
    auto reply = (*client)->RoundTrip(bad);
    ASSERT_TRUE(reply.ok()) << bad;
    EXPECT_EQ(reply->rfind("ERR", 0), 0u) << bad << " -> " << *reply;
  }
  // The connection survived all of it.
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK pong");
}

TEST_F(ServerTest, SimilarWithoutCorpusIsFailedPrecondition) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->RoundTrip("SIMILAR gelatin=0.01");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("ERR FailedPrecondition", 0), 0u) << *reply;
}

TEST_F(ServerTest, ConcurrentClientsAllGetAnswers) {
  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = LineClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 10; ++i) {
        std::string cmd;
        switch ((c + i) % 3) {
          case 0:
            cmd = "PREDICT gelatin=0.00" + std::to_string(i % 5 + 1);
            break;
          case 1:
            cmd = "NEAREST " + std::to_string(i % 2);
            break;
          default:
            cmd = "TOPIC " + std::to_string(i % 2);
        }
        auto reply = (*client)->RoundTrip(cmd);
        if (!reply.ok() || reply->rfind("OK", 0) != 0) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->connections_accepted(), static_cast<uint64_t>(kClients));
}

TEST_F(ServerTest, StopWithOpenConnectionsIsClean) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->RoundTrip("PING").ok());
  server_->Stop();  // Client still open: must not hang or crash.
  // After stop, the next read fails instead of blocking forever.
  auto reply = (*client)->RoundTrip("PING");
  EXPECT_FALSE(reply.ok());
}

TEST(ServerProtocolTest, HandleCommandIsUsableWithoutSockets) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "proto-test");
  ASSERT_TRUE(snapshot.ok());
  QueryEngineConfig config;
  config.fold_in_sweeps = 5;
  config.batch_linger_micros = 0;
  auto engine = QueryEngine::Create(config, *snapshot, nullptr);
  ASSERT_TRUE(engine.ok());
  LineProtocolServer server(engine->get(), ServerOptions{});
  bool quit = false;
  EXPECT_EQ(server.HandleCommand("PING", &quit), "OK pong");
  EXPECT_FALSE(quit);
  EXPECT_EQ(server.HandleCommand("QUIT", &quit), "OK bye");
  EXPECT_TRUE(quit);
  quit = false;
  std::string statsz = server.HandleCommand("STATSZ", &quit);
  EXPECT_NE(statsz.find("texrheo_serve statsz"), std::string::npos);
  EXPECT_EQ(statsz.substr(statsz.size() - 2), "\n.");
}

}  // namespace
}  // namespace texrheo::serve
