// LineProtocolServer + LineClient: end-to-end TCP sessions on an ephemeral
// port, protocol parsing (including malformed input), concurrent clients,
// and clean shutdown with connections open.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace texrheo::serve {
namespace {

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.estimates.phi = {{0.8, 0.2}, {0.1, 0.9}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto snapshot = ServingSnapshot::FromModel(TinyModel(), "server-test");
    ASSERT_TRUE(snapshot.ok());
    QueryEngineConfig config;
    config.fold_in_sweeps = 10;
    config.batch_linger_micros = 0;
    auto engine = QueryEngine::Create(config, *snapshot, nullptr);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    server_ = std::make_unique<LineProtocolServer>(engine_.get(),
                                                   ServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<LineProtocolServer> server_;
};

TEST_F(ServerTest, PingPong) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK pong");
}

TEST_F(ServerTest, FullScriptedSession) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto predict =
      (*client)->RoundTrip("PREDICT gelatin=0.01 terms=katai,katai");
  ASSERT_TRUE(predict.ok());
  EXPECT_EQ(predict->rfind("OK topic=", 0), 0u) << *predict;
  EXPECT_NE(predict->find("cached=0"), std::string::npos);

  auto cached = (*client)->RoundTrip("PREDICT gelatin=0.01 terms=katai,katai");
  ASSERT_TRUE(cached.ok());
  EXPECT_NE(cached->find("cached=1"), std::string::npos) << *cached;

  auto nearest = (*client)->RoundTrip("NEAREST 0");
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->rfind("OK setting=", 0), 0u) << *nearest;

  auto topic = (*client)->RoundTrip("TOPIC 1");
  ASSERT_TRUE(topic.ok());
  EXPECT_NE(topic->find("top=purupuru"), std::string::npos) << *topic;

  ASSERT_TRUE((*client)->SendLine("STATSZ").ok());
  auto statsz = (*client)->ReadUntilDot();
  ASSERT_TRUE(statsz.ok());
  EXPECT_NE(statsz->find("cache:"), std::string::npos);

  auto bye = (*client)->RoundTrip("QUIT");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK bye");
}

TEST_F(ServerTest, MalformedCommandsGetErrNotDisconnect) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  for (const char* bad :
       {"FROBNICATE", "PREDICT", "PREDICT gelatin", "PREDICT gelatin=x",
        "PREDICT unobtainium=0.5", "NEAREST", "NEAREST abc", "NEAREST 42",
        "NEAREST 0 method=cosine", "TOPIC -3", "SIMILAR -",
        "RELOAD /nonexistent/model.txt"}) {
    auto reply = (*client)->RoundTrip(bad);
    ASSERT_TRUE(reply.ok()) << bad;
    EXPECT_EQ(reply->rfind("ERR", 0), 0u) << bad << " -> " << *reply;
  }
  // The connection survived all of it.
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "OK pong");
}

TEST_F(ServerTest, SimilarWithoutCorpusIsFailedPrecondition) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->RoundTrip("SIMILAR gelatin=0.01");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rfind("ERR FailedPrecondition", 0), 0u) << *reply;
}

TEST_F(ServerTest, ConcurrentClientsAllGetAnswers) {
  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = LineClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 10; ++i) {
        std::string cmd;
        switch ((c + i) % 3) {
          case 0:
            cmd = "PREDICT gelatin=0.00" + std::to_string(i % 5 + 1);
            break;
          case 1:
            cmd = "NEAREST " + std::to_string(i % 2);
            break;
          default:
            cmd = "TOPIC " + std::to_string(i % 2);
        }
        auto reply = (*client)->RoundTrip(cmd);
        if (!reply.ok() || reply->rfind("OK", 0) != 0) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->connections_accepted(), static_cast<uint64_t>(kClients));
}

TEST_F(ServerTest, StopWithOpenConnectionsIsClean) {
  auto client = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->RoundTrip("PING").ok());
  server_->Stop();  // Client still open: must not hang or crash.
  // After stop, the next read fails instead of blocking forever.
  auto reply = (*client)->RoundTrip("PING");
  EXPECT_FALSE(reply.ok());
}

// --- LineClient status-code contract ---------------------------------------
// The router's retry policy keys on these codes (serve/server.h): connect
// failures and mid-stream closes are Unavailable, an unresponsive-but-open
// peer is DeadlineExceeded. These tests pin the contract with a raw TCP
// peer so a refactor cannot silently blur "down" and "slow".

/// Minimal raw TCP peer: accepts one connection, swallows the request,
/// then either writes `payload` and closes (mid-stream close / partial
/// line) or goes silent until torn down (stuck peer).
class RawPeer {
 public:
  enum class Mode { kCloseAfterPayload, kSilent };

  explicit RawPeer(Mode mode, std::string payload = "")
      : mode_(mode), payload_(std::move(payload)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 4) != 0) {
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) return;
      char buf[256];
      (void)::recv(conn, buf, sizeof(buf), 0);
      if (mode_ == Mode::kCloseAfterPayload) {
        if (!payload_.empty()) {
          (void)::send(conn, payload_.data(), payload_.size(), 0);
        }
        ::close(conn);
        return;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_; });
      ::close(conn);
    });
  }

  ~RawPeer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
    }
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return port_; }

 private:
  const Mode mode_;
  const std::string payload_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // Guarded by mu_.
  std::thread thread_;
};

TEST(LineClientContractTest, ConnectRefusedIsUnavailable) {
  // Grab an ephemeral port, then close it so the connect is refused.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int dead_port = ntohs(addr.sin_port);
  ::close(fd);

  auto client = LineClient::Connect("127.0.0.1", dead_port);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable)
      << client.status().ToString();
}

TEST(LineClientContractTest, PartialLineAtEofIsUnavailableAndDropsBytes) {
  // The peer sends response bytes with no terminating newline, then
  // closes. The client must fail Unavailable — and must say it dropped an
  // unterminated partial line, not surface the fragment as a response.
  RawPeer peer(RawPeer::Mode::kCloseAfterPayload, "OK half-a-respo");
  ASSERT_GT(peer.port(), 0);
  LineClientOptions options;
  options.io_timeout_millis = 5000;
  auto client = LineClient::Connect("127.0.0.1", peer.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable)
      << reply.status().ToString();
  EXPECT_NE(reply.status().message().find("unterminated"), std::string::npos)
      << reply.status().ToString();
}

TEST(LineClientContractTest, CleanCloseWithNoBufferedBytesIsUnavailable) {
  RawPeer peer(RawPeer::Mode::kCloseAfterPayload, "");
  ASSERT_GT(peer.port(), 0);
  LineClientOptions options;
  options.io_timeout_millis = 5000;
  auto client = LineClient::Connect("127.0.0.1", peer.port(), options);
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  // No partial bytes were buffered, so the error must not claim any.
  EXPECT_EQ(reply.status().message().find("unterminated"), std::string::npos)
      << reply.status().ToString();
}

TEST(LineClientContractTest, SilentOpenPeerIsDeadlineExceeded) {
  RawPeer peer(RawPeer::Mode::kSilent);
  ASSERT_GT(peer.port(), 0);
  LineClientOptions options;
  options.io_timeout_millis = 100;  // "Slow", not "down".
  auto client = LineClient::Connect("127.0.0.1", peer.port(), options);
  ASSERT_TRUE(client.ok());
  auto reply = (*client)->RoundTrip("PING");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
}

TEST(ServerProtocolTest, HandleCommandIsUsableWithoutSockets) {
  auto snapshot = ServingSnapshot::FromModel(TinyModel(), "proto-test");
  ASSERT_TRUE(snapshot.ok());
  QueryEngineConfig config;
  config.fold_in_sweeps = 5;
  config.batch_linger_micros = 0;
  auto engine = QueryEngine::Create(config, *snapshot, nullptr);
  ASSERT_TRUE(engine.ok());
  LineProtocolServer server(engine->get(), ServerOptions{});
  bool quit = false;
  EXPECT_EQ(server.HandleCommand("PING", &quit), "OK pong");
  EXPECT_FALSE(quit);
  EXPECT_EQ(server.HandleCommand("QUIT", &quit), "OK bye");
  EXPECT_TRUE(quit);
  quit = false;
  std::string statsz = server.HandleCommand("STATSZ", &quit);
  EXPECT_NE(statsz.find("texrheo_serve statsz"), std::string::npos);
  EXPECT_EQ(statsz.substr(statsz.size() - 2), "\n.");
}

}  // namespace
}  // namespace texrheo::serve
