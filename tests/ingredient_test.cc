#include "recipe/ingredient.h"

#include <gtest/gtest.h>

namespace texrheo::recipe {
namespace {

TEST(IngredientDatabaseTest, FindsAllThreeGels) {
  const auto& db = IngredientDatabase::Embedded();
  const IngredientInfo* gelatin = db.Find("gelatin");
  ASSERT_NE(gelatin, nullptr);
  EXPECT_EQ(gelatin->cls, IngredientClass::kGel);
  EXPECT_EQ(gelatin->gel_type, GelType::kGelatin);

  const IngredientInfo* kanten = db.Find("kanten");
  ASSERT_NE(kanten, nullptr);
  EXPECT_EQ(kanten->gel_type, GelType::kKanten);

  const IngredientInfo* agar = db.Find("agar");
  ASSERT_NE(agar, nullptr);
  EXPECT_EQ(agar->gel_type, GelType::kAgar);
}

TEST(IngredientDatabaseTest, FindsAllSixEmulsions) {
  const auto& db = IngredientDatabase::Embedded();
  struct Expected {
    const char* name;
    EmulsionType type;
  };
  for (const Expected& e : std::initializer_list<Expected>{
           {"sugar", EmulsionType::kSugar},
           {"egg-white", EmulsionType::kEggAlbumen},
           {"egg-yolk", EmulsionType::kEggYolk},
           {"raw-cream", EmulsionType::kRawCream},
           {"milk", EmulsionType::kMilk},
           {"yogurt", EmulsionType::kYogurt}}) {
    const IngredientInfo* info = db.Find(e.name);
    ASSERT_NE(info, nullptr) << e.name;
    EXPECT_EQ(info->cls, IngredientClass::kEmulsion) << e.name;
    EXPECT_EQ(info->emulsion_type, e.type) << e.name;
  }
}

TEST(IngredientDatabaseTest, LookupIsCaseInsensitive) {
  const auto& db = IngredientDatabase::Embedded();
  EXPECT_NE(db.Find("Gelatin"), nullptr);
  EXPECT_NE(db.Find("MILK"), nullptr);
}

TEST(IngredientDatabaseTest, UnknownReturnsNull) {
  EXPECT_EQ(IngredientDatabase::Embedded().Find("unobtainium"), nullptr);
}

TEST(IngredientDatabaseTest, LiquidBasesAreFlagged) {
  const auto& db = IngredientDatabase::Embedded();
  EXPECT_TRUE(db.Find("water")->liquid_base);
  EXPECT_TRUE(db.Find("juice")->liquid_base);
  EXPECT_FALSE(db.Find("strawberry")->liquid_base);
  EXPECT_FALSE(db.Find("nuts")->liquid_base);
}

TEST(IngredientDatabaseTest, GelatinLeafHasPerPieceWeight) {
  const auto& db = IngredientDatabase::Embedded();
  const IngredientInfo* leaf = db.Find("gelatin-leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_GT(leaf->grams_per_piece, 0.0);
}

TEST(IngredientDatabaseTest, AllSpecificGravitiesArePhysical) {
  for (const auto& info : IngredientDatabase::Embedded().infos()) {
    EXPECT_GT(info.specific_gravity, 0.05) << info.name;
    EXPECT_LT(info.specific_gravity, 2.0) << info.name;
  }
}

TEST(IngredientDatabaseTest, ToppingsAreUnrelatedSolids) {
  const auto& db = IngredientDatabase::Embedded();
  for (const char* name : {"nuts", "cookie", "granola"}) {
    const IngredientInfo* info = db.Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->cls, IngredientClass::kOther) << name;
    EXPECT_FALSE(info->liquid_base) << name;
  }
}

TEST(GelTypeNameTest, StableNames) {
  EXPECT_STREQ(GelTypeName(GelType::kGelatin), "gelatin");
  EXPECT_STREQ(GelTypeName(GelType::kKanten), "kanten");
  EXPECT_STREQ(GelTypeName(GelType::kAgar), "agar");
}

TEST(EmulsionTypeNameTest, StableNames) {
  EXPECT_STREQ(EmulsionTypeName(EmulsionType::kSugar), "sugar");
  EXPECT_STREQ(EmulsionTypeName(EmulsionType::kRawCream), "raw-cream");
}

}  // namespace
}  // namespace texrheo::recipe
