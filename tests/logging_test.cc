#include "util/logging.h"

#include <gtest/gtest.h>

namespace texrheo {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, FilteredMessagesDoNotEvaluateStream) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  TEXRHEO_LOG(Debug) << expensive();
  TEXRHEO_LOG(Info) << expensive();
  TEXRHEO_LOG(Warning) << expensive();
  EXPECT_EQ(evaluations, 0);
  TEXRHEO_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  TEXRHEO_LOG(Info) << "hidden";
  TEXRHEO_LOG(Warning) << "visible warning";
  TEXRHEO_LOG(Error) << "visible error";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("visible warning"), std::string::npos);
  EXPECT_NE(output.find("visible error"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesFileAndLevelTag) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  TEXRHEO_LOG(Warning) << "tagged";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[WARN logging_test.cc:"), std::string::npos);
}

TEST_F(LoggingTest, StreamFormatsValues) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  TEXRHEO_LOG(Info) << "x=" << 42 << " y=" << 2.5;
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("x=42 y=2.5"), std::string::npos);
}

}  // namespace
}  // namespace texrheo
