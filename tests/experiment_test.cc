#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace texrheo::eval {
namespace {

// One shared small-scale end-to-end run (the pipeline is deterministic, so
// computing it once keeps the suite fast).
const ExperimentResult& SharedResult() {
  static const ExperimentResult& result = *new ExperimentResult([] {
    ExperimentConfig config = DefaultExperimentConfig(0.03);
    config.model.sweeps = 100;
    config.model.burn_in_sweeps = 30;
    auto result_or = RunJointExperiment(config);
    EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
    return std::move(result_or).value();
  }());
  return result;
}

TEST(ExperimentTest, ProducesNonEmptyDataset) {
  const auto& r = SharedResult();
  EXPECT_GT(r.dataset.documents.size(), 50u);
  EXPECT_GT(r.dataset.term_vocab.size(), 15u);
  EXPECT_EQ(r.recipes.size(), r.dataset.funnel.total);
}

TEST(ExperimentTest, FunnelMatchesPaperShape) {
  const auto& f = SharedResult().dataset.funnel;
  // ~16% of recipes carry texture terms; ~30% of those survive filtering.
  double term_rate =
      static_cast<double>(f.with_texture_terms) / static_cast<double>(f.total);
  double keep_rate = static_cast<double>(f.final_dataset) /
                     static_cast<double>(f.with_texture_terms);
  EXPECT_GT(term_rate, 0.08);
  EXPECT_LT(term_rate, 0.30);
  EXPECT_GT(keep_rate, 0.15);
  EXPECT_LT(keep_rate, 0.55);
}

TEST(ExperimentTest, Word2VecFilterRemovedConfounders) {
  EXPECT_GT(SharedResult().dataset.funnel.occurrences_removed_by_filter, 0u);
}

TEST(ExperimentTest, EveryTableIRowIsLinked) {
  const auto& r = SharedResult();
  EXPECT_EQ(r.setting_links.size(), 13u);
  for (const auto& link : r.setting_links) {
    EXPECT_GE(link.topic, 0);
    EXPECT_LT(link.topic, r.resolved_model_config.num_topics);
    EXPECT_GE(link.divergence, 0.0);
  }
}

TEST(ExperimentTest, TopicSummariesAreComplete) {
  const auto& r = SharedResult();
  EXPECT_EQ(r.topics.size(),
            static_cast<size_t>(r.resolved_model_config.num_topics));
  int total_recipes = 0;
  for (const auto& t : r.topics) {
    total_recipes += t.recipe_count;
    for (const auto& [term, prob] : t.top_terms) {
      EXPECT_GT(prob, 0.0);
      EXPECT_LE(prob, 1.0);
      EXPECT_TRUE(text::TextureDictionary::Embedded().Contains(term)) << term;
    }
  }
  EXPECT_EQ(total_recipes, static_cast<int>(r.dataset.documents.size()));
}

TEST(ExperimentTest, TopicsBeatRandomOnGroundTruth) {
  const auto& r = SharedResult();
  std::vector<int> truth, predicted;
  for (size_t d = 0; d < r.dataset.documents.size(); ++d) {
    const auto& recipe = r.recipes[r.dataset.documents[d].recipe_index];
    truth.push_back(std::stoi(recipe.metadata.at("texture_class")));
    predicted.push_back(r.estimates.doc_topic[d]);
  }
  auto scores = ScoreClustering(predicted, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.40);
  EXPECT_GT(scores->nmi, 0.10);
}

TEST(ExperimentTest, SoftTopicsCarrySoftVocabulary) {
  // Shape check on Table II(a): among topics with >= 10 recipes, the one
  // with the largest mean theta-weighted softness should feature soft-pole
  // terms prominently.
  const auto& r = SharedResult();
  const auto& dict = text::TextureDictionary::Embedded();
  for (const auto& topic : r.topics) {
    if (topic.recipe_count < 10 || topic.top_terms.empty()) continue;
    // The head term of each topic is a real dictionary term with
    // substantial probability - topics are not flat.
    EXPECT_GT(topic.top_terms[0].second, 0.08) << "topic " << topic.topic;
    EXPECT_NE(dict.Find(topic.top_terms[0].first), nullptr);
  }
}

TEST(ExperimentTest, FormatTopicTableMentionsEveryTopic) {
  const auto& r = SharedResult();
  std::string table = FormatTopicTable(r);
  for (const auto& t : r.topics) {
    EXPECT_NE(table.find("| " + std::to_string(t.topic) + " "),
              std::string::npos)
        << "topic " << t.topic << " missing from table";
  }
}

TEST(ExperimentTest, DocsInTopicPartitionsDataset) {
  const auto& r = SharedResult();
  size_t total = 0;
  for (int k = 0; k < r.resolved_model_config.num_topics; ++k) {
    total += DocsInTopic(r.estimates, k).size();
  }
  EXPECT_EQ(total, r.dataset.documents.size());
}

TEST(ExperimentTest, DefaultConfigScalesRecipeCount) {
  EXPECT_EQ(DefaultExperimentConfig(1.0).corpus.num_recipes, 63000u);
  EXPECT_EQ(DefaultExperimentConfig(0.1).corpus.num_recipes, 6300u);
  EXPECT_GE(DefaultExperimentConfig(0.0001).corpus.num_recipes, 200u);
}

}  // namespace
}  // namespace texrheo::eval
