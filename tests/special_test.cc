#include "math/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::math {
namespace {

TEST(DigammaTest, KnownValues) {
  constexpr double kEulerMascheroni = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -kEulerMascheroni, 1e-10);
  // psi(1/2) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-10);
  // psi(2) = 1 - gamma.
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerMascheroni, 1e-10);
}

TEST(DigammaTest, RecurrenceRelation) {
  // psi(x + 1) = psi(x) + 1/x for a sweep of x.
  for (double x = 0.1; x < 20.0; x += 0.37) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-9) << "x=" << x;
  }
}

TEST(DigammaTest, MatchesLogGammaDerivative) {
  // Central difference of lgamma approximates psi.
  for (double x : {0.5, 1.0, 3.3, 10.0, 42.0}) {
    double h = 1e-6;
    double numeric = (std::lgamma(x + h) - std::lgamma(x - h)) / (2.0 * h);
    EXPECT_NEAR(Digamma(x), numeric, 1e-5) << "x=" << x;
  }
}

TEST(LogMultivariateGammaTest, ReducesToLogGammaInOneDim) {
  for (double a : {0.7, 1.5, 4.2}) {
    EXPECT_NEAR(LogMultivariateGamma(1, a), std::lgamma(a), 1e-12);
  }
}

TEST(LogMultivariateGammaTest, RecurrenceInDimension) {
  // Gamma_p(a) = pi^{(p-1)/2} Gamma(a) Gamma_{p-1}(a - 1/2).
  constexpr double kLogPi = 1.1447298858494002;
  for (size_t p : {2u, 3u, 4u}) {
    double a = 5.0;
    double lhs = LogMultivariateGamma(p, a);
    double rhs = 0.5 * static_cast<double>(p - 1) * kLogPi +
                 std::lgamma(a) + LogMultivariateGamma(p - 1, a - 0.5);
    EXPECT_NEAR(lhs, rhs, 1e-10) << "p=" << p;
  }
}

TEST(LogSumExpTest, PairwiseMatchesDirect) {
  EXPECT_NEAR(LogSumExp(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp(1.0, 2.0), std::log(std::exp(1.0) + std::exp(2.0)),
              1e-12);
}

TEST(LogSumExpTest, HandlesExtremeMagnitudes) {
  // Direct evaluation would overflow; stable version must not.
  double v = LogSumExp(1000.0, 1000.0);
  EXPECT_NEAR(v, 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp(-1000.0, 0.0), 0.0, 1e-9);
}

TEST(LogSumExpTest, NegativeInfinityIdentity) {
  double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(LogSumExp(ninf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(LogSumExp(3.0, ninf), 3.0);
}

TEST(LogSumExpTest, ArrayVersion) {
  double values[] = {1.0, 2.0, 3.0};
  double expected =
      std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(LogSumExp(values, 3), expected, 1e-12);
}

TEST(LogSumExpTest, SingleElement) {
  double values[] = {-4.2};
  EXPECT_DOUBLE_EQ(LogSumExp(values, 1), -4.2);
}

}  // namespace
}  // namespace texrheo::math
