#include "recipe/units.h"

#include <gtest/gtest.h>

namespace texrheo::recipe {
namespace {

IngredientInfo Water() {
  IngredientInfo info;
  info.name = "water";
  info.specific_gravity = 1.0;
  return info;
}

IngredientInfo GelatinPowder() {
  IngredientInfo info;
  info.name = "gelatin";
  info.cls = IngredientClass::kGel;
  info.specific_gravity = 0.68;
  return info;
}

TEST(ParseUnitTest, CanonicalAndVariantSpellings) {
  EXPECT_EQ(ParseUnit("g").value(), Unit::kGram);
  EXPECT_EQ(ParseUnit("grams").value(), Unit::kGram);
  EXPECT_EQ(ParseUnit("cc").value(), Unit::kMilliliter);
  EXPECT_EQ(ParseUnit("ml").value(), Unit::kMilliliter);
  EXPECT_EQ(ParseUnit("tsp").value(), Unit::kSmallSpoon);
  EXPECT_EQ(ParseUnit("kosaji").value(), Unit::kSmallSpoon);
  EXPECT_EQ(ParseUnit("tbsp").value(), Unit::kLargeSpoon);
  EXPECT_EQ(ParseUnit("oosaji").value(), Unit::kLargeSpoon);
  EXPECT_EQ(ParseUnit("CUPS").value(), Unit::kCup);
  EXPECT_EQ(ParseUnit("sheets").value(), Unit::kSheet);
  EXPECT_EQ(ParseUnit("pinch").value(), Unit::kPinch);
}

TEST(ParseUnitTest, RejectsUnknown) {
  EXPECT_FALSE(ParseUnit("hogshead").ok());
  EXPECT_FALSE(ParseUnit("").ok());
}

TEST(ParseQuantityTest, PlainNumbers) {
  auto q = ParseQuantity("200 g");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 200.0);
  EXPECT_EQ(q->unit, Unit::kGram);
}

TEST(ParseQuantityTest, AttachedUnit) {
  auto q = ParseQuantity("2tbsp");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 2.0);
  EXPECT_EQ(q->unit, Unit::kLargeSpoon);
}

TEST(ParseQuantityTest, Fractions) {
  auto q = ParseQuantity("1/2 cup");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 0.5);
  EXPECT_EQ(q->unit, Unit::kCup);
}

TEST(ParseQuantityTest, MixedNumbers) {
  auto q = ParseQuantity("1 1/2 cups");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 1.5);
}

TEST(ParseQuantityTest, DecimalAmounts) {
  auto q = ParseQuantity("2.5 tsp");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->amount, 2.5);
}

TEST(ParseQuantityTest, BareNumberMeansGrams) {
  auto q = ParseQuantity("150");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->unit, Unit::kGram);
  EXPECT_DOUBLE_EQ(q->amount, 150.0);
}

TEST(ParseQuantityTest, RejectsMalformed) {
  EXPECT_FALSE(ParseQuantity("").ok());
  EXPECT_FALSE(ParseQuantity("cup").ok());
  EXPECT_FALSE(ParseQuantity("1/0 cup").ok());
  EXPECT_FALSE(ParseQuantity("2 lightyears").ok());
}

TEST(UnitCapacityTest, JapaneseStandardCapacities) {
  // The paper: small spoon 5 mL; large spoon 15 mL; cup 200 mL in Japan.
  EXPECT_DOUBLE_EQ(UnitCapacityMl(Unit::kSmallSpoon).value(), 5.0);
  EXPECT_DOUBLE_EQ(UnitCapacityMl(Unit::kLargeSpoon).value(), 15.0);
  EXPECT_DOUBLE_EQ(UnitCapacityMl(Unit::kCup).value(), 200.0);
  EXPECT_FALSE(UnitCapacityMl(Unit::kGram).ok());
  EXPECT_FALSE(UnitCapacityMl(Unit::kPiece).ok());
}

TEST(ToGramsTest, WeightUnitsPassThrough) {
  EXPECT_DOUBLE_EQ(ToGrams({200.0, Unit::kGram}, Water()).value(), 200.0);
  EXPECT_DOUBLE_EQ(ToGrams({0.5, Unit::kKilogram}, Water()).value(), 500.0);
}

TEST(ToGramsTest, VolumeUsesSpecificGravity) {
  // 1 tbsp of gelatin powder: 15 mL x 0.68 g/mL.
  EXPECT_NEAR(ToGrams({1.0, Unit::kLargeSpoon}, GelatinPowder()).value(),
              10.2, 1e-9);
  // 1 cup of water = 200 g.
  EXPECT_DOUBLE_EQ(ToGrams({1.0, Unit::kCup}, Water()).value(), 200.0);
}

TEST(ToGramsTest, PiecesRequirePerPieceWeight) {
  IngredientInfo leaf = GelatinPowder();
  leaf.grams_per_piece = 2.5;
  EXPECT_DOUBLE_EQ(ToGrams({4.0, Unit::kSheet}, leaf).value(), 10.0);
  EXPECT_FALSE(ToGrams({4.0, Unit::kSheet}, GelatinPowder()).ok());
}

TEST(ToGramsTest, PinchIsFixedWeight) {
  EXPECT_NEAR(ToGrams({2.0, Unit::kPinch}, Water()).value(), 0.6, 1e-12);
}

class QuantityRoundTripTest
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(QuantityRoundTripTest, ParsesToExpectedWaterGrams) {
  auto [text, grams] = GetParam();
  auto q = ParseQuantity(text);
  ASSERT_TRUE(q.ok()) << text;
  EXPECT_NEAR(ToGrams(*q, Water()).value(), grams, 1e-9) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, QuantityRoundTripTest,
    ::testing::Values(std::make_pair("100 g", 100.0),
                      std::make_pair("1 cup", 200.0),
                      std::make_pair("3/4 cup", 150.0),
                      std::make_pair("2 tbsp", 30.0),
                      std::make_pair("1 tsp", 5.0),
                      std::make_pair("250 cc", 250.0),
                      std::make_pair("0.5 l", 500.0),
                      std::make_pair("1 1/4 cups", 250.0)));

}  // namespace
}  // namespace texrheo::recipe
