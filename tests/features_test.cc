#include "recipe/features.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::recipe {
namespace {

Recipe SimpleJelly() {
  Recipe r;
  r.id = 1;
  r.title = "jelly";
  r.ingredients = {{"gelatin", "10 g"}, {"water", "490 g"}};
  return r;
}

TEST(ComputeConcentrationsTest, WeightRatios) {
  auto conc = ComputeConcentrations(SimpleJelly(),
                                    IngredientDatabase::Embedded());
  ASSERT_TRUE(conc.ok());
  EXPECT_NEAR(conc->gel[static_cast<size_t>(GelType::kGelatin)], 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(conc->gel[static_cast<size_t>(GelType::kKanten)], 0.0);
  EXPECT_DOUBLE_EQ(conc->total_grams, 500.0);
  EXPECT_TRUE(conc->HasAnyGel());
}

TEST(ComputeConcentrationsTest, VolumeUnitsConvertViaSpecificGravity) {
  Recipe r;
  r.ingredients = {{"gelatin", "2 tsp"},  // 2 x 5 mL x 0.68 = 6.8 g.
                   {"water", "1 cup"}};   // 200 g.
  auto conc = ComputeConcentrations(r, IngredientDatabase::Embedded());
  ASSERT_TRUE(conc.ok());
  EXPECT_NEAR(conc->total_grams, 206.8, 1e-9);
  EXPECT_NEAR(conc->gel[0], 6.8 / 206.8, 1e-12);
}

TEST(ComputeConcentrationsTest, EmulsionVector) {
  Recipe r;
  r.ingredients = {{"gelatin", "5 g"},
                   {"milk", "300 g"},
                   {"sugar", "20 g"},
                   {"water", "175 g"}};
  auto conc = ComputeConcentrations(r, IngredientDatabase::Embedded());
  ASSERT_TRUE(conc.ok());
  EXPECT_NEAR(conc->emulsion[static_cast<size_t>(EmulsionType::kMilk)],
              0.6, 1e-12);
  EXPECT_NEAR(conc->emulsion[static_cast<size_t>(EmulsionType::kSugar)],
              0.04, 1e-12);
}

TEST(ComputeConcentrationsTest, UnrelatedFractionExcludesLiquidBases) {
  Recipe r;
  r.ingredients = {{"gelatin", "5 g"},
                   {"water", "395 g"},        // Liquid base, not unrelated.
                   {"strawberry", "100 g"}};  // Unrelated solid.
  auto conc = ComputeConcentrations(r, IngredientDatabase::Embedded());
  ASSERT_TRUE(conc.ok());
  EXPECT_NEAR(conc->unrelated_fraction, 0.2, 1e-12);
}

TEST(ComputeConcentrationsTest, UnknownIngredientTreatedAsUnrelated) {
  Recipe r;
  r.ingredients = {{"gelatin", "5 g"}, {"dragonfruit-syrup", "95 g"}};
  auto conc = ComputeConcentrations(r, IngredientDatabase::Embedded());
  ASSERT_TRUE(conc.ok());
  EXPECT_NEAR(conc->unrelated_fraction, 0.95, 1e-12);
}

TEST(ComputeConcentrationsTest, NoGelDetected) {
  Recipe r;
  r.ingredients = {{"milk", "200 g"}};
  auto conc = ComputeConcentrations(r, IngredientDatabase::Embedded());
  ASSERT_TRUE(conc.ok());
  EXPECT_FALSE(conc->HasAnyGel());
}

TEST(ComputeConcentrationsTest, ErrorsOnBadQuantity) {
  Recipe r;
  r.ingredients = {{"gelatin", "some"}};
  EXPECT_FALSE(
      ComputeConcentrations(r, IngredientDatabase::Embedded()).ok());
}

TEST(ComputeConcentrationsTest, ErrorsOnEmptyRecipe) {
  Recipe r;
  EXPECT_FALSE(
      ComputeConcentrations(r, IngredientDatabase::Embedded()).ok());
}

TEST(ToFeatureTest, InformationQuantityTransform) {
  FeatureConfig config;
  math::Vector conc = {0.02, 0.0, 0.5};
  math::Vector f = ToFeature(conc, config);
  EXPECT_NEAR(f[0], -std::log(0.02), 1e-12);
  // Zero floors at epsilon.
  EXPECT_NEAR(f[1], -std::log(config.epsilon), 1e-12);
  EXPECT_NEAR(f[2], -std::log(0.5), 1e-12);
}

TEST(ToFeatureTest, DisabledTransformIsIdentity) {
  FeatureConfig config;
  config.use_information_quantity = false;
  math::Vector conc = {0.02, 0.0, 0.5};
  EXPECT_EQ(ToFeature(conc, config), conc);
}

TEST(FeatureRoundTripTest, FromFeatureInvertsToFeature) {
  FeatureConfig config;
  math::Vector conc = {0.02, 0.005, 0.3};
  math::Vector back = FromFeature(ToFeature(conc, config), config);
  for (size_t i = 0; i < conc.size(); ++i) {
    EXPECT_NEAR(back[i], conc[i], 1e-12);
  }
}

TEST(FeatureRoundTripTest, ZeroMapsToEpsilonNotZero) {
  FeatureConfig config;
  math::Vector conc = {0.0};
  math::Vector back = FromFeature(ToFeature(conc, config), config);
  EXPECT_NEAR(back[0], config.epsilon, 1e-12);
}

TEST(ToFeatureTest, SmallerConcentrationGivesLargerInformation) {
  // The paper's rationale: small differences in small concentrations carry
  // large textural information; -log expands them.
  FeatureConfig config;
  math::Vector f = ToFeature({0.005, 0.05}, config);
  EXPECT_GT(f[0], f[1]);
}

}  // namespace
}  // namespace texrheo::recipe
