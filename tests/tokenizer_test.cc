#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace texrheo::text {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  auto tokens = Tokenizer::Tokenize("mix the gelatin, then chill.");
  EXPECT_EQ(tokens, (std::vector<std::string>{"mix", "the", "gelatin",
                                              "then", "chill"}));
}

TEST(TokenizerTest, LowerCasesTokens) {
  auto tokens = Tokenizer::Tokenize("PuruPuru JELLY");
  EXPECT_EQ(tokens, (std::vector<std::string>{"purupuru", "jelly"}));
}

TEST(TokenizerTest, KeepsHyphensInsideTokens) {
  auto tokens = Tokenizer::Tokenize("use gelatin-leaf today");
  EXPECT_EQ(tokens[1], "gelatin-leaf");
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("  ...  ").empty());
}

TEST(ExtractTextureTermsTest, FindsDictionaryTermsInOrder) {
  const auto& dict = TextureDictionary::Embedded();
  auto terms = Tokenizer::ExtractTextureTerms(
      "the result is purupuru and a bit katai when chilled", dict);
  EXPECT_EQ(terms, (std::vector<std::string>{"purupuru", "katai"}));
}

TEST(ExtractTextureTermsTest, CountsRepetitions) {
  const auto& dict = TextureDictionary::Embedded();
  auto terms = Tokenizer::ExtractTextureTerms(
      "purupuru texture , really purupuru !", dict);
  EXPECT_EQ(terms.size(), 2u);
}

TEST(ExtractTextureTermsTest, MatchesInsideCompounds) {
  const auto& dict = TextureDictionary::Embedded();
  auto terms =
      Tokenizer::ExtractTextureTerms("it sets purupuru-style", dict);
  EXPECT_EQ(terms, (std::vector<std::string>{"purupuru"}));
}

TEST(ExtractTextureTermsTest, IgnoresNonTextureWords) {
  const auto& dict = TextureDictionary::Embedded();
  EXPECT_TRUE(
      Tokenizer::ExtractTextureTerms("dissolve sugar in milk", dict).empty());
}

TEST(ExtractTextureTermsTest, CaseInsensitive) {
  const auto& dict = TextureDictionary::Embedded();
  auto terms = Tokenizer::ExtractTextureTerms("KATAI texture", dict);
  EXPECT_EQ(terms, (std::vector<std::string>{"katai"}));
}

}  // namespace
}  // namespace texrheo::text
