// LruCache: eviction order, recency refresh on Get and Put-overwrite,
// counter correctness (including under concurrent hits), and the disabled
// (capacity 0) mode used when serving is configured cache-less.

#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace texrheo {
namespace {

TEST(LruCacheTest, GetReturnsWhatWasPut) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", 1);
  cache.Put("b", 2);
  auto a = cache.Get("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_FALSE(cache.Get("missing").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedInOrder) {
  LruCache<int, int> cache(3);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(3, 3);
  cache.Put(4, 4);  // Evicts 1 (oldest).
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  cache.Put(5, 5);  // 3 is now the least recent (2 was refreshed by Get).
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(4).has_value());
  EXPECT_TRUE(cache.Get(5).has_value());
  EXPECT_EQ(cache.Stats().evictions, 2u);
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  ASSERT_TRUE(cache.Get(1).has_value());  // 2 becomes least recent.
  cache.Put(3, 3);
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, PutOverwriteRefreshesWithoutEviction) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(1, 10);  // Overwrite: no eviction, 1 becomes most recent.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  cache.Put(3, 3);  // Evicts 2, not 1.
  auto one = cache.Get(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(*one, 10);
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, CapacityZeroDisablesCaching) {
  LruCache<int, int> cache(0);
  cache.Put(1, 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
  // A disabled cache still counts the miss (hit rate stays meaningful).
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(LruCacheTest, ClearEmptiesButKeepsCounters) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  ASSERT_TRUE(cache.Get(1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(LruCacheTest, StatsCountersAreExact) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);   // insertion
  cache.Put(2, 2);   // insertion
  cache.Put(2, 22);  // overwrite: counts as insertion, not eviction
  cache.Get(1);      // hit
  cache.Get(9);      // miss
  cache.Put(3, 3);   // insertion + eviction (of 2)
  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(LruCacheTest, CountersExactUnderConcurrentHits) {
  LruCache<int, int> cache(8);
  for (int i = 0; i < 8; ++i) cache.Put(i, i);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong_values, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int key = (t + i) % 8;         // Always present: every op is a hit.
        auto value = cache.Get(key);
        if (!value.has_value() || *value != key) ++wrong_values;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong_values.load(), 0);
  LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.size, 8u);
}

TEST(LruCacheTest, ConcurrentMixedPutGetStaysConsistent) {
  LruCache<int, int> cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 1000; ++i) {
        int key = (t * 31 + i) % 64;
        if (i % 3 == 0) {
          cache.Put(key, key * 10);
        } else {
          auto value = cache.Get(key);
          if (value.has_value()) {
            EXPECT_EQ(*value, key * 10);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LruCacheStats stats = cache.Stats();
  EXPECT_LE(stats.size, 16u);
  // Per thread: 334 puts (i % 3 == 0 for i in [0, 1000)), 666 gets.
  EXPECT_EQ(stats.hits + stats.misses, 4u * 666u);
}

}  // namespace
}  // namespace texrheo
