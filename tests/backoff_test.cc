#include "util/backoff.h"

#include <gtest/gtest.h>

#include <chrono>

#include "util/rng.h"

namespace texrheo {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------- Backoff

TEST(BackoffTest, GrowsGeometricallyWithoutJitter) {
  BackoffPolicy policy;
  policy.initial_millis = 10;
  policy.max_millis = 10000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 0, rng), 10.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 1, rng), 20.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 2, rng), 40.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 5, rng), 320.0);
}

TEST(BackoffTest, CapsAtMax) {
  BackoffPolicy policy;
  policy.initial_millis = 10;
  policy.max_millis = 100;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 20, rng), 100.0);
}

TEST(BackoffTest, JitterStaysInBandAndIsDeterministic) {
  BackoffPolicy policy;
  policy.initial_millis = 100;
  policy.max_millis = 10000;
  policy.multiplier = 1.0;  // Isolate the jitter factor.
  policy.jitter = 0.5;
  Rng a(42);
  Rng b(42);
  bool saw_below = false;
  bool saw_above = false;
  for (int i = 0; i < 200; ++i) {
    double delay = BackoffDelayMillis(policy, i, a);
    EXPECT_GE(delay, 50.0);
    EXPECT_LE(delay, 150.0);
    if (delay < 95.0) saw_below = true;
    if (delay > 105.0) saw_above = true;
    // Same seed, same attempt => identical schedule.
    EXPECT_DOUBLE_EQ(delay, BackoffDelayMillis(policy, i, b));
  }
  EXPECT_TRUE(saw_below);  // Jitter actually spreads, both directions.
  EXPECT_TRUE(saw_above);
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreaker::Options BreakerOptions() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_millis = 100;
  return options;
}

TEST(CircuitBreakerTest, OpensAtFailureThreshold) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.GetStats().opened, 1u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailureCount) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  breaker.RecordSuccess();  // Streak broken.
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, RejectsWhileOpenUntilCooldown) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  EXPECT_FALSE(breaker.Allow(t0));
  EXPECT_FALSE(breaker.Allow(t0 + milliseconds(99)));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneTrial) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  auto after = t0 + milliseconds(101);
  EXPECT_TRUE(breaker.Allow(after));  // The probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(after));  // Everyone else waits on the probe.
  EXPECT_EQ(breaker.GetStats().half_opened, 1u);
}

TEST(CircuitBreakerTest, TrialSuccessRecloses) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  auto after = t0 + milliseconds(101);
  ASSERT_TRUE(breaker.Allow(after));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.GetStats().reclosed, 1u);
  // Fully recovered: new calls flow, and the failure streak restarts at 0.
  EXPECT_TRUE(breaker.Allow(after));
  breaker.RecordFailure(after);
  breaker.RecordFailure(after);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, TrialFailureReopensForAnotherCooldown) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  auto probe_time = t0 + milliseconds(101);
  ASSERT_TRUE(breaker.Allow(probe_time));
  breaker.RecordFailure(probe_time);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.GetStats().opened, 2u);
  // The cooldown restarts from the trial failure, not the original trip.
  EXPECT_FALSE(breaker.Allow(probe_time + milliseconds(99)));
  EXPECT_TRUE(breaker.Allow(probe_time + milliseconds(101)));
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  // Statsz consumers parse these strings; renames are contract breaks.
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace texrheo
