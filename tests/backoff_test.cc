#include "util/backoff.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace texrheo {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------- Backoff

TEST(BackoffTest, GrowsGeometricallyWithoutJitter) {
  BackoffPolicy policy;
  policy.initial_millis = 10;
  policy.max_millis = 10000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 0, rng), 10.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 1, rng), 20.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 2, rng), 40.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 5, rng), 320.0);
}

TEST(BackoffTest, CapsAtMax) {
  BackoffPolicy policy;
  policy.initial_millis = 10;
  policy.max_millis = 100;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMillis(policy, 20, rng), 100.0);
}

TEST(BackoffTest, JitterStaysInBandAndIsDeterministic) {
  BackoffPolicy policy;
  policy.initial_millis = 100;
  policy.max_millis = 10000;
  policy.multiplier = 1.0;  // Isolate the jitter factor.
  policy.jitter = 0.5;
  Rng a(42);
  Rng b(42);
  bool saw_below = false;
  bool saw_above = false;
  for (int i = 0; i < 200; ++i) {
    double delay = BackoffDelayMillis(policy, i, a);
    EXPECT_GE(delay, 50.0);
    EXPECT_LE(delay, 150.0);
    if (delay < 95.0) saw_below = true;
    if (delay > 105.0) saw_above = true;
    // Same seed, same attempt => identical schedule.
    EXPECT_DOUBLE_EQ(delay, BackoffDelayMillis(policy, i, b));
  }
  EXPECT_TRUE(saw_below);  // Jitter actually spreads, both directions.
  EXPECT_TRUE(saw_above);
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreaker::Options BreakerOptions() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_millis = 100;
  return options;
}

TEST(CircuitBreakerTest, OpensAtFailureThreshold) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.GetStats().opened, 1u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailureCount) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  breaker.RecordSuccess();  // Streak broken.
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, RejectsWhileOpenUntilCooldown) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  EXPECT_FALSE(breaker.Allow(t0));
  EXPECT_FALSE(breaker.Allow(t0 + milliseconds(99)));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneTrial) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  auto after = t0 + milliseconds(101);
  EXPECT_TRUE(breaker.Allow(after));  // The probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(after));  // Everyone else waits on the probe.
  EXPECT_EQ(breaker.GetStats().half_opened, 1u);
}

TEST(CircuitBreakerTest, TrialSuccessRecloses) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  auto after = t0 + milliseconds(101);
  ASSERT_TRUE(breaker.Allow(after));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.GetStats().reclosed, 1u);
  // Fully recovered: new calls flow, and the failure streak restarts at 0.
  EXPECT_TRUE(breaker.Allow(after));
  breaker.RecordFailure(after);
  breaker.RecordFailure(after);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, TrialFailureReopensForAnotherCooldown) {
  CircuitBreaker breaker(BreakerOptions());
  auto t0 = steady_clock::now();
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  auto probe_time = t0 + milliseconds(101);
  ASSERT_TRUE(breaker.Allow(probe_time));
  breaker.RecordFailure(probe_time);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.GetStats().opened, 2u);
  // The cooldown restarts from the trial failure, not the original trip.
  EXPECT_FALSE(breaker.Allow(probe_time + milliseconds(99)));
  EXPECT_TRUE(breaker.Allow(probe_time + milliseconds(101)));
}

TEST(CircuitBreakerTest, ListenersFireExactlyOncePerTransition) {
  CircuitBreaker breaker(BreakerOptions());
  int trips = 0, trials = 0, recoveries = 0;
  breaker.SetListeners(CircuitBreaker::TransitionListeners{
      [&] { ++trips; }, [&] { ++trials; }, [&] { ++recoveries; }});
  auto t0 = steady_clock::now();
  // Trip (3 failures = one transition, not three callbacks).
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(t0);
  EXPECT_EQ(trips, 1);
  EXPECT_EQ(trials, 0);
  // Rejected calls while open fire nothing.
  EXPECT_FALSE(breaker.Allow(t0 + milliseconds(50)));
  EXPECT_EQ(trials, 0);
  // Cooldown elapsed: one half-open admission, one callback.
  ASSERT_TRUE(breaker.Allow(t0 + milliseconds(101)));
  EXPECT_EQ(trials, 1);
  // Failed trial: re-trip, no recovery.
  breaker.RecordFailure(t0 + milliseconds(101));
  EXPECT_EQ(trips, 2);
  EXPECT_EQ(recoveries, 0);
  // Second trial succeeds: one recovery.
  ASSERT_TRUE(breaker.Allow(t0 + milliseconds(210)));
  breaker.RecordSuccess();
  EXPECT_EQ(trials, 2);
  EXPECT_EQ(recoveries, 1);
  // Steady-state successes fire nothing further.
  EXPECT_TRUE(breaker.Allow(t0 + milliseconds(220)));
  breaker.RecordSuccess();
  EXPECT_EQ(trips, 2);
  EXPECT_EQ(trials, 2);
  EXPECT_EQ(recoveries, 1);
}

TEST(CircuitBreakerTest, ConcurrentCallersKeepStatsConsistent) {
  // N threads race Allow / RecordSuccess / RecordFailure through trip,
  // cooldown, and recovery cycles. The exact interleaving is unspecified;
  // the invariants are not: no crash/race (this is a TSan target in ci.sh),
  // listener counts match GetStats exactly, and the transition counters
  // obey the state machine's arithmetic.
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_millis = 1;  // Real clock: cooldowns elapse mid-test.
  CircuitBreaker breaker(options);
  std::atomic<uint64_t> trips{0}, trials{0}, recoveries{0};
  breaker.SetListeners(CircuitBreaker::TransitionListeners{
      [&] { trips.fetch_add(1); }, [&] { trials.fetch_add(1); },
      [&] { recoveries.fetch_add(1); }});
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (breaker.Allow(steady_clock::now())) {
          // Mixed outcomes in bursts so the breaker cycles through all
          // three states under ANY interleaving: a lone thread's burst of
          // failures already clears failure_threshold, so a coarsely
          // time-sliced single-core schedule (common under TSan with the
          // suite run in parallel) still trips it.
          if ((t + i / 4) % 3 == 0) {
            breaker.RecordFailure(steady_clock::now());
          } else {
            breaker.RecordSuccess();
          }
        }
        breaker.state();     // Concurrent reads must be safe too.
        breaker.GetStats();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const CircuitBreaker::Stats stats = breaker.GetStats();
  EXPECT_EQ(stats.opened, trips.load());
  EXPECT_EQ(stats.half_opened, trials.load());
  EXPECT_EQ(stats.reclosed, recoveries.load());
  // Every reclose concluded an admitted trial, and every trial followed a
  // trip (the breaker cannot half-open more often than it opened).
  EXPECT_LE(stats.reclosed, stats.half_opened);
  EXPECT_LE(stats.half_opened, stats.opened);
  EXPECT_GT(stats.opened, 0u);  // The mix above must actually trip it.
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  // Statsz consumers parse these strings; renames are contract breaks.
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace texrheo
