// Socket chaos suite: full LineProtocolServer round trips driven through
// FaultInjectingSocketOps (partial reads/writes, EINTR, resets, stalls on
// both the server's and the client's side of the wire). Every session must
// either complete with correct responses or fail with a clean Status —
// never hang, crash, or corrupt a response. ci.sh re-runs this suite under
// TSan (the fault schedule is atomic-counter based, so it is TSan-clean by
// construction).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "socket_fault_injection.h"

namespace texrheo::serve {
namespace {

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.estimates.phi = {{0.8, 0.2}, {0.1, 0.9}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

class ChaosTest : public ::testing::Test {
 protected:
  /// Builds engine + server wired to `ops`; returns false on setup failure.
  void StartServer(SocketOps* ops, ServerOptions overrides = ServerOptions{}) {
    auto snapshot = ServingSnapshot::FromModel(TinyModel(), "chaos-test");
    ASSERT_TRUE(snapshot.ok());
    QueryEngineConfig config;
    config.fold_in_sweeps = 10;
    config.batch_linger_micros = 0;
    auto engine = QueryEngine::Create(config, *snapshot, nullptr);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    overrides.socket_ops = ops;
    server_ =
        std::make_unique<LineProtocolServer>(engine_.get(), overrides);
    ASSERT_TRUE(server_->Start().ok());
  }

  LineClientOptions ClientOptions(SocketOps* ops) {
    LineClientOptions options;
    options.socket_ops = ops;
    options.io_timeout_millis = 10000;  // Chaos must not hang the suite.
    return options;
  }

  /// The fault injector must be a fixture member declared before the
  /// server: the server's threads call into it until server_'s destructor
  /// joins them, so a test-body local would be destroyed too early.
  FaultInjectingSocketOps* MakeChaos(
      const FaultInjectingSocketOps::Options& faults) {
    chaos_ = std::make_unique<FaultInjectingSocketOps>(faults);
    return chaos_.get();
  }

  std::unique_ptr<FaultInjectingSocketOps> chaos_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<LineProtocolServer> server_;
};

/// One full scripted session with heavy partial I/O and EINTR on both
/// sides: every byte of every request and response crosses the wire one
/// at a time part of the time, and every handful of syscalls is
/// interrupted. Responses must come back byte-identical to the
/// fault-free protocol.
TEST_F(ChaosTest, PartialIoAndEintrPreserveEverySession) {
  FaultInjectingSocketOps::Options faults;
  faults.partial_recv_every = 2;  // Every other read delivers one byte.
  faults.partial_send_every = 3;
  faults.eintr_recv_every = 5;
  faults.eintr_send_every = 7;
  faults.eintr_poll_every = 11;
  FaultInjectingSocketOps* chaos = MakeChaos(faults);
  StartServer(chaos);

  auto client =
      LineClient::Connect("127.0.0.1", server_->port(), ClientOptions(chaos));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto ping = (*client)->RoundTrip("PING");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(*ping, "OK pong");

  auto predict = (*client)->RoundTrip("PREDICT gelatin=0.01 terms=katai");
  ASSERT_TRUE(predict.ok()) << predict.status().ToString();
  EXPECT_EQ(predict->rfind("OK topic=", 0), 0u) << *predict;

  auto nearest = (*client)->RoundTrip("NEAREST 0");
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->rfind("OK setting=", 0), 0u) << *nearest;

  // Malformed input must still produce a clean ERR under chaos.
  auto err = (*client)->RoundTrip("NEAREST 9999");
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("ERR", 0), 0u) << *err;

  auto bye = (*client)->RoundTrip("QUIT");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK bye");

  EXPECT_GT(chaos->injected_faults(), 0);
}

/// Concurrent sessions with moderate fault rates plus stalls: all commands
/// answered correctly, server survives, shutdown is clean. This is the
/// TSan target: connection handlers, the accept loop, the batcher, and
/// the fault-schedule atomics all race here.
TEST_F(ChaosTest, ConcurrentSessionsSurviveChaos) {
  FaultInjectingSocketOps::Options faults;
  faults.partial_recv_every = 3;
  faults.partial_send_every = 4;
  faults.eintr_recv_every = 7;
  faults.eintr_send_every = 9;
  faults.eintr_poll_every = 13;
  faults.eintr_accept_every = 2;  // Every other accept is interrupted.
  faults.stall_every = 17;
  faults.stall_millis = 2;
  FaultInjectingSocketOps* chaos = MakeChaos(faults);
  StartServer(chaos);

  constexpr int kClients = 4;
  constexpr int kCommands = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = LineClient::Connect("127.0.0.1", server_->port(),
                                        ClientOptions(chaos));
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kCommands; ++i) {
        std::string cmd;
        switch ((c + i) % 3) {
          case 0:
            cmd = "PREDICT gelatin=0.00" + std::to_string(i % 5 + 1);
            break;
          case 1:
            cmd = "NEAREST " + std::to_string(i % 2);
            break;
          default:
            cmd = "TOPIC " + std::to_string(i % 2);
        }
        auto reply = (*client)->RoundTrip(cmd);
        if (!reply.ok() || reply->rfind("OK", 0) != 0) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server_->Stop();
}

/// A reset injected mid-connection must surface to the client as a clean
/// error (never a hang or a garbled response), and the server must keep
/// serving fresh connections afterwards.
TEST_F(ChaosTest, InjectedResetFailsCleanlyAndServerSurvives) {
  FaultInjectingSocketOps::Options faults;
  // Fire the reset a few reads into the connection's life: past the
  // handshake, in the middle of request traffic.
  faults.reset_recv_on_call = 3;
  FaultInjectingSocketOps* chaos = MakeChaos(faults);
  StartServer(chaos);

  // Clients use the real kernel ops so every chaos recv call — including
  // the poisoned one — is guaranteed to land on the server's side.
  // Run a few commands; one of them hits the injected reset and its round
  // trip (or a later one) fails cleanly when the server drops the
  // connection.
  auto victim = LineClient::Connect("127.0.0.1", server_->port(),
                                    ClientOptions(nullptr));
  ASSERT_TRUE(victim.ok());
  bool saw_failure = false;
  for (int i = 0; i < 5 && !saw_failure; ++i) {
    auto reply = (*victim)->RoundTrip("PING");
    if (!reply.ok()) {
      saw_failure = true;
    } else {
      EXPECT_EQ(*reply, "OK pong");  // Never a corrupted success.
    }
  }
  EXPECT_TRUE(saw_failure);

  // The server shrugged it off: a fresh connection works (reset was
  // one-shot, so this session is fault-free).
  auto fresh = LineClient::Connect("127.0.0.1", server_->port(),
                                   ClientOptions(nullptr));
  ASSERT_TRUE(fresh.ok());
  auto reply = (*fresh)->RoundTrip("PING");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "OK pong");
  EXPECT_GE(server_->GetStats().io_errors, 1u);
}

/// Stop() with chaotic sessions in flight: drain must complete promptly
/// and join every thread — even with EINTR and stalls injected into the
/// very syscalls the drain path relies on.
TEST_F(ChaosTest, DrainUnderChaosIsBoundedAndClean) {
  FaultInjectingSocketOps::Options faults;
  faults.partial_recv_every = 2;
  faults.eintr_poll_every = 3;
  faults.stall_every = 5;
  faults.stall_millis = 2;
  FaultInjectingSocketOps* chaos = MakeChaos(faults);
  ServerOptions options;
  options.drain_deadline_millis = 1000;
  StartServer(chaos, options);

  std::atomic<bool> stop_workers{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      auto client = LineClient::Connect("127.0.0.1", server_->port(),
                                        ClientOptions(chaos));
      if (!client.ok()) return;
      while (!stop_workers.load()) {
        // Failures are expected once the drain begins; the assertion is
        // that everything terminates.
        (void)(*client)->RoundTrip("PREDICT gelatin=0.004");
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto begin = std::chrono::steady_clock::now();
  server_->Stop();
  auto stop_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - begin)
                         .count();
  stop_workers.store(true);
  for (auto& t : threads) t.join();
  // Drain deadline 1s + force-close overhead; anything near the idle
  // timeout (30s default) would mean the drain never fired.
  EXPECT_LT(stop_millis, 5000);
}

}  // namespace
}  // namespace texrheo::serve
