// Consistent-hash ring: determinism, full coverage, candidate ordering,
// and the property the router actually buys with it — removing one node
// remaps only that node's keys, so a replica ejection does not shuffle the
// whole fleet's cache affinity.

#include "util/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace texrheo {
namespace {

TEST(Fnv1a64Test, MatchesReferenceValues) {
  // Published FNV-1a test vectors: the offset basis for "", and stability
  // for a known string (routing keys must hash identically forever, or a
  // binary upgrade silently reshuffles every replica's cache).
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashRingTest, EmptyRingHasNoNodes) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.num_nodes(), 0u);
  EXPECT_TRUE(ring.NodesFor("anything", 3).empty());
}

TEST(HashRingTest, LookupIsDeterministicAcrossInstances) {
  auto build = [] {
    HashRing ring(64);
    ring.AddNode(0, "r0");
    ring.AddNode(1, "r1");
    ring.AddNode(2, "r2");
    return ring;
  };
  HashRing a = build();
  HashRing b = build();
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key)) << key;
    EXPECT_EQ(a.NodesFor(key, 3), b.NodesFor(key, 3)) << key;
  }
}

TEST(HashRingTest, EveryNodeOwnsAShare) {
  HashRing ring(64);
  for (int n = 0; n < 4; ++n) ring.AddNode(n, "replica-" + std::to_string(n));
  std::map<int, int> hits;
  constexpr int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) {
    hits[ring.NodeFor("query-" + std::to_string(i))]++;
  }
  ASSERT_EQ(hits.size(), 4u);
  for (const auto& [node, count] : hits) {
    // With 64 vnodes the split is rough, not perfect; each node must still
    // carry a material share (catches a broken successor walk that funnels
    // everything to one node).
    EXPECT_GT(count, kKeys / 20) << "node " << node << " starved";
    EXPECT_LT(count, kKeys * 3 / 4) << "node " << node << " dominates";
  }
}

TEST(HashRingTest, CommonPrefixPortLabelsStillBalance) {
  // The router labels nodes "host:port", and a local fleet shares the
  // whole "127.0.0.1:" prefix. Raw FNV-1a turns such labels into vnode
  // point sets that are near-constant translations of each other, which
  // can hand one node almost the entire ring (observed: one replica owning
  // all of 30 distinct keys). The Mix64 avalanche finalizer is what breaks
  // that correlation; sweep many port triples to prove no layout collapses.
  for (int base = 30000; base < 60000; base += 997) {
    HashRing ring(64);
    for (int n = 0; n < 3; ++n) {
      ring.AddNode(n, "127.0.0.1:" + std::to_string(base + n * 7));
    }
    std::map<int, int> hits;
    for (int k = 1; k <= 60; ++k) {
      hits[ring.NodeFor("TOPIC|" + std::to_string(k))]++;
    }
    ASSERT_EQ(hits.size(), 3u) << "ports from " << base << " starve a node";
    for (const auto& [node, count] : hits) {
      EXPECT_LT(count, 50) << "node " << node << " dominates at base "
                           << base;
    }
  }
}

TEST(HashRingTest, NodesForListsDistinctNodesPrimaryFirst) {
  HashRing ring(32);
  for (int n = 0; n < 3; ++n) ring.AddNode(n, "replica-" + std::to_string(n));
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    std::vector<int> order = ring.NodesFor(key, 3);
    ASSERT_EQ(order.size(), 3u) << key;
    EXPECT_EQ(order[0], ring.NodeFor(key)) << key;
    std::set<int> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), 3u) << key;  // A failover list, not repeats.
  }
  // Asking for more nodes than exist returns them all, once each.
  EXPECT_EQ(ring.NodesFor("k0", 99).size(), 3u);
}

TEST(HashRingTest, RemovingANodeRemapsOnlyItsKeys) {
  HashRing full(64);
  HashRing reduced(64);
  for (int n = 0; n < 4; ++n) {
    full.AddNode(n, "replica-" + std::to_string(n));
    reduced.AddNode(n, "replica-" + std::to_string(n));
  }
  reduced.RemoveNode(2);
  EXPECT_EQ(reduced.num_nodes(), 3u);
  int moved = 0, kept = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "stable-key-" + std::to_string(i);
    const int before = full.NodeFor(key);
    const int after = reduced.NodeFor(key);
    EXPECT_NE(after, 2) << key;  // The removed node owns nothing.
    if (before == 2) {
      ++moved;  // Its keys must land somewhere else...
    } else {
      EXPECT_EQ(after, before) << key;  // ...everyone else's stay put.
      ++kept;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_GT(kept, 0);
}

TEST(HashRingTest, ReAddingSameNodeIdIsIgnored) {
  HashRing ring(16);
  ring.AddNode(0, "r0");
  ring.AddNode(0, "r0-again");
  EXPECT_EQ(ring.num_nodes(), 1u);
  EXPECT_EQ(ring.NodeFor("x"), 0);
}

}  // namespace
}  // namespace texrheo
