#include "util/flags.h"

#include <gtest/gtest.h>

namespace texrheo {
namespace {

FlagParser Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  return parser;
}

TEST(FlagParserTest, KeyEqualsValue) {
  FlagParser p = Parse({"--topics=12", "--alpha=0.5"});
  EXPECT_EQ(p.GetInt("topics", 0).value(), 12);
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0).value(), 0.5);
}

TEST(FlagParserTest, KeySpaceValue) {
  FlagParser p = Parse({"--out", "results.tsv"});
  EXPECT_EQ(p.GetString("out", ""), "results.tsv");
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser p = Parse({"--verbose"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_FALSE(p.GetBool("quiet", false));
}

TEST(FlagParserTest, BoolSpellings) {
  EXPECT_TRUE(Parse({"--x=true"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=1"}).GetBool("x", false));
  EXPECT_TRUE(Parse({"--x=YES"}).GetBool("x", false));
  EXPECT_FALSE(Parse({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(Parse({"--x=0"}).GetBool("x", true));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser p = Parse({"input.tsv", "--k=3", "output.tsv"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.tsv", "output.tsv"}));
}

TEST(FlagParserTest, DoubleDashEndsFlags) {
  FlagParser p = Parse({"--k=3", "--", "--not-a-flag"});
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"--not-a-flag"}));
  EXPECT_TRUE(p.Has("k"));
  EXPECT_FALSE(p.Has("not-a-flag"));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser p = Parse({});
  EXPECT_EQ(p.GetInt("n", 7).value(), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 1.5).value(), 1.5);
  EXPECT_EQ(p.GetString("s", "d"), "d");
}

TEST(FlagParserTest, MalformedNumberIsError) {
  FlagParser p = Parse({"--n=abc"});
  EXPECT_FALSE(p.GetInt("n", 0).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser p = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(p.GetInt("k", 0).value(), 2);
}

}  // namespace
}  // namespace texrheo
