#include "core/collapsed_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

// Same planted structure as the non-collapsed sampler tests.
recipe::Dataset PlantedDataset(size_t docs_per_cluster, uint64_t seed) {
  recipe::Dataset ds;
  for (const char* w : {"soft0", "soft1", "hard0", "hard1"}) {
    ds.term_vocab.Add(w);
  }
  Rng rng(seed);
  for (int cluster = 0; cluster < 2; ++cluster) {
    for (size_t i = 0; i < docs_per_cluster; ++i) {
      recipe::Document doc;
      doc.recipe_index = ds.documents.size();
      int n = 2 + static_cast<int>(rng.NextUint(3));
      for (int t = 0; t < n; ++t) {
        doc.term_ids.push_back(cluster * 2 +
                               static_cast<int32_t>(rng.NextUint(2)));
      }
      doc.gel_feature = math::Vector(3, 9.0);
      doc.emulsion_feature = math::Vector(2, 9.0);
      if (cluster == 0) {
        doc.gel_feature[0] = 4.0 + 0.3 * rng.NextGaussian();
      } else {
        doc.gel_feature[1] = 5.0 + 0.3 * rng.NextGaussian();
      }
      doc.gel_concentration = math::Vector(3, 0.01);
      doc.emulsion_concentration = math::Vector(2, 0.1);
      ds.documents.push_back(std::move(doc));
    }
  }
  return ds;
}

JointTopicModelConfig SmallConfig(int topics = 2) {
  JointTopicModelConfig config;
  config.num_topics = topics;
  config.sweeps = 50;
  config.seed = 33;
  return config;
}

TEST(CollapsedSamplerTest, CreateValidates) {
  recipe::Dataset ds = PlantedDataset(10, 1);
  EXPECT_FALSE(CollapsedJointTopicModel::Create(SmallConfig(), nullptr).ok());
  JointTopicModelConfig bad = SmallConfig();
  bad.num_topics = 0;
  EXPECT_FALSE(CollapsedJointTopicModel::Create(bad, &ds).ok());
}

TEST(CollapsedSamplerTest, RecoversPlantedClusters) {
  recipe::Dataset ds = PlantedDataset(50, 2);
  auto model = CollapsedJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  auto est = model->Estimate();
  ASSERT_TRUE(est.ok());
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 50 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(est->doc_topic, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.95);
}

TEST(CollapsedSamplerTest, EstimateShapesMatchConfig) {
  recipe::Dataset ds = PlantedDataset(20, 3);
  auto model = CollapsedJointTopicModel::Create(SmallConfig(4), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(20).ok());
  auto est = model->Estimate();
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->phi.size(), 4u);
  EXPECT_EQ(est->gel_topics.size(), 4u);
  EXPECT_EQ(est->emulsion_topics.size(), 4u);
  EXPECT_EQ(est->theta.size(), ds.documents.size());
  int total = 0;
  for (int c : est->topic_recipe_count) total += c;
  EXPECT_EQ(total, static_cast<int>(ds.documents.size()));
}

TEST(CollapsedSamplerTest, PredictiveLikelihoodImproves) {
  recipe::Dataset ds = PlantedDataset(50, 4);
  auto model = CollapsedJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  auto before = model->PredictiveLogLikelihood();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(model->Train().ok());
  auto after = model->PredictiveLogLikelihood();
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);
}

TEST(CollapsedSamplerTest, DeterministicGivenSeed) {
  recipe::Dataset ds = PlantedDataset(25, 5);
  auto a = CollapsedJointTopicModel::Create(SmallConfig(2), &ds);
  auto b = CollapsedJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->RunSweeps(15).ok());
  ASSERT_TRUE(b->RunSweeps(15).ok());
  EXPECT_EQ(a->y(), b->y());
}

TEST(CollapsedSamplerTest, AgreesWithNonCollapsedSampler) {
  // Both inference algorithms target the same posterior; on a cleanly
  // separated dataset their hard clusterings must coincide (up to label
  // permutation), which NMI == 1 captures.
  recipe::Dataset ds = PlantedDataset(60, 6);
  auto collapsed = CollapsedJointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(collapsed.ok());
  ASSERT_TRUE(collapsed->Train().ok());
  auto collapsed_est = collapsed->Estimate();
  ASSERT_TRUE(collapsed_est.ok());

  JointTopicModelConfig config = SmallConfig(2);
  config.sweeps = 80;
  auto vanilla = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(vanilla.ok());
  ASSERT_TRUE(vanilla->Train().ok());
  TopicEstimates vanilla_est = vanilla->Estimate();

  auto agreement = eval::ScoreClustering(collapsed_est->doc_topic,
                                         vanilla_est.doc_topic);
  ASSERT_TRUE(agreement.ok());
  EXPECT_GT(agreement->nmi, 0.9);
}

TEST(CollapsedSamplerTest, HandlesEmptyTopics) {
  recipe::Dataset ds = PlantedDataset(15, 7);
  auto model = CollapsedJointTopicModel::Create(SmallConfig(8), &ds);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Train().ok());
  EXPECT_TRUE(model->Estimate().ok());
}

}  // namespace
}  // namespace texrheo::core
