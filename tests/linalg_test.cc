#include "math/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace texrheo::math {
namespace {

TEST(VectorTest, ConstructionAndIndexing) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 1.5);
  Vector w = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(VectorTest, SizeConstructorVsInitializerList) {
  // Vector(n) makes an n-dim zero vector; {n} makes a 1-dim vector [n].
  Vector sized(3);
  EXPECT_EQ(sized.size(), 3u);
  Vector list{3};
  EXPECT_EQ(list.size(), 1u);
  EXPECT_DOUBLE_EQ(list[0], 3.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  Vector c = a + b;
  EXPECT_EQ(c, (Vector{5, 7, 9}));
  EXPECT_EQ(b - a, (Vector{3, 3, 3}));
  EXPECT_EQ(2.0 * a, (Vector{2, 4, 6}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  EXPECT_DOUBLE_EQ((Vector{3, 4}).Norm(), 5.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3, 2.0);
  EXPECT_DOUBLE_EQ(id(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({1, 2, 3});
  EXPECT_DOUBLE_EQ(d(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(d.Trace(), 6.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  Vector v = {1, 1, 1};
  EXPECT_EQ(m.Multiply(v), (Vector{6, 15}));
}

TEST(MatrixTest, MultiplyMatrixAgainstHandComputed) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeAndOuter) {
  Matrix o = Matrix::Outer({1, 2}, {3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
  Matrix ot = o.Transposed();
  EXPECT_DOUBLE_EQ(ot(2, 1), 10.0);
}

TEST(MatrixTest, SymmetryCheck) {
  Matrix s = Matrix::Identity(2);
  s(0, 1) = 0.5;
  EXPECT_FALSE(s.IsSymmetric());
  s(1, 0) = 0.5;
  EXPECT_TRUE(s.IsSymmetric());
}

Matrix RandomSpd(size_t n, texrheo::Rng& rng) {
  // A A^T + n I is symmetric positive definite.
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.NextGaussian();
  }
  Matrix spd = a.Multiply(a.Transposed());
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, FactorReconstructsInput) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()));
  size_t n = 1 + static_cast<size_t>(GetParam()) % 6;
  Matrix a = RandomSpd(n, rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix rebuilt = chol->L().Multiply(chol->L().Transposed());
  EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-9);
}

TEST_P(CholeskyPropertyTest, SolveSatisfiesSystem) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  size_t n = 2 + static_cast<size_t>(GetParam()) % 5;
  Matrix a = RandomSpd(n, rng);
  Vector b(n);
  for (size_t i = 0; i < n; ++i) b[i] = rng.NextGaussian();
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve(b);
  Vector ax = a.Multiply(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST_P(CholeskyPropertyTest, InverseTimesInputIsIdentity) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  size_t n = 1 + static_cast<size_t>(GetParam()) % 6;
  Matrix a = RandomSpd(n, rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix prod = chol->Inverse().Multiply(a);
  EXPECT_LT(prod.MaxAbsDiff(Matrix::Identity(n)), 1e-8);
}

TEST_P(CholeskyPropertyTest, LogDetMatchesDiagonalProduct) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  size_t n = 1 + static_cast<size_t>(GetParam()) % 6;
  Matrix a = RandomSpd(n, rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  // det(A) = prod diag(L)^2.
  double det = 1.0;
  for (size_t i = 0; i < n; ++i) det *= chol->L()(i, i) * chol->L()(i, i);
  EXPECT_NEAR(chol->LogDet(), std::log(det), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyPropertyTest,
                         ::testing::Range(0, 12));

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix m = Matrix::Identity(2, -1.0);
  EXPECT_FALSE(Cholesky::Factor(m).ok());
  Matrix indefinite(2, 2);
  indefinite(0, 0) = 1;
  indefinite(0, 1) = 2;
  indefinite(1, 0) = 2;
  indefinite(1, 1) = 1;  // Eigenvalues 3 and -1.
  EXPECT_FALSE(Cholesky::Factor(indefinite).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::Factor(Matrix(2, 3)).ok());
}

TEST(CholeskyWithJitterTest, HealthyMatrixFactorsBitExactly) {
  Matrix spd(2, 2);
  spd(0, 0) = 4.0;
  spd(0, 1) = 1.0;
  spd(1, 0) = 1.0;
  spd(1, 1) = 3.0;
  auto plain = Cholesky::Factor(spd);
  auto jittered = CholeskyWithJitter(spd);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(jittered.ok());
  // The jitter-free first attempt must be taken: identical factors.
  EXPECT_TRUE(plain->L() == jittered->L());
}

TEST(CholeskyWithJitterTest, RepairsBarelySingularMatrix) {
  // Rank-1 PSD matrix: plain Cholesky fails, a tiny diagonal bump fixes it.
  Matrix psd(2, 2);
  psd(0, 0) = 1.0;
  psd(0, 1) = 1.0;
  psd(1, 0) = 1.0;
  psd(1, 1) = 1.0;
  EXPECT_FALSE(Cholesky::Factor(psd).ok());
  auto repaired = CholeskyWithJitter(psd);
  EXPECT_TRUE(repaired.ok()) << repaired.status().ToString();
}

TEST(CholeskyWithJitterTest, RejectsClearlyIndefiniteMatrix) {
  Matrix indefinite = Matrix::Diagonal({1.0, -3.0});
  auto attempt = CholeskyWithJitter(indefinite);
  EXPECT_FALSE(attempt.ok());
  EXPECT_EQ(attempt.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskyWithJitterTest, RejectsNonFiniteEntriesOutright) {
  Matrix poisoned = Matrix::Identity(2, 1.0);
  poisoned(1, 0) = std::nan("");
  auto attempt = CholeskyWithJitter(poisoned);
  ASSERT_FALSE(attempt.ok());
  EXPECT_NE(attempt.status().message().find("non-finite"), std::string::npos);
}

TEST(QuadraticFormTest, HandComputed) {
  Matrix a = Matrix::Identity(2, 2.0);
  // (x - mu)^T A (x - mu) with diff (1, 2): 2*1 + 2*4 = 10.
  EXPECT_DOUBLE_EQ(QuadraticForm(a, {2, 3}, {1, 1}), 10.0);
}

TEST(InversePDTest, DiagonalCase) {
  auto inv = InversePD(Matrix::Diagonal({2, 4}));
  ASSERT_TRUE(inv.ok());
  EXPECT_DOUBLE_EQ((*inv)(0, 0), 0.5);
  EXPECT_DOUBLE_EQ((*inv)(1, 1), 0.25);
}

}  // namespace
}  // namespace texrheo::math
