// Chaos harness for the router's replica links: socket fault injection
// (partial I/O, EINTR, mid-stream resets) on the router->replica path,
// whole-replica kill/restart under live load, and a fully deterministic
// walk of the ejection breaker's state machine on an injected clock. The
// contract under every fault mix is correct-or-clean-error: a query either
// returns the right "OK ..." line or a typed "ERR <Status>" — never a
// hang, a partial line, or a crash. This suite runs under TSan and ASan
// in ci.sh.

#include "serve/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "socket_fault_injection.h"

namespace texrheo::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.estimates.phi = {{0.8, 0.2}, {0.1, 0.9}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

struct ReplicaProcess {
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<LineProtocolServer> server;
  int port = 0;
};

class RouterChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto snapshot = ServingSnapshot::FromModel(TinyModel(), "router-chaos");
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = *snapshot;
  }

  // The replica servers themselves run on real sockets: only the
  // router->replica links are faulted, so every observed failure is one
  // the router (not the replica) had to absorb.
  void StartReplica(ReplicaProcess* replica, int port = 0) {
    QueryEngineConfig config;
    config.fold_in_sweeps = 10;
    config.batch_linger_micros = 0;
    auto engine = QueryEngine::Create(config, snapshot_, nullptr);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    replica->engine = std::move(engine).value();
    ServerOptions options;
    options.port = port;
    replica->server = std::make_unique<LineProtocolServer>(
        replica->engine.get(), options);
    ASSERT_TRUE(replica->server->Start().ok());
    replica->port = replica->server->port();
  }

  void StartFleet(int n) {
    fleet_.resize(n);
    for (int i = 0; i < n; ++i) {
      StartReplica(&fleet_[i]);
      ASSERT_GT(fleet_[i].port, 0);
    }
  }

  RouterOptions BaseOptions() const {
    RouterOptions options;
    for (const ReplicaProcess& replica : fleet_) {
      options.replicas.push_back({"127.0.0.1", replica.port});
    }
    options.probe_interval_millis = 0;
    options.replica_io_timeout_millis = 10000;
    return options;
  }

  std::unique_ptr<ReplicaRouter> MakeRouter(const RouterOptions& options) {
    auto router = ReplicaRouter::Create(options);
    EXPECT_TRUE(router.ok()) << router.status().ToString();
    return router.ok() ? std::move(router).value() : nullptr;
  }

  std::string Handle(ReplicaRouter& router, const std::string& line) {
    bool quit = false;
    return router.Handle(line, &quit, kNoDeadline);
  }

  static std::string MixedQuery(int i) {
    switch (i % 3) {
      case 0:
        return "NEAREST " + std::to_string(i % 2);
      case 1:
        return "TOPIC " + std::to_string(i % 2);
      default:
        return "PREDICT gelatin=0.0" + std::to_string(1 + i % 9) +
               " terms=katai";
    }
  }

  std::shared_ptr<const ServingSnapshot> snapshot_;
  std::vector<ReplicaProcess> fleet_;
};

TEST_F(RouterChaosTest, PartialIoAndEintrOnReplicaLinksStayInvisible) {
  StartFleet(2);
  FaultInjectingSocketOps::Options faults;
  faults.partial_recv_every = 3;
  faults.partial_send_every = 4;
  faults.eintr_recv_every = 5;
  faults.eintr_send_every = 7;
  faults.eintr_poll_every = 11;
  FaultInjectingSocketOps ops(faults);

  RouterOptions options = BaseOptions();
  options.socket_ops = &ops;
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  // Short reads / short writes / EINTR are kernel noise, not failures:
  // every query must still answer OK, with zero retries burned.
  for (int i = 0; i < 60; ++i) {
    std::string reply = Handle(*router, MixedQuery(i));
    EXPECT_EQ(reply.rfind("OK", 0), 0u) << MixedQuery(i) << " -> " << reply;
  }
  EXPECT_GT(ops.injected_faults(), 0);
  obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.answered"), 60u);
  EXPECT_EQ(snap.CounterValue("router.retries"), 0u);
  EXPECT_EQ(snap.CounterValue("router.unavailable"), 0u);
}

TEST_F(RouterChaosTest, ResetMidStreamFailsOverToTheNextReplica) {
  StartFleet(2);
  FaultInjectingSocketOps::Options faults;
  faults.reset_recv_on_call = 1;  // Very first reply read: ECONNRESET.
  FaultInjectingSocketOps ops(faults);

  RouterOptions options = BaseOptions();
  options.socket_ops = &ops;
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  // The first leg's connection dies mid-round-trip. The router must not
  // surface the transport error: the retry leg on the other replica
  // answers, and the poisoned connection never returns to the pool.
  std::string reply = Handle(*router, "NEAREST 0");
  EXPECT_EQ(reply.rfind("OK setting=", 0), 0u) << reply;
  obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.retries"), 1u);
  EXPECT_EQ(snap.CounterValue("router.answered"), 1u);

  // Follow-up queries are clean (the reset was one-shot): nothing reuses
  // the dead socket.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Handle(*router, MixedQuery(i)).rfind("OK", 0), 0u);
  }
}

TEST_F(RouterChaosTest, ReplicaKillAndRestartUnderLoadLosesNoQueries) {
  StartFleet(3);
  RouterOptions options = BaseOptions();
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_millis = 200;
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  // Concurrent clients before, during, and after a whole-replica outage.
  // Retries + breaker ejection must keep every single response "OK": one
  // replica's death is the router's problem, never the client's.
  std::atomic<bool> stop{false};
  std::atomic<int> sent{0}, failed{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t) {
    load.emplace_back([&, t] {
      for (int i = 0; !stop.load(); ++i) {
        const std::string query = MixedQuery(t * 31 + i);
        std::string reply = Handle(*router, query);
        ++sent;
        if (reply.rfind("OK", 0) != 0) {
          ++failed;
          ADD_FAILURE() << "query failed during replica outage: " << query
                        << " -> " << reply;
        }
      }
    });
  }

  std::this_thread::sleep_for(milliseconds(200));
  // Kill the replica that owns the largest share of the load mix's keys:
  // an unlucky ephemeral-port ring layout can starve a fixed victim of
  // primary traffic, which would let the outage pass without a single
  // retry (and leave no query to aim at it after readmission).
  std::vector<int> owned(fleet_.size(), 0);
  for (int i = 0; i < 64; ++i) {
    ++owned[router->CandidatesFor(MixedQuery(i)).front()];
  }
  const int victim = static_cast<int>(
      std::max_element(owned.begin(), owned.end()) - owned.begin());
  const int victim_port = fleet_[victim].port;
  fleet_[victim].server->Stop();  // Kill: drains, then closes every socket.
  std::this_thread::sleep_for(milliseconds(400));
  StartReplica(&fleet_[victim], victim_port);  // Restart on the same port.
  std::this_thread::sleep_for(milliseconds(300));
  stop.store(true);
  for (auto& thread : load) thread.join();

  EXPECT_GT(sent.load(), 0);
  EXPECT_EQ(failed.load(), 0);

  // The outage was not invisible luck: the router actually absorbed it.
  obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  EXPECT_GE(snap.CounterValue("router.retries"), 1u);

  // After a probe pass (cooldown has long elapsed), the restarted replica
  // is readmitted and serves a query aimed straight at it.
  router->ProbeAllOnce();
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kClosed);
  std::string aimed;
  for (int i = 0; i < 64 && aimed.empty(); ++i) {
    const std::string query = MixedQuery(i);
    if (router->CandidatesFor(query).front() == victim) aimed = query;
  }
  ASSERT_FALSE(aimed.empty());
  EXPECT_EQ(Handle(*router, aimed).rfind("OK", 0), 0u);
}

TEST_F(RouterChaosTest, BreakerTransitionsAreDeterministicOnInjectedClock) {
  StartFleet(2);
  RouterOptions options = BaseOptions();
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_millis = 1000;
  options.probe_timeout_millis = 2000;
  const auto epoch = steady_clock::now();
  std::atomic<int64_t> clock_millis{0};
  options.now_fn = [epoch, &clock_millis] {
    return epoch + milliseconds(clock_millis.load());
  };
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  const int victim = 0;
  const int victim_port = fleet_[victim].port;
  fleet_[victim].server->Stop();

  // Threshold 2: the first failed probe leaves the breaker closed...
  router->ProbeAllOnce();
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kClosed);
  obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.breaker.trips"), 0u);
  EXPECT_EQ(snap.CounterValue("router.probe_failures"), 1u);

  // ...the second trips it. Exactly one transition.
  clock_millis.store(10);
  router->ProbeAllOnce();
  snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kOpen);
  EXPECT_EQ(snap.CounterValue("router.breaker.trips"), 1u);
  EXPECT_EQ(snap.GaugeValue("router.replica.0.healthy"), 0.0);

  // Probes inside the cooldown are rejected by the breaker: no trial is
  // burned, no connection is attempted.
  clock_millis.store(500);
  router->ProbeAllOnce();
  snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.breaker.half_open_trials"), 0u);
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kOpen);

  // Cooldown elapsed but the replica is still down: the readmission trial
  // runs, fails, and re-trips for another full cooldown.
  clock_millis.store(1011);
  router->ProbeAllOnce();
  snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.breaker.half_open_trials"), 1u);
  EXPECT_EQ(snap.CounterValue("router.breaker.trips"), 2u);
  EXPECT_EQ(snap.CounterValue("router.breaker.recoveries"), 0u);
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kOpen);

  // Replica back + second cooldown elapsed: trial succeeds, breaker
  // recloses, and the registry's aggregate counters agree exactly with
  // the per-replica CircuitBreaker::Stats.
  StartReplica(&fleet_[victim], victim_port);
  clock_millis.store(2022);
  router->ProbeAllOnce();
  snap = router->metrics()->TakeSnapshot();
  ReplicaRouter::ReplicaView view = router->GetReplicaViews()[victim];
  EXPECT_EQ(view.state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(snap.CounterValue("router.breaker.half_open_trials"), 2u);
  EXPECT_EQ(snap.CounterValue("router.breaker.recoveries"), 1u);
  EXPECT_EQ(view.breaker.opened, 2u);
  EXPECT_EQ(view.breaker.half_opened, 2u);
  EXPECT_EQ(view.breaker.reclosed, 1u);
  EXPECT_EQ(snap.GaugeValue("router.replica.0.healthy"), 1.0);
  // And the readmitted replica carries traffic again.
  std::string aimed;
  for (int i = 0; i < 64 && aimed.empty(); ++i) {
    if (router->CandidatesFor(MixedQuery(i)).front() == victim) {
      aimed = MixedQuery(i);
    }
  }
  ASSERT_FALSE(aimed.empty());
  EXPECT_EQ(Handle(*router, aimed).rfind("OK", 0), 0u);
}

}  // namespace
}  // namespace texrheo::serve
