#include "eval/heldout.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace texrheo::eval {
namespace {

// Planted dataset: topic 0 uses terms {0,1} with gel feature ~4, topic 1
// uses {2,3} with gel feature ~7.
recipe::Dataset PlantedDataset(size_t n, uint64_t seed) {
  recipe::Dataset ds;
  for (const char* w : {"a", "b", "c", "d"}) ds.term_vocab.Add(w);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int cluster = static_cast<int>(i % 2);
    recipe::Document doc;
    doc.recipe_index = i;
    for (int t = 0; t < 3; ++t) {
      doc.term_ids.push_back(cluster * 2 +
                             static_cast<int32_t>(rng.NextUint(2)));
    }
    doc.gel_feature =
        math::Vector(1, (cluster == 0 ? 4.0 : 7.0) + 0.2 * rng.NextGaussian());
    doc.emulsion_feature = math::Vector(1, 1.0);
    doc.gel_concentration = math::Vector(1, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

core::TopicEstimates PlantedEstimates() {
  core::TopicEstimates est;
  est.phi = {{0.45, 0.45, 0.05, 0.05}, {0.05, 0.05, 0.45, 0.45}};
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision({4.0}, math::Matrix::Identity(1, 25.0))
          .value());
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision({7.0}, math::Matrix::Identity(1, 25.0))
          .value());
  est.emulsion_topics.push_back(
      math::Gaussian::FromPrecision({1.0}, math::Matrix::Identity(1))
          .value());
  est.emulsion_topics.push_back(
      math::Gaussian::FromPrecision({1.0}, math::Matrix::Identity(1))
          .value());
  est.topic_recipe_count = {50, 50};
  return est;
}

TEST(SplitDatasetTest, PartitionsDocuments) {
  recipe::Dataset ds = PlantedDataset(200, 1);
  HeldOutSplit split = SplitDataset(ds, 0.25, 7);
  EXPECT_EQ(split.train.documents.size() + split.test.documents.size(), 200u);
  EXPECT_GT(split.test.documents.size(), 20u);
  EXPECT_LT(split.test.documents.size(), 90u);
  // Vocabulary shared on both sides.
  EXPECT_EQ(split.train.term_vocab.size(), 4u);
  EXPECT_EQ(split.test.term_vocab.size(), 4u);
}

TEST(SplitDatasetTest, DeterministicGivenSeed) {
  recipe::Dataset ds = PlantedDataset(100, 2);
  HeldOutSplit a = SplitDataset(ds, 0.3, 5);
  HeldOutSplit b = SplitDataset(ds, 0.3, 5);
  EXPECT_EQ(a.test.documents.size(), b.test.documents.size());
}

TEST(ConditionalPerplexityTest, InformedModelBeatsUnigram) {
  recipe::Dataset ds = PlantedDataset(400, 3);
  HeldOutSplit split = SplitDataset(ds, 0.25, 9);
  core::JointTopicModelConfig config;
  config.num_topics = 2;
  auto model_ppl = ConcentrationConditionalPerplexity(
      PlantedEstimates(), config, split.test);
  auto unigram_ppl = UnigramPerplexity(split.train, split.test);
  ASSERT_TRUE(model_ppl.ok()) << model_ppl.status().ToString();
  ASSERT_TRUE(unigram_ppl.ok());
  // The concentrations identify the cluster, and the cluster pins the
  // vocabulary half: the conditional model must clearly beat unigram.
  EXPECT_LT(*model_ppl, *unigram_ppl);
  // Unigram over 4 near-uniform terms is ~4.
  EXPECT_NEAR(*unigram_ppl, 4.0, 0.5);
}

TEST(ConditionalPerplexityTest, BoundedBelowByEntropyLimit) {
  recipe::Dataset ds = PlantedDataset(200, 4);
  HeldOutSplit split = SplitDataset(ds, 0.25, 11);
  core::JointTopicModelConfig config;
  config.num_topics = 2;
  auto ppl = ConcentrationConditionalPerplexity(PlantedEstimates(), config,
                                                split.test);
  ASSERT_TRUE(ppl.ok());
  // Within a cluster the two terms are uniform: perplexity can't be < 2.
  EXPECT_GE(*ppl, 2.0);
  EXPECT_LE(*ppl, 4.5);
}

TEST(ConditionalPerplexityTest, ErrorsOnEmptyInput) {
  core::JointTopicModelConfig config;
  recipe::Dataset empty;
  EXPECT_FALSE(ConcentrationConditionalPerplexity(PlantedEstimates(), config,
                                                  empty)
                   .ok());
  core::TopicEstimates no_topics;
  recipe::Dataset ds = PlantedDataset(10, 5);
  EXPECT_FALSE(
      ConcentrationConditionalPerplexity(no_topics, config, ds).ok());
}

TEST(UnigramPerplexityTest, UniformVocabulary) {
  recipe::Dataset ds = PlantedDataset(1000, 6);
  HeldOutSplit split = SplitDataset(ds, 0.2, 13);
  auto ppl = UnigramPerplexity(split.train, split.test);
  ASSERT_TRUE(ppl.ok());
  // All four terms equally frequent overall -> perplexity ~ 4.
  EXPECT_NEAR(*ppl, 4.0, 0.2);
}

TEST(UnigramPerplexityTest, SkewedVocabularyLowersPerplexity) {
  recipe::Dataset ds;
  ds.term_vocab.Add("common");
  ds.term_vocab.Add("rare");
  Rng rng(7);
  for (size_t i = 0; i < 500; ++i) {
    recipe::Document doc;
    doc.recipe_index = i;
    doc.term_ids.push_back(rng.NextBernoulli(0.95) ? 0 : 1);
    doc.gel_feature = math::Vector(1, 1.0);
    doc.emulsion_feature = math::Vector(1, 1.0);
    doc.gel_concentration = math::Vector(1, 0.01);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  }
  HeldOutSplit split = SplitDataset(ds, 0.3, 17);
  auto ppl = UnigramPerplexity(split.train, split.test);
  ASSERT_TRUE(ppl.ok());
  EXPECT_LT(*ppl, 2.0);
}

}  // namespace
}  // namespace texrheo::eval
