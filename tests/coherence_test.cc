#include "eval/coherence.h"

#include <gtest/gtest.h>

namespace texrheo::eval {
namespace {

// Dataset with two disjoint vocabularies: terms {0,1} always co-occur in
// cluster-0 docs, {2,3} in cluster-1 docs; {0,2} never co-occur.
recipe::Dataset CoOccurrenceDataset() {
  recipe::Dataset ds;
  for (const char* w : {"a0", "a1", "b0", "b1"}) ds.term_vocab.Add(w);
  for (int i = 0; i < 50; ++i) {
    for (int cluster = 0; cluster < 2; ++cluster) {
      recipe::Document doc;
      doc.recipe_index = ds.documents.size();
      doc.term_ids = {cluster * 2, cluster * 2 + 1};
      doc.gel_feature = math::Vector(1, 1.0);
      doc.emulsion_feature = math::Vector(1, 1.0);
      doc.gel_concentration = math::Vector(1, 0.01);
      doc.emulsion_concentration = math::Vector(1, 0.1);
      ds.documents.push_back(std::move(doc));
    }
  }
  return ds;
}

TEST(CoherenceTest, CoherentTopicsScoreHigherThanIncoherent) {
  recipe::Dataset ds = CoOccurrenceDataset();
  // Topic 0 groups co-occurring terms; topic 1 mixes across clusters.
  std::vector<std::vector<double>> coherent_phi = {{0.5, 0.5, 0.0, 0.0},
                                                   {0.0, 0.0, 0.5, 0.5}};
  std::vector<std::vector<double>> incoherent_phi = {{0.5, 0.0, 0.5, 0.0},
                                                     {0.0, 0.5, 0.0, 0.5}};
  auto coherent = ComputeUMassCoherence(coherent_phi, ds, 2);
  auto incoherent = ComputeUMassCoherence(incoherent_phi, ds, 2);
  ASSERT_TRUE(coherent.ok() && incoherent.ok());
  EXPECT_GT(coherent->mean, incoherent->mean);
}

TEST(CoherenceTest, PerfectCoOccurrenceScoresNearZero) {
  recipe::Dataset ds = CoOccurrenceDataset();
  std::vector<std::vector<double>> phi = {{0.5, 0.5, 0.0, 0.0}};
  auto coherence = ComputeUMassCoherence(phi, ds, 2);
  ASSERT_TRUE(coherence.ok());
  // D(w_i, w_j) = D(w_j) = 50 -> log(51/50) ~ 0.02 > 0... close to zero.
  EXPECT_NEAR(coherence->per_topic[0], 0.0, 0.05);
}

TEST(CoherenceTest, NeverCoOccurringPairIsStronglyNegative) {
  recipe::Dataset ds = CoOccurrenceDataset();
  std::vector<std::vector<double>> phi = {{0.5, 0.0, 0.5, 0.0}};
  auto coherence = ComputeUMassCoherence(phi, ds, 2);
  ASSERT_TRUE(coherence.ok());
  // co = 0, D = 50 -> log(1/50) ~ -3.9.
  EXPECT_LT(coherence->per_topic[0], -3.0);
}

TEST(CoherenceTest, MeanAggregatesPerTopicScores) {
  recipe::Dataset ds = CoOccurrenceDataset();
  std::vector<std::vector<double>> phi = {{0.5, 0.5, 0.0, 0.0},
                                          {0.5, 0.0, 0.5, 0.0}};
  auto coherence = ComputeUMassCoherence(phi, ds, 2);
  ASSERT_TRUE(coherence.ok());
  EXPECT_NEAR(coherence->mean,
              0.5 * (coherence->per_topic[0] + coherence->per_topic[1]),
              1e-12);
}

TEST(CoherenceTest, RejectsBadInput) {
  recipe::Dataset ds = CoOccurrenceDataset();
  EXPECT_FALSE(ComputeUMassCoherence({}, ds, 5).ok());
  EXPECT_FALSE(
      ComputeUMassCoherence({{0.5, 0.5, 0.0, 0.0}}, ds, 1).ok());
  EXPECT_FALSE(ComputeUMassCoherence({{0.5, 0.5}}, ds, 2).ok());
}

}  // namespace
}  // namespace texrheo::eval
