#include "math/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace texrheo::math {
namespace {

TEST(AliasTableTest, RejectsEmptyAndInvalidWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, -0.5}).ok());
}

TEST(AliasTableTest, SingleBucketAlwaysReturnsZero) {
  auto table = AliasTable::Build({3.0});
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, MassReconstructionMatchesWeights) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  double total = 10.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(table->MassOf(i), weights[i] / total, 1e-12);
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  auto table = AliasTable::Build({1.0, 0.0, 1.0});
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table->Sample(rng), 1u);
}

class AliasFrequencyTest : public ::testing::TestWithParam<int> {};

TEST_P(AliasFrequencyTest, EmpiricalFrequenciesMatchWeights) {
  texrheo::Rng weight_rng(static_cast<uint64_t>(GetParam()));
  size_t n = 2 + static_cast<size_t>(GetParam()) % 20;
  std::vector<double> weights(n);
  double total = 0.0;
  for (double& w : weights) {
    w = weight_rng.NextDouble() * 10.0;
    total += w;
  }
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 777);
  std::vector<int> counts(n, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[table->Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    double expected = weights[i] / total;
    double observed = counts[i] / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.01) << "bucket " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasFrequencyTest, ::testing::Range(0, 8));

// For small N the reconstructed per-bucket mass must match the analytic
// probability exactly up to rounding in the O(n) table construction, and
// the masses must form a probability distribution.
TEST(AliasTableTest, ExactDistributionForSmallN) {
  const std::vector<std::vector<double>> cases = {
      {1.0, 1.0},
      {1.0, 3.0},
      {0.2, 0.3, 0.5},
      {5.0, 1.0, 1.0, 1.0},
      {2.0, 4.0, 8.0, 16.0, 32.0},
  };
  for (const auto& weights : cases) {
    auto table = AliasTable::Build(weights);
    ASSERT_TRUE(table.ok());
    double total = 0.0;
    for (double w : weights) total += w;
    EXPECT_DOUBLE_EQ(table->total_weight(), total);
    double mass_sum = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      EXPECT_NEAR(table->MassOf(i), weights[i] / total, 1e-14)
          << "bucket " << i;
      mass_sum += table->MassOf(i);
    }
    EXPECT_NEAR(mass_sum, 1.0, 1e-12);
  }
}

TEST(AliasTableTest, SingleEntryKeepsTotalWeight) {
  auto table = AliasTable::Build({7.5});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 1u);
  EXPECT_DOUBLE_EQ(table->total_weight(), 7.5);
  EXPECT_NEAR(table->MassOf(0), 1.0, 1e-15);
}

TEST(AliasTableTest, ManyZeroWeightsNeverSampled) {
  // Zero weights interleaved with positive ones in every position class
  // (first, middle, last): none may ever be drawn and the positive ones keep
  // their relative masses.
  std::vector<double> weights = {0.0, 2.0, 0.0, 0.0, 1.0, 0.0};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(11);
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < 30000; ++i) ++counts[table->Sample(rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_EQ(counts[5], 0);
  EXPECT_GT(counts[1], counts[4]);  // 2:1 expected ratio.
}

TEST(AliasTableTest, DenormalWeightsStayWellDefined) {
  // Subnormal magnitudes must not break the normalization: the table sees
  // only the ratios, which are exactly representable here.
  const double tiny = std::numeric_limits<double>::denorm_min();
  auto table = AliasTable::Build({tiny, 3.0 * tiny});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->MassOf(0), 0.25, 1e-12);
  EXPECT_NEAR(table->MassOf(1), 0.75, 1e-12);
  texrheo::Rng rng(5);
  int hi = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    if (table->Sample(rng) == 1u) ++hi;
  }
  EXPECT_NEAR(hi / static_cast<double>(draws), 0.75, 0.02);
}

TEST(AliasTableTest, RebuildUnderChurnMatchesFreshBuild) {
  // The sparse sampler rebuilds tables from mutating count vectors every R
  // sweeps. A rebuild must be a pure function of the weights at rebuild
  // time: building from churned weights and building fresh from a copy must
  // produce identical masses and identical draws under the same RNG stream.
  texrheo::Rng churn_rng(21);
  std::vector<double> weights = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  for (int round = 0; round < 50; ++round) {
    const size_t i = churn_rng.NextUint(weights.size());
    weights[i] = churn_rng.NextDouble() * 4.0 + (i % 3 == 0 ? 0.0 : 0.5);
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) continue;
    auto rebuilt = AliasTable::Build(weights);
    auto fresh = AliasTable::Build(std::vector<double>(weights));
    ASSERT_TRUE(rebuilt.ok());
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(rebuilt->total_weight(), fresh->total_weight());
    for (size_t b = 0; b < weights.size(); ++b) {
      ASSERT_EQ(rebuilt->MassOf(b), fresh->MassOf(b)) << "round " << round;
    }
    texrheo::Rng ra(static_cast<uint64_t>(round));
    texrheo::Rng rb(static_cast<uint64_t>(round));
    for (int d = 0; d < 200; ++d) {
      ASSERT_EQ(rebuilt->Sample(ra), fresh->Sample(rb)) << "round " << round;
    }
  }
}

TEST(AliasTableTest, BuildIntoMatchesBuildAndReusesStorage) {
  // BuildInto is the allocation-free path the stale-alias bank uses for its
  // per-term rebuilds; it must be indistinguishable from Build across
  // reuses, including a larger table shrinking into the same target.
  AliasTable reused;
  EXPECT_EQ(reused.size(), 0u);
  AliasTable::BuildScratch scratch;
  const std::vector<std::vector<double>> shapes = {
      {0.5, 2.5, 0.0, 1.0, 3.0, 0.25, 0.75},
      {4.0, 1.0, 1.0},
      {2.0},
      {1.0, 0.0, 0.0, 5.0, 0.5},
  };
  for (size_t round = 0; round < shapes.size(); ++round) {
    const std::vector<double>& weights = shapes[round];
    ASSERT_TRUE(AliasTable::BuildInto(weights, scratch, reused).ok());
    auto fresh = AliasTable::Build(weights);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(reused.size(), weights.size());
    ASSERT_EQ(reused.total_weight(), fresh->total_weight());
    for (size_t b = 0; b < weights.size(); ++b) {
      ASSERT_EQ(reused.MassOf(b), fresh->MassOf(b)) << "round " << round;
    }
    texrheo::Rng ra(round + 71);
    texrheo::Rng rb(round + 71);
    for (int d = 0; d < 200; ++d) {
      ASSERT_EQ(reused.Sample(ra), fresh->Sample(rb)) << "round " << round;
    }
  }
  // Errors reject without faking a built table state.
  EXPECT_FALSE(AliasTable::BuildInto({}, scratch, reused).ok());
  EXPECT_FALSE(AliasTable::BuildInto({0.0, 0.0}, scratch, reused).ok());
  EXPECT_FALSE(AliasTable::BuildInto({1.0, -1.0}, scratch, reused).ok());
}

TEST(AliasTableTest, HighlySkewedWeights) {
  auto table = AliasTable::Build({1e-6, 1.0});
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(3);
  int rare = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table->Sample(rng) == 0) ++rare;
  }
  EXPECT_LT(rare, 20);  // ~0.0001% expected.
}

}  // namespace
}  // namespace texrheo::math
