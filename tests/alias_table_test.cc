#include "math/alias_table.h"

#include <gtest/gtest.h>

#include <vector>

namespace texrheo::math {
namespace {

TEST(AliasTableTest, RejectsEmptyAndInvalidWeights) {
  EXPECT_FALSE(AliasTable::Build({}).ok());
  EXPECT_FALSE(AliasTable::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::Build({1.0, -0.5}).ok());
}

TEST(AliasTableTest, SingleBucketAlwaysReturnsZero) {
  auto table = AliasTable::Build({3.0});
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, MassReconstructionMatchesWeights) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  double total = 10.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(table->MassOf(i), weights[i] / total, 1e-12);
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  auto table = AliasTable::Build({1.0, 0.0, 1.0});
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table->Sample(rng), 1u);
}

class AliasFrequencyTest : public ::testing::TestWithParam<int> {};

TEST_P(AliasFrequencyTest, EmpiricalFrequenciesMatchWeights) {
  texrheo::Rng weight_rng(static_cast<uint64_t>(GetParam()));
  size_t n = 2 + static_cast<size_t>(GetParam()) % 20;
  std::vector<double> weights(n);
  double total = 0.0;
  for (double& w : weights) {
    w = weight_rng.NextDouble() * 10.0;
    total += w;
  }
  auto table = AliasTable::Build(weights);
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 777);
  std::vector<int> counts(n, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[table->Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    double expected = weights[i] / total;
    double observed = counts[i] / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.01) << "bucket " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasFrequencyTest, ::testing::Range(0, 8));

TEST(AliasTableTest, HighlySkewedWeights) {
  auto table = AliasTable::Build({1e-6, 1.0});
  ASSERT_TRUE(table.ok());
  texrheo::Rng rng(3);
  int rare = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table->Sample(rng) == 0) ++rare;
  }
  EXPECT_LT(rare, 20);  // ~0.0001% expected.
}

}  // namespace
}  // namespace texrheo::math
