// SocketOps decorator that injects network faults (partial reads/writes,
// EINTR, connection resets, stalls, flaky accepts) into the serving
// layer's I/O paths. The socket-level sibling of FaultInjectingFileOps
// (tests/fault_injection.h): real sockets underneath, deterministic fault
// schedule on top. Shared by the serve chaos suite and the client
// robustness tests.

#ifndef TEXRHEO_TESTS_SOCKET_FAULT_INJECTION_H_
#define TEXRHEO_TESTS_SOCKET_FAULT_INJECTION_H_

#include <cerrno>
#include <chrono>
#include <atomic>
#include <thread>

#include "util/socket_ops.h"

namespace texrheo {

/// Each knob fires on every Nth call of that op (1-based global call
/// index, counted across all threads with atomics so the schedule is
/// TSan-clean). 0 disables a knob. The *set* of injected faults is a pure
/// function of call indices, so a single-threaded session replays exactly;
/// multi-threaded runs interleave the indices but every fault is still one
/// a real kernel could produce at that point.
class FaultInjectingSocketOps : public SocketOps {
 public:
  struct Options {
    /// Clamp every Nth Recv to 1 byte (short read).
    int partial_recv_every = 0;
    /// Clamp every Nth Send to 1 byte (short write).
    int partial_send_every = 0;
    /// Every Nth Recv / Send / Poll / Accept fails with EINTR instead.
    int eintr_recv_every = 0;
    int eintr_send_every = 0;
    int eintr_poll_every = 0;
    int eintr_accept_every = 0;
    /// Every Nth Recv or Send sleeps `stall_millis` first (slow peer).
    int stall_every = 0;
    int stall_millis = 1;
    /// One-shot: Recv call with this 1-based index fails ECONNRESET
    /// (-1 disables). The connection is genuinely poisoned afterwards as
    /// far as the caller can tell — it must drop it.
    long long reset_recv_on_call = -1;
  };

  explicit FaultInjectingSocketOps(const Options& options)
      : options_(options) {}

  ssize_t Recv(int fd, void* buf, size_t len) override {
    long long call = ++recv_calls_;
    MaybeStall(call);
    if (call == options_.reset_recv_on_call) {
      errno = ECONNRESET;
      return -1;
    }
    if (Fires(call, options_.eintr_recv_every)) {
      ++injected_;
      errno = EINTR;
      return -1;
    }
    if (Fires(call, options_.partial_recv_every)) {
      ++injected_;
      len = 1;
    }
    return SocketOps::Real().Recv(fd, buf, len);
  }

  ssize_t Send(int fd, const void* buf, size_t len) override {
    long long call = ++send_calls_;
    MaybeStall(call);
    if (Fires(call, options_.eintr_send_every)) {
      ++injected_;
      errno = EINTR;
      return -1;
    }
    if (Fires(call, options_.partial_send_every)) {
      ++injected_;
      len = 1;
    }
    return SocketOps::Real().Send(fd, buf, len);
  }

  int Accept(int listen_fd) override {
    long long call = ++accept_calls_;
    if (Fires(call, options_.eintr_accept_every)) {
      ++injected_;
      errno = EINTR;
      return -1;
    }
    return SocketOps::Real().Accept(listen_fd);
  }

  int Poll(int fd, short events, int timeout_millis) override {
    long long call = ++poll_calls_;
    if (Fires(call, options_.eintr_poll_every)) {
      ++injected_;
      errno = EINTR;
      return -1;
    }
    return SocketOps::Real().Poll(fd, events, timeout_millis);
  }

  int Close(int fd) override { return SocketOps::Real().Close(fd); }

  int Shutdown(int fd, int how) override {
    return SocketOps::Real().Shutdown(fd, how);
  }

  // Observability.
  long long recv_calls() const { return recv_calls_.load(); }
  long long send_calls() const { return send_calls_.load(); }
  long long injected_faults() const { return injected_.load(); }

 private:
  static bool Fires(long long call, int every) {
    return every > 0 && call % every == 0;
  }

  void MaybeStall(long long call) {
    if (Fires(call, options_.stall_every)) {
      ++injected_;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.stall_millis));
    }
  }

  const Options options_;
  std::atomic<long long> recv_calls_{0};
  std::atomic<long long> send_calls_{0};
  std::atomic<long long> poll_calls_{0};
  std::atomic<long long> accept_calls_{0};
  std::atomic<long long> injected_{0};
};

}  // namespace texrheo

#endif  // TEXRHEO_TESTS_SOCKET_FAULT_INJECTION_H_
