#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace texrheo::eval {
namespace {

TEST(ScoreClusteringTest, PerfectClustering) {
  std::vector<int> labels = {0, 0, 1, 1, 2, 2};
  auto scores = ScoreClustering(labels, labels);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->purity, 1.0);
  EXPECT_NEAR(scores->nmi, 1.0, 1e-9);
  EXPECT_NEAR(scores->ari, 1.0, 1e-9);
}

TEST(ScoreClusteringTest, PermutedLabelsStillPerfect) {
  // Cluster ids are arbitrary; a relabeling scores the same.
  std::vector<int> predicted = {5, 5, 9, 9, 1, 1};
  std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  auto scores = ScoreClustering(predicted, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->purity, 1.0);
  EXPECT_NEAR(scores->nmi, 1.0, 1e-9);
  EXPECT_NEAR(scores->ari, 1.0, 1e-9);
}

TEST(ScoreClusteringTest, SingleClusterPurityIsMajorityFraction) {
  std::vector<int> predicted = {0, 0, 0, 0};
  std::vector<int> truth = {1, 1, 1, 2};
  auto scores = ScoreClustering(predicted, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->purity, 0.75);
}

TEST(ScoreClusteringTest, RandomClusteringScoresNearZeroNmiAndAri) {
  texrheo::Rng rng(3);
  std::vector<int> predicted, truth;
  for (int i = 0; i < 5000; ++i) {
    predicted.push_back(static_cast<int>(rng.NextUint(5)));
    truth.push_back(static_cast<int>(rng.NextUint(5)));
  }
  auto scores = ScoreClustering(predicted, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT(scores->nmi, 0.02);
  EXPECT_NEAR(scores->ari, 0.0, 0.02);
}

TEST(ScoreClusteringTest, HandComputedContingency) {
  // Clusters: {a,a,b} vs truth {x,y,y}: majority per cluster = 1+1... :
  // cluster a holds truth {x, y} (max 1), cluster b holds {y} (max 1).
  std::vector<int> predicted = {0, 0, 1};
  std::vector<int> truth = {0, 1, 1};
  auto scores = ScoreClustering(predicted, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores->purity, 2.0 / 3.0, 1e-12);
}

TEST(ScoreClusteringTest, ErrorsOnBadInput) {
  EXPECT_FALSE(ScoreClustering({0, 1}, {0}).ok());
  EXPECT_FALSE(ScoreClustering({}, {}).ok());
  EXPECT_FALSE(ScoreClustering({-1}, {0}).ok());
}

TEST(ScoreClusteringTest, ScoresAreBounded) {
  texrheo::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> predicted, truth;
    for (int i = 0; i < 100; ++i) {
      predicted.push_back(static_cast<int>(rng.NextUint(4)));
      truth.push_back(static_cast<int>(rng.NextUint(3)));
    }
    auto scores = ScoreClustering(predicted, truth);
    ASSERT_TRUE(scores.ok());
    EXPECT_GE(scores->purity, 0.0);
    EXPECT_LE(scores->purity, 1.0);
    EXPECT_GE(scores->nmi, 0.0);
    EXPECT_LE(scores->nmi, 1.0);
    EXPECT_LE(scores->ari, 1.0);
  }
}

TEST(ScoreClusteringTest, FinerClusteringKeepsPurityHigh) {
  // Splitting a true class into two clusters keeps purity at 1 but lowers
  // ARI below 1 (the classic purity-gaming property).
  std::vector<int> predicted = {0, 1, 2, 3};
  std::vector<int> truth = {0, 0, 1, 1};
  auto scores = ScoreClustering(predicted, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->purity, 1.0);
  EXPECT_LT(scores->ari, 1.0);
}

}  // namespace
}  // namespace texrheo::eval
