#include "recipe/recipe.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace texrheo::recipe {
namespace {

Recipe SampleRecipe() {
  Recipe r;
  r.id = 42;
  r.title = "purupuru jelly";
  r.description = "easy jelly . the texture is purupuru when chilled .";
  r.ingredients = {{"gelatin", "5 g"}, {"water", "1 cup"}};
  r.metadata = {{"template", "standard-jelly"}, {"hardness", "0.25"}};
  return r;
}

TEST(RecipeRowTest, RoundTrip) {
  Recipe original = SampleRecipe();
  auto parsed = RecipeFromRow(RecipeToRow(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, original.id);
  EXPECT_EQ(parsed->title, original.title);
  EXPECT_EQ(parsed->description, original.description);
  ASSERT_EQ(parsed->ingredients.size(), 2u);
  EXPECT_EQ(parsed->ingredients[0].name, "gelatin");
  EXPECT_EQ(parsed->ingredients[1].quantity, "1 cup");
  EXPECT_EQ(parsed->metadata, original.metadata);
}

TEST(RecipeRowTest, EmptyIngredientsAndMetadata) {
  Recipe r;
  r.id = 1;
  auto parsed = RecipeFromRow(RecipeToRow(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ingredients.empty());
  EXPECT_TRUE(parsed->metadata.empty());
}

TEST(RecipeRowTest, RejectsShortRows) {
  EXPECT_FALSE(RecipeFromRow({"1", "title"}).ok());
}

TEST(RecipeRowTest, RejectsMalformedIngredientField) {
  EXPECT_FALSE(RecipeFromRow({"1", "t", "d", "no-equals-sign"}).ok());
}

TEST(RecipeRowTest, RejectsNonNumericId) {
  EXPECT_FALSE(RecipeFromRow({"abc", "t", "d", ""}).ok());
}

TEST(CorpusIoTest, SaveLoadRoundTrip) {
  std::string path = testing::TempDir() + "/texrheo_corpus_test.tsv";
  std::vector<Recipe> corpus = {SampleRecipe(), SampleRecipe()};
  corpus[1].id = 43;
  corpus[1].title = "second";
  ASSERT_TRUE(SaveCorpus(path, corpus).ok());
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].id, 42);
  EXPECT_EQ((*loaded)[1].title, "second");
  EXPECT_EQ((*loaded)[0].metadata.at("template"), "standard-jelly");
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadCorpus("/nonexistent/texrheo/corpus.tsv").ok());
}

}  // namespace
}  // namespace texrheo::recipe
