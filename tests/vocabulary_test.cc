#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace texrheo::text {
namespace {

TEST(VocabularyTest, AssignsDenseIdsInFirstSeenOrder) {
  Vocabulary v;
  EXPECT_EQ(v.Add("a"), 0);
  EXPECT_EQ(v.Add("b"), 1);
  EXPECT_EQ(v.Add("a"), 0);
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary v;
  v.Add("x");
  v.Add("x");
  v.Add("y");
  EXPECT_EQ(v.CountOf(v.IdOf("x")), 2);
  EXPECT_EQ(v.CountOf(v.IdOf("y")), 1);
  EXPECT_EQ(v.total_count(), 3);
}

TEST(VocabularyTest, IdOfUnknownWord) {
  Vocabulary v;
  v.Add("known");
  EXPECT_EQ(v.IdOf("unknown"), Vocabulary::kUnknownId);
}

TEST(VocabularyTest, WordOfRoundTrips) {
  Vocabulary v;
  for (const char* w : {"alpha", "beta", "gamma"}) v.Add(w);
  for (const char* w : {"alpha", "beta", "gamma"}) {
    EXPECT_EQ(v.WordOf(v.IdOf(w)), w);
  }
}

TEST(VocabularyTest, PrunedDropsRareWords) {
  Vocabulary v;
  for (int i = 0; i < 5; ++i) v.Add("common");
  v.Add("rare");
  Vocabulary pruned = v.Pruned(2);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_NE(pruned.IdOf("common"), Vocabulary::kUnknownId);
  EXPECT_EQ(pruned.IdOf("rare"), Vocabulary::kUnknownId);
  EXPECT_EQ(pruned.CountOf(pruned.IdOf("common")), 5);
  EXPECT_EQ(pruned.total_count(), 5);
}

TEST(VocabularyTest, PrunedPreservesOrder) {
  Vocabulary v;
  for (const char* w : {"a", "b", "c"}) {
    v.Add(w);
    v.Add(w);
  }
  v.Add("dropme");
  Vocabulary pruned = v.Pruned(2);
  EXPECT_EQ(pruned.IdOf("a"), 0);
  EXPECT_EQ(pruned.IdOf("b"), 1);
  EXPECT_EQ(pruned.IdOf("c"), 2);
}

TEST(VocabularyTest, CountsVectorAlignsWithIds) {
  Vocabulary v;
  v.Add("one");
  v.Add("two");
  v.Add("two");
  const auto& counts = v.counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
}

}  // namespace
}  // namespace texrheo::text
