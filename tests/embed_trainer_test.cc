// SGNS trainer contract tests: argument validation, the 1-thread
// bit-exactness guarantee, the (seed, num_threads) determinism contract,
// loss descent on a structured toy corpus, checkpoint resume equivalence,
// and the embedding sidecar's round-trip + corruption rejection.

#include "embed/sgns_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "embed/embedding.h"
#include "fault_injection.h"
#include "util/rng.h"

namespace texrheo::embed {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  std::string dir = testing::TempDir() + "/texrheo_embed_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Structured toy corpus: two ingredient "communities" that never co-occur.
/// Ids 0..4 always appear together, ids 5..9 always appear together, so a
/// trainer that learns anything pulls within-community vectors together.
std::vector<std::vector<int32_t>> TwoCommunityCorpus(int sentences_per) {
  std::vector<std::vector<int32_t>> sentences;
  Rng rng(7);
  for (int s = 0; s < sentences_per; ++s) {
    std::vector<int32_t> a, b;
    for (int i = 0; i < 5; ++i) {
      if (rng.NextDouble() < 0.8) a.push_back(i);
      if (rng.NextDouble() < 0.8) b.push_back(5 + i);
    }
    if (a.size() >= 2) sentences.push_back(std::move(a));
    if (b.size() >= 2) sentences.push_back(std::move(b));
  }
  return sentences;
}

SgnsConfig SmallConfig() {
  SgnsConfig config;
  config.dim = 8;
  config.window = 3;
  config.negatives = 4;
  config.epochs = 4;
  return config;
}

TEST(SgnsTrainerTest, RejectsBadArguments) {
  auto sentences = TwoCommunityCorpus(10);
  SgnsConfig config = SmallConfig();
  config.dim = 0;
  EXPECT_FALSE(TrainSgns(sentences, 10, config).ok());
  config = SmallConfig();
  config.num_threads = 0;
  EXPECT_FALSE(TrainSgns(sentences, 10, config).ok());
  // A term id outside [0, vocab_size) is a caller bug, not trainable data.
  EXPECT_FALSE(TrainSgns({{0, 99}}, 10, SmallConfig()).ok());
  EXPECT_FALSE(TrainSgns({{0, -1}}, 10, SmallConfig()).ok());
  // No trainable sentence at all (every bag shorter than two tokens).
  EXPECT_FALSE(TrainSgns({{0}, {1}}, 10, SmallConfig()).ok());
}

TEST(SgnsTrainerTest, OneThreadRunsAreBitExact) {
  auto sentences = TwoCommunityCorpus(30);
  SgnsConfig config = SmallConfig();
  auto a = TrainSgns(sentences, 10, config);
  auto b = TrainSgns(sentences, 10, config);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->vectors.size(), b->vectors.size());
  EXPECT_EQ(std::memcmp(a->vectors.data(), b->vectors.data(),
                        a->vectors.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(a->norms.data(), b->norms.data(),
                        a->norms.size() * sizeof(float)),
            0);
}

TEST(SgnsTrainerTest, SeedAndThreadCountChangeTheRun) {
  auto sentences = TwoCommunityCorpus(30);
  SgnsConfig config = SmallConfig();
  auto base = TrainSgns(sentences, 10, config);
  ASSERT_TRUE(base.ok());
  // A different seed must produce a different table (same shapes).
  SgnsConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  auto other = TrainSgns(sentences, 10, reseeded);
  ASSERT_TRUE(other.ok());
  ASSERT_EQ(base->vectors.size(), other->vectors.size());
  EXPECT_NE(std::memcmp(base->vectors.data(), other->vectors.data(),
                        base->vectors.size() * sizeof(float)),
            0);
  // Thread count is part of the RNG stream layout, so a 2-shard run is a
  // different (but equally valid) draw from the same distribution.
  SgnsConfig threaded = config;
  threaded.num_threads = 2;
  auto parallel = TrainSgns(sentences, 10, threaded);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->dim, 8u);
  EXPECT_EQ(parallel->vocab_size(), 10u);
  EXPECT_TRUE(ValidateEmbeddingTable(*parallel).ok());
}

TEST(SgnsTrainerTest, LossDecreasesOnToyCorpus) {
  auto sentences = TwoCommunityCorpus(50);
  SgnsConfig config = SmallConfig();
  config.epochs = 8;
  SgnsTrainStats stats;
  auto table = TrainSgns(sentences, 10, config, &stats);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(stats.epoch_loss.size(), 8u);
  EXPECT_GT(stats.pairs_trained, 0);
  // The structured corpus is learnable: the last epoch's mean loss must be
  // below the first epoch's (descent, not monotonicity, is the contract).
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
  for (double loss : stats.epoch_loss) EXPECT_TRUE(std::isfinite(loss));
}

TEST(SgnsTrainerTest, LearnsTheCommunityStructure) {
  auto sentences = TwoCommunityCorpus(80);
  SgnsConfig config = SmallConfig();
  config.epochs = 12;
  auto table = TrainSgns(sentences, 10, config);
  ASSERT_TRUE(table.ok());
  auto cosine = [&](size_t a, size_t b) {
    double dot = 0.0;
    for (uint32_t i = 0; i < table->dim; ++i) {
      dot += static_cast<double>(table->vec(a)[i]) *
             static_cast<double>(table->vec(b)[i]);
    }
    return dot / (static_cast<double>(table->norms[a]) *
                  static_cast<double>(table->norms[b]));
  };
  // Within-community similarity must beat cross-community similarity.
  double within = cosine(0, 1) + cosine(5, 6);
  double across = cosine(0, 5) + cosine(1, 6);
  EXPECT_GT(within, across);
}

TEST(SgnsTrainerTest, CheckpointResumeIsBitIdenticalToStraightRun) {
  std::string dir = TempPath("resume");
  auto sentences = TwoCommunityCorpus(30);
  SgnsConfig straight = SmallConfig();
  straight.epochs = 6;
  auto full = TrainSgns(sentences, 10, straight);
  ASSERT_TRUE(full.ok());

  // Probe how many FileOps::Write calls one checkpoint save issues, so the
  // injected "disk dies" lands exactly inside the fourth epoch's save.
  int writes_per_save = 0;
  {
    SgnsConfig probe = straight;
    probe.epochs = 1;
    probe.checkpoint_path = dir + "/probe.ckpt";
    FaultInjectingFileOps counting;
    ASSERT_TRUE(TrainSgns(sentences, 10, probe, nullptr, counting).ok());
    writes_per_save = counting.write_calls;
    ASSERT_GT(writes_per_save, 0);
  }

  // The same 6-epoch run, interrupted: the save after epoch 4 fails, so
  // the checkpoint on disk still holds epoch 3 (atomic write: a torn
  // attempt never replaces the previous file).
  SgnsConfig part = straight;
  part.checkpoint_path = dir + "/sgns.ckpt";
  FaultInjectingFileOps dying;
  dying.fail_write_after = 3 * writes_per_save;
  EXPECT_FALSE(TrainSgns(sentences, 10, part, nullptr, dying).ok());

  // Re-running the identical config resumes from the surviving checkpoint
  // and must reproduce the uninterrupted run bit-for-bit (1-thread RNG
  // streams are a pure function of (seed, epoch, shard), not of history).
  SgnsTrainStats stats;
  auto resumed = TrainSgns(sentences, 10, part, &stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(stats.epochs_resumed, 3);
  ASSERT_EQ(full->vectors.size(), resumed->vectors.size());
  EXPECT_EQ(std::memcmp(full->vectors.data(), resumed->vectors.data(),
                        full->vectors.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(full->norms.data(), resumed->norms.data(),
                        full->norms.size() * sizeof(float)),
            0);
}

TEST(SgnsTrainerTest, CheckpointConfigMismatchIsRejected) {
  std::string dir = TempPath("mismatch");
  auto sentences = TwoCommunityCorpus(20);
  SgnsConfig config = SmallConfig();
  config.checkpoint_path = dir + "/sgns.ckpt";
  ASSERT_TRUE(TrainSgns(sentences, 10, config).ok());
  // Same path, different hyperparameters: resuming would silently blend
  // two training schedules, so it must fail loudly instead.
  config.dim = 16;
  EXPECT_FALSE(TrainSgns(sentences, 10, config).ok());
}

TEST(SgnsTrainerTest, CorruptCheckpointIsRejected) {
  std::string dir = TempPath("corrupt");
  auto sentences = TwoCommunityCorpus(20);
  SgnsConfig config = SmallConfig();
  config.epochs = 2;
  config.checkpoint_path = dir + "/sgns.ckpt";
  ASSERT_TRUE(TrainSgns(sentences, 10, config).ok());
  // Flip one byte in the middle of the weight payload.
  std::string bytes;
  {
    std::ifstream in(config.checkpoint_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(config.checkpoint_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  config.epochs = 4;
  EXPECT_FALSE(TrainSgns(sentences, 10, config).ok());
}

TEST(SgnsTrainerTest, SidecarRoundTripsAndRejectsCorruption) {
  std::string dir = TempPath("sidecar");
  auto sentences = TwoCommunityCorpus(20);
  auto table = TrainSgns(sentences, 10, SmallConfig());
  ASSERT_TRUE(table.ok());
  const std::string path = dir + "/emb.bin";
  ASSERT_TRUE(SaveEmbeddingTable(path, *table).ok());
  auto loaded = LoadEmbeddingTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dim, table->dim);
  ASSERT_EQ(loaded->vectors.size(), table->vectors.size());
  EXPECT_EQ(std::memcmp(loaded->vectors.data(), table->vectors.data(),
                        table->vectors.size() * sizeof(float)),
            0);
  // Every single-byte flip anywhere in the file must be caught by the
  // trailing CRC (or a structural check that fires first).
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (size_t pos : {size_t{0}, bytes.size() / 3, bytes.size() - 1}) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x01);
    std::ofstream(path, std::ios::binary)
        .write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
    EXPECT_FALSE(LoadEmbeddingTable(path).ok()) << "flip at " << pos;
  }
  // Truncation at any prefix length is rejected, never misread.
  for (size_t keep : {size_t{0}, size_t{7}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::ofstream(path, std::ios::binary)
        .write(bytes.data(), static_cast<std::streamsize>(keep));
    EXPECT_FALSE(LoadEmbeddingTable(path).ok()) << "truncate to " << keep;
  }
}

}  // namespace
}  // namespace texrheo::embed
