#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace texrheo {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "Bee"});
  t.AddRow({"longer", "x"});
  std::string out = t.ToString();
  // Header and body rows render, separated by rules.
  EXPECT_NE(out.find("| A      | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| longer | x   |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"1"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = t.ToString();
  // 2 outer rules + header rule + 1 inner = 4 separator lines.
  size_t count = 0;
  for (size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(TablePrinterTest, TsvOutput) {
  TablePrinter t({"A", "B"});
  t.AddRow({"1", "2"});
  t.AddSeparator();  // Skipped in TSV.
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToTsv(), "A\tB\n1\t2\n3\t4\n");
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"Only"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Only"), std::string::npos);
}

}  // namespace
}  // namespace texrheo
