#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace texrheo {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  auto row = ParseCsvLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiter) {
  auto row = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a,b", "c"}));
}

TEST(ParseCsvLineTest, EscapedQuotes) {
  auto row = ParseCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"say \"hi\"", "x"}));
}

TEST(ParseCsvLineTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

TEST(ParseCsvLineTest, TabDelimiter) {
  auto row = ParseCsvLine("a\tb\tc", '\t');
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 3u);
}

TEST(FormatCsvLineTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatCsvLine({"has \"q\""}), "\"has \"\"q\"\"\"");
  EXPECT_EQ(FormatCsvLine({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(CsvRoundTripTest, FormatThenParse) {
  CsvRow original = {"plain", "with,comma", "with \"quote\"", ""};
  auto parsed = ParseCsvLine(FormatCsvLine(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(CsvReaderTest, MultipleRecords) {
  auto rows = CsvReader::ReadAll("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto rows = CsvReader::ReadAll("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvReaderTest, CrLfLineEndings) {
  auto rows = CsvReader::ReadAll("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
}

TEST(CsvReaderTest, QuotedNewlineInsideField) {
  auto rows = CsvReader::ReadAll("\"multi\nline\",x\ny,z\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], "multi\nline");
}

TEST(CsvReaderTest, EmptyDocument) {
  auto rows = CsvReader::ReadAll("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvFileTest, WriteThenReadRoundTrip) {
  std::string path = testing::TempDir() + "/texrheo_csv_test.csv";
  std::vector<CsvRow> rows = {{"id", "name"}, {"1", "gelatin"},
                              {"2", "agar, powdered"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = CsvReader::ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto read = CsvReader::ReadFile("/nonexistent/texrheo/file.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(FileStringTest, WriteAndReadBack) {
  std::string path = testing::TempDir() + "/texrheo_str_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace texrheo
