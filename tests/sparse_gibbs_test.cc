// Unit tests for the sparse-bucket Gibbs support structures: the
// incrementally maintained active-topic list and the stale alias-table bank
// that serves the dense proposal bucket between rebuilds.

#include "core/sparse_gibbs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.h"

namespace texrheo::core {
namespace {

std::set<int> AsSet(const ActiveTopicList& list) {
  return std::set<int>(list.topics().begin(), list.topics().end());
}

TEST(ActiveTopicListTest, ResetCapturesNonzeroEntries) {
  ActiveTopicList list;
  list.Reset({0, 3, 0, 1, 0, 7});
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(AsSet(list), (std::set<int>{1, 3, 5}));
  EXPECT_TRUE(list.Contains(1));
  EXPECT_FALSE(list.Contains(0));
  EXPECT_FALSE(list.Contains(4));
}

TEST(ActiveTopicListTest, IncrementDecrementMaintainsMembership) {
  ActiveTopicList list;
  list.Reset({0, 0, 2, 0});

  // First increment of an empty slot adds it; further increments are no-ops
  // (the caller only notifies on 0 -> 1 transitions).
  list.OnIncrement(0);
  EXPECT_TRUE(list.Contains(0));
  EXPECT_EQ(list.size(), 2u);
  list.OnIncrement(0);
  EXPECT_EQ(list.size(), 2u);

  // Decrement to zero removes (caller notifies on 1 -> 0 transitions).
  list.OnDecrement(2);
  EXPECT_FALSE(list.Contains(2));
  EXPECT_EQ(AsSet(list), (std::set<int>{0}));

  // Removing the only element empties the list.
  list.OnDecrement(0);
  EXPECT_EQ(list.size(), 0u);
}

TEST(ActiveTopicListTest, ChurnAgainstReferenceCounts) {
  // Fuzz the swap-remove bookkeeping: apply random count updates to a
  // reference count vector and mirror the 0<->1 transitions into the list;
  // membership must match the nonzero support exactly at every step.
  constexpr int kTopics = 8;
  Rng rng(42);
  std::vector<int> counts(kTopics, 0);
  ActiveTopicList list;
  list.Reset(counts);
  for (int step = 0; step < 2000; ++step) {
    const int k = static_cast<int>(rng.NextUint(kTopics));
    const bool can_decrement = counts[k] > 0;
    if (can_decrement && rng.NextDouble() < 0.5) {
      if (--counts[k] == 0) list.OnDecrement(k);
    } else {
      if (++counts[k] == 1) list.OnIncrement(k);
    }
    std::set<int> expected;
    for (int t = 0; t < kTopics; ++t) {
      if (counts[t] > 0) expected.insert(t);
    }
    ASSERT_EQ(AsSet(list), expected) << "step " << step;
    ASSERT_EQ(list.size(), expected.size());
  }
}

class StaleAliasBankTest : public ::testing::Test {
 protected:
  // 3 topics x 4 terms with distinct counts.
  std::vector<std::vector<int>> n_kv_ = {
      {5, 0, 1, 2}, {0, 3, 3, 0}, {1, 1, 1, 1}};
  std::vector<int> n_k_ = {8, 6, 4};
  static constexpr double kGamma = 0.5;
  double gamma_v_ = kGamma * 4;
};

TEST_F(StaleAliasBankTest, RebuildMatchesAnalyticWeights) {
  StaleAliasBank bank;
  EXPECT_FALSE(bank.built());
  EXPECT_EQ(bank.last_rebuild_sweep(), -1);

  bank.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, /*sweep=*/11);
  EXPECT_TRUE(bank.built());
  EXPECT_EQ(bank.last_rebuild_sweep(), 11);

  for (size_t v = 0; v < 4; ++v) {
    double total = 0.0;
    for (size_t k = 0; k < 3; ++k) {
      const double expected =
          (n_kv_[k][v] + kGamma) / (n_k_[k] + gamma_v_);
      EXPECT_DOUBLE_EQ(bank.q(v, k), expected) << "v=" << v << " k=" << k;
      EXPECT_GT(bank.q(v, k), 0.0);  // gamma > 0 => full support.
      total += expected;
    }
    EXPECT_DOUBLE_EQ(bank.q_total(v), total);
  }
}

TEST_F(StaleAliasBankTest, SampleFrequenciesTrackWeights) {
  StaleAliasBank bank;
  bank.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, 0);
  Rng rng(7);
  constexpr int kDraws = 60000;
  const size_t v = 0;
  std::vector<int> hits(3, 0);
  for (int i = 0; i < kDraws; ++i) {
    const int k = bank.SampleStale(v, rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 3);
    ++hits[k];
  }
  for (size_t k = 0; k < 3; ++k) {
    const double p = bank.q(v, k) / bank.q_total(v);
    const double observed = static_cast<double>(hits[k]) / kDraws;
    // 5-sigma binomial band.
    const double sigma = std::sqrt(p * (1.0 - p) / kDraws);
    EXPECT_NEAR(observed, p, 5.0 * sigma) << "k=" << k;
  }
}

TEST_F(StaleAliasBankTest, SnapshotIsDecoupledFromLiveCounts) {
  StaleAliasBank bank;
  bank.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, 3);
  const double q_before = bank.q(2, 0);

  // Mutate the live counts: the bank must keep serving the snapshot.
  n_kv_[0][2] += 10;
  n_k_[0] += 10;
  EXPECT_DOUBLE_EQ(bank.q(2, 0), q_before);
  EXPECT_EQ(bank.stale_n_kv()[0][2], 1);
  EXPECT_EQ(bank.stale_n_k()[0], 8);

  // A rebuild under churn picks up the new counts.
  bank.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, 9);
  EXPECT_EQ(bank.last_rebuild_sweep(), 9);
  EXPECT_DOUBLE_EQ(bank.q(2, 0),
                   (n_kv_[0][2] + kGamma) / (n_k_[0] + gamma_v_));
  EXPECT_GT(bank.q(2, 0), q_before);
}

TEST_F(StaleAliasBankTest, RebuildUnderChurnStaysConsistent) {
  // Repeatedly mutate counts and rebuild; after every rebuild the bank must
  // be an exact pure function of the counts it snapshotted.
  StaleAliasBank bank;
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    // Random churn: move a token between topics for a random term.
    const size_t v = rng.NextUint(4);
    const size_t from = rng.NextUint(3);
    const size_t to = rng.NextUint(3);
    if (n_kv_[from][v] > 0 && from != to) {
      --n_kv_[from][v];
      --n_k_[from];
      ++n_kv_[to][v];
      ++n_k_[to];
    }
    bank.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, round);
    ASSERT_EQ(bank.last_rebuild_sweep(), round);
    for (size_t term = 0; term < 4; ++term) {
      double total = 0.0;
      for (size_t k = 0; k < 3; ++k) {
        const double expected =
            (n_kv_[k][term] + kGamma) / (n_k_[k] + gamma_v_);
        ASSERT_DOUBLE_EQ(bank.q(term, k), expected)
            << "round=" << round << " v=" << term << " k=" << k;
        total += expected;
      }
      ASSERT_DOUBLE_EQ(bank.q_total(term), total);
    }
  }
}

TEST_F(StaleAliasBankTest, RebuildIsDeterministicFromCounts) {
  // The checkpoint path re-runs Rebuild from the snapshotted integer counts;
  // resume bit-exactness requires the rebuilt q/q_total to be identical.
  StaleAliasBank a;
  StaleAliasBank b;
  a.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, 5);
  b.Rebuild(a.stale_n_kv(), a.stale_n_k(), kGamma, gamma_v_, 5);
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(a.q_total(v), b.q_total(v));
    for (size_t k = 0; k < 3; ++k) EXPECT_EQ(a.q(v, k), b.q(v, k));
  }
  // And the alias tables themselves draw identically under the same stream.
  Rng ra(123);
  Rng rb(123);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.SampleStale(i % 4, ra), b.SampleStale(i % 4, rb));
  }
}

TEST_F(StaleAliasBankTest, ClearResetsState) {
  StaleAliasBank bank;
  bank.Rebuild(n_kv_, n_k_, kGamma, gamma_v_, 2);
  bank.Clear();
  EXPECT_FALSE(bank.built());
  EXPECT_EQ(bank.last_rebuild_sweep(), -1);
}

}  // namespace
}  // namespace texrheo::core
