#include "corpus/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "recipe/dataset.h"
#include "recipe/features.h"
#include "text/tokenizer.h"

namespace texrheo::corpus {
namespace {

CorpusGenConfig SmallConfig(size_t n = 2000) {
  CorpusGenConfig config;
  config.num_recipes = n;
  config.seed = 4242;
  return config;
}

std::vector<recipe::Recipe> GenerateSmall(size_t n = 2000) {
  CorpusGenerator gen(SmallConfig(n),
                      &rheology::GelPhysicsModel::Calibrated(),
                      &text::TextureDictionary::Embedded());
  return gen.Generate();
}

TEST(CorpusGeneratorTest, GeneratesRequestedCount) {
  EXPECT_EQ(GenerateSmall(500).size(), 500u);
}

TEST(CorpusGeneratorTest, DeterministicGivenSeed) {
  auto a = GenerateSmall(100);
  auto b = GenerateSmall(100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].description, b[i].description);
    EXPECT_EQ(a[i].ingredients.size(), b[i].ingredients.size());
  }
}

TEST(CorpusGeneratorTest, EveryRecipeHasGelAndParsesCleanly) {
  const auto& db = recipe::IngredientDatabase::Embedded();
  for (const auto& r : GenerateSmall(1000)) {
    auto conc = recipe::ComputeConcentrations(r, db);
    ASSERT_TRUE(conc.ok()) << r.title;
    EXPECT_TRUE(conc->HasAnyGel()) << r.title;
    EXPECT_GT(conc->total_grams, 100.0) << r.title;
  }
}

TEST(CorpusGeneratorTest, GelSplitMatchesCookpadProportions) {
  // Paper: gelatin 45k / kanten 15k / agar 3k of 63k.
  auto recipes = GenerateSmall(20000);
  std::map<std::string, int> by_gel;
  for (const auto& r : recipes) ++by_gel[r.metadata.at(kMetaGelLabel)];
  double n = static_cast<double>(recipes.size());
  double gelatin = 0, kanten = 0, agar = 0;
  for (const auto& [label, count] : by_gel) {
    if (label.find("agar") != std::string::npos) {
      agar += count;
    } else if (label.find("kanten") != std::string::npos) {
      kanten += count;
    } else {
      gelatin += count;
    }
  }
  EXPECT_NEAR(gelatin / n, 45.0 / 63.0, 0.04);
  EXPECT_NEAR(kanten / n, 15.0 / 63.0, 0.04);
  EXPECT_NEAR(agar / n, 3.0 / 63.0, 0.02);
}

TEST(CorpusGeneratorTest, TextureDescriptionRateMatchesFunnel) {
  // ~16% of recipes talk about texture (63k -> ~10k in the paper).
  auto recipes = GenerateSmall(10000);
  const auto& dict = text::TextureDictionary::Embedded();
  int with_terms = 0;
  for (const auto& r : recipes) {
    if (!text::Tokenizer::ExtractTextureTerms(r.description, dict).empty()) {
      ++with_terms;
    }
  }
  double rate = with_terms / 10000.0;
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.25);
}

TEST(CorpusGeneratorTest, MetadataCarriesGroundTruth) {
  for (const auto& r : GenerateSmall(200)) {
    ASSERT_TRUE(r.metadata.count(kMetaTemplate));
    ASSERT_TRUE(r.metadata.count(kMetaHardness));
    ASSERT_TRUE(r.metadata.count(kMetaCohesiveness));
    ASSERT_TRUE(r.metadata.count(kMetaAdhesiveness));
    ASSERT_TRUE(r.metadata.count(kMetaTextureClass));
    int cls = std::stoi(r.metadata.at(kMetaTextureClass));
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, NumTextureClasses());
  }
}

TEST(CorpusGeneratorTest, HardDishesGetHardTerms) {
  // Aggregate check of the attribute-conditional term sampling: recipes
  // whose ground-truth hardness is high use hard-pole vocabulary far more
  // often than soft recipes do.
  auto recipes = GenerateSmall(20000);
  const auto& dict = text::TextureDictionary::Embedded();
  int hard_terms_in_hard = 0, soft_terms_in_hard = 0;
  int hard_terms_in_soft = 0, soft_terms_in_soft = 0;
  for (const auto& r : recipes) {
    double h = std::stod(r.metadata.at(kMetaHardness));
    auto terms = text::Tokenizer::ExtractTextureTerms(r.description, dict);
    for (const auto& surface : terms) {
      const text::TextureTerm* t = dict.Find(surface);
      if (t == nullptr) continue;
      if (h > 2.5) {
        hard_terms_in_hard += text::IsHardTerm(*t);
        soft_terms_in_hard += text::IsSoftTerm(*t);
      } else if (h < 0.3) {
        hard_terms_in_soft += text::IsHardTerm(*t);
        soft_terms_in_soft += text::IsSoftTerm(*t);
      }
    }
  }
  EXPECT_GT(hard_terms_in_hard, 3 * soft_terms_in_hard);
  EXPECT_GT(soft_terms_in_soft, 3 * hard_terms_in_soft);
}

TEST(CorpusGeneratorTest, ToppingsCoOccurWithConfounderTerms) {
  auto recipes = GenerateSmall(20000);
  const auto& dict = text::TextureDictionary::Embedded();
  auto toppings = CorpusGenerator::ToppingIngredientNames();
  int confounder_with_topping = 0, confounder_without = 0;
  for (const auto& r : recipes) {
    bool has_topping = false;
    for (const auto& t : toppings) {
      if (r.description.find(t) != std::string::npos) has_topping = true;
    }
    for (const auto& surface :
         text::Tokenizer::ExtractTextureTerms(r.description, dict)) {
      const text::TextureTerm* term = dict.Find(surface);
      if (term != nullptr && !term->gel_related) {
        (has_topping ? confounder_with_topping : confounder_without)++;
      }
    }
  }
  // Non-gel "crispy" vocabulary comes (almost) exclusively from toppings.
  EXPECT_GT(confounder_with_topping, 10);
  EXPECT_GT(confounder_with_topping, 5 * (confounder_without + 1));
}

TEST(CorpusGeneratorTest, FunnelShapeMatchesPaper) {
  // 63k -> ~10k with terms -> ~3k final, scaled down 20x.
  CorpusGenConfig config = SmallConfig(63000 / 20);
  CorpusGenerator gen(config, &rheology::GelPhysicsModel::Calibrated(),
                      &text::TextureDictionary::Embedded());
  auto recipes = gen.Generate();
  auto ds = recipe::BuildDataset(recipes,
                                 recipe::IngredientDatabase::Embedded(),
                                 text::TextureDictionary::Embedded(),
                                 nullptr, recipe::DatasetConfig());
  ASSERT_TRUE(ds.ok());
  double with_terms = static_cast<double>(ds->funnel.with_texture_terms);
  double final_count = static_cast<double>(ds->funnel.final_dataset);
  EXPECT_NEAR(with_terms / 3150.0, 10000.0 / 63000.0, 0.06);
  EXPECT_NEAR(final_count / with_terms, 3000.0 / 10000.0, 0.12);
  // 41 of 288 dictionary terms appear in the paper's dataset.
  EXPECT_GT(ds->funnel.distinct_terms, 25u);
  EXPECT_LT(ds->funnel.distinct_terms, 90u);
}

TEST(CorpusGeneratorTest, QuantityStringsUseVariedUnits) {
  auto recipes = GenerateSmall(2000);
  std::set<std::string> units_seen;
  for (const auto& r : recipes) {
    for (const auto& line : r.ingredients) {
      auto space = line.quantity.rfind(' ');
      if (space != std::string::npos) {
        units_seen.insert(line.quantity.substr(space + 1));
      }
    }
  }
  // The generator must exercise the unit converter broadly.
  EXPECT_TRUE(units_seen.count("g"));
  EXPECT_TRUE(units_seen.count("tsp"));
  EXPECT_TRUE(units_seen.count("cc"));
  EXPECT_TRUE(units_seen.count("cup") || units_seen.count("cups"));
  EXPECT_TRUE(units_seen.count("sheets") || units_seen.count("sheet"));
}

TEST(TextureClassTest, ClassifiesExtremes) {
  rheology::TpaAttributes soft{0.1, 0.6, 0.0};
  rheology::TpaAttributes hard_sticky{5.0, 0.2, 2.0};
  EXPECT_EQ(TextureClassOf(soft), 0);
  EXPECT_EQ(TextureClassOf(hard_sticky), 5);
  EXPECT_STREQ(TextureClassName(0), "soft");
  EXPECT_STREQ(TextureClassName(5), "hard-sticky");
}

}  // namespace
}  // namespace texrheo::corpus
