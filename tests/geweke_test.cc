// Geweke (2004) joint-distribution tests for both production Gibbs
// samplers: the marginal-conditional (forward) and successive-conditional
// (Gibbs + exact data resample) chains target the same joint, so every test
// statistic's z-score must stay within Monte Carlo range. A derivation or
// implementation bug in the samplers' conditionals drives |z| far above the
// pass threshold — this is the strongest automated correctness check we
// have short of the brute-force exactness test.

#include "eval/geweke.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::eval {
namespace {

// |z| threshold. With ~8 z-scores per run (4 statistics x 2 samplers) and a
// deterministic seed, 4 standard deviations leaves comfortable margin over
// Monte Carlo noise while still failing loudly on real bugs (broken
// conditionals typically produce |z| in the tens).
constexpr double kMaxAbsZ = 4.0;

void ExpectGewekePass(const GewekeResult& result) {
  ASSERT_EQ(result.statistic_names.size(), result.z_scores.size());
  ASSERT_EQ(result.forward_mean.size(), result.z_scores.size());
  ASSERT_EQ(result.gibbs_mean.size(), result.z_scores.size());
  for (size_t i = 0; i < result.z_scores.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.z_scores[i]))
        << result.statistic_names[i];
    EXPECT_LT(std::fabs(result.z_scores[i]), kMaxAbsZ)
        << result.statistic_names[i] << ": forward " << result.forward_mean[i]
        << " vs gibbs " << result.gibbs_mean[i];
  }
  EXPECT_LT(result.max_abs_z, kMaxAbsZ);
}

TEST(GewekeTest, InstantiatedSamplerPassesJointDistributionTest) {
  GewekeConfig config;
  config.sampler = SamplerKind::kInstantiated;
  auto result = RunGewekeTest(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectGewekePass(*result);
}

TEST(GewekeTest, CollapsedSamplerPassesJointDistributionTest) {
  GewekeConfig config;
  config.sampler = SamplerKind::kCollapsed;
  auto result = RunGewekeTest(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectGewekePass(*result);
}

// The MH-corrected sparse/alias sampler must target the exact same joint as
// the dense sampler even when its proposal tables are badly stale: R = 7
// with thin = 6 means almost every recorded sample is drawn against a
// proposal built from counts up to 7 harness iterations old (and the
// harness's data-resample step mutates the term ids under the tables
// without refreshing them — only the scheduled rebuild does). If the MH
// acceptance ratio were wrong, the stale proposal would bias the stationary
// distribution and the z-scores would blow past the threshold.
TEST(GewekeTest, SparseSamplerWithStaleAliasTablesPassesJointDistributionTest) {
  GewekeConfig config;
  config.sampler = SamplerKind::kInstantiated;
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 7;
  config.mh_steps = 2;
  auto result = RunGewekeTest(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectGewekePass(*result);
}

TEST(GewekeTest, SparseSamplerRejectsCollapsedKind) {
  GewekeConfig config;
  config.sampler = SamplerKind::kCollapsed;
  config.sparse_sampler = true;
  EXPECT_FALSE(RunGewekeTest(config).ok());
}

TEST(GewekeTest, ReportsAllStatistics) {
  GewekeConfig config;
  config.forward_samples = 200;
  config.gibbs_samples = 200;
  config.burn_in = 20;
  auto result = RunGewekeTest(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->statistic_names.size(), 4u);
  for (double m : result->forward_mean) EXPECT_TRUE(std::isfinite(m));
  for (double m : result->gibbs_mean) EXPECT_TRUE(std::isfinite(m));
}

TEST(GewekeTest, RejectsDegenerateConfig) {
  GewekeConfig config;
  config.num_docs = 0;
  EXPECT_FALSE(RunGewekeTest(config).ok());

  GewekeConfig thin;
  thin.thin = 0;
  EXPECT_FALSE(RunGewekeTest(thin).ok());
}

TEST(GewekeTest, DeterministicAtFixedSeed) {
  GewekeConfig config;
  config.forward_samples = 150;
  config.gibbs_samples = 150;
  config.burn_in = 20;
  auto first = RunGewekeTest(config);
  auto second = RunGewekeTest(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->z_scores, second->z_scores);
  EXPECT_EQ(first->forward_mean, second->forward_mean);
}

}  // namespace
}  // namespace texrheo::eval
