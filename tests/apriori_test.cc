#include "rules/apriori.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "rules/transactions.h"

namespace texrheo::rules {
namespace {

// Classic textbook transactions over items {0:bread, 1:milk, 2:beer,
// 3:diapers}.
std::vector<Transaction> TextbookTransactions() {
  return {
      {0, 1},        // bread, milk
      {0, 2, 3},     // bread, beer, diapers
      {1, 2, 3},     // milk, beer, diapers
      {0, 1, 2, 3},  // all
      {0, 1, 3},     // bread, milk, diapers
  };
}

TEST(AprioriTest, RejectsBadInput) {
  AprioriConfig config;
  EXPECT_FALSE(Apriori::MineItemsets({}, config).ok());
  config.min_support = 0.0;
  EXPECT_FALSE(Apriori::MineItemsets(TextbookTransactions(), config).ok());
  config.min_support = 0.1;
  EXPECT_FALSE(Apriori::MineItemsets({{2, 1}}, config).ok());  // Unsorted.
  EXPECT_FALSE(Apriori::MineItemsets({{1, 1}}, config).ok());  // Duplicate.
}

TEST(AprioriTest, SingletonSupportsAreExact) {
  AprioriConfig config;
  config.min_support = 0.2;
  auto itemsets = Apriori::MineItemsets(TextbookTransactions(), config);
  ASSERT_TRUE(itemsets.ok());
  auto support_of = [&](std::vector<int32_t> items) -> int64_t {
    for (const auto& is : *itemsets) {
      if (is.items == items) return is.support_count;
    }
    return -1;
  };
  EXPECT_EQ(support_of({0}), 4);  // bread
  EXPECT_EQ(support_of({1}), 4);  // milk
  EXPECT_EQ(support_of({2}), 3);  // beer
  EXPECT_EQ(support_of({3}), 4);  // diapers
  EXPECT_EQ(support_of({2, 3}), 3);  // beer & diapers
  EXPECT_EQ(support_of({0, 1, 3}), 2);
}

TEST(AprioriTest, MinSupportPrunes) {
  AprioriConfig config;
  config.min_support = 0.7;  // Count >= 3.5 -> >= 4 effectively? no: >= 3.5
  auto itemsets = Apriori::MineItemsets(TextbookTransactions(), config);
  ASSERT_TRUE(itemsets.ok());
  for (const auto& is : *itemsets) {
    EXPECT_GE(is.support_count, 3) << "itemset of size " << is.items.size();
  }
}

TEST(AprioriTest, DownwardClosureHolds) {
  // Every subset of a frequent itemset is frequent.
  AprioriConfig config;
  config.min_support = 0.2;
  auto itemsets = Apriori::MineItemsets(TextbookTransactions(), config);
  ASSERT_TRUE(itemsets.ok());
  auto is_frequent = [&](const std::vector<int32_t>& items) {
    for (const auto& is : *itemsets) {
      if (is.items == items) return true;
    }
    return false;
  };
  for (const auto& is : *itemsets) {
    if (is.items.size() < 2) continue;
    for (size_t drop = 0; drop < is.items.size(); ++drop) {
      std::vector<int32_t> subset;
      for (size_t i = 0; i < is.items.size(); ++i) {
        if (i != drop) subset.push_back(is.items[i]);
      }
      EXPECT_TRUE(is_frequent(subset));
    }
  }
}

TEST(AprioriTest, RuleMetricsAreExact) {
  AprioriConfig config;
  config.min_support = 0.2;
  config.min_confidence = 0.5;
  config.min_lift = 0.0;
  auto rules = Apriori::MineRules(TextbookTransactions(), config);
  ASSERT_TRUE(rules.ok());
  // beer -> diapers: support 3/5, confidence 3/3 = 1, lift 1 / (4/5) = 1.25.
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == std::vector<int32_t>{2} && rule.consequent == 3) {
      found = true;
      EXPECT_NEAR(rule.support, 0.6, 1e-12);
      EXPECT_NEAR(rule.confidence, 1.0, 1e-12);
      EXPECT_NEAR(rule.lift, 1.25, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, ConsequentWhitelistFilters) {
  AprioriConfig config;
  config.min_support = 0.2;
  config.min_confidence = 0.1;
  config.min_lift = 0.0;
  config.consequent_whitelist = {3};
  auto rules = Apriori::MineRules(TextbookTransactions(), config);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  for (const auto& rule : *rules) EXPECT_EQ(rule.consequent, 3);
}

TEST(AprioriTest, AntecedentBlacklistFilters) {
  AprioriConfig config;
  config.min_support = 0.2;
  config.min_confidence = 0.1;
  config.min_lift = 0.0;
  config.antecedent_blacklist = {2};
  auto rules = Apriori::MineRules(TextbookTransactions(), config);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    for (int32_t item : rule.antecedent) EXPECT_NE(item, 2);
  }
}

TEST(AprioriTest, RulesSortedByLift) {
  AprioriConfig config;
  config.min_support = 0.2;
  config.min_confidence = 0.1;
  config.min_lift = 0.0;
  auto rules = Apriori::MineRules(TextbookTransactions(), config);
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].lift, (*rules)[i].lift);
  }
}

TEST(AprioriTest, MaxItemsetSizeCapsExpansion) {
  AprioriConfig config;
  config.min_support = 0.2;
  config.max_itemset_size = 2;
  auto itemsets = Apriori::MineItemsets(TextbookTransactions(), config);
  ASSERT_TRUE(itemsets.ok());
  for (const auto& is : *itemsets) EXPECT_LE(is.items.size(), 2u);
}

// --- TransactionBuilder integration over the synthetic corpus ------------

TEST(TransactionBuilderTest, EncodesRecipeFacets) {
  recipe::Recipe r;
  r.id = 1;
  r.description = "the texture is katai and nettori";
  r.ingredients = {{"gelatin", "15 g"},
                   {"milk", "300 g"},
                   {"water", "185 g"}};
  r.metadata["steps"] = "bloom+whip";
  TransactionBuilder builder;
  Transaction t = builder.Encode(r, recipe::IngredientDatabase::Embedded(),
                                 text::TextureDictionary::Embedded());
  ASSERT_FALSE(t.empty());
  std::vector<std::string> labels;
  for (int32_t item : t) labels.push_back(builder.ItemLabel(item));
  auto has = [&labels](const std::string& s) {
    return std::find(labels.begin(), labels.end(), s) != labels.end();
  };
  EXPECT_TRUE(has("gel=gelatin"));
  EXPECT_TRUE(has("gel_conc=high"));  // 15/500 = 3%.
  EXPECT_TRUE(has("emul=milk"));
  EXPECT_TRUE(has("step=bloom"));
  EXPECT_TRUE(has("step=whip"));
  EXPECT_TRUE(has("texture=hard"));
  EXPECT_TRUE(has("texture=sticky"));
}

TEST(TransactionBuilderTest, GellessRecipeYieldsEmptyTransaction) {
  recipe::Recipe r;
  r.ingredients = {{"milk", "200 g"}};
  TransactionBuilder builder;
  EXPECT_TRUE(builder
                  .Encode(r, recipe::IngredientDatabase::Embedded(),
                          text::TextureDictionary::Embedded())
                  .empty());
}

TEST(TransactionBuilderTest, TransactionsAreSortedUnique) {
  corpus::CorpusGenConfig config;
  config.num_recipes = 500;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();
  TransactionBuilder builder;
  auto transactions =
      builder.EncodeCorpus(recipes, recipe::IngredientDatabase::Embedded(),
                           text::TextureDictionary::Embedded());
  EXPECT_GT(transactions.size(), 400u);
  for (const auto& t : transactions) {
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
    EXPECT_EQ(std::adjacent_find(t.begin(), t.end()), t.end());
  }
}

TEST(TransactionBuilderTest, MinedRulesIncludePlantedStepEffect) {
  // "gel=kanten -> texture=hard" is planted by the physics (kanten is the
  // hardest gel); it must surface from a moderately sized corpus.
  corpus::CorpusGenConfig config;
  config.num_recipes = 20000;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  auto recipes = generator.Generate();
  TransactionBuilder builder;
  auto transactions =
      builder.EncodeCorpus(recipes, recipe::IngredientDatabase::Embedded(),
                           text::TextureDictionary::Embedded());
  // Keep only texture-describing transactions.
  std::vector<int32_t> texture_items = builder.TextureItemIds();
  std::vector<Transaction> filtered;
  for (auto& t : transactions) {
    for (int32_t item : texture_items) {
      if (std::binary_search(t.begin(), t.end(), item)) {
        filtered.push_back(std::move(t));
        break;
      }
    }
  }
  AprioriConfig apriori;
  apriori.min_support = 0.01;
  apriori.min_confidence = 0.4;
  apriori.min_lift = 1.1;
  apriori.consequent_whitelist = texture_items;
  apriori.antecedent_blacklist = texture_items;
  auto rules = Apriori::MineRules(filtered, apriori);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    std::string text = FormatRule(rule, builder);
    if (text.find("gel=kanten") != std::string::npos &&
        text.find("-> texture=hard") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TransactionBuilderTest, FormatRuleIsReadable) {
  TransactionBuilder builder;
  int32_t a = builder.ItemId("gel=gelatin");
  int32_t b = builder.ItemId("step=boil");
  int32_t c = builder.ItemId("texture=soft");
  Rule rule;
  rule.antecedent = {a, b};
  rule.consequent = c;
  rule.support = 0.042;
  rule.confidence = 0.81;
  rule.lift = 2.31;
  EXPECT_EQ(FormatRule(rule, builder),
            "gel=gelatin & step=boil -> texture=soft  "
            "(supp 0.042, conf 0.81, lift 2.31)");
}

}  // namespace
}  // namespace texrheo::rules
