#include "eval/validation.h"

#include <gtest/gtest.h>

namespace texrheo::eval {
namespace {

// Shared small trained experiment.
const ExperimentResult& SharedResult() {
  static const ExperimentResult& result = *new ExperimentResult([] {
    ExperimentConfig config = DefaultExperimentConfig(0.1);
    auto result_or = RunJointExperiment(config);
    EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
    return std::move(result_or).value();
  }());
  return result;
}

TEST(ValidationTest, ProducesOneRowPerTableISetting) {
  auto summary = ValidateLinkage(SharedResult());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->rows.size(), 13u);
  for (const auto& v : summary->rows) {
    EXPECT_GE(v.hard_share, 0.0);
    EXPECT_LE(v.hard_share, 1.0);
    EXPECT_GE(v.elastic_share, 0.0);
    EXPECT_LE(v.elastic_share, 1.0);
    EXPECT_GE(v.sticky_share, 0.0);
    EXPECT_LE(v.sticky_share, 1.0);
  }
}

TEST(ValidationTest, AgreementBeatsChance) {
  // Random pole shares would agree with the binary expectations half the
  // time; the trained model must do better.
  auto summary = ValidateLinkage(SharedResult());
  ASSERT_TRUE(summary.ok());
  EXPECT_GT(summary->agreement, 0.5);
  EXPECT_LE(summary->agreement, 1.0);
}

TEST(ValidationTest, KantenRowsLinkToHardVocabulary) {
  // The paper's headline validation: kanten settings (rows 6-9, the
  // hardest in Table I) read as hard-pole vocabulary.
  auto summary = ValidateLinkage(SharedResult());
  ASSERT_TRUE(summary.ok());
  for (const auto& v : summary->rows) {
    if (v.setting_id >= 6 && v.setting_id <= 9) {
      EXPECT_GT(v.hard_share, 0.5) << "row " << v.setting_id;
    }
  }
}

TEST(ValidationTest, SoftGelatinRowsLeanSofterThanKantenRows) {
  auto summary = ValidateLinkage(SharedResult());
  ASSERT_TRUE(summary.ok());
  double soft_rows = 0.0, kanten_rows = 0.0;
  int n_soft = 0, n_kanten = 0;
  for (const auto& v : summary->rows) {
    if (v.setting_id <= 2) {  // gelatin 1.8-2.0%: the softest settings.
      soft_rows += v.hard_share;
      ++n_soft;
    }
    if (v.setting_id >= 6 && v.setting_id <= 9) {
      kanten_rows += v.hard_share;
      ++n_kanten;
    }
  }
  ASSERT_GT(n_soft, 0);
  ASSERT_GT(n_kanten, 0);
  EXPECT_LT(soft_rows / n_soft, kanten_rows / n_kanten);
}

TEST(ValidationTest, FormatIncludesEveryRowAndSummary) {
  auto summary = ValidateLinkage(SharedResult());
  ASSERT_TRUE(summary.ok());
  std::string text = FormatValidation(summary.value());
  for (int row = 1; row <= 13; ++row) {
    EXPECT_NE(text.find("| " + std::to_string(row) + " "),
              std::string::npos)
        << row;
  }
  EXPECT_NE(text.find("agreement"), std::string::npos);
  EXPECT_NE(text.find("Spearman"), std::string::npos);
}

TEST(ValidationTest, RejectsResultWithoutLinks) {
  ExperimentResult empty;
  EXPECT_FALSE(ValidateLinkage(empty).ok());
}

TEST(ValidationTest, RankCorrelationsAreBounded) {
  auto summary = ValidateLinkage(SharedResult());
  ASSERT_TRUE(summary.ok());
  for (double r : {summary->hardness_rank_correlation,
                   summary->cohesiveness_rank_correlation,
                   summary->adhesiveness_rank_correlation}) {
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

}  // namespace
}  // namespace texrheo::eval
