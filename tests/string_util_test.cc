#include "util/string_util.h"

#include <gtest/gtest.h>

namespace texrheo {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(TrimTest, RemovesOuterWhitespaceOnly) {
  EXPECT_EQ(Trim("  hello world \t"), "hello world");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("PuruPURU 123"), "purupuru 123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("gelatin-leaf", "gelatin"));
  EXPECT_FALSE(StartsWith("gel", "gelatin"));
  EXPECT_TRUE(EndsWith("gelatin-leaf", "-leaf"));
  EXPECT_FALSE(EndsWith("leaf", "gelatin-leaf"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  42 ").value(), 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(ParseInt("123").value(), 123);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt(" 0 ").value(), 0);
}

TEST(ParseIntTest, RejectsGarbageAndFractions) {
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.1f", 7, "x", 2.5), "7-x-2.5");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(RoundTripTest, ParseFormattedDouble) {
  for (double v : {0.001, 1.5, 100.25, -3.125}) {
    EXPECT_DOUBLE_EQ(ParseDouble(FormatDouble(v, 6)).value(), v);
  }
}

}  // namespace
}  // namespace texrheo
