#include "text/word2vec.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace texrheo::text {
namespace {

// Builds a corpus with two disjoint topical clusters: words within a cluster
// co-occur, words across clusters never do.
std::vector<std::vector<std::string>> TwoClusterCorpus(int sentences_per) {
  std::vector<std::vector<std::string>> corpus;
  texrheo::Rng rng(7);
  std::vector<std::string> cluster_a = {"gelatin", "purupuru", "wobbly",
                                        "jelly", "chill"};
  std::vector<std::string> cluster_b = {"nuts", "sakusaku", "crunchy",
                                        "toast", "bake"};
  for (int i = 0; i < sentences_per; ++i) {
    for (auto* cluster : {&cluster_a, &cluster_b}) {
      std::vector<std::string> sentence;
      for (int w = 0; w < 8; ++w) {
        sentence.push_back((*cluster)[rng.NextUint(cluster->size())]);
      }
      corpus.push_back(std::move(sentence));
    }
  }
  return corpus;
}

Word2VecConfig SmallConfig() {
  Word2VecConfig config;
  config.dim = 16;
  config.window = 3;
  config.epochs = 8;
  config.min_count = 1;
  config.subsample = 0.0;
  config.seed = 99;
  return config;
}

TEST(Word2VecTest, TrainsAndKnowsVocabulary) {
  auto model = Word2Vec::Train(TwoClusterCorpus(100), SmallConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->vocab().size(), 10u);
  EXPECT_TRUE(model->Knows("gelatin"));
  EXPECT_FALSE(model->Knows("nonexistent"));
}

TEST(Word2VecTest, WithinClusterSimilarityExceedsAcrossCluster) {
  auto model = Word2Vec::Train(TwoClusterCorpus(150), SmallConfig());
  ASSERT_TRUE(model.ok());
  double within = model->Similarity("purupuru", "jelly").value();
  double across = model->Similarity("purupuru", "nuts").value();
  EXPECT_GT(within, across);
  EXPECT_GT(within, 0.3);
}

TEST(Word2VecTest, MostSimilarRanksClusterMatesFirst) {
  auto model = Word2Vec::Train(TwoClusterCorpus(150), SmallConfig());
  ASSERT_TRUE(model.ok());
  auto neighbours = model->MostSimilar("sakusaku", 4);
  ASSERT_TRUE(neighbours.ok());
  ASSERT_EQ(neighbours->size(), 4u);
  // All four nearest neighbours come from the crunchy cluster.
  for (const auto& [word, sim] : *neighbours) {
    EXPECT_TRUE(word == "nuts" || word == "crunchy" || word == "toast" ||
                word == "bake")
        << word;
  }
  // Sorted descending.
  for (size_t i = 1; i < neighbours->size(); ++i) {
    EXPECT_GE((*neighbours)[i - 1].second, (*neighbours)[i].second);
  }
}

TEST(Word2VecTest, DeterministicGivenSeed) {
  auto a = Word2Vec::Train(TwoClusterCorpus(50), SmallConfig());
  auto b = Word2Vec::Train(TwoClusterCorpus(50), SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->EmbeddingOf("gelatin").value(),
            b->EmbeddingOf("gelatin").value());
}

TEST(Word2VecTest, MinCountPrunesRareWords) {
  auto corpus = TwoClusterCorpus(50);
  corpus.push_back({"hapax", "gelatin", "jelly"});
  Word2VecConfig config = SmallConfig();
  config.min_count = 2;
  auto model = Word2Vec::Train(corpus, config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Knows("hapax"));
}

TEST(Word2VecTest, ErrorsOnEmptyCorpus) {
  EXPECT_FALSE(Word2Vec::Train({}, SmallConfig()).ok());
  EXPECT_FALSE(Word2Vec::Train({{"solo"}}, SmallConfig()).ok());
}

TEST(Word2VecTest, ErrorsOnBadConfig) {
  Word2VecConfig config = SmallConfig();
  config.dim = 0;
  EXPECT_FALSE(Word2Vec::Train(TwoClusterCorpus(5), config).ok());
}

TEST(Word2VecTest, SimilarityErrorsOnUnknownWord) {
  auto model = Word2Vec::Train(TwoClusterCorpus(20), SmallConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Similarity("gelatin", "martian").ok());
  EXPECT_FALSE(model->MostSimilar("martian", 3).ok());
}

TEST(GelRelatednessFilterTest, ExcludesConfounderTerm) {
  auto model = Word2Vec::Train(TwoClusterCorpus(150), SmallConfig());
  ASSERT_TRUE(model.ok());
  GelRelatednessFilter::Config fc;
  fc.top_k = 3;
  fc.min_similarity = 0.1;
  GelRelatednessFilter filter(&model.value(), {"nuts"}, fc);
  // "sakusaku" co-occurs with nuts -> excluded; "purupuru" does not.
  EXPECT_TRUE(filter.IsExcluded("sakusaku"));
  EXPECT_FALSE(filter.IsExcluded("purupuru"));
}

TEST(GelRelatednessFilterTest, UnknownTermIsKept) {
  auto model = Word2Vec::Train(TwoClusterCorpus(30), SmallConfig());
  ASSERT_TRUE(model.ok());
  GelRelatednessFilter filter(&model.value(), {"nuts"}, {});
  EXPECT_FALSE(filter.IsExcluded("unseen-term"));
}

TEST(GelRelatednessFilterTest, ExcludedAmongDeduplicates) {
  auto model = Word2Vec::Train(TwoClusterCorpus(150), SmallConfig());
  ASSERT_TRUE(model.ok());
  GelRelatednessFilter::Config fc;
  fc.top_k = 3;
  fc.min_similarity = 0.1;
  GelRelatednessFilter filter(&model.value(), {"nuts"}, fc);
  auto excluded =
      filter.ExcludedAmong({"sakusaku", "purupuru", "sakusaku"});
  EXPECT_EQ(excluded, (std::vector<std::string>{"sakusaku"}));
}

}  // namespace
}  // namespace texrheo::text
