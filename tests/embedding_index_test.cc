// EmbeddingIndex contract tests: mean-vector composition, cosine top-k
// correctness against a brute-force reference, zero-norm sentinel
// handling, and deterministic tie-breaking.

#include "embed/embedding_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "embed/embedding.h"

namespace texrheo::embed {
namespace {

/// Hand-built 4-dim table: unit axis vectors plus one zero row (id 4).
EmbeddingTable AxisTable() {
  EmbeddingTable table;
  table.dim = 4;
  table.vectors = {
      1, 0, 0, 0,  // id 0
      0, 1, 0, 0,  // id 1
      0, 0, 1, 0,  // id 2
      0, 0, 0, 1,  // id 3
      0, 0, 0, 0,  // id 4: all-zero (e.g. a term never trained)
  };
  table.RecomputeNorms();
  return table;
}

TEST(EmbeddingIndexTest, MeanVectorAveragesInVocabTerms) {
  EmbeddingTable table = AxisTable();
  EmbeddingIndex index(EmbeddingView::Of(table), {});
  std::vector<int32_t> terms = {0, 1};
  std::vector<float> mean = index.MeanVector(terms);
  ASSERT_EQ(mean.size(), 4u);
  EXPECT_FLOAT_EQ(mean[0], 0.5f);
  EXPECT_FLOAT_EQ(mean[1], 0.5f);
  EXPECT_FLOAT_EQ(mean[2], 0.0f);
  // Out-of-range ids are ignored, not averaged in as zeros.
  std::vector<int32_t> with_junk = {0, 1, 99, -3};
  std::vector<float> same = index.MeanVector(with_junk);
  EXPECT_EQ(mean, same);
}

TEST(EmbeddingIndexTest, DocVectorsAndNormsPrecomputed) {
  EmbeddingTable table = AxisTable();
  std::vector<std::vector<int32_t>> docs = {{0}, {0, 1}, {4}, {}};
  EmbeddingIndex index(EmbeddingView::Of(table), docs);
  ASSERT_EQ(index.num_docs(), 4u);
  EXPECT_FLOAT_EQ(index.doc_norm(0), 1.0f);
  EXPECT_NEAR(index.doc_norm(1), std::sqrt(0.5), 1e-6);
  EXPECT_FLOAT_EQ(index.doc_norm(2), 0.0f);  // zero vector
  EXPECT_FLOAT_EQ(index.doc_norm(3), 0.0f);  // empty bag
}

TEST(EmbeddingIndexTest, ZeroNormSidesGetSentinelDistance) {
  EmbeddingTable table = AxisTable();
  std::vector<std::vector<int32_t>> docs = {{0}, {4}};
  EmbeddingIndex index(EmbeddingView::Of(table), docs);
  std::vector<float> query = {1, 0, 0, 0};
  // Real angle to doc 0, sentinel to the zero-vector doc 1.
  EXPECT_NEAR(index.CosineDistance(query, 1.0, 0), 0.0, 1e-6);
  EXPECT_EQ(index.CosineDistance(query, 1.0, 1), 2.0);
  // A zero-norm query is sentinel against everything.
  std::vector<float> zero = {0, 0, 0, 0};
  EXPECT_EQ(index.CosineDistance(zero, 0.0, 0), 2.0);
}

TEST(EmbeddingIndexTest, RankByCosineMatchesBruteForce) {
  // A denser random-ish table exercised against an independent reference.
  EmbeddingTable table;
  table.dim = 3;
  table.vectors = {
      0.9f,  0.1f,  0.0f,   //
      0.8f,  0.3f,  0.1f,   //
      -0.5f, 0.5f,  0.7f,   //
      0.0f,  -0.9f, 0.2f,   //
      0.3f,  0.3f,  0.3f,   //
      -0.2f, -0.2f, -0.9f,  //
  };
  table.RecomputeNorms();
  std::vector<std::vector<int32_t>> docs = {{0}, {1}, {2}, {3}, {4}, {5},
                                            {0, 2}, {1, 3}, {4, 5}};
  EmbeddingIndex index(EmbeddingView::Of(table), docs);
  std::vector<int32_t> query_terms = {0, 4};
  std::vector<size_t> candidates = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  auto ranked = index.RankByCosine(query_terms, candidates);
  ASSERT_EQ(ranked.size(), candidates.size());

  // Brute force: recompute each distance from first principles.
  std::vector<float> q = index.MeanVector(query_terms);
  double qn = 0.0;
  for (float x : q) qn += static_cast<double>(x) * x;
  qn = std::sqrt(qn);
  std::vector<std::pair<double, size_t>> expected;
  for (size_t d : candidates) {
    double dot = 0.0, dn = 0.0;
    for (size_t i = 0; i < 3; ++i) {
      dot += static_cast<double>(q[i]) * index.doc_vector(d)[i];
      dn += static_cast<double>(index.doc_vector(d)[i]) *
            index.doc_vector(d)[i];
    }
    dn = std::sqrt(dn);
    double dist = (qn <= 0.0 || dn <= 0.0) ? 2.0 : 1.0 - dot / (qn * dn);
    expected.emplace_back(dist, d);
  }
  std::sort(expected.begin(), expected.end());
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].doc, expected[i].second) << "rank " << i;
    // The index divides by its float-precomputed doc norms; the reference
    // recomputes them in double, so agreement is to float precision only.
    EXPECT_NEAR(ranked[i].distance, expected[i].first, 1e-6) << "rank " << i;
  }
}

TEST(EmbeddingIndexTest, TiesBreakOnAscendingDocIndex) {
  EmbeddingTable table = AxisTable();
  // Three identical documents: distances tie exactly.
  std::vector<std::vector<int32_t>> docs = {{0}, {0}, {0}};
  EmbeddingIndex index(EmbeddingView::Of(table), docs);
  std::vector<int32_t> query_terms = {0};
  std::vector<size_t> candidates = {2, 0, 1};
  auto ranked = index.RankByCosine(query_terms, candidates);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].doc, 0u);
  EXPECT_EQ(ranked[1].doc, 1u);
  EXPECT_EQ(ranked[2].doc, 2u);
}

TEST(EmbeddingIndexTest, RanksOnlyTheCandidateSubset) {
  EmbeddingTable table = AxisTable();
  std::vector<std::vector<int32_t>> docs = {{0}, {1}, {2}, {3}};
  EmbeddingIndex index(EmbeddingView::Of(table), docs);
  std::vector<int32_t> query_terms = {0};
  std::vector<size_t> candidates = {1, 3};
  auto ranked = index.RankByCosine(query_terms, candidates);
  ASSERT_EQ(ranked.size(), 2u);
  for (const auto& r : ranked) {
    EXPECT_TRUE(r.doc == 1 || r.doc == 3);
  }
}

}  // namespace
}  // namespace texrheo::embed
