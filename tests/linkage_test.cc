#include "core/linkage.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::core {
namespace {

// Two hand-built topics in -log-concentration space:
// topic 0 centred at gelatin ~2% (feature ~3.9, absent, absent),
// topic 1 centred at kanten ~1% (absent, feature ~4.6, absent).
TopicEstimates TwoTopicEstimates() {
  recipe::FeatureConfig fc;
  TopicEstimates est;
  math::Vector gelatin_center = recipe::ToFeature({0.02, 0.0, 0.0}, fc);
  math::Vector kanten_center = recipe::ToFeature({0.0, 0.01, 0.0}, fc);
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(gelatin_center,
                                    math::Matrix::Identity(3, 4.0))
          .value());
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(kanten_center,
                                    math::Matrix::Identity(3, 4.0))
          .value());
  return est;
}

class LinkageMethodTest : public ::testing::TestWithParam<LinkageMethod> {};

TEST_P(LinkageMethodTest, SettingsLinkToMatchingGelTopic) {
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  LinkageOptions options;
  options.method = GetParam();
  auto links = LinkSettingsToTopics(est, rheology::TableI(), fc, options);
  ASSERT_TRUE(links.ok());
  ASSERT_EQ(links->size(), 13u);
  for (const auto& link : *links) {
    const auto& row =
        rheology::TableI()[static_cast<size_t>(link.setting_id - 1)];
    bool is_pure_gelatin = row.gel[0] > 0.0 && row.gel[2] == 0.0;
    bool is_kanten = row.gel[1] > 0.0;
    if (is_pure_gelatin) {
      EXPECT_EQ(link.topic, 0) << "setting " << link.setting_id;
    }
    if (is_kanten) {
      EXPECT_EQ(link.topic, 1) << "setting " << link.setting_id;
    }
    EXPECT_EQ(link.divergence_by_topic.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, LinkageMethodTest,
                         ::testing::Values(LinkageMethod::kGaussianKL,
                                           LinkageMethod::kNegLogDensity,
                                           LinkageMethod::kMahalanobis,
                                           LinkageMethod::kEuclidean));

TEST(LinkageTest, DivergenceIsMinimalAtChosenTopic) {
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  auto links = LinkSettingsToTopics(est, rheology::TableI(), fc);
  ASSERT_TRUE(links.ok());
  for (const auto& link : *links) {
    for (double d : link.divergence_by_topic) {
      EXPECT_GE(d, link.divergence);
    }
  }
}

TEST(LinkageTest, CenterScoresBetterThanOffCenter) {
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  auto at_center = LinkConcentrationToTopic(est, {0.02, 0.0, 0.0}, fc);
  auto off_center = LinkConcentrationToTopic(est, {0.035, 0.0, 0.0}, fc);
  ASSERT_TRUE(at_center.ok() && off_center.ok());
  EXPECT_EQ(at_center->topic, 0);
  EXPECT_LT(at_center->divergence, off_center->divergence);
}

TEST(LinkageTest, SharpNearbyTopicBeatsDiffuseDistantTopic) {
  // The failure mode that motivated the measurement-sigma wrapping: a very
  // diffuse topic must not absorb settings that sit right on a sharp
  // topic's mean.
  recipe::FeatureConfig fc;
  TopicEstimates est;
  math::Vector sharp_center = recipe::ToFeature({0.02, 0.0, 0.0}, fc);
  math::Vector diffuse_center = recipe::ToFeature({0.005, 0.0, 0.0}, fc);
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(sharp_center,
                                    math::Matrix::Identity(3, 25.0))
          .value());
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(diffuse_center,
                                    math::Matrix::Identity(3, 0.05))
          .value());
  auto link = LinkConcentrationToTopic(est, {0.02, 0.0, 0.0}, fc);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(link->topic, 0);
}

TEST(LinkageTest, TableIIbDishesLinkToGelatinTopic) {
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  for (const auto& dish : rheology::TableIIb()) {
    auto link = LinkConcentrationToTopic(est, dish.gel, fc);
    ASSERT_TRUE(link.ok());
    EXPECT_EQ(link->topic, 0) << dish.name;
  }
}

TEST(LinkageTest, InvalidMeasurementSigmaIsRejected) {
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  LinkageOptions options;
  options.measurement_sigma = 0.0;
  EXPECT_FALSE(
      LinkSettingsToTopics(est, rheology::TableI(), fc, options).ok());
}

TEST(LinkageTest, EmptyTopicsYieldEmptyDivergences) {
  TopicEstimates est;  // No gel topics at all.
  recipe::FeatureConfig fc;
  auto links = LinkSettingsToTopics(est, rheology::TableI(), fc);
  ASSERT_TRUE(links.ok());
  for (const auto& link : *links) {
    EXPECT_TRUE(link.divergence_by_topic.empty());
  }
}

// --- Degenerate topic Gaussians --------------------------------------------
//
// A collapsed topic (all recipes at one point) or an overflowed precision
// must surface as a clean Status, never as Inf/NaN divergences that
// silently scramble the ranking.

TopicEstimates WithDegenerateSecondTopic() {
  recipe::FeatureConfig fc;
  TopicEstimates est;
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(recipe::ToFeature({0.02, 0.0, 0.0}, fc),
                                    math::Matrix::Identity(3, 4.0))
          .value());
  // Numerically exploded precision: constructible (still PD), but its
  // trace / quadratic forms overflow to Inf against any real setting.
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(math::Vector(3, 0.0),
                                    math::Matrix::Identity(3, 1e308))
          .value());
  return est;
}

class DegenerateLinkageTest : public ::testing::TestWithParam<LinkageMethod> {
};

TEST_P(DegenerateLinkageTest, CovarianceDependentMethodsFailCleanly) {
  TopicEstimates est = WithDegenerateSecondTopic();
  recipe::FeatureConfig fc;
  LinkageOptions options;
  options.method = GetParam();
  auto links = LinkSettingsToTopics(est, rheology::TableI(), fc, options);
  if (GetParam() == LinkageMethod::kEuclidean) {
    // Euclidean never touches the covariance; the degenerate topic is
    // harmless and every divergence must still be finite.
    ASSERT_TRUE(links.ok()) << links.status().ToString();
    for (const auto& link : *links) {
      for (double d : link.divergence_by_topic) {
        EXPECT_TRUE(std::isfinite(d));
      }
    }
  } else {
    ASSERT_FALSE(links.ok());
    EXPECT_EQ(links.status().code(), StatusCode::kFailedPrecondition)
        << links.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, DegenerateLinkageTest,
                         ::testing::Values(LinkageMethod::kGaussianKL,
                                           LinkageMethod::kNegLogDensity,
                                           LinkageMethod::kMahalanobis,
                                           LinkageMethod::kEuclidean));

TEST(LinkageTest, DegenerateTopicErrorPropagatesThroughDishLinkage) {
  TopicEstimates est = WithDegenerateSecondTopic();
  recipe::FeatureConfig fc;
  auto link = LinkConcentrationToTopic(est, {0.02, 0.0, 0.0}, fc);
  ASSERT_FALSE(link.ok());
  EXPECT_EQ(link.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LinkageTest, FeatureDimensionMismatchIsInvalidArgument) {
  recipe::FeatureConfig fc;
  TopicEstimates est;
  // 2-D topic against 3-D gel settings.
  est.gel_topics.push_back(
      math::Gaussian::FromPrecision(math::Vector(2, 1.0),
                                    math::Matrix::Identity(2, 1.0))
          .value());
  auto links = LinkSettingsToTopics(est, rheology::TableI(), fc);
  ASSERT_FALSE(links.ok());
  EXPECT_EQ(links.status().code(), StatusCode::kInvalidArgument);
}

TEST(LinkageTest, WellConditionedTopicsStayFiniteUnderEveryMethod) {
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  for (LinkageMethod method :
       {LinkageMethod::kGaussianKL, LinkageMethod::kNegLogDensity,
        LinkageMethod::kMahalanobis, LinkageMethod::kEuclidean}) {
    LinkageOptions options;
    options.method = method;
    auto links = LinkSettingsToTopics(est, rheology::TableI(), fc, options);
    ASSERT_TRUE(links.ok());
    for (const auto& link : *links) {
      for (double d : link.divergence_by_topic) {
        EXPECT_TRUE(std::isfinite(d));
      }
    }
  }
}

TEST(LinkageTest, GaussianKLAndNegLogDensityAgreeOnRanking) {
  // With a small measurement sigma the KL ranking matches the density
  // ranking (the constant wrapped-entropy term cancels across topics).
  TopicEstimates est = TwoTopicEstimates();
  recipe::FeatureConfig fc;
  LinkageOptions kl_options;
  kl_options.measurement_sigma = 0.05;
  LinkageOptions density_options;
  density_options.method = LinkageMethod::kNegLogDensity;
  auto kl = LinkSettingsToTopics(est, rheology::TableI(), fc, kl_options);
  auto density =
      LinkSettingsToTopics(est, rheology::TableI(), fc, density_options);
  ASSERT_TRUE(kl.ok() && density.ok());
  for (size_t i = 0; i < kl->size(); ++i) {
    EXPECT_EQ((*kl)[i].topic, (*density)[i].topic);
  }
}

}  // namespace
}  // namespace texrheo::core
