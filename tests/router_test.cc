// ReplicaRouter over a real in-process fleet: each replica is a full
// QueryEngine + LineProtocolServer on an ephemeral loopback port. Covers
// cache-affinity routing, failover retries, breaker ejection/readmission
// driven by an injected clock, tail hedging against a stuck replica,
// zero-downtime rolling reloads under live traffic, and the router's own
// front server speaking the wire protocol end to end.

#include "serve/router.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/serialization.h"
#include "math/distributions.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/json.h"

namespace texrheo::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot TinyModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.estimates.phi = {{0.8, 0.2}, {0.1, 0.9}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {2, 2};
  return model;
}

/// One replica: engine + line-protocol server on an ephemeral port.
struct ReplicaProcess {
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<LineProtocolServer> server;
  int port = 0;
};

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto snapshot = ServingSnapshot::FromModel(TinyModel(), "router-test");
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = *snapshot;
  }

  /// Starts one replica; with `port` == 0 an ephemeral port is chosen
  /// (pass a previous port to model a replica *restart*).
  void StartReplica(ReplicaProcess* replica, int port = 0) {
    QueryEngineConfig config;
    config.fold_in_sweeps = 10;
    config.batch_linger_micros = 0;
    auto engine = QueryEngine::Create(config, snapshot_, nullptr);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    replica->engine = std::move(engine).value();
    ServerOptions options;
    options.port = port;
    replica->server = std::make_unique<LineProtocolServer>(
        replica->engine.get(), options);
    ASSERT_TRUE(replica->server->Start().ok());
    replica->port = replica->server->port();
  }

  void StartFleet(int n) {
    fleet_.resize(n);
    for (int i = 0; i < n; ++i) {
      StartReplica(&fleet_[i]);
      ASSERT_GT(fleet_[i].port, 0);
    }
  }

  RouterOptions BaseOptions() const {
    RouterOptions options;
    for (const ReplicaProcess& replica : fleet_) {
      options.replicas.push_back({"127.0.0.1", replica.port});
    }
    options.probe_interval_millis = 0;  // Tests drive ProbeAllOnce.
    options.replica_io_timeout_millis = 10000;
    return options;
  }

  std::unique_ptr<ReplicaRouter> MakeRouter(const RouterOptions& options) {
    auto router = ReplicaRouter::Create(options);
    EXPECT_TRUE(router.ok()) << router.status().ToString();
    return router.ok() ? std::move(router).value() : nullptr;
  }

  std::string Handle(ReplicaRouter& router, const std::string& line) {
    bool quit = false;
    return router.Handle(line, &quit, kNoDeadline);
  }

  std::shared_ptr<const ServingSnapshot> snapshot_;
  std::vector<ReplicaProcess> fleet_;
};

TEST_F(RouterTest, ForwardsEveryQueryTypeAndAnswersControlLocally) {
  StartFleet(2);
  auto router = MakeRouter(BaseOptions());
  ASSERT_NE(router, nullptr);

  EXPECT_EQ(Handle(*router, "PING"), "OK pong");
  EXPECT_EQ(Handle(*router, "PREDICT gelatin=0.01 terms=katai")
                .rfind("OK topic=", 0),
            0u);
  EXPECT_EQ(Handle(*router, "NEAREST 0").rfind("OK setting=", 0), 0u);
  EXPECT_EQ(Handle(*router, "TOPIC 1").rfind("OK", 0), 0u);
  // SIMILAR forwards too; these replicas have no corpus, so the replica's
  // own ERR passes through byte-for-byte (the router adds no dialect).
  EXPECT_EQ(Handle(*router, "SIMILAR gelatin=0.01")
                .rfind("ERR FailedPrecondition", 0),
            0u);
  // A line the replicas would reject parses locally: same parser, same
  // error, no replica round trip.
  EXPECT_EQ(Handle(*router, "PREDICT unobtainium=0.5").rfind("ERR", 0), 0u);
  EXPECT_EQ(Handle(*router, "FROBNICATE").rfind("ERR", 0), 0u);
  // Single-replica RELOAD is refused with a pointer to the rolling path.
  std::string reload = Handle(*router, "RELOAD /tmp/x.txt");
  EXPECT_EQ(reload.rfind("ERR", 0), 0u);
  EXPECT_NE(reload.find("ROLLING_RELOAD"), std::string::npos);

  bool quit = false;
  EXPECT_EQ(router->Handle("QUIT", &quit, kNoDeadline), "OK bye");
  EXPECT_TRUE(quit);
}

TEST_F(RouterTest, AffinityKeepsARecipeOnOneReplicaAndItsCacheHot) {
  StartFleet(3);
  auto router = MakeRouter(BaseOptions());
  ASSERT_NE(router, nullptr);

  const std::string query = "PREDICT gelatin=0.012,milk=0.25 terms=katai";
  // Same recipe, different text assembly: the canonical routing key must
  // send both to the same replica, in the same candidate order.
  const std::string shuffled = "PREDICT milk=0.25,gelatin=0.012 terms=katai";
  std::vector<int> order = router->CandidatesFor(query);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, router->CandidatesFor(shuffled));

  std::string first = Handle(*router, query);
  ASSERT_EQ(first.rfind("OK topic=", 0), 0u) << first;
  EXPECT_NE(first.find("cached=0"), std::string::npos) << first;
  // The repeat (even re-shuffled) lands on the same replica's LRU.
  std::string second = Handle(*router, shuffled);
  EXPECT_NE(second.find("cached=1"), std::string::npos) << second;

  // Distinct recipes spread: with 3 replicas and enough keys, no replica
  // owns everything.
  std::set<int> primaries;
  for (int i = 1; i <= 30; ++i) {
    primaries.insert(
        router->CandidatesFor("TOPIC " + std::to_string(i)).front());
  }
  EXPECT_GT(primaries.size(), 1u);
}

TEST_F(RouterTest, FailsOverToNextReplicaWhenPrimaryDies) {
  StartFleet(3);
  RouterOptions options = BaseOptions();
  options.breaker.failure_threshold = 1;
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  const std::string query = "NEAREST 0";
  const int primary = router->CandidatesFor(query).front();
  const std::string expected = Handle(*router, query);
  ASSERT_EQ(expected.rfind("OK setting=", 0), 0u);

  // Kill the primary. The next query must fail over and still answer —
  // byte-identically, since NEAREST is deterministic and every replica
  // serves the same snapshot.
  fleet_[primary].server->Stop();
  EXPECT_EQ(Handle(*router, query), expected);
  EXPECT_GE(router->metrics()->TakeSnapshot().CounterValue("router.retries"),
            1u);
  // The dead replica's breaker tripped (threshold 1): it is ejected, so
  // further queries skip it without paying the connect failure.
  EXPECT_EQ(router->GetReplicaViews()[primary].state,
            CircuitBreaker::State::kOpen);
  EXPECT_EQ(Handle(*router, query), expected);
}

TEST_F(RouterTest, BreakerEjectsDeadReplicaAndProbeReadmitsIt) {
  StartFleet(2);
  RouterOptions options = BaseOptions();
  options.breaker.failure_threshold = 1;
  options.breaker.cooldown_millis = 1000;
  options.probe_timeout_millis = 2000;
  // Injected clock: ejection and readmission are stepped, never slept.
  const auto epoch = steady_clock::now();
  std::atomic<int64_t> clock_millis{0};
  options.now_fn = [epoch, &clock_millis] {
    return epoch + milliseconds(clock_millis.load());
  };
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  const int victim = 0;
  const int victim_port = fleet_[victim].port;
  fleet_[victim].server->Stop();

  // First probe pass: the dead replica records a failure and trips.
  router->ProbeAllOnce();
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kOpen);
  obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.breaker.trips"), 1u);
  EXPECT_EQ(snap.CounterValue("router.probe_failures"), 1u);
  EXPECT_EQ(snap.GaugeValue("router.replica.0.healthy"), 0.0);
  EXPECT_EQ(snap.GaugeValue("router.replica.1.healthy"), 1.0);

  // Mid-cooldown probe: still open, no trial burned.
  clock_millis.store(500);
  router->ProbeAllOnce();
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kOpen);

  // Replica restarts on its old port; after the cooldown the next probe is
  // the half-open readmission trial and recloses the breaker.
  StartReplica(&fleet_[victim], victim_port);
  clock_millis.store(1100);
  router->ProbeAllOnce();
  EXPECT_EQ(router->GetReplicaViews()[victim].state,
            CircuitBreaker::State::kClosed);
  snap = router->metrics()->TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("router.breaker.half_open_trials"), 1u);
  EXPECT_EQ(snap.CounterValue("router.breaker.recoveries"), 1u);
  EXPECT_EQ(snap.GaugeValue("router.replica.0.healthy"), 1.0);
  // And the readmitted replica serves again.
  EXPECT_EQ(Handle(*router, "NEAREST 0").rfind("OK setting=", 0), 0u);
}

/// Raw listener that accepts connections and never answers: the classic
/// stuck-but-alive replica a hedge exists for.
class BlackHoleReplica {
 public:
  BlackHoleReplica() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    // Never accept: connects complete out of the backlog, then starve.
  }
  ~BlackHoleReplica() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }
  int port() const { return port_; }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
};

TEST_F(RouterTest, HedgeWinsAgainstStuckReplica) {
  StartFleet(1);
  BlackHoleReplica stuck;
  ASSERT_GT(stuck.port(), 0);

  RouterOptions options;
  options.replicas = {{"127.0.0.1", stuck.port()},
                      {"127.0.0.1", fleet_[0].port}};
  options.probe_interval_millis = 0;
  options.max_tries = 2;
  options.hedge_delay_millis = 20;
  options.replica_io_timeout_millis = 10000;  // Without hedging: 10s stall.
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  // Find a query whose primary is the black hole, so the hedge leg (not
  // plain first-try luck) must produce the answer.
  std::string query;
  for (int i = 0; i < 64 && query.empty(); ++i) {
    std::string candidate = "NEAREST " + std::to_string(i % 2) +
                            (i % 2 == 0 ? "" : " method=euclidean");
    // Vary the key space via TOPIC too.
    if (i >= 2) candidate = "TOPIC " + std::to_string(i % 2);
    if (i >= 4) {
      candidate = "PREDICT gelatin=0.0" + std::to_string(1 + i % 9) +
                  " terms=katai";
    }
    if (router->CandidatesFor(candidate).front() == 0) query = candidate;
  }
  ASSERT_FALSE(query.empty()) << "no key maps to the stuck replica";

  const auto t0 = steady_clock::now();
  std::string reply = Handle(*router, query);
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(steady_clock::now() - t0);
  EXPECT_EQ(reply.rfind("OK", 0), 0u) << reply;
  // The answer came from the hedge leg, long before the stuck replica's
  // I/O budget would have expired.
  EXPECT_LT(elapsed.count(), 5000);
  obs::MetricsSnapshot snap = router->metrics()->TakeSnapshot();
  EXPECT_GE(snap.CounterValue("router.hedges"), 1u);
  EXPECT_GE(snap.CounterValue("router.hedge_wins"), 1u);
}

TEST_F(RouterTest, RollingReloadLosesNoQueriesAndKeepsAnswersByteIdentical) {
  StartFleet(3);
  RouterOptions options = BaseOptions();
  options.rolling_drain_millis = 10000;
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);

  // A reload target on disk: same model content, so post-reload answers
  // must be byte-identical and the fleet fingerprint must converge.
  const char* tmp = std::getenv("TMPDIR");
  const std::string model_file = std::string(tmp != nullptr ? tmp : "/tmp") +
                                 "/router_test_reload_model.txt";
  ASSERT_TRUE(core::SaveModel(model_file, TinyModel()).ok());

  // Deterministic queries pinned before the rollout: NEAREST and TOPIC
  // have no per-admission RNG, so byte-identity across the reload proves
  // the swapped-in snapshot is the same model (PREDICT responses are
  // sequence-dependent by design and are checked for success only).
  const std::vector<std::string> pinned = {
      "NEAREST 0", "NEAREST 1 method=mahalanobis", "TOPIC 0", "TOPIC 1"};
  std::vector<std::string> before;
  for (const std::string& query : pinned) {
    before.push_back(Handle(*router, query));
    ASSERT_EQ(before.back().rfind("OK", 0), 0u) << before.back();
  }

  // Live traffic throughout the rollout; every response must be OK — a
  // drained replica hands its keys to the rest of the ring, it never
  // drops them.
  std::atomic<bool> stop{false};
  std::atomic<int> sent{0}, failed{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t) {
    load.emplace_back([&, t] {
      int i = 0;
      while (!stop.load()) {
        std::string query;
        switch ((t + i) % 3) {
          case 0:
            query = "NEAREST " + std::to_string(i % 2);
            break;
          case 1:
            query = "TOPIC " + std::to_string(i % 2);
            break;
          default:
            query = "PREDICT gelatin=0.0" + std::to_string(1 + i % 9) +
                    " terms=katai";
        }
        std::string reply = Handle(*router, query);
        ++sent;
        if (reply.rfind("OK", 0) != 0) {
          ++failed;
          ADD_FAILURE() << "query failed during rolling reload: " << query
                        << " -> " << reply;
        }
        ++i;
      }
    });
  }

  std::string summary = Handle(*router, "ROLLING_RELOAD " + model_file);
  // Let traffic continue a moment on the fully-rolled fleet.
  std::this_thread::sleep_for(milliseconds(50));
  stop.store(true);
  for (auto& thread : load) thread.join();

  ASSERT_EQ(summary.rfind("OK rolled replicas=3 fingerprint=", 0), 0u)
      << summary;
  EXPECT_GT(sent.load(), 0);
  EXPECT_EQ(failed.load(), 0);

  // Byte-identical deterministic answers after the swap.
  for (size_t i = 0; i < pinned.size(); ++i) {
    EXPECT_EQ(Handle(*router, pinned[i]), before[i]) << pinned[i];
  }
  // The fleet converged on one fingerprint, visible in METRICSZ and in
  // the per-replica views.
  std::string metricsz = Handle(*router, "METRICSZ");
  auto parsed = JsonValue::Parse(metricsz);
  ASSERT_TRUE(parsed.ok()) << metricsz;
  const JsonValue* fleet_obj = parsed.value().Find("fleet");
  ASSERT_NE(fleet_obj, nullptr);
  const JsonValue* fingerprints = fleet_obj->Find("fingerprints");
  ASSERT_NE(fingerprints, nullptr);
  ASSERT_EQ(fingerprints->AsArray().size(), 3u);
  const std::string fp0 = fingerprints->AsArray()[0].AsString();
  EXPECT_NE(fp0, "00000000");
  for (const JsonValue& fp : fingerprints->AsArray()) {
    EXPECT_EQ(fp.AsString(), fp0);
  }
  std::vector<ReplicaRouter::ReplicaView> views = router->GetReplicaViews();
  for (const ReplicaRouter::ReplicaView& view : views) {
    EXPECT_FALSE(view.draining);
    EXPECT_EQ(view.inflight, 0u);
    EXPECT_EQ(view.fingerprint, views[0].fingerprint);
  }
  EXPECT_EQ(router->metrics()->TakeSnapshot().CounterValue(
                "router.rolling_reload_failures"),
            0u);
}

TEST_F(RouterTest, FrontServerSpeaksTheWireProtocolEndToEnd) {
  StartFleet(2);
  RouterOptions options = BaseOptions();
  auto router = MakeRouter(options);
  ASSERT_NE(router, nullptr);
  ASSERT_TRUE(router->Start().ok());

  ServerOptions front_options;
  LineProtocolServer front(router.get(), router->metrics(), front_options);
  ASSERT_TRUE(front.Start().ok());
  ASSERT_GT(front.port(), 0);

  auto client = LineClient::Connect("127.0.0.1", front.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto ping = (*client)->RoundTrip("PING");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*ping, "OK pong");
  auto predict = (*client)->RoundTrip("PREDICT gelatin=0.01 terms=katai");
  ASSERT_TRUE(predict.ok());
  EXPECT_EQ(predict->rfind("OK topic=", 0), 0u) << *predict;

  // STATSZ is multi-line with the router's own sections.
  ASSERT_TRUE((*client)->SendLine("STATSZ").ok());
  auto statsz = (*client)->ReadUntilDot();
  ASSERT_TRUE(statsz.ok());
  EXPECT_NE(statsz->find("texrheo_router statsz"), std::string::npos);
  EXPECT_NE(statsz->find("router: requests="), std::string::npos);
  EXPECT_NE(statsz->find("replica 0:"), std::string::npos);

  // METRICSZ: one JSON line carrying both the serve.server.* front-socket
  // counters (registered into the router's registry) and the fleet object.
  auto metricsz = (*client)->RoundTrip("METRICSZ");
  ASSERT_TRUE(metricsz.ok());
  auto parsed = JsonValue::Parse(*metricsz);
  ASSERT_TRUE(parsed.ok()) << *metricsz;
  const JsonValue* counters = parsed.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("serve.server.requests_received"), nullptr);
  EXPECT_NE(counters->Find("router.requests"), nullptr);
  const JsonValue* fleet_obj = parsed.value().Find("fleet");
  ASSERT_NE(fleet_obj, nullptr);
  EXPECT_EQ(fleet_obj->Find("replicas")->AsNumber(), 2.0);

  auto bye = (*client)->RoundTrip("QUIT");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(*bye, "OK bye");
  front.Stop();
  router->Stop();
}

}  // namespace
}  // namespace texrheo::serve
