#include "util/json.h"

#include <gtest/gtest.h>

#include "recipe/recipe.h"
#include "util/rng.h"

namespace texrheo {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1.5e2")->AsNumber(), -150.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  auto v = JsonValue::Parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.ok());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_TRUE(v->Find("c")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = JsonValue::Parse(R"("line\nbreak \"quoted\" tab\t ué")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "line\nbreak \"quoted\" tab\t u\xC3\xA9");
}

TEST(JsonParseTest, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"unterminated",
        "[1,]", "{,}", "nul", "\"bad \\q escape\""}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << bad;
  }
}

TEST(JsonParseTest, RejectsAbsurdNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonSerializeTest, RoundTripsStructures) {
  const char* doc =
      R"({"arr":[1,2.5,"x"],"flag":true,"nested":{"k":null},"text":"a\"b"})";
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  auto reparsed = JsonValue::Parse(parsed->Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed->Serialize(), reparsed->Serialize());
}

TEST(JsonSerializeTest, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(JsonValue::Number(42).Serialize(), "42");
  EXPECT_EQ(JsonValue::Number(-3).Serialize(), "-3");
  EXPECT_EQ(JsonValue::Number(2.5).Serialize(), "2.5");
}

TEST(JsonSerializeTest, EscapesControlCharacters) {
  std::string out = JsonValue::String("a\x01").Serialize();
  EXPECT_EQ(out, "\"a\\u0001\"");
}

TEST(JsonFuzzTest, ParserNeverCrashesOnByteSoup) {
  Rng rng(77);
  static constexpr char kAlphabet[] = "{}[]\",:.0123456789 truefalsn\\eE-+";
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    size_t len = rng.NextUint(64);
    for (size_t j = 0; j < len; ++j) {
      input.push_back(kAlphabet[rng.NextUint(sizeof(kAlphabet) - 1)]);
    }
    auto v = JsonValue::Parse(input);
    if (v.ok()) {
      // A successful parse must re-serialize and re-parse stably.
      auto again = JsonValue::Parse(v->Serialize());
      EXPECT_TRUE(again.ok()) << input;
    }
  }
}

// --- Recipe JSONL integration --------------------------------------------

recipe::Recipe SampleRecipe() {
  recipe::Recipe r;
  r.id = 7;
  r.title = "purupuru \"special\" jelly";
  r.description = "texture is purupuru\nand katai";
  r.ingredients = {{"gelatin", "5 g"}, {"water", "1 cup"}};
  r.metadata = {{"template", "standard-jelly"}};
  return r;
}

TEST(RecipeJsonTest, RoundTrip) {
  recipe::Recipe original = SampleRecipe();
  auto parsed = recipe::RecipeFromJson(recipe::RecipeToJson(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, original.id);
  EXPECT_EQ(parsed->title, original.title);
  EXPECT_EQ(parsed->description, original.description);
  ASSERT_EQ(parsed->ingredients.size(), 2u);
  EXPECT_EQ(parsed->ingredients[1].quantity, "1 cup");
  EXPECT_EQ(parsed->metadata, original.metadata);
}

TEST(RecipeJsonTest, RejectsMalformedRecipes) {
  EXPECT_FALSE(recipe::RecipeFromJson("[1,2]").ok());
  EXPECT_FALSE(recipe::RecipeFromJson(R"({"ingredients": 5})").ok());
  EXPECT_FALSE(
      recipe::RecipeFromJson(R"({"ingredients": [{"name": "x"}]})").ok());
  EXPECT_FALSE(recipe::RecipeFromJson(R"({"metadata": {"k": 1}})").ok());
}

TEST(RecipeJsonTest, CorpusJsonlRoundTrip) {
  std::string path = testing::TempDir() + "/texrheo_jsonl_test.jsonl";
  std::vector<recipe::Recipe> corpus = {SampleRecipe(), SampleRecipe()};
  corpus[1].id = 8;
  ASSERT_TRUE(recipe::SaveCorpusJsonl(path, corpus).ok());
  auto loaded = recipe::LoadCorpusJsonl(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].id, 8);
  EXPECT_EQ((*loaded)[0].title, corpus[0].title);
  std::remove(path.c_str());
}

TEST(RecipeJsonTest, JsonlAndTsvAgree) {
  // Both corpus formats reconstruct identical recipes.
  std::vector<recipe::Recipe> corpus = {SampleRecipe()};
  std::string tsv_path = testing::TempDir() + "/texrheo_fmt_a.tsv";
  std::string jsonl_path = testing::TempDir() + "/texrheo_fmt_b.jsonl";
  ASSERT_TRUE(recipe::SaveCorpus(tsv_path, corpus).ok());
  ASSERT_TRUE(recipe::SaveCorpusJsonl(jsonl_path, corpus).ok());
  auto tsv = recipe::LoadCorpus(tsv_path);
  auto jsonl = recipe::LoadCorpusJsonl(jsonl_path);
  ASSERT_TRUE(tsv.ok() && jsonl.ok());
  EXPECT_EQ((*tsv)[0].description, (*jsonl)[0].description);
  EXPECT_EQ((*tsv)[0].metadata, (*jsonl)[0].metadata);
  std::remove(tsv_path.c_str());
  std::remove(jsonl_path.c_str());
}

}  // namespace
}  // namespace texrheo
