// Cross-cutting numerical property tests: invariances a downstream user
// implicitly relies on (discretization-independence of the rheometer,
// scale-invariance of concentrations, determinism across equivalent
// configurations).

#include <gtest/gtest.h>

#include <cmath>

#include "recipe/features.h"
#include "rheology/rheometer.h"
#include "text/word2vec.h"
#include "util/rng.h"

namespace texrheo {
namespace {

// --- Rheometer: extracted attributes are physics, not discretization -----

class ProbeInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(ProbeInvarianceTest, AttributesStableUnderTimeStepRefinement) {
  const auto& row =
      rheology::TableI()[static_cast<size_t>(GetParam())];
  const auto& model = rheology::GelPhysicsModel::Calibrated();
  rheology::RheometerConfig coarse;
  rheology::RheometerConfig fine = coarse;
  fine.dt_s = coarse.dt_s / 4.0;
  auto a = rheology::SimulateDish(model, row.gel, row.emulsion, coarse);
  auto b = rheology::SimulateDish(model, row.gel, row.emulsion, fine);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->attributes.hardness, b->attributes.hardness,
              0.03 * a->attributes.hardness + 1e-6);
  EXPECT_NEAR(a->attributes.cohesiveness, b->attributes.cohesiveness, 0.05);
  EXPECT_NEAR(a->attributes.adhesiveness, b->attributes.adhesiveness,
              0.05 * a->attributes.adhesiveness + 1e-6);
}

TEST_P(ProbeInvarianceTest, HardnessIndependentOfProbeSpeed) {
  // Hardness is the peak force of a quasi-static compression: halving the
  // probe speed must not change it (areas scale with time, so the
  // cohesiveness *ratio* is also invariant).
  const auto& row =
      rheology::TableI()[static_cast<size_t>(GetParam())];
  const auto& model = rheology::GelPhysicsModel::Calibrated();
  rheology::RheometerConfig fast;
  rheology::RheometerConfig slow = fast;
  slow.probe_speed_mm_s = fast.probe_speed_mm_s / 2.0;
  rheology::TpaAttributes target = model.Predict(row.gel, row.emulsion);
  rheology::MechanicalSample sample =
      rheology::SampleFromAttributes(target, fast);
  rheology::Rheometer fast_probe(fast), slow_probe(slow);
  auto a = fast_probe.Measure(sample);
  auto b = slow_probe.Measure(sample);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->attributes.hardness, b->attributes.hardness,
              0.02 * a->attributes.hardness + 1e-9);
  EXPECT_NEAR(a->attributes.cohesiveness, b->attributes.cohesiveness, 0.03);
}

INSTANTIATE_TEST_SUITE_P(TableIRows, ProbeInvarianceTest,
                         ::testing::Values(0, 3, 6, 9, 12));

// --- Concentrations: invariant under uniform recipe scaling --------------

TEST(ConcentrationInvarianceTest, DoublingEveryQuantityChangesNothing) {
  recipe::Recipe base;
  base.ingredients = {{"gelatin", "10 g"},
                      {"milk", "200 g"},
                      {"sugar", "15 g"},
                      {"water", "275 g"}};
  recipe::Recipe doubled;
  doubled.ingredients = {{"gelatin", "20 g"},
                         {"milk", "400 g"},
                         {"sugar", "30 g"},
                         {"water", "550 g"}};
  const auto& db = recipe::IngredientDatabase::Embedded();
  auto a = recipe::ComputeConcentrations(base, db);
  auto b = recipe::ComputeConcentrations(doubled, db);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->gel.size(); ++i) {
    EXPECT_NEAR(a->gel[i], b->gel[i], 1e-12);
  }
  for (size_t i = 0; i < a->emulsion.size(); ++i) {
    EXPECT_NEAR(a->emulsion[i], b->emulsion[i], 1e-12);
  }
}

TEST(ConcentrationInvarianceTest, UnitChoiceDoesNotMatter) {
  // The same physical composition expressed in different units produces
  // identical concentrations.
  recipe::Recipe grams;
  grams.ingredients = {{"gelatin", "6.8 g"}, {"water", "400 g"}};
  recipe::Recipe spoons_and_cups;
  spoons_and_cups.ingredients = {{"gelatin", "2 tsp"},  // 2*5*0.68 = 6.8 g.
                                 {"water", "2 cups"}};  // 400 g.
  const auto& db = recipe::IngredientDatabase::Embedded();
  auto a = recipe::ComputeConcentrations(grams, db);
  auto b = recipe::ComputeConcentrations(spoons_and_cups, db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->gel[0], b->gel[0], 1e-12);
  EXPECT_NEAR(a->total_grams, b->total_grams, 1e-9);
}

// --- Gel physics: dominance orderings hold across the whole range --------

class GelOrderingTest : public ::testing::TestWithParam<double> {};

TEST_P(GelOrderingTest, EmulsionHardeningIsMonotoneInFraction) {
  double c = GetParam();
  const auto& model = rheology::GelPhysicsModel::Calibrated();
  math::Vector gel(recipe::kNumGelTypes);
  gel[0] = c;
  double prev = -1.0;
  for (double cream = 0.0; cream <= 0.4; cream += 0.1) {
    math::Vector emulsion(recipe::kNumEmulsionTypes);
    emulsion[static_cast<size_t>(recipe::EmulsionType::kRawCream)] = cream;
    double h = model.Predict(gel, emulsion).hardness;
    EXPECT_GE(h, prev) << "gelatin " << c << ", cream " << cream;
    prev = h;
  }
}

INSTANTIATE_TEST_SUITE_P(Concentrations, GelOrderingTest,
                         ::testing::Values(0.01, 0.02, 0.03));

// --- Word2vec: subsampling drops frequent words but preserves clusters ---

TEST(Word2VecPropertyTest, SubsamplingStillSeparatesClusters) {
  Rng rng(9);
  std::vector<std::vector<std::string>> corpus;
  std::vector<std::string> cluster_a = {"gelatin", "purupuru", "jelly"};
  std::vector<std::string> cluster_b = {"nuts", "sakusaku", "toast"};
  for (int i = 0; i < 200; ++i) {
    for (auto* cluster : {&cluster_a, &cluster_b}) {
      std::vector<std::string> sentence;
      for (int w = 0; w < 8; ++w) {
        // "the" is an extremely frequent stopword-like token.
        sentence.push_back(w % 2 == 0 ? "the"
                                      : (*cluster)[rng.NextUint(3)]);
      }
      corpus.push_back(std::move(sentence));
    }
  }
  text::Word2VecConfig config;
  config.dim = 16;
  config.epochs = 6;
  config.min_count = 1;
  config.subsample = 1e-2;  // Aggressive: "the" is mostly dropped.
  config.seed = 4;
  auto model = text::Word2Vec::Train(corpus, config);
  ASSERT_TRUE(model.ok());
  double within = model->Similarity("purupuru", "jelly").value();
  double across = model->Similarity("purupuru", "nuts").value();
  EXPECT_GT(within, across);
}

}  // namespace
}  // namespace texrheo
