// Streaming ingestion: WAL framing/rotation/compaction, record codec +
// wire round trip, content-keyed dedup, crash recovery re-folding every
// acknowledged record exactly once, delta visibility in SIMILAR, the
// stale-vocab contract, and the full refresh cycle (cold start, checkpoint
// warm start, graceful failure, retry). The chaos companion
// (ingest_chaos_test.cc) kills each phase mid-flight.

#include "ingest/service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/joint_topic_model.h"
#include "fault_injection.h"
#include "ingest/record.h"
#include "ingest/wal.h"
#include "math/distributions.h"
#include "recipe/dataset.h"
#include "recipe/ingredient.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace texrheo::ingest {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/texrheo_ingest_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --------------------------------------------------------------------------
// WAL.

TEST(WalTest, AppendReplayRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  auto wal = WriteAheadLog::Open({dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto seq = (*wal)->Append("payload-" + std::to_string(i));
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, static_cast<uint64_t>(i + 1));
  }
  auto replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(replay->records[i].sequence, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(replay->records[i].payload, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(replay->next_sequence, 6u);
  EXPECT_FALSE(replay->torn_tail);
}

TEST(WalTest, ReopenResumesSequenceChain) {
  std::string dir = FreshDir("wal_reopen");
  {
    auto wal = WriteAheadLog::Open({dir});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("a").ok());
    ASSERT_TRUE((*wal)->Append("b").ok());
  }
  auto wal = WriteAheadLog::Open({dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->next_sequence(), 3u);
  auto seq = (*wal)->Append("c");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
  auto replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 3u);
}

TEST(WalTest, RotationAndCompaction) {
  std::string dir = FreshDir("wal_rotate");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 1;  // Every append lands in its own segment.
  auto wal = WriteAheadLog::Open(options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*wal)->Append("r" + std::to_string(i)).ok());
  }
  EXPECT_GE((*wal)->SegmentFiles().size(), 3u);

  // Compaction removes sealed segments fully covered by the high-water
  // mark, never the open one; the survivors still replay densely.
  auto removed = (*wal)->Compact(2);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_GE(*removed, 1);
  auto replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_FALSE(replay->records.empty());
  EXPECT_EQ(replay->records.back().sequence, 4u);
  EXPECT_EQ(replay->next_sequence, 5u);
  for (const WalRecord& record : replay->records) {
    EXPECT_GT(record.sequence, 2u);  // Covered records are gone.
  }
}

TEST(WalTest, TornTailIsDroppedAndRepairedOnOpen) {
  std::string dir = FreshDir("wal_torn");
  {
    auto wal = WriteAheadLog::Open({dir});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("alpha").ok());
    ASSERT_TRUE((*wal)->Append("beta").ok());
  }
  // A crashed append leaves half a frame behind.
  {
    std::ofstream out(dir + "/" + WalSegmentFileName(1),
                      std::ios::binary | std::ios::app);
    out << "TRWL-half-a-frame";
  }
  auto replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), 2u);
  EXPECT_TRUE(replay->torn_tail);

  // Open rewrites the intact prefix; appends continue on a clean boundary.
  auto wal = WriteAheadLog::Open({dir});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  auto seq = (*wal)->Append("gamma");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
  replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 3u);
  EXPECT_FALSE(replay->torn_tail);
}

TEST(WalTest, GapInAcknowledgedSequencesIsAnError) {
  std::string dir = FreshDir("wal_gap");
  WalOptions options;
  options.dir = dir;
  options.segment_bytes = 1;
  {
    auto wal = WriteAheadLog::Open(options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)->Append("r" + std::to_string(i)).ok());
    }
  }
  // Losing a *middle* segment means an acknowledged record vanished:
  // that is data loss, not a tolerable torn tail.
  fs::remove(dir + "/" + WalSegmentFileName(2));
  auto replay = ReplayWal(dir);
  EXPECT_EQ(replay.status().code(), StatusCode::kIOError)
      << replay.status().ToString();
}

TEST(WalTest, FailedAppendDoesNotConsumeItsSequence) {
  std::string dir = FreshDir("wal_fail_append");
  FaultInjectingFileOps ops;
  auto wal = WriteAheadLog::Open({dir}, ops);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("good-1").ok());

  ops.fail_write_after = ops.write_calls;  // Kill the next frame write.
  EXPECT_FALSE((*wal)->Append("lost").ok());
  ops.fail_write_after = -1;

  // The failed append's sequence is reissued to the next success, so the
  // acknowledged stream stays dense.
  auto seq = (*wal)->Append("good-2");
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(*seq, 2u);
  auto replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].payload, "good-2");
}

TEST(WalTest, FailedSyncPoisonsSegmentButLogRecovers) {
  std::string dir = FreshDir("wal_fail_sync");
  FaultInjectingFileOps ops;
  auto wal = WriteAheadLog::Open({dir}, ops);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("good-1").ok());

  ops.fail_sync = true;
  EXPECT_FALSE((*wal)->Append("unsynced").ok());
  ops.fail_sync = false;

  ASSERT_TRUE((*wal)->Append("good-2").ok());
  // Reopen from disk: only the acknowledged records, densely numbered.
  wal->reset();
  auto reopened = WriteAheadLog::Open({dir});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto replay = ReplayWal(dir);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].payload, "good-1");
  EXPECT_EQ(replay->records[1].payload, "good-2");
  EXPECT_EQ(replay->records[1].sequence, 2u);
}

// --------------------------------------------------------------------------
// Record codec + wire round trip.

IngestRecord SampleRecord() {
  IngestRecord record;
  record.gel = math::Vector(recipe::kNumGelTypes);
  record.gel[0] = 0.0123456789012345;
  record.emulsion = math::Vector(recipe::kNumEmulsionTypes);
  record.emulsion[4] = 1.0 / 3.0;
  record.terms = {"purupuru", "katai"};
  return record;
}

TEST(RecordTest, EncodeDecodeRoundTripIsExact) {
  IngestRecord record = SampleRecord();
  CanonicalizeRecord(record);
  auto decoded = DecodeRecord(EncodeRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeRecord(*decoded), EncodeRecord(record));
  for (size_t i = 0; i < record.gel.size(); ++i) {
    EXPECT_EQ(decoded->gel[i], record.gel[i]);  // %.17g: bit-exact.
  }
  EXPECT_EQ(decoded->terms, std::vector<std::string>({"katai", "purupuru"}));
}

TEST(RecordTest, ContentKeyIsTermOrderIndependent) {
  IngestRecord a = SampleRecord();
  IngestRecord b = SampleRecord();
  b.terms = {"katai", "purupuru", "katai"};  // Permuted + duplicated.
  CanonicalizeRecord(a);
  CanonicalizeRecord(b);
  EXPECT_EQ(EncodeRecord(a), EncodeRecord(b));
}

TEST(RecordTest, DecodeRejectsMalformedRecords) {
  EXPECT_FALSE(DecodeRecord("").ok());
  EXPECT_FALSE(DecodeRecord("g=1,0,0 e=0,0,0,0,0,0").ok());  // 2 fields.
  EXPECT_FALSE(DecodeRecord("g=0,0 e=0,0,0,0,0,0 t=").ok());  // Bad gel dim.
  EXPECT_FALSE(DecodeRecord("g=0,0,2 e=0,0,0,0,0,0 t=").ok());  // Ratio > 1.
  EXPECT_FALSE(DecodeRecord("g=0,0,x e=0,0,0,0,0,0 t=a").ok());
  EXPECT_TRUE(DecodeRecord("g=0.01,0,0 e=0,0,0,0,0,0 t=").ok());  // No terms.
}

TEST(RecordTest, WireCommandReproducesTheContentKey) {
  IngestRecord record = SampleRecord();
  CanonicalizeRecord(record);
  std::string command = IngestCommandFor(record);
  std::vector<std::string> tokens = serve::SplitProtocolTokens(command);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "INGEST");
  auto query = serve::ParseQueryCommand(tokens, nullptr);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(EncodeRecord(RecordFromQuery(*query)), EncodeRecord(record));
}

TEST(RecordTest, EmptyQueryNormalizesToFullDimensionKey) {
  serve::TextureQuery query;  // Both concentration vectors empty.
  query.texture_terms = {"katai"};
  IngestRecord record = RecordFromQuery(query);
  auto decoded = DecodeRecord(EncodeRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->gel.size(), static_cast<size_t>(recipe::kNumGelTypes));
}

// --------------------------------------------------------------------------
// Service fixtures: a hand-built 2-topic snapshot over a small trainable
// base corpus (gel features near 2 vs 6), vocab {katai, purupuru,
// fuwafuwa}.

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot BaseModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.vocab.Add("fuwafuwa");
  model.estimates.phi = {{0.8, 0.1, 0.1}, {0.1, 0.45, 0.45}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {4, 4};
  return model;
}

recipe::Dataset BaseCorpus() {
  recipe::Dataset ds;
  ds.term_vocab.Add("katai");
  ds.term_vocab.Add("purupuru");
  ds.term_vocab.Add("fuwafuwa");
  for (int i = 0; i < 8; ++i) {
    recipe::Document doc;
    doc.recipe_index = static_cast<size_t>(i);
    doc.term_ids = i < 4 ? std::vector<int32_t>{0, 0}
                         : std::vector<int32_t>{1, 2};
    doc.gel_feature = math::Vector(3, i < 4 ? 2.0 : 6.0);
    doc.gel_concentration = math::Vector(3, 0.01);
    doc.emulsion_feature = math::Vector(6, 1.0 + 0.2 * (i % 4));
    doc.emulsion_concentration = math::Vector(6, 0.1 + 0.05 * (i % 4));
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

core::JointTopicModelConfig RefreshTrain(uint64_t seed = 77) {
  core::JointTopicModelConfig config;
  config.num_topics = 2;
  config.alpha = 0.5;
  config.gamma = 0.5;
  config.burn_in_sweeps = 4;
  config.sweeps = 10;
  config.seed = seed;
  return config;
}

struct Stack {
  recipe::Dataset corpus;
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<IngestService> service;
};

Stack MakeStack(const std::string& dir, FileOps& ops = FileOps::Real(),
                std::string checkpoint_dir = "", uint64_t seed = 77) {
  Stack stack;
  stack.corpus = BaseCorpus();
  serve::QueryEngineConfig engine_config;
  engine_config.fold_in_sweeps = 10;
  engine_config.batch_linger_micros = 0;
  auto snapshot = serve::ServingSnapshot::FromModel(BaseModel(), "base");
  EXPECT_TRUE(snapshot.ok());
  auto engine =
      serve::QueryEngine::Create(engine_config, *snapshot, &stack.corpus);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  stack.engine = std::move(engine).value();

  IngestServiceConfig config;
  config.wal_dir = dir + "/wal";
  config.refresh.train = RefreshTrain(seed);
  config.refresh.train.checkpoint_dir = std::move(checkpoint_dir);
  config.refresh.refresh_sweeps = 4;
  config.refresh.model_dir = dir + "/models";
  auto service = IngestService::Create(config, stack.engine.get(),
                                       &stack.corpus, ops);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  stack.service = std::move(service).value();
  return stack;
}

IngestRecord HardRecord(double gelatin = 0.01,
                        std::vector<std::string> terms = {"katai"}) {
  IngestRecord record;
  record.gel = math::Vector(3);
  record.gel[0] = gelatin;
  record.emulsion = math::Vector(6, 0.1);
  record.terms = std::move(terms);
  return record;
}

TEST(IngestServiceTest, IngestAcknowledgesFoldsAndDedups) {
  std::string dir = FreshDir("svc_basic");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());

  auto first = stack.service->Ingest(HardRecord());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->sequence, 1u);
  EXPECT_FALSE(first->deduped);
  EXPECT_GE(first->topic, 0);

  // Redelivery (permuted terms, same content) re-acknowledges sequence 1
  // without a second WAL append or fold.
  auto again = stack.service->Ingest(HardRecord(0.01, {"katai", "katai"}));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->deduped);
  EXPECT_EQ(again->sequence, 1u);
  EXPECT_EQ(again->topic, -1);

  serve::DeltaStats delta = stack.engine->GetDeltaStats();
  EXPECT_EQ(delta.delta_docs, 1u);
  obs::MetricsSnapshot snap = stack.engine->TakeMetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("ingest.records.accepted"), 2u);
  EXPECT_EQ(snap.CounterValue("ingest.records.deduped"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest.records.folded"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest.wal.appends"), 1u);
}

TEST(IngestServiceTest, FoldedRecipesJoinSimilarRankings) {
  std::string dir = FreshDir("svc_similar");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  IngestRecord record = HardRecord(0.015, {"katai", "purupuru"});
  auto result = stack.service->Ingest(record);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->topic, 0);

  // A SIMILAR query landing in the same topic must rank the streamed
  // recipe among the corpus documents (delta indices start past the
  // corpus).
  auto similar = stack.engine->SimilarRecipes(RecordToQuery(record), 20);
  ASSERT_TRUE(similar.ok()) << similar.status().ToString();
  EXPECT_EQ(similar->topic, result->topic);
  bool saw_delta = false;
  for (const serve::SimilarRecipe& hit : similar->recipes) {
    saw_delta |= hit.recipe_index >= stack.corpus.documents.size();
  }
  EXPECT_TRUE(saw_delta);
}

TEST(IngestServiceTest, StaleVocabQueriesFailCleanUntilRefresh) {
  std::string dir = FreshDir("svc_stale");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  ASSERT_TRUE(
      stack.service->Ingest(HardRecord(0.012, {"mochimochi-n"})).ok());

  serve::TextureQuery query;
  query.texture_terms = {"mochimochi-n"};
  auto prediction = stack.engine->PredictTexture(query);
  EXPECT_EQ(prediction.status().code(), StatusCode::kFailedPrecondition)
      << prediction.status().ToString();
  auto similar = stack.engine->SimilarRecipes(query);
  EXPECT_EQ(similar.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_GE(stack.engine->GetDeltaStats().stale_vocab_queries, 2u);

  // Unknown terms that are NOT pending in the pipeline keep the old
  // noisy-text contract: dropped and counted, not an error.
  serve::TextureQuery noisy;
  noisy.gel_concentration = math::Vector(3, 0.01);
  noisy.texture_terms = {"zzz-never-seen"};
  EXPECT_TRUE(stack.engine->PredictTexture(noisy).ok());

  auto refreshed = stack.service->Refresh();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  auto after = stack.engine->PredictTexture(query);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(stack.engine->GetDeltaStats().pending_terms, 0u);
}

TEST(IngestServiceTest, RecoverRefoldsEveryAcknowledgedRecordExactlyOnce) {
  std::string dir = FreshDir("svc_recover");
  std::vector<std::string> keys;
  {
    Stack stack = MakeStack(dir);
    ASSERT_TRUE(stack.service->Recover().ok());
    for (int i = 0; i < 3; ++i) {
      IngestRecord record = HardRecord(0.01 + 0.002 * i);
      CanonicalizeRecord(record);
      keys.push_back(EncodeRecord(record));
      ASSERT_TRUE(stack.service->Ingest(record).ok());
    }
  }  // "Crash": everything in memory is lost; the WAL survives.

  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  EXPECT_EQ(stack.service->live_records(), 3u);
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, 3u);
  obs::MetricsSnapshot snap = stack.engine->TakeMetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("ingest.records.recovered"), 3u);

  // Redelivery after recovery still dedups to the original sequences.
  for (size_t i = 0; i < keys.size(); ++i) {
    auto decoded = DecodeRecord(keys[i]);
    ASSERT_TRUE(decoded.ok());
    auto result = stack.service->Ingest(*decoded);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->deduped);
    EXPECT_EQ(result->sequence, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, 3u);  // No double fold.
}

TEST(IngestServiceTest, RefreshCycleRetrainsCompactsAndStaysVisible) {
  std::string dir = FreshDir("svc_refresh");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(stack.service
                    ->Ingest(HardRecord(0.01 + 0.003 * i,
                                        {"katai", "new-term"}))
                    .ok());
  }
  const uint32_t before = stack.engine->snapshot()->fingerprint();

  auto outcome = stack.service->Refresh();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->covered_sequence, 4u);
  EXPECT_EQ(outcome->trained_documents,
            stack.corpus.documents.size() + 4);
  EXPECT_EQ(outcome->vocab_size, 4u);  // 3 base terms + "new-term".
  EXPECT_NE(stack.engine->snapshot()->fingerprint(), before);
  EXPECT_EQ(stack.engine->snapshot()->fingerprint(), outcome->fingerprint);

  // Covered records moved from live to absorbed; the WAL compacted; the
  // delta was rebuilt against the new snapshot so SIMILAR still sees them.
  EXPECT_EQ(stack.service->live_records(), 0u);
  EXPECT_EQ(stack.service->absorbed_records(), 4u);
  EXPECT_EQ(stack.service->absorbed_sequence(), 4u);
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, 4u);

  // A post-refresh crash must restore the same world from the delta
  // corpus + compacted WAL.
  Stack recovered = MakeStack(dir);
  ASSERT_TRUE(recovered.service->Recover().ok());
  EXPECT_EQ(recovered.service->absorbed_records(), 4u);
  EXPECT_EQ(recovered.service->live_records(), 0u);
  EXPECT_EQ(recovered.engine->GetDeltaStats().delta_docs, 4u);
  auto redelivered = recovered.service->Ingest(HardRecord(0.01,
                                                          {"katai",
                                                           "new-term"}));
  ASSERT_TRUE(redelivered.ok());
  EXPECT_TRUE(redelivered->deduped);
}

TEST(IngestServiceTest, RefreshWarmStartsFromCheckpoint) {
  std::string dir = FreshDir("svc_warm");
  std::string checkpoint_dir = dir + "/checkpoints";
  fs::create_directories(checkpoint_dir);
  recipe::Dataset base = BaseCorpus();
  // The batch run leaves its Gibbs state behind.
  core::JointTopicModelConfig train = RefreshTrain();
  train.checkpoint_dir = checkpoint_dir;
  auto model = core::JointTopicModel::Create(train, &base);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(6).ok());
  ASSERT_TRUE(model->WriteCheckpointNow().ok());

  Stack stack = MakeStack(dir, FileOps::Real(), checkpoint_dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  ASSERT_TRUE(stack.service->Ingest(HardRecord()).ok());
  auto outcome = stack.service->Refresh();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->trained_documents, base.documents.size() + 1);

  // The warm start is real: a refresh configured with different
  // hyperparameters (here, a different seed) than the checkpointed run
  // must refuse rather than silently train a divergent model — and the
  // refusal is a graceful degradation, not an outage.
  Stack mismatched = MakeStack(FreshDir("svc_warm_bad"), FileOps::Real(),
                               checkpoint_dir, /*seed=*/123);
  ASSERT_TRUE(mismatched.service->Recover().ok());
  ASSERT_TRUE(mismatched.service->Ingest(HardRecord()).ok());
  auto refused = mismatched.service->Refresh();
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition)
      << refused.status().ToString();
  EXPECT_EQ(mismatched.service->live_records(), 1u);
  EXPECT_TRUE(mismatched.service->Ingest(HardRecord(0.02)).ok());
}

TEST(IngestServiceTest, RefreshFailureDegradesGracefully) {
  std::string dir = FreshDir("svc_fail");
  // Reload callback that fails: the publish step of the cycle dies, as if
  // the fleet rejected the new pack.
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  ASSERT_TRUE(stack.service->Ingest(HardRecord()).ok());
  const uint32_t before = stack.engine->snapshot()->fingerprint();

  int reload_calls = 0;
  stack.service->SetReloadCallback([&](const std::string&) {
    ++reload_calls;
    return Status::Unavailable("injected: fleet unreachable");
  });
  auto outcome = stack.service->Refresh();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(reload_calls, 1);

  // Degraded, not broken: the old snapshot keeps serving, the WAL keeps
  // accepting, nothing was absorbed or compacted.
  EXPECT_EQ(stack.engine->snapshot()->fingerprint(), before);
  EXPECT_EQ(stack.service->live_records(), 1u);
  EXPECT_EQ(stack.service->absorbed_records(), 0u);
  auto more = stack.service->Ingest(HardRecord(0.02));
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more->deduped);

  obs::MetricsSnapshot snap = stack.engine->TakeMetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("ingest.refresh.attempts"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest.refresh.failures"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest.refresh.success"), 0u);
}

TEST(IngestServiceTest, RefreshWithRetryRecoversFromTransientFailure) {
  std::string dir = FreshDir("svc_retry");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  ASSERT_TRUE(stack.service->Ingest(HardRecord()).ok());

  int reload_calls = 0;
  auto real_reload = [&](const std::string& path) {
    return stack.engine->ReloadFromFile(path);
  };
  stack.service->SetReloadCallback([&](const std::string& path) -> Status {
    if (++reload_calls == 1) {
      return Status::Unavailable("injected: transient fleet failure");
    }
    return real_reload(path);
  });
  auto outcome = stack.service->RefreshWithRetry();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_EQ(reload_calls, 2);
  EXPECT_EQ(stack.engine->snapshot()->fingerprint(), outcome->fingerprint);

  obs::MetricsSnapshot snap = stack.engine->TakeMetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("ingest.refresh.attempts"), 2u);
  EXPECT_EQ(snap.CounterValue("ingest.refresh.failures"), 1u);
  EXPECT_EQ(snap.CounterValue("ingest.refresh.success"), 1u);
}

TEST(IngestServiceTest, IngestzRendersEverySection) {
  std::string dir = FreshDir("svc_ingestz");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  ASSERT_TRUE(stack.service->Ingest(HardRecord()).ok());
  std::string page = stack.service->RenderIngestz();
  for (const char* section :
       {"pipeline:", "wal:", "delta:", "refresh:", "engine:"}) {
    EXPECT_NE(page.find(section), std::string::npos) << page;
  }
  EXPECT_NE(page.find("accepted=1"), std::string::npos) << page;
}

TEST(IngestServiceTest, CommandHandlerSpeaksTheProtocol) {
  std::string dir = FreshDir("svc_handler");
  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  IngestCommandHandler handler(stack.service.get(), stack.engine.get());
  bool quit = false;

  std::string reply = handler.Handle("INGEST gelatin=0.01 terms=katai",
                                     &quit, serve::kNoDeadline);
  EXPECT_EQ(reply.rfind("OK seq=1 dedup=0 topic=", 0), 0u) << reply;
  reply = handler.Handle("INGEST gelatin=0.01 terms=katai", &quit,
                         serve::kNoDeadline);
  EXPECT_EQ(reply.rfind("OK seq=1 dedup=1", 0), 0u) << reply;
  reply = handler.Handle("INGEST nonsense", &quit, serve::kNoDeadline);
  EXPECT_EQ(reply.rfind("ERR", 0), 0u) << reply;
  reply = handler.Handle("INGESTZ", &quit, serve::kNoDeadline);
  EXPECT_NE(reply.find("pipeline:"), std::string::npos);
  EXPECT_EQ(reply.back(), '.');
  reply = handler.Handle("METRICSZ", &quit, serve::kNoDeadline);
  EXPECT_EQ(reply.front(), '{');
  EXPECT_NE(reply.find("ingest.records.accepted"), std::string::npos);
  reply = handler.Handle("REFRESH", &quit, serve::kNoDeadline);
  EXPECT_EQ(reply.rfind("OK refreshed fingerprint=", 0), 0u) << reply;
  EXPECT_FALSE(quit);
  reply = handler.Handle("QUIT", &quit, serve::kNoDeadline);
  EXPECT_TRUE(quit);
}

}  // namespace
}  // namespace texrheo::ingest
