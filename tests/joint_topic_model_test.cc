#include "core/joint_topic_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace texrheo::core {
namespace {

// Builds a synthetic dataset with two planted joint clusters:
//   cluster 0: terms {0, 1}, gel feature near (4, 9, 9)
//   cluster 1: terms {2, 3}, gel feature near (9, 5, 9)
// Emulsion features also separate (milk-heavy vs none).
recipe::Dataset PlantedDataset(size_t docs_per_cluster, uint64_t seed) {
  recipe::Dataset ds;
  for (const char* w : {"soft0", "soft1", "hard0", "hard1"}) {
    ds.term_vocab.Add(w);
  }
  Rng rng(seed);
  for (int cluster = 0; cluster < 2; ++cluster) {
    for (size_t i = 0; i < docs_per_cluster; ++i) {
      recipe::Document doc;
      doc.recipe_index = ds.documents.size();
      int term_count = 2 + static_cast<int>(rng.NextUint(3));
      for (int t = 0; t < term_count; ++t) {
        doc.term_ids.push_back(cluster * 2 +
                               static_cast<int32_t>(rng.NextUint(2)));
      }
      doc.gel_feature = math::Vector(3, 9.0);
      doc.emulsion_feature = math::Vector(2, 9.0);
      if (cluster == 0) {
        doc.gel_feature[0] = 4.0 + 0.3 * rng.NextGaussian();
        doc.emulsion_feature[0] = 1.0 + 0.2 * rng.NextGaussian();
      } else {
        doc.gel_feature[1] = 5.0 + 0.3 * rng.NextGaussian();
        doc.emulsion_feature[1] = 2.0 + 0.2 * rng.NextGaussian();
      }
      doc.gel_concentration = math::Vector(3, 0.01);
      doc.emulsion_concentration = math::Vector(2, 0.1);
      ds.documents.push_back(std::move(doc));
    }
  }
  ds.funnel.final_dataset = ds.documents.size();
  return ds;
}

JointTopicModelConfig SmallConfig(int topics = 2) {
  JointTopicModelConfig config;
  config.num_topics = topics;
  config.sweeps = 80;
  config.burn_in_sweeps = 20;
  config.seed = 11;
  return config;
}

TEST(JointTopicModelTest, CreateValidatesInput) {
  recipe::Dataset ds = PlantedDataset(5, 1);
  JointTopicModelConfig config = SmallConfig();
  EXPECT_FALSE(JointTopicModel::Create(config, nullptr).ok());
  config.num_topics = 0;
  EXPECT_FALSE(JointTopicModel::Create(config, &ds).ok());
  config.num_topics = 2;
  config.alpha = 0.0;
  EXPECT_FALSE(JointTopicModel::Create(config, &ds).ok());
  recipe::Dataset empty;
  EXPECT_FALSE(JointTopicModel::Create(SmallConfig(), &empty).ok());
}

TEST(JointTopicModelTest, RecoversPlantedClusters) {
  recipe::Dataset ds = PlantedDataset(60, 2);
  JointTopicModelConfig config = SmallConfig(2);
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 60 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(est.doc_topic, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.95);
  EXPECT_GT(scores->nmi, 0.8);
}

TEST(JointTopicModelTest, SparseSamplerCreateValidatesKnobs) {
  recipe::Dataset ds = PlantedDataset(5, 1);
  JointTopicModelConfig config = SmallConfig();
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 0;
  EXPECT_FALSE(JointTopicModel::Create(config, &ds).ok());
  config.alias_rebuild_interval = 8;
  config.mh_steps = 0;
  EXPECT_FALSE(JointTopicModel::Create(config, &ds).ok());
  config.mh_steps = 2;
  EXPECT_TRUE(JointTopicModel::Create(config, &ds).ok());
}

TEST(JointTopicModelTest, LikelihoodIntervalThinsTraceWithoutPerturbingChain) {
  recipe::Dataset ds = PlantedDataset(5, 1);
  JointTopicModelConfig bad = SmallConfig();
  bad.likelihood_interval = 0;
  EXPECT_FALSE(JointTopicModel::Create(bad, &ds).ok());

  // The likelihood pass draws no RNG, so thinning it must leave the chain
  // bit-identical and keep exactly every interval-th trace entry.
  recipe::Dataset ds_full = PlantedDataset(20, 11);
  recipe::Dataset ds_thin = PlantedDataset(20, 11);
  JointTopicModelConfig config = SmallConfig(3);
  auto full = JointTopicModel::Create(config, &ds_full);
  config.likelihood_interval = 3;
  auto thin = JointTopicModel::Create(config, &ds_thin);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(thin.ok());
  ASSERT_TRUE(full->RunSweeps(10).ok());
  ASSERT_TRUE(thin->RunSweeps(10).ok());
  EXPECT_EQ(full->z(), thin->z());
  EXPECT_EQ(full->y(), thin->y());
  ASSERT_EQ(full->likelihood_trace().size(), 10u);
  // Entries land on completed sweeps 3, 6, 9.
  ASSERT_EQ(thin->likelihood_trace().size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(thin->likelihood_trace()[i], full->likelihood_trace()[3 * i + 2]);
  }
}

TEST(JointTopicModelTest, SparseSamplerRecoversPlantedClusters) {
  recipe::Dataset ds = PlantedDataset(60, 2);
  JointTopicModelConfig config = SmallConfig(2);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 4;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  EXPECT_TRUE(std::isfinite(model->LogJointLikelihood()));
  TopicEstimates est = model->Estimate();
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 60 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(est.doc_topic, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.95);
}

TEST(JointTopicModelTest, SparseSamplerDeterministicGivenSeed) {
  for (int threads : {1, 2}) {
    recipe::Dataset ds_a = PlantedDataset(20, 5);
    recipe::Dataset ds_b = PlantedDataset(20, 5);
    JointTopicModelConfig config = SmallConfig(3);
    config.sparse_sampler = true;
    config.alias_rebuild_interval = 3;
    config.num_threads = threads;
    auto a = JointTopicModel::Create(config, &ds_a);
    auto b = JointTopicModel::Create(config, &ds_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a->RunSweeps(25).ok());
    ASSERT_TRUE(b->RunSweeps(25).ok());
    EXPECT_EQ(a->z(), b->z()) << "threads=" << threads;
    EXPECT_EQ(a->y(), b->y()) << "threads=" << threads;
  }
}

TEST(JointTopicModelTest, SparseSamplerExportsStalenessMetrics) {
  recipe::Dataset ds = PlantedDataset(20, 7);
  JointTopicModelConfig config = SmallConfig(2);
  config.sparse_sampler = true;
  config.alias_rebuild_interval = 4;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  obs::MetricsRegistry registry;
  model->SetObservability(&registry, nullptr);
  ASSERT_TRUE(model->RunSweeps(12).ok());

  obs::MetricsSnapshot snap = registry.TakeSnapshot();
  // Rebuild epochs 0, 4, 8 fall inside the 12 observed sweeps.
  EXPECT_EQ(snap.CounterValue("train.alias_rebuilds"), 3u);
  // Documents concentrate on few topics, so the sparse bucket wins often.
  EXPECT_GT(snap.CounterValue("train.sparse_bucket_hits"), 0u);
  const double accept = snap.GaugeValue("train.mh_accept_rate");
  EXPECT_GT(accept, 0.0);
  EXPECT_LE(accept, 1.0);

  // The dense sampler must not touch the sparse-path metrics.
  recipe::Dataset dense_ds = PlantedDataset(20, 7);
  JointTopicModelConfig dense = SmallConfig(2);
  auto dense_model = JointTopicModel::Create(dense, &dense_ds);
  ASSERT_TRUE(dense_model.ok());
  obs::MetricsRegistry dense_registry;
  dense_model->SetObservability(&dense_registry, nullptr);
  ASSERT_TRUE(dense_model->RunSweeps(5).ok());
  obs::MetricsSnapshot dense_snap = dense_registry.TakeSnapshot();
  EXPECT_EQ(dense_snap.CounterValue("train.alias_rebuilds"), 0u);
  EXPECT_EQ(dense_snap.CounterValue("train.sparse_bucket_hits"), 0u);
}

TEST(JointTopicModelTest, PhiSeparatesPlantedVocabularies) {
  recipe::Dataset ds = PlantedDataset(60, 3);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  // Each topic concentrates on one vocabulary half.
  for (const auto& phi_k : est.phi) {
    double first_half = phi_k[0] + phi_k[1];
    double second_half = phi_k[2] + phi_k[3];
    double dominant = std::max(first_half, second_half);
    EXPECT_GT(dominant, 0.9);
  }
}

TEST(JointTopicModelTest, GaussianMeansMatchPlantedCenters) {
  recipe::Dataset ds = PlantedDataset(80, 4);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  // One topic mean near gel[0]=4, the other near gel[1]=5.
  bool found_cluster0 = false, found_cluster1 = false;
  for (const auto& g : est.gel_topics) {
    if (std::fabs(g.mean()[0] - 4.0) < 0.5) found_cluster0 = true;
    if (std::fabs(g.mean()[1] - 5.0) < 0.5) found_cluster1 = true;
  }
  EXPECT_TRUE(found_cluster0);
  EXPECT_TRUE(found_cluster1);
}

TEST(JointTopicModelTest, PhiRowsAreDistributions) {
  recipe::Dataset ds = PlantedDataset(30, 5);
  auto model = JointTopicModel::Create(SmallConfig(3), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  for (const auto& phi_k : est.phi) {
    double sum = 0.0;
    for (double p : phi_k) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(JointTopicModelTest, ThetaRowsAreDistributions) {
  recipe::Dataset ds = PlantedDataset(30, 6);
  auto model = JointTopicModel::Create(SmallConfig(3), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  for (const auto& theta_d : est.theta) {
    double sum = 0.0;
    for (double p : theta_d) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);  // Eq. 5 normalizer includes alpha mass.
  }
}

TEST(JointTopicModelTest, TopicRecipeCountsSumToDocuments) {
  recipe::Dataset ds = PlantedDataset(40, 7);
  auto model = JointTopicModel::Create(SmallConfig(4), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  int total = 0;
  for (int c : est.topic_recipe_count) total += c;
  EXPECT_EQ(total, static_cast<int>(ds.documents.size()));
}

TEST(JointTopicModelTest, LikelihoodImprovesFromInitialization) {
  recipe::Dataset ds = PlantedDataset(60, 8);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  double before = model->LogJointLikelihood();
  ASSERT_TRUE(model->Train().ok());
  double after = model->LogJointLikelihood();
  EXPECT_GT(after, before);
  // The trace records every sweep.
  EXPECT_EQ(model->likelihood_trace().size(),
            static_cast<size_t>(model->completed_sweeps()));
}

TEST(JointTopicModelTest, DeterministicGivenSeed) {
  recipe::Dataset ds = PlantedDataset(30, 9);
  auto a = JointTopicModel::Create(SmallConfig(2), &ds);
  auto b = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->RunSweeps(30).ok());
  ASSERT_TRUE(b->RunSweeps(30).ok());
  EXPECT_EQ(a->y(), b->y());
  EXPECT_DOUBLE_EQ(a->LogJointLikelihood(), b->LogJointLikelihood());
}

TEST(JointTopicModelTest, HandlesMoreTopicsThanClusters) {
  // Extra topics must not crash; empty topics redraw from the prior.
  recipe::Dataset ds = PlantedDataset(25, 10);
  auto model = JointTopicModel::Create(SmallConfig(8), &ds);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  EXPECT_EQ(est.phi.size(), 8u);
  EXPECT_EQ(est.gel_topics.size(), 8u);
}

TEST(JointTopicModelTest, InferTopicForFeaturesMatchesTraining) {
  recipe::Dataset ds = PlantedDataset(60, 12);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  // A fresh cluster-0-like point lands in the same topic most cluster-0
  // documents occupy.
  math::Vector gel = {4.0, 9.0, 9.0};
  math::Vector emulsion = {1.0, 9.0};
  int inferred = model->InferTopicForFeatures(gel, emulsion);
  std::map<int, int> cluster0_topics;
  for (size_t d = 0; d < 60; ++d) ++cluster0_topics[model->y()[d]];
  int majority = -1, best = 0;
  for (auto [k, c] : cluster0_topics) {
    if (c > best) {
      best = c;
      majority = k;
    }
  }
  EXPECT_EQ(inferred, majority);
}

TEST(JointTopicModelTest, EmulsionLikelihoodToggleChangesAssignments) {
  // The default follows the paper's literal eq. (3) (gel only); enabling
  // the emulsion Gaussian must also produce a valid, well-separated model.
  recipe::Dataset ds = PlantedDataset(40, 13);
  JointTopicModelConfig config = SmallConfig(2);
  config.use_emulsion_likelihood = true;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Train().ok());
  TopicEstimates est = model->Estimate();
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 40 ? 0 : 1);
  }
  auto scores = eval::ScoreClustering(est.doc_topic, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.9);  // Gel + words still separate cleanly.
}

TEST(JointTopicModelTest, FoldInThetaPlacesUnseenDocInRightCluster) {
  recipe::Dataset ds = PlantedDataset(60, 16);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  // Majority topic of cluster 0's training docs.
  std::map<int, int> counts;
  for (size_t d = 0; d < 60; ++d) ++counts[model->y()[d]];
  int cluster0_topic = 0;
  int best_count = -1;
  for (auto [k, c] : counts) {
    if (c > best_count) {
      best_count = c;
      cluster0_topic = k;
    }
  }

  // A fresh cluster-0-like document.
  recipe::Document doc;
  doc.term_ids = {0, 1, 0};
  doc.gel_feature = math::Vector(3, 9.0);
  doc.gel_feature[0] = 4.0;
  doc.emulsion_feature = math::Vector(2, 9.0);
  doc.emulsion_feature[0] = 1.0;
  auto theta = model->FoldInTheta(doc, 50);
  ASSERT_TRUE(theta.ok());
  double sum = 0.0;
  int argmax = 0;
  for (size_t k = 0; k < theta->size(); ++k) {
    sum += (*theta)[k];
    if ((*theta)[k] > (*theta)[static_cast<size_t>(argmax)]) {
      argmax = static_cast<int>(k);
    }
  }
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_EQ(argmax, cluster0_topic);
}

TEST(JointTopicModelTest, FoldInThetaRejectsBadInput) {
  recipe::Dataset ds = PlantedDataset(20, 17);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(10).ok());
  recipe::Document doc;
  doc.term_ids = {99};  // Outside the 4-term vocabulary.
  doc.gel_feature = math::Vector(3, 5.0);
  doc.emulsion_feature = math::Vector(2, 5.0);
  EXPECT_FALSE(model->FoldInTheta(doc).ok());
  doc.term_ids = {0};
  EXPECT_FALSE(model->FoldInTheta(doc, 0).ok());
}

TEST(JointTopicModelTest, AlphaOptimizationStaysInBoundsAndHelps) {
  recipe::Dataset ds = PlantedDataset(60, 14);
  JointTopicModelConfig config = SmallConfig(4);
  config.optimize_alpha = true;
  config.alpha_update_interval = 10;
  config.burn_in_sweeps = 10;
  config.sweeps = 60;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  double alpha = model->alpha();
  EXPECT_GE(alpha, 1e-4);
  EXPECT_LE(alpha, 10.0);
  // With only 2 real clusters among 4 topics, documents concentrate on few
  // topics, so the fitted symmetric alpha should drop below the start.
  EXPECT_LT(alpha, 0.3);
}

TEST(JointTopicModelTest, UpdateAlphaIsAFixedPointOnItsOwnOutput) {
  recipe::Dataset ds = PlantedDataset(40, 15);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(40).ok());
  // Iterating the update converges: consecutive outputs approach.
  double prev = model->UpdateAlpha();
  double diff = 1.0;
  for (int i = 0; i < 200; ++i) {
    double next = model->UpdateAlpha();
    diff = std::fabs(next - prev);
    prev = next;
  }
  EXPECT_LT(diff, 1e-4);
}


TEST(JointTopicModelTest, ConstFoldInIsDeterministicAndThreadSafe) {
  // The serving read path: after training stops, any number of threads may
  // fold in unseen recipes through the const overload concurrently. Each
  // caller brings its own RNG, so per-stream results must be bit-identical
  // to a serial run (and the TSan CI leg verifies the absence of hidden
  // mutable state on this path).
  recipe::Dataset ds = PlantedDataset(40, 19);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->RunSweeps(40).ok());
  const JointTopicModel& frozen = *model;

  auto query_doc = [](int cluster) {
    recipe::Document doc;
    doc.term_ids = cluster == 0 ? std::vector<int32_t>{0, 1, 0}
                                : std::vector<int32_t>{2, 3, 2};
    doc.gel_feature = math::Vector(3, 9.0);
    doc.gel_feature[cluster == 0 ? 0 : 1] = cluster == 0 ? 4.0 : 5.0;
    doc.emulsion_feature = math::Vector(2, 9.0);
    doc.emulsion_feature[cluster] = cluster == 0 ? 1.0 : 2.0;
    return doc;
  };

  constexpr int kWorkers = 8;
  std::vector<std::vector<double>> expected(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    Rng rng = Rng::ForStream(77, static_cast<uint64_t>(i));
    auto theta = frozen.FoldInTheta(query_doc(i % 2), 30, rng);
    ASSERT_TRUE(theta.ok());
    expected[static_cast<size_t>(i)] = *theta;
  }
  std::vector<int> mismatches(kWorkers, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&, i] {
      Rng rng = Rng::ForStream(77, static_cast<uint64_t>(i));
      auto theta = frozen.FoldInTheta(query_doc(i % 2), 30, rng);
      if (!theta.ok() || *theta != expected[static_cast<size_t>(i)]) {
        mismatches[static_cast<size_t>(i)] = 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kWorkers; ++i) {
    EXPECT_EQ(mismatches[static_cast<size_t>(i)], 0) << "worker " << i;
  }
}

TEST(JointTopicModelTest, ConstAndConvenienceFoldInAgreeOnPlacement) {
  recipe::Dataset ds = PlantedDataset(40, 21);
  auto model = JointTopicModel::Create(SmallConfig(2), &ds);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  recipe::Document doc;
  doc.term_ids = {0, 1, 0, 1};
  doc.gel_feature = math::Vector(3, 9.0);
  doc.gel_feature[0] = 4.0;
  doc.emulsion_feature = math::Vector(2, 9.0);
  doc.emulsion_feature[0] = 1.0;
  Rng rng = Rng::ForStream(5, 0);
  auto via_const = model->FoldInTheta(doc, 50, rng);
  auto via_member = model->FoldInTheta(doc, 50);
  ASSERT_TRUE(via_const.ok() && via_member.ok());
  // Different RNGs, same posterior mode: both runs place the query in the
  // same dominant topic.
  auto argmax = [](const std::vector<double>& v) {
    return std::max_element(v.begin(), v.end()) - v.begin();
  };
  EXPECT_EQ(argmax(*via_const), argmax(*via_member));
}

TEST(JointTopicModelTest, GmmInitRecoversClustersFaster) {
  recipe::Dataset ds = PlantedDataset(60, 18);
  JointTopicModelConfig config = SmallConfig(2);
  config.gmm_init = true;
  auto model = JointTopicModel::Create(config, &ds);
  ASSERT_TRUE(model.ok());
  // With GMM init the very first sweeps already separate the clusters.
  ASSERT_TRUE(model->RunSweeps(5).ok());
  std::vector<int> truth;
  for (size_t d = 0; d < ds.documents.size(); ++d) {
    truth.push_back(d < 60 ? 0 : 1);
  }
  std::vector<int> y(model->y().begin(), model->y().end());
  auto scores = eval::ScoreClustering(y, truth);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->purity, 0.9);
}

}  // namespace
}  // namespace texrheo::core
