#include "text/texture_dictionary.h"

#include <gtest/gtest.h>

#include <set>

namespace texrheo::text {
namespace {

TEST(TextureDictionaryTest, HasExactly288Terms) {
  EXPECT_EQ(TextureDictionary::Embedded().size(), 288u);
}

TEST(TextureDictionaryTest, AllSurfacesUnique) {
  const auto& dict = TextureDictionary::Embedded();
  std::set<std::string> surfaces;
  for (const auto& t : dict.terms()) surfaces.insert(t.surface);
  EXPECT_EQ(surfaces.size(), dict.size());
}

TEST(TextureDictionaryTest, ContainsAllPaperTerms) {
  const auto& dict = TextureDictionary::Embedded();
  // Every term quoted in the paper's Table II(a) must be present.
  for (const char* term :
       {"furufuru", "katai",      "muchimuchi", "gucha",      "potteri",
        "burunburun", "bosoboso", "botet",      "shakusyaku", "buruburu",
        "purupuru",  "nettori",   "purit",      "mottari",    "horohoro",
        "necchiri",  "fuwafuwa",  "yuruyuru",   "bechat",     "fukahuka",
        "burit",     "dossiri",   "churuchuru", "punipuni",   "kutat",
        "burinburin", "korit",    "daradara",   "karat",      "hajikeru",
        "omoi"}) {
    EXPECT_TRUE(dict.Contains(term)) << term;
  }
}

TEST(TextureDictionaryTest, FindReturnsAnnotation) {
  const auto& dict = TextureDictionary::Embedded();
  const TextureTerm* katai = dict.Find("katai");
  ASSERT_NE(katai, nullptr);
  EXPECT_EQ(katai->axis, TextureAxis::kHardness);
  EXPECT_GT(katai->polarity, 0);
  const TextureTerm* furufuru = dict.Find("furufuru");
  ASSERT_NE(furufuru, nullptr);
  EXPECT_EQ(furufuru->axis, TextureAxis::kHardness);
  EXPECT_LT(furufuru->polarity, 0);
}

TEST(TextureDictionaryTest, FindMissReturnsNull) {
  EXPECT_EQ(TextureDictionary::Embedded().Find("not-a-term"), nullptr);
}

TEST(TextureDictionaryTest, EveryTermHasValidAnnotation) {
  for (const auto& t : TextureDictionary::Embedded().terms()) {
    EXPECT_FALSE(t.surface.empty());
    EXPECT_FALSE(t.gloss.empty()) << t.surface;
    EXPECT_TRUE(t.polarity == 1 || t.polarity == -1) << t.surface;
    EXPECT_GT(t.intensity, 0.0) << t.surface;
    EXPECT_LE(t.intensity, 1.0) << t.surface;
    EXPECT_GT(t.base_frequency, 0.0) << t.surface;
  }
}

TEST(TextureDictionaryTest, AllThreeAxesPopulatedOnBothPoles) {
  const auto& dict = TextureDictionary::Embedded();
  for (TextureAxis axis : {TextureAxis::kHardness, TextureAxis::kCohesiveness,
                           TextureAxis::kAdhesiveness}) {
    EXPECT_GT(dict.TermsOnAxis(axis, +1).size(), 5u)
        << TextureAxisName(axis);
    EXPECT_GT(dict.TermsOnAxis(axis, -1).size(), 5u)
        << TextureAxisName(axis);
  }
}

TEST(TextureDictionaryTest, HasNonGelConfounderTerms) {
  const auto& dict = TextureDictionary::Embedded();
  int non_gel = 0;
  for (const auto& t : dict.terms()) {
    if (!t.gel_related) ++non_gel;
  }
  // Crispy-topping vocabulary for the word2vec screen to catch.
  EXPECT_GE(non_gel, 10);
  EXPECT_LT(non_gel, 100);  // But the dictionary stays mostly gel-related.
  const TextureTerm* sakusaku = dict.Find("sakusaku");
  ASSERT_NE(sakusaku, nullptr);
  EXPECT_FALSE(sakusaku->gel_related);
}

TEST(TextureDictionaryTest, PaperTermsAreHighFrequency) {
  const auto& dict = TextureDictionary::Embedded();
  // Curated terms dominate usage; derived variants are long-tail.
  EXPECT_GT(dict.Find("purupuru")->base_frequency, 0.3);
  const TextureTerm* variant = dict.Find("puyopuyo");
  if (variant != nullptr) {
    EXPECT_LT(variant->base_frequency, 0.05);
  }
}

TEST(TextureDictionaryTest, CategoryPredicatesAreMutuallyConsistent) {
  for (const auto& t : TextureDictionary::Embedded().terms()) {
    int categories = static_cast<int>(IsHardTerm(t)) +
                     static_cast<int>(IsSoftTerm(t)) +
                     static_cast<int>(IsElasticTerm(t)) +
                     static_cast<int>(IsCrumblyTerm(t));
    // A term describes at most one of these four poles.
    EXPECT_LE(categories, 1) << t.surface;
  }
}

TEST(TextureDictionaryTest, PolesMatchPaperReadings) {
  const auto& dict = TextureDictionary::Embedded();
  EXPECT_TRUE(IsElasticTerm(*dict.Find("purupuru")));
  EXPECT_TRUE(IsElasticTerm(*dict.Find("burinburin")));
  EXPECT_TRUE(IsCrumblyTerm(*dict.Find("horohoro")));
  EXPECT_TRUE(IsCrumblyTerm(*dict.Find("bosoboso")));
  EXPECT_TRUE(IsStickyTerm(*dict.Find("nettori")));
  EXPECT_TRUE(IsStickyTerm(*dict.Find("necchiri")));
  EXPECT_TRUE(IsHardTerm(*dict.Find("dossiri")));
  EXPECT_TRUE(IsSoftTerm(*dict.Find("fuwafuwa")));
}

TEST(TextureDictionaryTest, CustomDictionaryDeduplicates) {
  TextureDictionary dict({
      {"aaa", "first", TextureAxis::kHardness, 1, 0.5, true, 1.0},
      {"aaa", "duplicate", TextureAxis::kHardness, -1, 0.5, true, 1.0},
      {"bbb", "second", TextureAxis::kAdhesiveness, 1, 0.5, true, 1.0},
  });
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Find("aaa")->gloss, "first");
}

}  // namespace
}  // namespace texrheo::text
