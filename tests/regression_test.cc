#include "math/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace texrheo::math {
namespace {

TEST(FitLineTest, ExactLine) {
  auto fit = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1.
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  texrheo::Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    double xi = rng.NextUniform(0, 10);
    x.push_back(xi);
    y.push_back(-1.5 * xi + 4.0 + 0.1 * rng.NextGaussian());
  }
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, -1.5, 0.01);
  EXPECT_NEAR(fit->intercept, 4.0, 0.05);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(FitLineTest, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(FitLine({1}, {2}).ok());
  EXPECT_FALSE(FitLine({1, 1, 1}, {1, 2, 3}).ok());  // Constant x.
  EXPECT_FALSE(FitLine({1, 2}, {1}).ok());           // Length mismatch.
}

TEST(FitPowerLawTest, ExactPowerLaw) {
  // y = 3 x^2.
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi * xi);
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->amplitude, 3.0, 1e-9);
  EXPECT_NEAR(fit->exponent, 2.0, 1e-9);
}

TEST(FitPowerLawTest, GelHardnessScale) {
  // Steep power law like gelatin hardness (exponent ~5) at small x.
  std::vector<double> x = {0.018, 0.02, 0.025, 0.03};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.0e8 * std::pow(xi, 5.0));
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 5.0, 1e-6);
  EXPECT_NEAR(fit->amplitude / 2.0e8, 1.0, 1e-6);
}

TEST(FitPowerLawTest, RejectsNonPositive) {
  EXPECT_FALSE(FitPowerLaw({0.0, 1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {-1.0, 2.0}).ok());
}

TEST(FitExponentialTest, ExactExponential) {
  // y = 0.5 exp(-3x).
  std::vector<double> x = {0.0, 0.1, 0.2, 0.5};
  std::vector<double> y;
  for (double xi : x) y.push_back(0.5 * std::exp(-3.0 * xi));
  auto fit = FitExponential(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->amplitude, 0.5, 1e-9);
  EXPECT_NEAR(fit->rate, -3.0, 1e-9);
}

TEST(FitExponentialTest, RejectsNonPositiveY) {
  EXPECT_FALSE(FitExponential({1.0, 2.0}, {1.0, 0.0}).ok());
}

class PowerLawRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecoveryTest, RecoversExponentUnderMildNoise) {
  double exponent = GetParam();
  texrheo::Rng rng(static_cast<uint64_t>(exponent * 10));
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    double xi = rng.NextUniform(0.01, 0.1);
    x.push_back(xi);
    y.push_back(5.0 * std::pow(xi, exponent) *
                std::exp(0.02 * rng.NextGaussian()));
  }
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, exponent, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawRecoveryTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.5, 5.0));

}  // namespace
}  // namespace texrheo::math
