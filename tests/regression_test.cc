#include "math/regression.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "core/joint_topic_model.h"
#include "util/rng.h"

namespace texrheo::math {
namespace {

TEST(FitLineTest, ExactLine) {
  auto fit = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1.
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  texrheo::Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    double xi = rng.NextUniform(0, 10);
    x.push_back(xi);
    y.push_back(-1.5 * xi + 4.0 + 0.1 * rng.NextGaussian());
  }
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, -1.5, 0.01);
  EXPECT_NEAR(fit->intercept, 4.0, 0.05);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(FitLineTest, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(FitLine({1}, {2}).ok());
  EXPECT_FALSE(FitLine({1, 1, 1}, {1, 2, 3}).ok());  // Constant x.
  EXPECT_FALSE(FitLine({1, 2}, {1}).ok());           // Length mismatch.
}

TEST(FitPowerLawTest, ExactPowerLaw) {
  // y = 3 x^2.
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * xi * xi);
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->amplitude, 3.0, 1e-9);
  EXPECT_NEAR(fit->exponent, 2.0, 1e-9);
}

TEST(FitPowerLawTest, GelHardnessScale) {
  // Steep power law like gelatin hardness (exponent ~5) at small x.
  std::vector<double> x = {0.018, 0.02, 0.025, 0.03};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.0e8 * std::pow(xi, 5.0));
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 5.0, 1e-6);
  EXPECT_NEAR(fit->amplitude / 2.0e8, 1.0, 1e-6);
}

TEST(FitPowerLawTest, RejectsNonPositive) {
  EXPECT_FALSE(FitPowerLaw({0.0, 1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(FitPowerLaw({1.0, 2.0}, {-1.0, 2.0}).ok());
}

TEST(FitExponentialTest, ExactExponential) {
  // y = 0.5 exp(-3x).
  std::vector<double> x = {0.0, 0.1, 0.2, 0.5};
  std::vector<double> y;
  for (double xi : x) y.push_back(0.5 * std::exp(-3.0 * xi));
  auto fit = FitExponential(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->amplitude, 0.5, 1e-9);
  EXPECT_NEAR(fit->rate, -3.0, 1e-9);
}

TEST(FitExponentialTest, RejectsNonPositiveY) {
  EXPECT_FALSE(FitExponential({1.0, 2.0}, {1.0, 0.0}).ok());
}

class PowerLawRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecoveryTest, RecoversExponentUnderMildNoise) {
  double exponent = GetParam();
  texrheo::Rng rng(static_cast<uint64_t>(exponent * 10));
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    double xi = rng.NextUniform(0.01, 0.1);
    x.push_back(xi);
    y.push_back(5.0 * std::pow(xi, exponent) *
                std::exp(0.02 * rng.NextGaussian()));
  }
  auto fit = FitPowerLaw(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, exponent, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawRecoveryTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.5, 5.0));

}  // namespace
}  // namespace texrheo::math

namespace texrheo::core {
namespace {

// --- Seeded end-to-end golden regression -------------------------------
//
// Pins the exact sampler trajectory of the serial (num_threads = 1) chain
// on a fixed hand-built corpus: the per-recipe topic assignments and each
// topic's top-5 terms after 40 sweeps at seed 11 must never change. Any
// edit that perturbs the serial chain's random-number consumption or its
// conditionals breaks this test — which is the point: the serial chain is
// the bit-exact reference the parallel engine is validated against, so it
// may only change deliberately (with regenerated goldens and a changelog
// note).

recipe::Dataset GoldenDataset() {
  recipe::Dataset ds;
  for (const char* term : {"toro", "puru", "fuwa", "shaki", "saku", "mochi"}) {
    ds.term_vocab.Add(term);
  }
  auto add = [&ds](std::vector<int32_t> terms, double gel, double emulsion) {
    recipe::Document doc;
    doc.recipe_index = ds.documents.size();
    doc.term_ids = std::move(terms);
    doc.gel_feature = math::Vector(1, gel);
    doc.emulsion_feature = math::Vector(1, emulsion);
    doc.gel_concentration = math::Vector(1, 0.02);
    doc.emulsion_concentration = math::Vector(1, 0.1);
    ds.documents.push_back(std::move(doc));
  };
  // Two planted clusters: soft/jiggly terms with low -log-concentration
  // vs crisp/chewy terms with high.
  add({0, 1, 2, 0}, 1.0, 0.2);
  add({1, 2, 1}, 1.2, 0.3);
  add({0, 0, 2, 1}, 0.9, 0.1);
  add({2, 1, 0}, 1.1, 0.2);
  add({3, 4, 5, 3}, 3.0, 1.0);
  add({4, 5, 4}, 3.2, 1.1);
  add({3, 3, 5, 4}, 2.9, 0.9);
  add({5, 4, 3}, 3.1, 1.0);
  return ds;
}

JointTopicModelConfig GoldenConfig() {
  JointTopicModelConfig config;
  config.num_topics = 2;
  config.alpha = 0.5;
  config.gamma = 0.5;
  config.auto_prior = false;
  math::NormalWishartParams nw;
  nw.mu0 = math::Vector(1, 2.0);
  nw.beta = 1.0;
  nw.nu = 3.0;
  nw.scale = math::Matrix::Identity(1, 0.5);
  config.gel_prior = nw;
  config.emulsion_prior = nw;
  config.seed = 11;
  config.num_threads = 1;
  return config;
}

std::vector<int> TopTerms(const std::vector<double>& phi_row, size_t n) {
  std::vector<int> order(phi_row.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return phi_row[static_cast<size_t>(a)] > phi_row[static_cast<size_t>(b)];
  });
  order.resize(std::min(n, order.size()));
  return order;
}

std::string Joined(const std::vector<int>& v) {
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  return os.str();
}

TEST(GoldenRegressionTest, SerialChainTrajectoryIsPinned) {
  recipe::Dataset ds = GoldenDataset();
  auto model = JointTopicModel::Create(GoldenConfig(), &ds);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->RunSweeps(40).ok());
  TopicEstimates estimates = model->Estimate();

  const std::vector<int> kGoldenDocTopic = {1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<int> kGoldenY = {1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<std::vector<int>> kGoldenTopTerms = {
      {3, 4, 5, 0, 1},
      {0, 1, 2, 3, 4},
  };

  EXPECT_EQ(estimates.doc_topic, kGoldenDocTopic)
      << "actual doc_topic: " << Joined(estimates.doc_topic);
  EXPECT_EQ(model->y(), kGoldenY) << "actual y: " << Joined(model->y());
  ASSERT_EQ(estimates.phi.size(), 2u);
  for (size_t k = 0; k < estimates.phi.size(); ++k) {
    std::vector<int> top = TopTerms(estimates.phi[k], 5);
    EXPECT_EQ(top, kGoldenTopTerms[k])
        << "topic " << k << " actual top terms: " << Joined(top);
  }
}

}  // namespace
}  // namespace texrheo::core
