// Golden end-to-end pipeline test: train a toy corpus twice — once
// uninterrupted, once checkpointed, "crashed", and resumed (with the full
// observability stack attached) — save both models, load them into serving
// snapshots, and serve every query type over a real socket from each.
// Every stage must be bit-identical: sampler trajectory, model file bytes,
// snapshot fingerprints, and protocol responses. This is the whole paper
// pipeline (train -> persist -> serve, eqs. 2-5) under one roof, and it is
// also the proof that instrumentation and crash/resume are invisible to
// results. ci.sh re-runs this binary under both ASan and TSan.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/joint_topic_model.h"
#include "core/model_binary.h"
#include "core/serialization.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recipe/dataset.h"
#include "recipe/features.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/json.h"

namespace texrheo {
namespace {

namespace fs = std::filesystem;

constexpr int kTotalSweeps = 40;
constexpr int kCrashAfter = 25;  ///< Past the sweep-20 checkpoint.

/// 24 documents over a texture vocabulary, two planted topics: "hard"
/// recipes (katai, gel features near 2) and "soft" ones (fuwafuwa,
/// features near 6). Dimensions match the serving layer's ingredient
/// space: gel = 3, emulsion = 6.
recipe::Dataset PipelineDataset() {
  recipe::Dataset ds;
  ds.term_vocab.Add("katai");
  ds.term_vocab.Add("purupuru");
  ds.term_vocab.Add("fuwafuwa");
  ds.term_vocab.Add("zzz-not-a-texture-word");
  for (int i = 0; i < 24; ++i) {
    const bool hard = i % 2 == 0;
    recipe::Document doc;
    doc.recipe_index = static_cast<size_t>(i);
    doc.term_ids = hard ? std::vector<int32_t>{0, 0, 1}
                        : std::vector<int32_t>{2, 2, 3};
    doc.gel_feature =
        math::Vector(3, (hard ? 2.0 : 6.0) + 0.05 * (i % 4));
    doc.emulsion_feature = math::Vector(6, hard ? 1.0 : 3.0);
    doc.gel_concentration = math::Vector(3, 0.01 + 0.001 * (i % 4));
    doc.emulsion_concentration = math::Vector(6, 0.1 + 0.02 * (i % 3));
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

math::NormalWishartParams Prior(size_t dim, double mean) {
  math::NormalWishartParams nw;
  nw.mu0 = math::Vector(dim, mean);
  nw.beta = 1.0;
  nw.nu = static_cast<double>(dim) + 2.0;
  nw.scale = math::Matrix::Identity(dim, 0.5);
  return nw;
}

core::JointTopicModelConfig PipelineConfig(const std::string& checkpoint_dir) {
  core::JointTopicModelConfig config;
  config.num_topics = 2;
  config.alpha = 0.5;
  config.gamma = 0.5;
  config.auto_prior = false;
  config.gel_prior = Prior(3, 4.0);
  config.emulsion_prior = Prior(6, 2.0);
  config.use_emulsion_likelihood = false;
  config.seed = 42;
  config.num_threads = 1;  // Serial: resume is bit-exact.
  config.checkpoint_interval = 10;
  config.checkpoint_dir = checkpoint_dir;
  return config;
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/texrheo_e2e_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The protocol commands replayed against each serving stack. Responses
/// depend only on the model and the per-engine admission sequence, so two
/// engines over identical models must answer identically.
const std::vector<std::string>& GoldenCommands() {
  static const std::vector<std::string> kCommands = {
      "PING",
      "PREDICT gelatin=0.012,milk=0.25 terms=jiggly,smooth",
      "PREDICT - terms=katai,purupuru",
      "PREDICT gelatin=0.012,milk=0.25 terms=jiggly,smooth",  // Cache hit.
      "NEAREST 0",
      "NEAREST 1 method=mahalanobis",
      "SIMILAR gelatin=0.02 n=3",
      "SIMILAR agar=0.015 terms=fuwafuwa n=2",
      "TOPIC 0",
      "TOPIC 1",
  };
  return kCommands;
}

/// Starts a server over `model_file` (v2 text or packed .idx/.dat pair —
/// ServingSnapshot::FromFile dispatches on the extension), replays the
/// golden commands over a real socket, and returns the responses.
std::vector<std::string> ServeAndCollect(const std::string& model_file,
                                         const recipe::Dataset* corpus,
                                         uint32_t* fingerprint) {
  auto snapshot = serve::ServingSnapshot::FromFile(model_file);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  *fingerprint = (*snapshot)->fingerprint();

  serve::QueryEngineConfig config;
  config.fold_in_sweeps = 10;
  config.batch_linger_micros = 0;
  auto engine = serve::QueryEngine::Create(config, *snapshot, corpus);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();

  serve::ServerOptions options;
  options.port = 0;
  serve::LineProtocolServer server(engine->get(), options);
  EXPECT_TRUE(server.Start().ok());

  auto client = serve::LineClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();

  std::vector<std::string> responses;
  for (const std::string& command : GoldenCommands()) {
    auto reply = (*client)->RoundTrip(command);
    EXPECT_TRUE(reply.ok()) << command << ": " << reply.status().ToString();
    responses.push_back(reply.ok() ? *reply : "<io-error>");
  }
  // Health pages must work over the socket too (content is load-dependent,
  // so it is checked structurally, not byte-compared).
  auto statsz_sent = (*client)->SendLine("STATSZ");
  EXPECT_TRUE(statsz_sent.ok());
  auto statsz = (*client)->ReadUntilDot();
  EXPECT_TRUE(statsz.ok());
  EXPECT_NE(statsz->find("queries: accepted="), std::string::npos);
  auto metricsz = (*client)->RoundTrip("METRICSZ");
  EXPECT_TRUE(metricsz.ok());
  auto parsed = JsonValue::Parse(*metricsz);
  EXPECT_TRUE(parsed.ok()) << *metricsz;

  server.Stop();
  return responses;
}

TEST(PipelineE2eTest, CrashResumeServesBitIdenticalAnswers) {
  recipe::Dataset dataset_a = PipelineDataset();
  recipe::Dataset dataset_b = PipelineDataset();

  // --- Run A: uninterrupted, uninstrumented. ---------------------------
  std::string dir_a = FreshDir("run_a");
  auto model_a = core::JointTopicModel::Create(PipelineConfig(dir_a),
                                               &dataset_a);
  ASSERT_TRUE(model_a.ok()) << model_a.status().ToString();
  ASSERT_TRUE(model_a->RunSweeps(kTotalSweeps).ok());

  // --- Run B: instrumented, crashed at sweep 25, resumed. --------------
  std::string dir_b = FreshDir("run_b");
  obs::MetricsRegistry metrics;
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.ExportDurationsTo(&metrics);
  {
    auto doomed = core::JointTopicModel::Create(PipelineConfig(dir_b),
                                                &dataset_b);
    ASSERT_TRUE(doomed.ok());
    doomed->SetObservability(&metrics, &tracer);
    ASSERT_TRUE(doomed->RunSweeps(kCrashAfter).ok());
    // "Crash": the model is dropped; only the sweep-20 checkpoint survives.
  }
  auto model_b = core::JointTopicModel::Create(PipelineConfig(dir_b),
                                               &dataset_b);
  ASSERT_TRUE(model_b.ok());
  model_b->SetObservability(&metrics, &tracer);
  ASSERT_TRUE(model_b->Resume().ok());
  EXPECT_EQ(model_b->completed_sweeps(), 20);
  ASSERT_TRUE(model_b->RunSweeps(kTotalSweeps - 20).ok());

  // Instrumentation + crash/resume must both be invisible to the chain.
  EXPECT_EQ(model_a->z(), model_b->z());
  EXPECT_EQ(model_a->y(), model_b->y());
  EXPECT_EQ(model_a->likelihood_trace(), model_b->likelihood_trace());

  // The trainer's metrics recorded the full (pre- and post-crash) story.
  obs::MetricsSnapshot train_snap = metrics.TakeSnapshot();
  EXPECT_EQ(train_snap.CounterValue("train.sweeps_completed"),
            static_cast<uint64_t>(kCrashAfter + kTotalSweeps - 20));
  EXPECT_GE(train_snap.CounterValue("train.checkpoints_written"), 4u);
  const LatencyHistogram::Snapshot* sweep_hist =
      train_snap.Histogram("train.sweep_us");
  ASSERT_NE(sweep_hist, nullptr);
  EXPECT_EQ(sweep_hist->count,
            static_cast<uint64_t>(kCrashAfter + kTotalSweeps - 20));

  // --- Persist: identical chains => byte-identical model files. --------
  std::string file_a = dir_a + "/model.txt";
  std::string file_b = dir_b + "/model.txt";
  ASSERT_TRUE(core::SaveModel(
                  file_a, core::MakeSnapshot(model_a->Estimate(),
                                             dataset_a.term_vocab))
                  .ok());
  ASSERT_TRUE(core::SaveModel(
                  file_b, core::MakeSnapshot(model_b->Estimate(),
                                             dataset_b.term_vocab))
                  .ok());
  EXPECT_EQ(ReadFile(file_a), ReadFile(file_b));

  // --- Serve: every query type over a real socket, from each model. ----
  uint32_t fingerprint_a = 0;
  uint32_t fingerprint_b = 0;
  std::vector<std::string> responses_a =
      ServeAndCollect(file_a, &dataset_a, &fingerprint_a);
  std::vector<std::string> responses_b =
      ServeAndCollect(file_b, &dataset_b, &fingerprint_b);
  EXPECT_EQ(fingerprint_a, fingerprint_b);
  ASSERT_EQ(responses_a.size(), responses_b.size());
  for (size_t i = 0; i < responses_a.size(); ++i) {
    EXPECT_EQ(responses_a[i], responses_b[i])
        << "command diverged: " << GoldenCommands()[i];
    EXPECT_EQ(responses_a[i].rfind("OK", 0), 0u)
        << GoldenCommands()[i] << " -> " << responses_a[i];
  }
  // The repeated PREDICT (index 3) must have come from the cache.
  EXPECT_NE(responses_a[3].find("cached=1"), std::string::npos);
}

TEST(PipelineE2eTest, BinaryPackServesBitIdenticalAnswersToV2) {
  // Same model, two on-disk representations: the v2 text file parsed onto
  // the heap, and the packed .dat/.idx pair served straight off the mmap.
  // Over a real socket, every protocol response must be byte-identical and
  // the fingerprints equal — the binary format is a transparent cache of
  // the text format, never a reinterpretation.
  recipe::Dataset dataset = PipelineDataset();
  std::string dir = FreshDir("binary_pack");
  auto model = core::JointTopicModel::Create(PipelineConfig(dir), &dataset);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(model->RunSweeps(15).ok());

  std::string v2_file = dir + "/model.txt";
  ASSERT_TRUE(core::SaveModel(v2_file,
                              core::MakeSnapshot(model->Estimate(),
                                                 dataset.term_vocab))
                  .ok());
  std::string base = dir + "/model_bin";
  ASSERT_TRUE(core::ConvertModelFileToBinary(v2_file, base).ok());

  uint32_t fingerprint_text = 0;
  uint32_t fingerprint_mmap = 0;
  std::vector<std::string> responses_text =
      ServeAndCollect(v2_file, &dataset, &fingerprint_text);
  std::vector<std::string> responses_mmap =
      ServeAndCollect(base + ".idx", &dataset, &fingerprint_mmap);
  EXPECT_EQ(fingerprint_text, fingerprint_mmap);
  ASSERT_EQ(responses_text.size(), responses_mmap.size());
  for (size_t i = 0; i < responses_text.size(); ++i) {
    EXPECT_EQ(responses_text[i], responses_mmap[i])
        << "command diverged: " << GoldenCommands()[i];
    EXPECT_EQ(responses_text[i].rfind("OK", 0), 0u)
        << GoldenCommands()[i] << " -> " << responses_text[i];
  }
}

}  // namespace
}  // namespace texrheo
