// End-to-end integration: exercises the full reproduction pipeline across
// module boundaries in one deterministic scenario - corpus generation,
// corpus file IO, word2vec screening, dataset funnel, both samplers,
// linkage + validation, dish analysis, serialization round trip, held-out
// scoring, and rule mining.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/collapsed_sampler.h"
#include "core/serialization.h"
#include "eval/dish_analysis.h"
#include "eval/experiment.h"
#include "eval/heldout.h"
#include "eval/metrics.h"
#include "eval/validation.h"
#include "rules/transactions.h"

namespace texrheo {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval::ExperimentConfig config = eval::DefaultExperimentConfig(0.08);
    config.model.sweeps = 150;
    auto result_or = eval::RunJointExperiment(config);
    ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
    result_ = new eval::ExperimentResult(std::move(result_or).value());
  }

  static const eval::ExperimentResult& result() { return *result_; }

 private:
  static eval::ExperimentResult* result_;
};

eval::ExperimentResult* IntegrationTest::result_ = nullptr;

TEST_F(IntegrationTest, CorpusSurvivesFileRoundTrip) {
  std::string path = testing::TempDir() + "/texrheo_integration_corpus.tsv";
  ASSERT_TRUE(recipe::SaveCorpus(path, result().recipes).ok());
  auto loaded = recipe::LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), result().recipes.size());
  // Rebuilding the dataset from the reloaded corpus reproduces the funnel.
  auto dataset = recipe::BuildDataset(
      *loaded, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded(), nullptr, recipe::DatasetConfig());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->funnel.with_gel, result().recipes.size());
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, ModelSnapshotRoundTripPreservesInference) {
  core::ModelSnapshot snapshot = core::MakeSnapshot(
      result().estimates, result().dataset.term_vocab);
  auto reloaded = core::DeserializeModel(core::SerializeModel(snapshot));
  ASSERT_TRUE(reloaded.ok());
  // Linkage through the reloaded snapshot agrees with the live estimates.
  recipe::FeatureConfig fc;
  for (const auto& dish : rheology::TableIIb()) {
    auto live = core::LinkConcentrationToTopic(result().estimates, dish.gel,
                                               fc);
    auto restored = core::LinkConcentrationToTopic(reloaded->estimates,
                                                   dish.gel, fc);
    ASSERT_TRUE(live.ok() && restored.ok());
    EXPECT_EQ(live->topic, restored->topic) << dish.name;
  }
}

TEST_F(IntegrationTest, CollapsedSamplerAgreesOnTheRealCorpus) {
  core::JointTopicModelConfig config = result().resolved_model_config;
  config.auto_prior = true;
  config.sweeps = 120;
  auto collapsed =
      core::CollapsedJointTopicModel::Create(config, &result().dataset);
  ASSERT_TRUE(collapsed.ok());
  ASSERT_TRUE(collapsed->Train().ok());
  auto est = collapsed->Estimate();
  ASSERT_TRUE(est.ok());
  auto agreement = eval::ScoreClustering(est->doc_topic,
                                         result().estimates.doc_topic);
  ASSERT_TRUE(agreement.ok());
  // Different inference algorithms, same posterior: strong but not perfect
  // agreement is expected on real (non-separable) data.
  EXPECT_GT(agreement->nmi, 0.35);
}

TEST_F(IntegrationTest, HeldOutPerplexityBeatsUnigram) {
  eval::HeldOutSplit split = eval::SplitDataset(result().dataset, 0.25, 5);
  core::JointTopicModelConfig config = result().resolved_model_config;
  auto model = core::JointTopicModel::Create(config, &split.train);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Train().ok());
  auto model_ppl = eval::ConcentrationConditionalPerplexity(
      model->Estimate(), model->config(), split.test);
  auto unigram_ppl = eval::UnigramPerplexity(split.train, split.test);
  ASSERT_TRUE(model_ppl.ok() && unigram_ppl.ok());
  EXPECT_LT(*model_ppl, *unigram_ppl);
}

TEST_F(IntegrationTest, ValidationAndDishAnalysisRun) {
  auto validation = eval::ValidateLinkage(result());
  ASSERT_TRUE(validation.ok());
  EXPECT_GT(validation->agreement, 0.45);

  for (const auto& dish : rheology::TableIIb()) {
    auto analysis = eval::AnalyzeDish(result(), dish);
    ASSERT_TRUE(analysis.ok()) << dish.name;
    EXPECT_FALSE(analysis->ranked.empty()) << dish.name;
  }
}

TEST_F(IntegrationTest, RuleMiningFindsTextureRules) {
  rules::TransactionBuilder builder;
  auto transactions = builder.EncodeCorpus(
      result().recipes, recipe::IngredientDatabase::Embedded(),
      text::TextureDictionary::Embedded());
  EXPECT_EQ(transactions.size(), result().recipes.size());

  std::vector<int32_t> texture_items = builder.TextureItemIds();
  std::vector<rules::Transaction> with_texture;
  for (auto& t : transactions) {
    for (int32_t item : texture_items) {
      if (std::binary_search(t.begin(), t.end(), item)) {
        with_texture.push_back(std::move(t));
        break;
      }
    }
  }
  EXPECT_GT(with_texture.size(), 100u);

  rules::AprioriConfig apriori;
  apriori.min_support = 0.02;
  apriori.min_confidence = 0.3;
  apriori.consequent_whitelist = texture_items;
  apriori.antecedent_blacklist = texture_items;
  auto mined = rules::Apriori::MineRules(with_texture, apriori);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(mined->empty());
}

TEST_F(IntegrationTest, WholePipelineIsDeterministic) {
  eval::ExperimentConfig config = eval::DefaultExperimentConfig(0.02);
  config.model.sweeps = 40;
  auto a = eval::RunJointExperiment(config);
  auto b = eval::RunJointExperiment(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->estimates.doc_topic, b->estimates.doc_topic);
  EXPECT_DOUBLE_EQ(a->final_log_likelihood, b->final_log_likelihood);
  for (size_t i = 0; i < a->setting_links.size(); ++i) {
    EXPECT_EQ(a->setting_links[i].topic, b->setting_links[i].topic);
  }
}

}  // namespace
}  // namespace texrheo
