// LatencyHistogram: bucket placement, quantile upper bounds (including the
// small-count ceil behaviour), max tracking, and concurrent recording.

#include "util/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace texrheo {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram hist;
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(snap.max_micros, 0u);
  EXPECT_DOUBLE_EQ(snap.MeanMicros(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleDominatesEveryQuantile) {
  LatencyHistogram hist;
  hist.Record(100);
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max_micros, 100u);
  // 100us lands in bucket [64, 127]; the bound is capped by the max.
  EXPECT_EQ(snap.QuantileUpperBound(0.50), 100u);
  EXPECT_EQ(snap.QuantileUpperBound(0.99), 100u);
  EXPECT_DOUBLE_EQ(snap.MeanMicros(), 100.0);
}

TEST(LatencyHistogramTest, HighQuantileSelectsSlowSampleOfTwo) {
  LatencyHistogram hist;
  hist.Record(3);
  hist.Record(364);
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  // rank(ceil(0.95 * 2)) = 2: the 364us sample, not the 3us one.
  EXPECT_EQ(snap.QuantileUpperBound(0.50), 3u);
  EXPECT_GE(snap.QuantileUpperBound(0.95), 256u);
  EXPECT_EQ(snap.QuantileUpperBound(0.95), 364u);
}

TEST(LatencyHistogramTest, QuantileBoundsBracketUniformSamples) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(i);
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  // The p50 sample is 500us (bucket [256, 511]); the bound must cover it
  // without exceeding the bucket ceiling.
  uint64_t p50 = snap.QuantileUpperBound(0.50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 511u);
  uint64_t p99 = snap.QuantileUpperBound(0.99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1000u);  // Capped by the observed max.
  EXPECT_NEAR(snap.MeanMicros(), 500.5, 1e-9);
}

TEST(LatencyHistogramTest, ZeroAndNegativeLandInFirstBucket) {
  LatencyHistogram hist;
  hist.Record(0);
  hist.Record(-5);  // Clamped.
  hist.Record(1);
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.buckets[0], 3u);
  EXPECT_EQ(snap.QuantileUpperBound(1.0), 1u);
}

TEST(LatencyHistogramTest, HugeValueIsClampedToLastBucket) {
  LatencyHistogram hist;
  hist.Record(int64_t{1} << 62);
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kNumBuckets - 1], 1u);
  EXPECT_EQ(snap.QuantileUpperBound(0.5), uint64_t{1} << 62);
}

TEST(LatencyHistogramTest, ToStringMentionsAllFields) {
  LatencyHistogram hist;
  hist.Record(10);
  std::string s = hist.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("max=10"), std::string::npos);
}

TEST(LatencyHistogramTest, ConcurrentRecordsLoseNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) hist.Record(t * 1000 + i % 100);
    });
  }
  for (auto& t : threads) t.join();
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.max_micros, 3099u);
}

}  // namespace
}  // namespace texrheo
