// MetricsRegistry: handle identity and idempotent registration, lock-free
// concurrent increments summing exactly, the reverse-registration-order
// snapshot guarantee (no snapshot ever shows a downstream counter ahead of
// its upstream), histogram integration, and METRICSZ JSON schema
// round-trip stability. ci.sh re-runs this binary under TSan.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

namespace texrheo::obs {
namespace {

TEST(MetricsRegistryTest, RegistrationIsIdempotentAndStable) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("x.count");
  Counter* again = registry.RegisterCounter("x.count");
  EXPECT_EQ(a, again);
  Gauge* g = registry.RegisterGauge("x.level");
  EXPECT_EQ(g, registry.RegisterGauge("x.level"));
  LatencyHistogram* h = registry.RegisterHistogram("x.latency_us");
  EXPECT_EQ(h, registry.RegisterHistogram("x.latency_us"));

  // Handles stay valid (same address) across later registrations.
  for (int i = 0; i < 100; ++i) {
    registry.RegisterCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(a, registry.RegisterCounter("x.count"));
  a->Increment(7);
  EXPECT_EQ(registry.TakeSnapshot().CounterValue("x.count"), 7u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("concurrent.count");
  Gauge* gauge = registry.RegisterGauge("concurrent.sum");
  Gauge* peak = registry.RegisterGauge("concurrent.peak");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, gauge, peak, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        peak->SetMax(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(peak->Value(),
                   static_cast<double>(kThreads * kPerThread - 1));
}

// The statsz-glitch regression: writer threads increment upstream strictly
// before downstream, registration is in the same order, and NO snapshot may
// ever observe downstream > upstream. With a single-pass read in
// registration order this fails readily; the reverse-order read makes it
// impossible.
TEST(MetricsRegistryTest, SnapshotsAreMonotoneConsistent) {
  MetricsRegistry registry;
  Counter* accepted = registry.RegisterCounter("pipe.accepted");
  Counter* completed = registry.RegisterCounter("pipe.completed");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        accepted->Increment();
        completed->Increment();
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    MetricsSnapshot snap = registry.TakeSnapshot();
    EXPECT_GE(snap.CounterValue("pipe.accepted"),
              snap.CounterValue("pipe.completed"))
        << "snapshot " << i << " shows completions ahead of admissions";
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(accepted->Value(), completed->Value());
}

TEST(MetricsRegistryTest, SnapshotLookupsDefaultWhenAbsent) {
  MetricsRegistry registry;
  MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("nope"), 0u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("nope"), 0.0);
  EXPECT_EQ(snap.Histogram("nope"), nullptr);
}

TEST(MetricsRegistryTest, HistogramsFlowIntoSnapshots) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.RegisterHistogram("op.latency_us");
  hist->Record(100);
  hist->Record(200);
  hist->Record(400);
  MetricsSnapshot snap = registry.TakeSnapshot();
  const LatencyHistogram::Snapshot* h = snap.Histogram("op.latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum_micros, 700u);
  EXPECT_EQ(h->max_micros, 400u);
}

// The METRICSZ schema is a public contract: stable keys, schema_version 1,
// and a rendered document that parses back to the same values.
TEST(MetricsRegistryTest, JsonSchemaRoundTrips) {
  MetricsRegistry registry;
  registry.RegisterCounter("b.count")->Increment(3);
  registry.RegisterCounter("a.count")->Increment(1);
  registry.RegisterGauge("a.level")->Set(2.5);
  registry.RegisterHistogram("a.latency_us")->Record(50);

  std::string rendered = registry.RenderJson();
  auto parsed = JsonValue::Parse(rendered);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const JsonValue* version = parsed->Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_DOUBLE_EQ(version->AsNumber(), 1.0);

  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_DOUBLE_EQ(counters->Find("a.count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(counters->Find("b.count")->AsNumber(), 3.0);

  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("a.level")->AsNumber(), 2.5);

  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* hist = histograms->Find("a.latency_us");
  ASSERT_NE(hist, nullptr);
  for (const char* key :
       {"count", "sum_us", "max_us", "mean_us", "p50_us", "p95_us",
        "p99_us"}) {
    EXPECT_NE(hist->Find(key), nullptr) << "histogram missing key " << key;
  }
  EXPECT_DOUBLE_EQ(hist->Find("count")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum_us")->AsNumber(), 50.0);

  // Rendering is deterministic for a fixed state (sorted object keys).
  EXPECT_EQ(rendered, registry.RenderJson());
}

}  // namespace
}  // namespace texrheo::obs
