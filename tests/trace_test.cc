// Tracer/TraceSpan: deterministic durations under ManualClock, explicit
// parent ids across same-thread and cross-thread span creation, RAII /
// idempotent End, the bounded record ring with drop accounting, duration
// export into a MetricsRegistry, and concurrent span creation (TSan leg).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace texrheo::obs {
namespace {

TEST(TraceTest, ManualClockGivesDeterministicDurations) {
  ManualClock clock;
  clock.SetMicros(1000);
  Tracer tracer(&clock);
  {
    TraceSpan span = tracer.StartSpan("work");
    clock.AdvanceMicros(250);
  }
  std::vector<SpanRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "work");
  EXPECT_EQ(records[0].start_micros, 1000);
  EXPECT_EQ(records[0].duration_micros, 250);
  EXPECT_EQ(records[0].parent_id, 0u);
  EXPECT_NE(records[0].span_id, 0u);
}

TEST(TraceTest, ChildSpansCarryParentIds) {
  ManualClock clock;
  Tracer tracer(&clock);
  TraceSpan sweep = tracer.StartSpan("sweep");
  clock.AdvanceMicros(10);
  {
    TraceSpan sample = sweep.StartChild("shard_sample");
    clock.AdvanceMicros(30);
  }
  {
    TraceSpan gaussians = sweep.StartChild("gaussian_update");
    clock.AdvanceMicros(5);
  }
  const uint64_t sweep_id = sweep.span_id();
  sweep.End();
  sweep.End();  // Idempotent: must not record a second time.

  std::vector<SpanRecord> records = tracer.Drain();
  ASSERT_EQ(records.size(), 3u);  // Children end before the parent.
  EXPECT_EQ(records[0].name, "shard_sample");
  EXPECT_EQ(records[0].parent_id, sweep_id);
  EXPECT_EQ(records[0].duration_micros, 30);
  EXPECT_EQ(records[1].name, "gaussian_update");
  EXPECT_EQ(records[1].parent_id, sweep_id);
  EXPECT_EQ(records[2].name, "sweep");
  EXPECT_EQ(records[2].duration_micros, 45);
  EXPECT_TRUE(tracer.Records().empty());  // Drain removed them.
}

TEST(TraceTest, CrossThreadParentingByExplicitId) {
  ManualClock clock;
  Tracer tracer(&clock);
  TraceSpan request = tracer.StartSpan("request");
  const uint64_t request_id = request.span_id();
  request.End();  // Parent may finish before the queued child starts.

  std::thread worker([&tracer, &clock, request_id] {
    TraceSpan fold =
        tracer.StartSpanWithParent("fold_in", request_id);
    clock.AdvanceMicros(7);
  });
  worker.join();

  std::vector<SpanRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].name, "fold_in");
  EXPECT_EQ(records[1].parent_id, request_id);
  EXPECT_EQ(records[1].duration_micros, 7);
}

TEST(TraceTest, MovedFromSpanIsInert) {
  ManualClock clock;
  Tracer tracer(&clock);
  TraceSpan a = tracer.StartSpan("moved");
  TraceSpan b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): the contract.
  EXPECT_TRUE(b.active());
  a.End();  // No-op.
  b.End();
  EXPECT_EQ(tracer.Records().size(), 1u);
}

TEST(TraceTest, RingBoundDropsOldestAndCounts) {
  ManualClock clock;
  Tracer tracer(&clock, Tracer::Options{4});
  for (int i = 0; i < 10; ++i) {
    TraceSpan span = tracer.StartSpan("s" + std::to_string(i));
    clock.AdvanceMicros(1);
  }
  std::vector<SpanRecord> records = tracer.Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().name, "s6");  // Oldest surviving.
  EXPECT_EQ(records.back().name, "s9");
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(TraceTest, ZeroCapacityKeepsNoRecordsButStillExports) {
  ManualClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock, Tracer::Options{0});
  tracer.ExportDurationsTo(&registry);
  {
    TraceSpan span = tracer.StartSpan("request");
    clock.AdvanceMicros(128);
  }
  EXPECT_TRUE(tracer.Records().empty());
  MetricsSnapshot snap = registry.TakeSnapshot();
  const LatencyHistogram::Snapshot* hist = snap.Histogram("trace.request_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(hist->sum_micros, 128u);
}

TEST(TraceTest, ExportAggregatesBySpanName) {
  ManualClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock);
  tracer.ExportDurationsTo(&registry);
  for (int i = 1; i <= 3; ++i) {
    TraceSpan span = tracer.StartSpan("sweep");
    clock.AdvanceMicros(i * 100);
  }
  MetricsSnapshot snap = registry.TakeSnapshot();
  const LatencyHistogram::Snapshot* hist = snap.Histogram("trace.sweep_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum_micros, 600u);
  EXPECT_EQ(hist->max_micros, 300u);
}

TEST(TraceTest, ConcurrentSpansAreSafeAndAllRecorded) {
  ManualClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock, Tracer::Options{1 << 16});
  tracer.ExportDurationsTo(&registry);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span = tracer.StartSpan("hot");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<SpanRecord> records = tracer.Drain();
  EXPECT_EQ(records.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  // Span ids are unique even under contention.
  std::vector<uint64_t> ids;
  ids.reserve(records.size());
  for (const SpanRecord& r : records) ids.push_back(r.span_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.Histogram("trace.hot_us")->count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace texrheo::obs
