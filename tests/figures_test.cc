#include "eval/figures.h"

#include <gtest/gtest.h>

namespace texrheo::eval {
namespace {

// Dataset with hand-authored term mixes and emulsion concentrations.
recipe::Dataset FigureDataset() {
  recipe::Dataset ds;
  const auto& dict = text::TextureDictionary::Embedded();
  (void)dict;
  auto add_doc = [&ds](std::vector<const char*> terms,
                       std::vector<double> emulsion) {
    recipe::Document doc;
    doc.recipe_index = ds.documents.size();
    for (const char* t : terms) {
      doc.term_ids.push_back(ds.term_vocab.Add(t));
    }
    doc.gel_feature = math::Vector(3, 5.0);
    doc.emulsion_feature = math::Vector(emulsion.size(), 5.0);
    doc.gel_concentration = math::Vector(3, 0.01);
    doc.emulsion_concentration = math::Vector(std::move(emulsion));
    ds.documents.push_back(std::move(doc));
  };
  // Doc 0: hard + elastic, milk-heavy.
  add_doc({"katai", "burinburin"}, {0.0, 0.0, 0.0, 0.0, 0.7, 0.0});
  // Doc 1: soft + crumbly, cream-heavy.
  add_doc({"fuwafuwa", "horohoro"}, {0.0, 0.0, 0.1, 0.3, 0.0, 0.0});
  // Doc 2: sticky only, no emulsions.
  add_doc({"nettori"}, {0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  // Doc 3: hard + hard + soft, milk-heavy (closest to milk dish).
  add_doc({"katai", "dossiri", "yuruyuru"}, {0.02, 0.0, 0.0, 0.0, 0.8, 0.0});
  return ds;
}

TEST(CountCategoriesTest, TallyMatchesDictionaryPoles) {
  recipe::Dataset ds = FigureDataset();
  const auto& dict = text::TextureDictionary::Embedded();
  TermCategoryCounts c0 = CountCategories(ds.documents[0], ds.term_vocab, dict);
  EXPECT_EQ(c0.hard, 1);
  EXPECT_EQ(c0.elastic, 1);
  EXPECT_EQ(c0.soft, 0);
  EXPECT_EQ(c0.total, 2);
  TermCategoryCounts c2 = CountCategories(ds.documents[2], ds.term_vocab, dict);
  EXPECT_EQ(c2.sticky, 1);
  EXPECT_EQ(c2.total, 1);
  TermCategoryCounts c3 = CountCategories(ds.documents[3], ds.term_vocab, dict);
  EXPECT_EQ(c3.hard, 2);
  EXPECT_EQ(c3.soft, 1);
}

TEST(RankByEmulsionKLTest, MilkDishRanksMilkRecipesFirst) {
  recipe::Dataset ds = FigureDataset();
  // A milk-jelly-like reference dish.
  math::Vector dish = {0.03, 0.0, 0.0, 0.0, 0.78, 0.0};
  auto ranked = RankByEmulsionKL(ds, {0, 1, 2, 3}, dish);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  // Milk-heavy docs 3 and 0 come before the cream doc 1.
  EXPECT_TRUE((*ranked)[0].doc_index == 3 || (*ranked)[0].doc_index == 0);
  size_t cream_pos = 0, milk_pos = 0;
  for (size_t i = 0; i < ranked->size(); ++i) {
    if ((*ranked)[i].doc_index == 1) cream_pos = i;
    if ((*ranked)[i].doc_index == 3) milk_pos = i;
  }
  EXPECT_LT(milk_pos, cream_pos);
  // Sorted ascending.
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i].divergence, (*ranked)[i - 1].divergence);
  }
}

TEST(RankByEmulsionKLTest, RejectsOutOfRangeIndex) {
  recipe::Dataset ds = FigureDataset();
  math::Vector dish(6);
  EXPECT_FALSE(RankByEmulsionKL(ds, {99}, dish).ok());
}

TEST(BuildFig3HistogramTest, BinsPartitionRecipes) {
  recipe::Dataset ds = FigureDataset();
  math::Vector dish = {0.03, 0.0, 0.0, 0.0, 0.78, 0.0};
  auto ranked = RankByEmulsionKL(ds, {0, 1, 2, 3}, dish);
  ASSERT_TRUE(ranked.ok());
  auto bins = BuildFig3Histogram(ds, *ranked,
                                 text::TextureDictionary::Embedded(), 2);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(bins->size(), 2u);
  int total_recipes = 0, total_terms = 0;
  for (const auto& bin : *bins) {
    total_recipes += bin.recipes;
    total_terms += bin.counts.total;
    EXPECT_LE(bin.kl_lo, bin.kl_hi);
  }
  EXPECT_EQ(total_recipes, 4);
  EXPECT_EQ(total_terms, 8);
}

TEST(BuildFig3HistogramTest, RejectsBadBinCount) {
  recipe::Dataset ds = FigureDataset();
  EXPECT_FALSE(
      BuildFig3Histogram(ds, {}, text::TextureDictionary::Embedded(), 0)
          .ok());
}

TEST(BuildFig3HistogramTest, EmptyRankingGivesEmptyBins) {
  recipe::Dataset ds = FigureDataset();
  auto bins = BuildFig3Histogram(ds, {},
                                 text::TextureDictionary::Embedded(), 3);
  ASSERT_TRUE(bins.ok());
  for (const auto& bin : *bins) EXPECT_EQ(bin.recipes, 0);
}

TEST(BuildFig4PointsTest, AxisScoresMatchHandComputation) {
  recipe::Dataset ds = FigureDataset();
  math::Vector dish = {0.03, 0.0, 0.0, 0.0, 0.78, 0.0};
  auto ranked = RankByEmulsionKL(ds, {0, 1, 2, 3}, dish);
  ASSERT_TRUE(ranked.ok());
  auto points =
      BuildFig4Points(ds, *ranked, text::TextureDictionary::Embedded());
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_GE(p.hardness_score, -1.0);
    EXPECT_LE(p.hardness_score, 1.0);
    EXPECT_GE(p.kl_bucket, 0);
    EXPECT_LE(p.kl_bucket, 2);
    if (p.doc_index == 0) {
      // katai + burinburin: hardness (1-0)/2, cohesiveness (1-0)/2.
      EXPECT_DOUBLE_EQ(p.hardness_score, 0.5);
      EXPECT_DOUBLE_EQ(p.cohesiveness_score, 0.5);
    }
    if (p.doc_index == 1) {
      // fuwafuwa + horohoro: hardness -0.5, cohesiveness -0.5.
      EXPECT_DOUBLE_EQ(p.hardness_score, -0.5);
      EXPECT_DOUBLE_EQ(p.cohesiveness_score, -0.5);
    }
    if (p.doc_index == 3) {
      // 2 hard, 1 soft of 3 terms.
      EXPECT_NEAR(p.hardness_score, 1.0 / 3.0, 1e-12);
    }
  }
}

TEST(AxisCentroidTest, AveragesOverDocuments) {
  recipe::Dataset ds = FigureDataset();
  const auto& dict = text::TextureDictionary::Embedded();
  Fig4Point centroid = AxisCentroid(ds, {0, 1}, dict);
  // Combined counts: hard 1, soft 1, elastic 1, crumbly 1, total 4.
  EXPECT_DOUBLE_EQ(centroid.hardness_score, 0.0);
  EXPECT_DOUBLE_EQ(centroid.cohesiveness_score, 0.0);
}

TEST(AxisCentroidTest, EmptySelectionIsOrigin) {
  recipe::Dataset ds = FigureDataset();
  Fig4Point centroid =
      AxisCentroid(ds, {}, text::TextureDictionary::Embedded());
  EXPECT_DOUBLE_EQ(centroid.hardness_score, 0.0);
  EXPECT_DOUBLE_EQ(centroid.cohesiveness_score, 0.0);
}

}  // namespace
}  // namespace texrheo::eval
