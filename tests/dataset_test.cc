#include "recipe/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace texrheo::recipe {
namespace {

Recipe MakeRecipe(int64_t id, std::string description,
                  std::vector<IngredientLine> ingredients) {
  Recipe r;
  r.id = id;
  r.title = "r" + std::to_string(id);
  r.description = std::move(description);
  r.ingredients = std::move(ingredients);
  return r;
}

DatasetConfig DefaultConfig() { return DatasetConfig(); }

TEST(BuildDatasetTest, KeepsGelRecipeWithTerms) {
  std::vector<Recipe> corpus = {MakeRecipe(
      1, "the texture is purupuru and katai",
      {{"gelatin", "10 g"}, {"water", "490 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->documents.size(), 1u);
  EXPECT_EQ(ds->documents[0].term_ids.size(), 2u);
  EXPECT_EQ(ds->term_vocab.size(), 2u);
  EXPECT_EQ(ds->funnel.final_dataset, 1u);
  EXPECT_NEAR(ds->documents[0].gel_concentration[0], 0.02, 1e-12);
}

TEST(BuildDatasetTest, DropsRecipesWithoutGel) {
  std::vector<Recipe> corpus = {
      MakeRecipe(1, "purupuru", {{"milk", "200 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->documents.empty());
  EXPECT_EQ(ds->funnel.with_gel, 0u);
}

TEST(BuildDatasetTest, DropsRecipesWithoutTextureTerms) {
  std::vector<Recipe> corpus = {MakeRecipe(
      1, "a plain description", {{"gelatin", "5 g"}, {"water", "200 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->funnel.with_gel, 1u);
  EXPECT_EQ(ds->funnel.with_texture_terms, 0u);
  EXPECT_TRUE(ds->documents.empty());
}

TEST(BuildDatasetTest, AppliesUnrelatedWeightCap) {
  // 20% strawberry exceeds the paper's 10% cap.
  std::vector<Recipe> corpus = {
      MakeRecipe(1, "purupuru",
                 {{"gelatin", "5 g"},
                  {"water", "395 g"},
                  {"strawberry", "100 g"}}),
      MakeRecipe(2, "purupuru",
                 {{"gelatin", "5 g"},
                  {"water", "475 g"},
                  {"strawberry", "20 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->funnel.with_texture_terms, 2u);
  ASSERT_EQ(ds->documents.size(), 1u);
  EXPECT_EQ(corpus[ds->documents[0].recipe_index].id, 2);
}

TEST(BuildDatasetTest, SkipsUnparseableRecipes) {
  std::vector<Recipe> corpus = {
      MakeRecipe(1, "purupuru", {{"gelatin", "??"}}),
      MakeRecipe(2, "purupuru", {{"gelatin", "5 g"}, {"water", "200 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->documents.size(), 1u);
}

TEST(BuildDatasetTest, FeatureVectorsAreLogTransformed) {
  std::vector<Recipe> corpus = {MakeRecipe(
      1, "purupuru", {{"gelatin", "10 g"}, {"water", "490 g"}})};
  DatasetConfig config;
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         config);
  ASSERT_TRUE(ds.ok());
  const Document& doc = ds->documents[0];
  EXPECT_NEAR(doc.gel_feature[0], -std::log(0.02), 1e-12);
  // Absent gels floor at -log(epsilon).
  EXPECT_NEAR(doc.gel_feature[1], -std::log(config.feature.epsilon), 1e-12);
}

TEST(BuildDatasetTest, FunnelCountsAreMonotone) {
  // Mixed corpus: each stage of the funnel can only shrink.
  std::vector<Recipe> corpus = {
      MakeRecipe(1, "purupuru", {{"gelatin", "5 g"}, {"water", "245 g"}}),
      MakeRecipe(2, "nothing here", {{"gelatin", "5 g"}, {"water", "245 g"}}),
      MakeRecipe(3, "katai", {{"milk", "250 g"}}),
      MakeRecipe(4, "katai",
                 {{"gelatin", "5 g"}, {"water", "195 g"},
                  {"strawberry", "50 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  const FunnelStats& f = ds->funnel;
  EXPECT_EQ(f.total, 4u);
  EXPECT_LE(f.with_gel, f.total);
  EXPECT_LE(f.with_texture_terms, f.with_gel);
  EXPECT_LE(f.final_dataset, f.with_texture_terms);
  EXPECT_EQ(f.final_dataset, ds->documents.size());
  EXPECT_EQ(f.distinct_terms, ds->term_vocab.size());
}

TEST(BuildDatasetTest, TermIdsRoundTripThroughVocabulary) {
  std::vector<Recipe> corpus = {MakeRecipe(
      1, "purupuru then katai then purupuru",
      {{"gelatin", "5 g"}, {"water", "245 g"}})};
  auto ds = BuildDataset(corpus, IngredientDatabase::Embedded(),
                         text::TextureDictionary::Embedded(), nullptr,
                         DefaultConfig());
  ASSERT_TRUE(ds.ok());
  const Document& doc = ds->documents[0];
  ASSERT_EQ(doc.term_ids.size(), 3u);
  EXPECT_EQ(ds->term_vocab.WordOf(doc.term_ids[0]), "purupuru");
  EXPECT_EQ(ds->term_vocab.WordOf(doc.term_ids[1]), "katai");
  EXPECT_EQ(doc.term_ids[0], doc.term_ids[2]);
}

}  // namespace
}  // namespace texrheo::recipe
