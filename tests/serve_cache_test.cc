// CanonicalQueryKey: quantization boundaries, ingredient-order (dimension
// vs. insertion order) independence, term-bag independence, and tag
// separation between the gel and emulsion blocks.

#include "serve/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "math/linalg.h"

namespace texrheo::serve {
namespace {

math::Vector Vec(std::initializer_list<double> values) {
  math::Vector v(values.size());
  size_t i = 0;
  for (double x : values) v[i++] = x;
  return v;
}

constexpr double kQuantum = 1e-4;

TEST(CanonicalQueryKeyTest, IdenticalInputsIdenticalKeys) {
  std::string a =
      CanonicalQueryKey(Vec({0.01, 0, 0}), Vec({0.2, 0, 0, 0, 0, 0}),
                        {3, 1, 2}, kQuantum);
  std::string b =
      CanonicalQueryKey(Vec({0.01, 0, 0}), Vec({0.2, 0, 0, 0, 0, 0}),
                        {3, 1, 2}, kQuantum);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(CanonicalQueryKeyTest, TermOrderDoesNotMatter) {
  std::string a = CanonicalQueryKey(Vec({0.01}), Vec({}), {3, 1, 2}, kQuantum);
  std::string b = CanonicalQueryKey(Vec({0.01}), Vec({}), {2, 3, 1}, kQuantum);
  EXPECT_EQ(a, b);
}

TEST(CanonicalQueryKeyTest, TermMultiplicityMatters) {
  // Eq.-5 scores a bag, not a set: a repeated term is a different query.
  std::string once = CanonicalQueryKey(Vec({0.01}), Vec({}), {7}, kQuantum);
  std::string twice =
      CanonicalQueryKey(Vec({0.01}), Vec({}), {7, 7}, kQuantum);
  EXPECT_NE(once, twice);
}

TEST(CanonicalQueryKeyTest, SubQuantumNoiseCollapsesToOneKey) {
  // Two measurements of the same recipe differing by far less than the
  // quantum must share a cache entry.
  std::string a = CanonicalQueryKey(Vec({0.0100001}), Vec({}), {}, kQuantum);
  std::string b = CanonicalQueryKey(Vec({0.0099999}), Vec({}), {}, kQuantum);
  EXPECT_EQ(a, b);
}

TEST(CanonicalQueryKeyTest, SuperQuantumDifferenceSeparatesKeys) {
  std::string a = CanonicalQueryKey(Vec({0.0100}), Vec({}), {}, kQuantum);
  std::string b = CanonicalQueryKey(Vec({0.0102}), Vec({}), {}, kQuantum);
  EXPECT_NE(a, b);
}

TEST(CanonicalQueryKeyTest, RoundingBoundaryIsStable) {
  // llround: exactly half-quantum rounds away from zero; values on either
  // side of the midpoint land in adjacent cells.
  std::string below =
      CanonicalQueryKey(Vec({1.4 * kQuantum}), Vec({}), {}, kQuantum);
  std::string above =
      CanonicalQueryKey(Vec({1.6 * kQuantum}), Vec({}), {}, kQuantum);
  std::string one = CanonicalQueryKey(Vec({kQuantum}), Vec({}), {}, kQuantum);
  EXPECT_EQ(below, one);
  EXPECT_NE(above, one);
}

TEST(CanonicalQueryKeyTest, ZeroDimensionsAreOmitted) {
  // Sparse emission: explicit zeros and absent dimensions canonicalize the
  // same way, so vector padding cannot split the cache.
  std::string padded =
      CanonicalQueryKey(Vec({0.01, 0.0, 0.0}), Vec({}), {}, kQuantum);
  std::string no_tail = CanonicalQueryKey(Vec({0.01}), Vec({}), {}, kQuantum);
  EXPECT_EQ(padded, no_tail);
}

TEST(CanonicalQueryKeyTest, DimensionIndexMatters) {
  // Same mass in a different gel slot is a different recipe.
  std::string gelatin =
      CanonicalQueryKey(Vec({0.01, 0, 0}), Vec({}), {}, kQuantum);
  std::string agar =
      CanonicalQueryKey(Vec({0, 0, 0.01}), Vec({}), {}, kQuantum);
  EXPECT_NE(gelatin, agar);
}

TEST(CanonicalQueryKeyTest, GelAndEmulsionBlocksDoNotAlias) {
  std::string gel = CanonicalQueryKey(Vec({0.01}), Vec({}), {}, kQuantum);
  std::string emulsion = CanonicalQueryKey(Vec({}), Vec({0.01}), {}, kQuantum);
  EXPECT_NE(gel, emulsion);
}

TEST(CanonicalQueryKeyTest, EmptyQueryHasEmptyButUsableKey) {
  std::string key = CanonicalQueryKey(Vec({}), Vec({}), {}, kQuantum);
  EXPECT_TRUE(key.empty());  // Degenerate but a valid (cacheable) map key.
}

TEST(CanonicalQueryKeyTest, NegativeFeatureValuesKeepSign) {
  std::string pos = CanonicalQueryKey(Vec({0.01}), Vec({}), {}, kQuantum);
  std::string neg = CanonicalQueryKey(Vec({-0.01}), Vec({}), {}, kQuantum);
  EXPECT_NE(pos, neg);
}

TEST(CanonicalQueryKeyTest, SimilarityModeSeparatesOtherwiseEqualQueries) {
  // The SIMILAR ranking backend is answer semantics: the same recipe asked
  // under kl / embed / lexical / fused must land on four distinct keys.
  const math::Vector gel = Vec({0.01, 0, 0});
  const math::Vector emulsion = Vec({0.2, 0, 0, 0, 0, 0});
  std::vector<std::string> keys;
  for (const char* mode : {"kl", "embed", "lexical", "fused"}) {
    keys.push_back(CanonicalQueryKey(gel, emulsion, {1, 2}, kQuantum, mode));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << "modes " << i << " and " << j;
    }
  }
  // Same mode, same query: still one key.
  EXPECT_EQ(keys[0],
            CanonicalQueryKey(gel, emulsion, {1, 2}, kQuantum, "kl"));
}

TEST(CanonicalQueryKeyTest, EmptyModeIsByteIdenticalToTheLegacyKey) {
  // PredictTexture passes no mode; its cache entries must survive the mode
  // component's introduction unchanged (a reload-free rollout guarantee).
  std::string legacy =
      CanonicalQueryKey(Vec({0.01}), Vec({0.2}), {3, 1}, kQuantum);
  std::string explicit_empty =
      CanonicalQueryKey(Vec({0.01}), Vec({0.2}), {3, 1}, kQuantum, "");
  EXPECT_EQ(legacy, explicit_empty);
}

TEST(CanonicalQueryKeyTest, ModeCannotAliasIntoTermOrFeatureBytes) {
  // A mode suffix must never collide with a mode-less key whose trailing
  // components happen to spell the same characters.
  std::string with_mode =
      CanonicalQueryKey(Vec({0.01}), Vec({}), {}, kQuantum, "kl");
  std::string without = CanonicalQueryKey(Vec({0.01}), Vec({}), {}, kQuantum);
  EXPECT_NE(with_mode, without);
  EXPECT_NE(with_mode.find("kl"), std::string::npos);
}

}  // namespace
}  // namespace texrheo::serve
