#include "math/running_stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace texrheo::math {
namespace {

TEST(RunningStatsTest, HandComputedMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, StableUnderLargeOffset) {
  // Welford should not lose precision when values share a huge offset.
  RunningStats s;
  double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) s.Add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningMomentsTest, MeanAndScatterHandComputed) {
  RunningMoments m(2);
  m.Add({1.0, 2.0});
  m.Add({3.0, 6.0});
  EXPECT_EQ(m.count(), 2u);
  Vector mean = m.Mean();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
  Matrix scatter = m.Scatter();
  // Deviations: (-1,-2), (1,2) -> scatter [[2,4],[4,8]].
  EXPECT_DOUBLE_EQ(scatter(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(scatter(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(scatter(1, 1), 8.0);
}

TEST(RunningMomentsTest, EmptyAccumulatorIsZero) {
  RunningMoments m(3);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.Mean().Sum(), 0.0);
  EXPECT_DOUBLE_EQ(m.Scatter().Trace(), 0.0);
}

TEST(RunningMomentsTest, CovarianceMatchesScatterOverNMinusOne) {
  texrheo::Rng rng(3);
  RunningMoments m(2);
  for (int i = 0; i < 100; ++i) {
    m.Add({rng.NextGaussian(), rng.NextGaussian() * 2.0});
  }
  Matrix cov = m.Covariance();
  Matrix scatter = m.Scatter();
  EXPECT_NEAR(cov(0, 0), scatter(0, 0) / 99.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), scatter(1, 1) / 99.0, 1e-12);
}

TEST(RunningMomentsTest, ScatterIsSymmetricPositiveSemiDefinite) {
  texrheo::Rng rng(4);
  RunningMoments m(3);
  for (int i = 0; i < 50; ++i) {
    m.Add({rng.NextGaussian(), rng.NextGaussian(), rng.NextGaussian()});
  }
  Matrix s = m.Scatter();
  EXPECT_TRUE(s.IsSymmetric(1e-9));
  for (size_t i = 0; i < 3; ++i) EXPECT_GE(s(i, i), 0.0);
}

TEST(RunningMomentsTest, RecoversKnownCovariance) {
  texrheo::Rng rng(5);
  RunningMoments m(2);
  // x ~ N(0,1), y = 0.5 x + noise(0, 0.1): cov(x,y) = 0.5.
  for (int i = 0; i < 100000; ++i) {
    double x = rng.NextGaussian();
    double y = 0.5 * x + 0.1 * rng.NextGaussian();
    m.Add({x, y});
  }
  Matrix cov = m.Covariance();
  EXPECT_NEAR(cov(0, 0), 1.0, 0.03);
  EXPECT_NEAR(cov(0, 1), 0.5, 0.02);
  EXPECT_NEAR(cov(1, 1), 0.26, 0.02);
}

}  // namespace
}  // namespace texrheo::math
