// Ingestion chaos suite: kill the ingester mid-WAL-append, mid-compaction,
// mid-retrain, and mid-rolling-reload, then prove the durability contract —
// every acknowledged recipe is recovered and re-folded exactly once,
// redelivery dedups to the original sequence, the replica fleet's
// fingerprints converge after a partial rollout, and a concurrent query
// stream never sees a failed query.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/joint_topic_model.h"
#include "fault_injection.h"
#include "ingest/record.h"
#include "ingest/service.h"
#include "ingest/wal.h"
#include "math/distributions.h"
#include "recipe/dataset.h"
#include "recipe/ingredient.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"

namespace texrheo::ingest {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/texrheo_chaos_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

math::Gaussian MakeGaussian(double mean, size_t dim) {
  auto g = math::Gaussian::FromPrecision(math::Vector(dim, mean),
                                         math::Matrix::Identity(dim, 4.0));
  EXPECT_TRUE(g.ok());
  return *g;
}

core::ModelSnapshot BaseModel() {
  core::ModelSnapshot model;
  model.vocab.Add("katai");
  model.vocab.Add("purupuru");
  model.vocab.Add("fuwafuwa");
  model.estimates.phi = {{0.8, 0.1, 0.1}, {0.1, 0.45, 0.45}};
  model.estimates.gel_topics = {MakeGaussian(2.0, 3), MakeGaussian(6.0, 3)};
  model.estimates.emulsion_topics = {MakeGaussian(1.0, 6),
                                     MakeGaussian(3.0, 6)};
  model.estimates.topic_recipe_count = {4, 4};
  return model;
}

recipe::Dataset BaseCorpus() {
  recipe::Dataset ds;
  ds.term_vocab.Add("katai");
  ds.term_vocab.Add("purupuru");
  ds.term_vocab.Add("fuwafuwa");
  for (int i = 0; i < 8; ++i) {
    recipe::Document doc;
    doc.recipe_index = static_cast<size_t>(i);
    doc.term_ids = i < 4 ? std::vector<int32_t>{0, 0}
                         : std::vector<int32_t>{1, 2};
    doc.gel_feature = math::Vector(3, i < 4 ? 2.0 : 6.0);
    doc.gel_concentration = math::Vector(3, 0.01);
    doc.emulsion_feature = math::Vector(6, 1.0 + 0.2 * (i % 4));
    doc.emulsion_concentration = math::Vector(6, 0.1 + 0.05 * (i % 4));
    ds.documents.push_back(std::move(doc));
  }
  return ds;
}

struct Stack {
  recipe::Dataset corpus;
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<IngestService> service;
};

Stack MakeStack(const std::string& dir, FileOps& ops = FileOps::Real()) {
  Stack stack;
  stack.corpus = BaseCorpus();
  serve::QueryEngineConfig engine_config;
  engine_config.fold_in_sweeps = 10;
  engine_config.batch_linger_micros = 0;
  auto snapshot = serve::ServingSnapshot::FromModel(BaseModel(), "base");
  EXPECT_TRUE(snapshot.ok());
  auto engine =
      serve::QueryEngine::Create(engine_config, *snapshot, &stack.corpus);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  stack.engine = std::move(engine).value();

  IngestServiceConfig config;
  config.wal_dir = dir + "/wal";
  config.refresh.train.num_topics = 2;
  config.refresh.train.alpha = 0.5;
  config.refresh.train.gamma = 0.5;
  config.refresh.train.burn_in_sweeps = 4;
  config.refresh.train.sweeps = 10;
  config.refresh.train.seed = 77;
  config.refresh.refresh_sweeps = 4;
  config.refresh.model_dir = dir + "/models";
  config.refresh.backoff.initial_millis = 1.0;
  config.refresh.backoff.max_millis = 5.0;
  auto service = IngestService::Create(config, stack.engine.get(),
                                       &stack.corpus, ops);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  stack.service = std::move(service).value();
  return stack;
}

IngestRecord Record(int i, std::vector<std::string> terms = {"katai"}) {
  IngestRecord record;
  record.gel = math::Vector(3);
  record.gel[0] = 0.01 + 0.0003 * i;
  record.emulsion = math::Vector(6, 0.1);
  record.terms = std::move(terms);
  return record;
}

/// Re-sends every acknowledged record; each must dedup to the sequence it
/// was originally acknowledged with, with no growth of the engine delta.
void ExpectExactlyOnce(Stack& stack,
                       const std::vector<std::pair<uint64_t, std::string>>&
                           acked) {
  const uint64_t docs_before = stack.engine->GetDeltaStats().delta_docs;
  for (const auto& [sequence, key] : acked) {
    auto decoded = DecodeRecord(key);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    auto result = stack.service->Ingest(*decoded);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deduped) << "seq " << sequence << " was re-appended";
    // Records absorbed into a refreshed model re-acknowledge with 0.
    if (result->sequence != 0) {
      EXPECT_EQ(result->sequence, sequence);
    }
  }
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, docs_before);
}

TEST(IngestChaosTest, CrashCyclesMidWalAppendLoseNothingAcknowledged) {
  std::string dir = FreshDir("mid_append");
  std::vector<std::pair<uint64_t, std::string>> acked;
  // Three crash cycles; each epoch acknowledges two records, then a
  // fault-injected append tears a frame mid-write and the process "dies".
  for (int epoch = 0; epoch < 3; ++epoch) {
    FaultInjectingFileOps ops;
    Stack stack = MakeStack(dir, ops);
    ASSERT_TRUE(stack.service->Recover().ok());
    EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, acked.size());

    for (int i = 0; i < 2; ++i) {
      IngestRecord record = Record(epoch * 10 + i);
      auto result = stack.service->Ingest(record);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      CanonicalizeRecord(record);
      acked.emplace_back(result->sequence, EncodeRecord(record));
    }
    // Torn frame: the first write call lands 10 bytes, the next dies.
    ops.max_write_bytes = 10;
    ops.fail_write_after = ops.write_calls + 1;
    auto torn = stack.service->Ingest(Record(epoch * 10 + 9));
    EXPECT_FALSE(torn.ok());  // Never acknowledged.
    ops.fail_write_after = -1;
    ops.max_write_bytes = 0;
  }  // Stack destruction == crash (memory gone, WAL + torn bytes remain).

  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  EXPECT_EQ(stack.service->live_records(), acked.size());
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, acked.size());
  // The torn, unacknowledged records must NOT have been resurrected.
  obs::MetricsSnapshot snap = stack.engine->TakeMetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("ingest.records.recovered"), acked.size());
  ExpectExactlyOnce(stack, acked);
}

TEST(IngestChaosTest, CrashMidCompactionKeepsAbsorbedRecordsExactlyOnce) {
  std::string dir = FreshDir("mid_compact");
  std::vector<std::pair<uint64_t, std::string>> acked;
  {
    FaultInjectingFileOps ops;
    Stack stack = MakeStack(dir, ops);
    ASSERT_TRUE(stack.service->Recover().ok());
    for (int i = 0; i < 3; ++i) {
      IngestRecord record = Record(i);
      auto result = stack.service->Ingest(record);
      ASSERT_TRUE(result.ok());
      CanonicalizeRecord(record);
      acked.emplace_back(result->sequence, EncodeRecord(record));
    }
    // The refresh retrains, packs, reloads, persists the delta corpus —
    // and then dies removing covered WAL segments.
    ops.fail_remove = true;
    auto outcome = stack.service->Refresh();
    EXPECT_FALSE(outcome.ok()) << "compaction was supposed to fail";
    obs::MetricsSnapshot snap = stack.engine->TakeMetricsSnapshot();
    EXPECT_EQ(snap.CounterValue("ingest.refresh.failures"), 1u);
  }  // Crash with the WAL un-compacted but the delta corpus persisted.

  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  // The absorbed records came back from the delta corpus; the stale WAL
  // segments (sequences at or below the absorbed high-water mark) did not
  // double-fold them.
  EXPECT_EQ(stack.service->absorbed_records(), acked.size());
  EXPECT_EQ(stack.service->live_records(), 0u);
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, acked.size());
  ExpectExactlyOnce(stack, acked);

  // The next refresh finishes the interrupted compaction.
  auto outcome = stack.service->Refresh();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto replay = ReplayWal(dir + "/wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->records.empty());  // Everything covered + compacted.
}

TEST(IngestChaosTest, CrashMidRetrainLeavesOldSnapshotServing) {
  std::string dir = FreshDir("mid_retrain");
  std::vector<std::pair<uint64_t, std::string>> acked;
  {
    FaultInjectingFileOps ops;
    Stack stack = MakeStack(dir, ops);
    ASSERT_TRUE(stack.service->Recover().ok());
    for (int i = 0; i < 3; ++i) {
      IngestRecord record = Record(i);
      auto result = stack.service->Ingest(record);
      ASSERT_TRUE(result.ok());
      CanonicalizeRecord(record);
      acked.emplace_back(result->sequence, EncodeRecord(record));
    }
    const uint32_t before = stack.engine->snapshot()->fingerprint();
    // Packing the retrained model hits a full disk.
    ops.fail_write_after = ops.write_calls;
    auto outcome = stack.service->Refresh();
    EXPECT_FALSE(outcome.ok());
    ops.fail_write_after = -1;

    // Degraded, not down: old snapshot serving, records still live,
    // ingestion still accepting.
    EXPECT_EQ(stack.engine->snapshot()->fingerprint(), before);
    EXPECT_EQ(stack.service->live_records(), acked.size());
    serve::TextureQuery query;
    query.gel_concentration = math::Vector(3, 0.01);
    query.texture_terms = {"katai"};
    EXPECT_TRUE(stack.engine->PredictTexture(query).ok());
    IngestRecord extra = Record(50);
    auto result = stack.service->Ingest(extra);
    ASSERT_TRUE(result.ok());
    CanonicalizeRecord(extra);
    acked.emplace_back(result->sequence, EncodeRecord(extra));
  }  // Crash before any successful refresh.

  Stack stack = MakeStack(dir);
  ASSERT_TRUE(stack.service->Recover().ok());
  EXPECT_EQ(stack.service->live_records(), acked.size());
  ExpectExactlyOnce(stack, acked);
  auto outcome = stack.service->Refresh();  // Clean disk: succeeds now.
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->covered_sequence, acked.size());
}

TEST(IngestChaosTest, RollingReloadDyingPartwayConvergesOnRetry) {
  std::string dir = FreshDir("mid_roll");
  // A three-replica "fleet": the ingest service folds into replica 0 and
  // publishes refreshes to all three via the reload callback, the way the
  // router's ROLLING_RELOAD walks its replicas.
  Stack primary = MakeStack(dir);
  recipe::Dataset corpus_b = BaseCorpus();
  recipe::Dataset corpus_c = BaseCorpus();
  serve::QueryEngineConfig engine_config;
  engine_config.fold_in_sweeps = 10;
  engine_config.batch_linger_micros = 0;
  auto snapshot = serve::ServingSnapshot::FromModel(BaseModel(), "base");
  ASSERT_TRUE(snapshot.ok());
  auto engine_b = serve::QueryEngine::Create(engine_config, *snapshot,
                                             &corpus_b);
  auto engine_c = serve::QueryEngine::Create(engine_config, *snapshot,
                                             &corpus_c);
  ASSERT_TRUE(engine_b.ok() && engine_c.ok());
  std::vector<serve::QueryEngine*> fleet = {
      primary.engine.get(), engine_b->get(), engine_c->get()};

  ASSERT_TRUE(primary.service->Recover().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(primary.service->Ingest(Record(i)).ok());
  }

  int attempts = 0;
  bool saw_mixed_fleet = false;
  primary.service->SetReloadCallback([&](const std::string& path) -> Status {
    ++attempts;
    if (attempts == 1) {
      // The rollout dies after the first replica swapped: the fleet is
      // now serving two different fingerprints.
      Status s = fleet[0]->ReloadFromFile(path);
      if (!s.ok()) return s;
      saw_mixed_fleet = fleet[0]->snapshot()->fingerprint() !=
                        fleet[1]->snapshot()->fingerprint();
      return Status::Unavailable("injected: router died mid-rollout");
    }
    for (serve::QueryEngine* replica : fleet) {
      TEXRHEO_RETURN_IF_ERROR(replica->ReloadFromFile(path));
    }
    return Status::OK();
  });

  auto outcome = primary.service->RefreshWithRetry();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->attempts, 2);
  EXPECT_TRUE(saw_mixed_fleet);
  // Convergence: every replica on the refreshed fingerprint.
  for (serve::QueryEngine* replica : fleet) {
    EXPECT_EQ(replica->snapshot()->fingerprint(), outcome->fingerprint);
  }
  // The streamed recipes survived the double reload on the primary.
  EXPECT_EQ(primary.engine->GetDeltaStats().delta_docs, 3u);
}

TEST(IngestChaosTest, ConcurrentQueriesNeverFailAcrossRefreshAndRecovery) {
  std::string dir = FreshDir("live_queries");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_failures{0};
  std::atomic<uint64_t> queries{0};
  auto hammer = [&](serve::QueryEngine* engine) {
    serve::TextureQuery query;
    query.gel_concentration = math::Vector(3, 0.01);
    query.texture_terms = {"katai"};
    while (!stop.load(std::memory_order_relaxed)) {
      if (!engine->PredictTexture(query).ok()) {
        query_failures.fetch_add(1, std::memory_order_relaxed);
      }
      queries.fetch_add(1, std::memory_order_relaxed);
    }
  };

  {
    Stack stack = MakeStack(dir);
    ASSERT_TRUE(stack.service->Recover().ok());
    stop = false;
    std::thread load(hammer, stack.engine.get());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(stack.service->Ingest(Record(i)).ok());
    }
    auto outcome = stack.service->Refresh();  // Hot swap under load.
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    for (int i = 5; i < 8; ++i) {
      ASSERT_TRUE(stack.service->Ingest(Record(i)).ok());
    }
    stop = true;
    load.join();
  }  // Crash.

  Stack stack = MakeStack(dir);
  stop = false;
  std::thread load(hammer, stack.engine.get());
  ASSERT_TRUE(stack.service->Recover().ok());  // Recovery under load.
  ASSERT_TRUE(stack.service->Ingest(Record(100)).ok());
  stop = true;
  load.join();

  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(query_failures.load(), 0u);
  EXPECT_EQ(stack.engine->GetDeltaStats().delta_docs, 9u);
}

}  // namespace
}  // namespace texrheo::ingest
