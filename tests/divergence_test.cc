#include "math/divergence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace texrheo::math {
namespace {

TEST(DiscreteKLTest, ZeroForIdenticalDistributions) {
  Vector p = {0.2, 0.3, 0.5};
  auto kl = DiscreteKL(p, p, 0.0);
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(*kl, 0.0, 1e-12);
}

TEST(DiscreteKLTest, MatchesHandComputedValue) {
  Vector p = {0.5, 0.5};
  Vector q = {0.25, 0.75};
  auto kl = DiscreteKL(p, q, 0.0);
  ASSERT_TRUE(kl.ok());
  double expected =
      0.5 * std::log(0.5 / 0.25) + 0.5 * std::log(0.5 / 0.75);
  EXPECT_NEAR(*kl, expected, 1e-12);
}

TEST(DiscreteKLTest, NormalizesUnnormalizedInputs) {
  auto a = DiscreteKL({1.0, 1.0}, {1.0, 3.0}, 0.0);
  auto b = DiscreteKL({10.0, 10.0}, {5.0, 15.0}, 0.0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(*a, *b, 1e-12);
}

TEST(DiscreteKLTest, SmoothingHandlesZeroComponents) {
  // Without smoothing, q having zero mass where p has mass diverges;
  // the default smoothing keeps it finite.
  auto kl = DiscreteKL({1.0, 0.0}, {0.0, 1.0});
  ASSERT_TRUE(kl.ok());
  EXPECT_TRUE(std::isfinite(*kl));
  EXPECT_GT(*kl, 1.0);
}

TEST(DiscreteKLTest, ErrorsOnBadInput) {
  EXPECT_FALSE(DiscreteKL({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(DiscreteKL({-1.0, 2.0}, {1.0, 1.0}).ok());
  EXPECT_FALSE(DiscreteKL(Vector{}, Vector{}).ok());
  EXPECT_FALSE(DiscreteKL({0.0, 0.0}, {1.0, 1.0}, 0.0).ok());
}

class DivergencePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  Vector RandomDistribution(texrheo::Rng& rng, size_t n) {
    Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = rng.NextDouble() + 0.01;
    return v;
  }
};

TEST_P(DivergencePropertyTest, KLNonNegative) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()));
  Vector p = RandomDistribution(rng, 6);
  Vector q = RandomDistribution(rng, 6);
  auto kl = DiscreteKL(p, q, 1e-9);
  ASSERT_TRUE(kl.ok());
  EXPECT_GE(*kl, 0.0);
}

TEST_P(DivergencePropertyTest, SymmetricKLIsSymmetric) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 50);
  Vector p = RandomDistribution(rng, 5);
  Vector q = RandomDistribution(rng, 5);
  auto ab = SymmetricDiscreteKL(p, q);
  auto ba = SymmetricDiscreteKL(q, p);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-12);
}

TEST_P(DivergencePropertyTest, JensenShannonBoundedByLog2) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  Vector p = RandomDistribution(rng, 4);
  Vector q = RandomDistribution(rng, 4);
  auto js = JensenShannon(p, q);
  ASSERT_TRUE(js.ok());
  EXPECT_GE(*js, 0.0);
  EXPECT_LE(*js, std::log(2.0) + 1e-12);
}

TEST_P(DivergencePropertyTest, HellingerIsMetricLike) {
  texrheo::Rng rng(static_cast<uint64_t>(GetParam()) + 150);
  Vector p = RandomDistribution(rng, 4);
  Vector q = RandomDistribution(rng, 4);
  Vector r = RandomDistribution(rng, 4);
  auto pq = Hellinger(p, q);
  auto qp = Hellinger(q, p);
  auto pr = Hellinger(p, r);
  auto rq = Hellinger(r, q);
  ASSERT_TRUE(pq.ok() && qp.ok() && pr.ok() && rq.ok());
  EXPECT_NEAR(*pq, *qp, 1e-12);                 // Symmetry.
  EXPECT_GE(*pq, 0.0);
  EXPECT_LE(*pq, 1.0);
  EXPECT_LE(*pq, *pr + *rq + 1e-12);            // Triangle inequality.
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivergencePropertyTest,
                         ::testing::Range(0, 10));

TEST(HellingerTest, MaximalForDisjointSupport) {
  auto h = Hellinger({1.0, 0.0}, {0.0, 1.0}, 0.0);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, 1.0, 1e-12);
}

TEST(JensenShannonTest, ZeroForIdentical) {
  Vector p = {0.1, 0.9};
  auto js = JensenShannon(p, p, 0.0);
  ASSERT_TRUE(js.ok());
  EXPECT_NEAR(*js, 0.0, 1e-12);
}

}  // namespace
}  // namespace texrheo::math
