#include "eval/dish_analysis.h"

#include <gtest/gtest.h>

namespace texrheo::eval {
namespace {

// One shared small experiment (deterministic).
const ExperimentResult& SharedResult() {
  static const ExperimentResult& result = *new ExperimentResult([] {
    ExperimentConfig config = DefaultExperimentConfig(0.05);
    config.model.sweeps = 120;
    auto result_or = RunJointExperiment(config);
    EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
    return std::move(result_or).value();
  }());
  return result;
}

TEST(DishAnalysisTest, AssignsBothDishesToSameGelatinTopic) {
  // Both Table II(b) dishes share the gelatin 2.5% base; the paper assigns
  // them to the same topic.
  auto bavarois = AnalyzeDish(SharedResult(), rheology::TableIIb()[0]);
  auto milk_jelly = AnalyzeDish(SharedResult(), rheology::TableIIb()[1]);
  ASSERT_TRUE(bavarois.ok());
  ASSERT_TRUE(milk_jelly.ok());
  EXPECT_EQ(bavarois->assigned_topic, milk_jelly->assigned_topic);
}

TEST(DishAnalysisTest, RankedListCoversAssignedTopic) {
  auto analysis = AnalyzeDish(SharedResult(), rheology::TableIIb()[0]);
  ASSERT_TRUE(analysis.ok());
  size_t topic_size =
      DocsInTopic(SharedResult().estimates, analysis->assigned_topic).size();
  EXPECT_EQ(analysis->ranked.size(), topic_size);
  for (size_t i = 1; i < analysis->ranked.size(); ++i) {
    EXPECT_GE(analysis->ranked[i].divergence,
              analysis->ranked[i - 1].divergence);
  }
}

TEST(DishAnalysisTest, Fig3BinsPartitionTheRanking) {
  auto analysis = AnalyzeDish(SharedResult(), rheology::TableIIb()[1], 4);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->fig3_bins.size(), 4u);
  int recipes = 0;
  for (const auto& bin : analysis->fig3_bins) recipes += bin.recipes;
  EXPECT_EQ(recipes, static_cast<int>(analysis->ranked.size()));
}

TEST(DishAnalysisTest, Fig4PointsMatchRanking) {
  auto analysis = AnalyzeDish(SharedResult(), rheology::TableIIb()[0]);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->fig4_points.size(), analysis->ranked.size());
  for (const auto& p : analysis->fig4_points) {
    EXPECT_GE(p.kl_bucket, 0);
    EXPECT_LE(p.kl_bucket, 2);
    EXPECT_GE(p.hardness_score, -1.0);
    EXPECT_LE(p.hardness_score, 1.0);
  }
}

TEST(DishAnalysisTest, CentroidComesFromAssignedTopic) {
  auto analysis = AnalyzeDish(SharedResult(), rheology::TableIIb()[0]);
  ASSERT_TRUE(analysis.ok());
  Fig4Point expected = AxisCentroid(
      SharedResult().dataset,
      DocsInTopic(SharedResult().estimates, analysis->assigned_topic),
      text::TextureDictionary::Embedded());
  EXPECT_DOUBLE_EQ(analysis->topic_centroid.hardness_score,
                   expected.hardness_score);
  EXPECT_DOUBLE_EQ(analysis->topic_centroid.cohesiveness_score,
                   expected.cohesiveness_score);
}

TEST(DishAnalysisTest, DishNamePropagates) {
  auto analysis = AnalyzeDish(SharedResult(), rheology::TableIIb()[0]);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->dish_name, "Bavarois");
}

}  // namespace
}  // namespace texrheo::eval
