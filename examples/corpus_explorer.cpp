// Corpus explorer: generate a synthetic recipe-sharing corpus, save it to
// TSV, load it back, and print descriptive statistics - a tour of the data
// layer (generator, corpus IO, concentration features, dictionary) without
// any topic modeling.
//
// Run:  ./build/examples/corpus_explorer [--recipes 5000] [--out corpus.tsv]

#include <algorithm>
#include <cstdio>
#include <map>

#include "corpus/generator.h"
#include "recipe/dataset.h"
#include "recipe/features.h"
#include "text/tokenizer.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace texrheo;

  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "corpus_explorer: generate + analyze a synthetic corpus.\nflags: --recipes <n> (default 5000) --out <path> --format tsv|jsonl\n");
    return 0;
  }
  size_t n = static_cast<size_t>(flags.GetInt("recipes", 5000).value_or(5000));
  std::string out = flags.GetString("out", "");

  corpus::CorpusGenConfig config;
  config.num_recipes = n;
  corpus::CorpusGenerator generator(
      config, &rheology::GelPhysicsModel::Calibrated(),
      &text::TextureDictionary::Embedded());
  std::vector<recipe::Recipe> recipes = generator.Generate();
  std::printf("generated %zu recipes\n", recipes.size());

  // Optional round trip through one of the corpus file formats.
  if (!out.empty()) {
    std::string format = flags.GetString("format", "tsv");
    Status saved = format == "jsonl" ? recipe::SaveCorpusJsonl(out, recipes)
                                     : recipe::SaveCorpus(out, recipes);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    auto loaded = format == "jsonl" ? recipe::LoadCorpusJsonl(out)
                                    : recipe::LoadCorpus(out);
    if (!loaded.ok() || loaded->size() != recipes.size()) {
      std::fprintf(stderr, "round trip failed\n");
      return 1;
    }
    std::printf("saved + reloaded %zu recipes via %s (%s)\n", loaded->size(),
                out.c_str(), format.c_str());
  }

  // Per-template statistics.
  struct TemplateStats {
    int count = 0;
    double hardness_sum = 0.0;
    int with_terms = 0;
  };
  std::map<std::string, TemplateStats> by_template;
  const auto& dict = text::TextureDictionary::Embedded();
  std::map<std::string, int> term_counts;
  for (const auto& r : recipes) {
    TemplateStats& stats = by_template[r.metadata.at(corpus::kMetaTemplate)];
    ++stats.count;
    stats.hardness_sum += std::stod(r.metadata.at(corpus::kMetaHardness));
    auto terms = text::Tokenizer::ExtractTextureTerms(r.description, dict);
    if (!terms.empty()) ++stats.with_terms;
    for (const auto& t : terms) ++term_counts[t];
  }

  TablePrinter table({"Dish template", "#Recipes", "mean hardness (RU)",
                      "% with texture terms"});
  for (const auto& [name, stats] : by_template) {
    table.AddRow({name, std::to_string(stats.count),
                  FormatDouble(stats.hardness_sum / stats.count, 2),
                  FormatDouble(100.0 * stats.with_terms / stats.count, 1)});
  }
  std::printf("\n%s\n", table.ToString().c_str());

  // Most frequent texture terms (Zipf head).
  std::vector<std::pair<std::string, int>> ranked(term_counts.begin(),
                                                  term_counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("top texture terms: ");
  for (size_t i = 0; i < ranked.size() && i < 12; ++i) {
    std::printf("%s(%d) ", ranked[i].first.c_str(), ranked[i].second);
  }
  std::printf("\n%zu distinct terms observed of %zu in the dictionary\n",
              ranked.size(), dict.size());
  return 0;
}
