// Recipe annotator: the paper's end goal applied to one unseen recipe.
// Posted recipes rarely say what texture they produce; this tool predicts
// it from the ingredient list alone.
//
//   1. parse the ingredient quantities and compute concentration vectors,
//   2. place the recipe in the trained joint topic model's most likely
//      concentration topic,
//   3. report that topic's sensory texture terms plus the simulated
//      rheometer measurement (hardness / cohesiveness / adhesiveness).
//
// Run with the built-in demo recipe:
//   ./build/examples/recipe_annotator
// or annotate your own (name=quantity pairs), e.g.
//   --ingredients "gelatin=8 g;milk=300 cc;sugar=2 tbsp;water=150 cc"
// Train once and reuse the model:
//   ./build/examples/recipe_annotator --save model.txt
//   ./build/examples/recipe_annotator --load model.txt --ingredients ...

#include <algorithm>
#include <cstdio>

#include "core/joint_topic_model.h"
#include "core/serialization.h"
#include "eval/experiment.h"
#include "recipe/features.h"
#include "rheology/rheometer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace texrheo;

  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "recipe_annotator: predict texture terms + rheology for a recipe.\nflags: --ingredients <name=qty;...> --scale <f> --save <path> --load <path>\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.1).value_or(0.1);
  std::string spec = flags.GetString(
      "ingredients", "gelatin=12 g;water=350 cc;sugar=1 tbsp");
  SetLogLevel(LogLevel::kWarning);

  // Parse the ingredient spec into a Recipe.
  recipe::Recipe query;
  query.id = 0;
  query.title = "(your recipe)";
  for (const std::string& part : Split(spec, ';')) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "malformed ingredient '%s' (want name=quantity)\n",
                   part.c_str());
      return 1;
    }
    query.ingredients.push_back(
        {std::string(Trim(part.substr(0, eq))),
         std::string(Trim(part.substr(eq + 1)))});
  }

  auto conc = recipe::ComputeConcentrations(
      query, recipe::IngredientDatabase::Embedded());
  if (!conc.ok()) {
    std::fprintf(stderr, "could not parse recipe: %s\n",
                 conc.status().ToString().c_str());
    return 1;
  }
  std::printf("recipe (%.0f g total):\n", conc->total_grams);
  for (const auto& line : query.ingredients) {
    std::printf("  %-14s %s\n", line.name.c_str(), line.quantity.c_str());
  }
  if (!conc->HasAnyGel()) {
    std::printf("no gelling agent found - this model only covers gel "
                "dishes (gelatin / kanten / agar)\n");
    return 0;
  }

  // Simulated rheometer measurement.
  auto measurement = rheology::SimulateDish(
      rheology::GelPhysicsModel::Calibrated(), conc->gel, conc->emulsion,
      rheology::RheometerConfig());
  if (measurement.ok()) {
    const auto& tpa = measurement->attributes;
    std::printf(
        "\nsimulated TPA: hardness %.2f RU, cohesiveness %.2f, "
        "adhesiveness %.2f\n",
        tpa.hardness, tpa.cohesiveness, tpa.adhesiveness);
  }

  // Obtain a trained model: load a snapshot when --load is given,
  // otherwise train from scratch (and optionally persist with --save).
  core::ModelSnapshot snapshot;
  std::string load_path = flags.GetString("load", "");
  if (!load_path.empty()) {
    auto loaded = core::LoadModel(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    snapshot = std::move(loaded).value();
    std::printf("\nloaded model from %s (%d topics, %zu terms)\n",
                load_path.c_str(), snapshot.num_topics(),
                snapshot.vocab.size());
  } else {
    std::printf("\ntraining joint topic model (scale %.2f)...\n", scale);
    auto result =
        eval::RunJointExperiment(eval::DefaultExperimentConfig(scale));
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    snapshot =
        core::MakeSnapshot(result->estimates, result->dataset.term_vocab);
    std::string save_path = flags.GetString("save", "");
    if (!save_path.empty()) {
      Status saved = core::SaveModel(save_path, snapshot);
      std::printf("%s\n", saved.ok()
                               ? ("saved model to " + save_path).c_str()
                               : saved.ToString().c_str());
    }
  }

  recipe::FeatureConfig fc;
  auto link =
      core::LinkConcentrationToTopic(snapshot.estimates, conc->gel, fc);
  if (!link.ok()) {
    std::fprintf(stderr, "topic inference failed: %s\n",
                 link.status().ToString().c_str());
    return 1;
  }
  std::printf("most similar topic: %d\n", link->topic);
  // Top terms of the inferred topic, straight from phi.
  const auto& phi_k =
      snapshot.estimates.phi[static_cast<size_t>(link->topic)];
  std::vector<size_t> order(phi_k.size());
  for (size_t v = 0; v < order.size(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&phi_k](size_t a, size_t b) { return phi_k[a] > phi_k[b]; });
  std::printf("expected sensory texture terms:\n");
  for (size_t rank = 0; rank < order.size() && rank < 8; ++rank) {
    if (phi_k[order[rank]] < 0.02) break;
    const std::string& term =
        snapshot.vocab.WordOf(static_cast<int32_t>(order[rank]));
    const text::TextureTerm* entry =
        text::TextureDictionary::Embedded().Find(term);
    std::printf("  %-14s %.3f  (%s)\n", term.c_str(), phi_k[order[rank]],
                entry != nullptr ? entry->gloss.c_str() : "");
  }
  return 0;
}
