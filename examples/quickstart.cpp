// Quickstart: the whole pipeline in ~60 lines.
//
//   1. generate a (synthetic) recipe-sharing-site corpus,
//   2. screen texture terms with word2vec and build the model dataset,
//   3. train the joint topic model by Gibbs sampling,
//   4. print the recovered topics and link them to published food-science
//      measurements (Table I of the paper).
//
// Build & run:  ./build/examples/quickstart [--scale 0.1]

#include <cstdio>

#include "eval/experiment.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace texrheo;

  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "quickstart: the full pipeline in one call; prints the topic table.\nflags: --scale <f> (default 0.1)\n");
    return 0;
  }
  double scale = flags.GetDouble("scale", 0.1).value_or(0.1);
  SetLogLevel(LogLevel::kWarning);

  // DefaultExperimentConfig wires the four stages together; every knob
  // (corpus size, Gibbs schedule, hyperparameters, word2vec dims) is a
  // plain struct field you can override.
  eval::ExperimentConfig config = eval::DefaultExperimentConfig(scale);

  auto result = eval::RunJointExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const auto& funnel = result->dataset.funnel;
  std::printf("corpus: %zu recipes -> %zu with texture terms -> %zu modeled\n",
              funnel.total, funnel.with_texture_terms, funnel.final_dataset);
  std::printf("%s\n", eval::FormatTopicTable(*result).c_str());

  // Each Table I row (a published gel measurement) now has an interpretable
  // set of sensory terms: the top terms of its linked topic.
  std::printf("example linkage: Table I row 9 (kanten 2%%, hardness 5.67 RU) "
              "reads as:\n  ");
  for (const auto& link : result->setting_links) {
    if (link.setting_id != 9) continue;
    for (const auto& topic : result->topics) {
      if (topic.topic != link.topic) continue;
      for (const auto& [term, prob] : topic.top_terms) {
        std::printf("%s(%.2f) ", term.c_str(), prob);
      }
    }
  }
  std::printf("\n");
  return 0;
}
