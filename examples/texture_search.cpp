// Texture search: the user-facing scenario the paper's introduction
// motivates - "home cooking users ... find their favorite recipes" by the
// texture of the cooked result rather than by ingredients.
//
// Given a desired texture term (default "purupuru"), ranks topics by how
// strongly they emit that term, then lists the best topic's recipes closest
// to the topic's concentration profile, with their expected rheology.
//
// Run:  ./build/examples/texture_search --term purupuru [--scale 0.1]

#include <algorithm>
#include <cstdio>

#include "eval/experiment.h"
#include "rheology/gel_model.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace texrheo;

  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "texture_search: find recipes by desired texture term.\nflags: --term <texture-term> (default purupuru) --scale <f>\n");
    return 0;
  }
  std::string term = flags.GetString("term", "purupuru");
  double scale = flags.GetDouble("scale", 0.1).value_or(0.1);
  SetLogLevel(LogLevel::kWarning);

  if (!text::TextureDictionary::Embedded().Contains(term)) {
    std::fprintf(stderr,
                 "'%s' is not in the texture dictionary; try purupuru, "
                 "katai, fuwafuwa, nettori, horohoro, ...\n",
                 term.c_str());
    return 1;
  }

  auto result = eval::RunJointExperiment(eval::DefaultExperimentConfig(scale));
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Rank topics by phi_k(term).
  int32_t term_id = result->dataset.term_vocab.IdOf(term);
  if (term_id == text::Vocabulary::kUnknownId) {
    std::printf("no recipe in this corpus uses '%s'; try another term\n",
                term.c_str());
    return 0;
  }
  int best_topic = 0;
  double best_phi = -1.0;
  for (size_t k = 0; k < result->estimates.phi.size(); ++k) {
    double phi = result->estimates.phi[k][static_cast<size_t>(term_id)];
    if (phi > best_phi) {
      best_phi = phi;
      best_topic = static_cast<int>(k);
    }
  }
  std::printf("texture '%s' is strongest in topic %d (phi = %.3f)\n\n",
              term.c_str(), best_topic, best_phi);

  // Recipes of that topic, ranked by theta_dk.
  struct Hit {
    size_t doc;
    double theta;
  };
  std::vector<Hit> hits;
  for (size_t d = 0; d < result->dataset.documents.size(); ++d) {
    if (result->estimates.doc_topic[d] != best_topic) continue;
    hits.push_back({d, result->estimates.theta[d]
                           [static_cast<size_t>(best_topic)]});
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.theta > b.theta; });

  const auto& physics = rheology::GelPhysicsModel::Calibrated();
  std::printf("top matching recipes:\n");
  size_t shown = 0;
  for (const Hit& hit : hits) {
    if (shown++ >= 8) break;
    const auto& doc = result->dataset.documents[hit.doc];
    const auto& recipe = result->recipes[doc.recipe_index];
    rheology::TpaAttributes tpa =
        physics.Predict(doc.gel_concentration, doc.emulsion_concentration);
    std::printf(
        "  %-28s theta=%.2f  expected texture: hardness %.2f RU, "
        "cohesiveness %.2f, adhesiveness %.2f\n",
        recipe.title.c_str(), hit.theta, tpa.hardness, tpa.cohesiveness,
        tpa.adhesiveness);
  }
  if (shown == 0) {
    std::printf("  (no recipes hard-assigned to this topic)\n");
  }
  return 0;
}
