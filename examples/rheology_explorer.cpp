// Rheology explorer: uses only the food-science substrate (no topic model).
// Sweeps gel concentration for each gelling agent and prints the simulated
// TPA attribute curves, plus the emulsion "subordinate effects" around a
// fixed 2.5% gelatin base - a compact view of the physics that drives both
// the synthetic corpus and the Table I reproduction.
//
// Run:  ./build/examples/rheology_explorer [--points 12]

#include <cstdio>

#include "rheology/empirical_data.h"
#include "rheology/rheometer.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace texrheo;
  using recipe::EmulsionType;
  using recipe::GelType;

  FlagParser flags;
  (void)flags.Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf("%s", "rheology_explorer: TPA attribute curves per gel and emulsion effects.\nflags: --points <n> (default 10)\n");
    return 0;
  }
  int points = static_cast<int>(flags.GetInt("points", 10).value_or(10));

  const auto& model = rheology::GelPhysicsModel::Calibrated();

  std::printf("=== TPA attributes vs concentration (per gel) ===\n");
  TablePrinter sweep({"Concentration", "gelatin H/C/A", "kanten H/C/A",
                      "agar H/C/A"});
  for (int i = 1; i <= points; ++i) {
    double c = 0.004 + (0.036 - 0.004) * (i - 1) / (points - 1);
    std::vector<std::string> row = {FormatDouble(c, 3)};
    for (GelType g : {GelType::kGelatin, GelType::kKanten, GelType::kAgar}) {
      math::Vector gel(recipe::kNumGelTypes);
      gel[static_cast<size_t>(g)] = c;
      rheology::TpaAttributes a =
          model.Predict(gel, math::Vector(recipe::kNumEmulsionTypes));
      row.push_back(FormatDouble(a.hardness, 2) + "/" +
                    FormatDouble(a.cohesiveness, 2) + "/" +
                    FormatDouble(a.adhesiveness, 2));
    }
    sweep.AddRow(row);
  }
  std::printf("%s\n", sweep.ToString().c_str());

  std::printf("=== Emulsion effects on a 2.5%% gelatin gel ===\n");
  math::Vector base_gel(recipe::kNumGelTypes);
  base_gel[static_cast<size_t>(GelType::kGelatin)] = 0.025;
  TablePrinter emul({"Added emulsion (20% wt)", "Hardness", "Cohesiveness",
                     "Adhesiveness"});
  {
    rheology::TpaAttributes plain =
        model.Predict(base_gel, math::Vector(recipe::kNumEmulsionTypes));
    emul.AddRow({"(none)", FormatDouble(plain.hardness, 2),
                 FormatDouble(plain.cohesiveness, 2),
                 FormatDouble(plain.adhesiveness, 2)});
  }
  for (EmulsionType e :
       {EmulsionType::kSugar, EmulsionType::kEggAlbumen,
        EmulsionType::kEggYolk, EmulsionType::kRawCream, EmulsionType::kMilk,
        EmulsionType::kYogurt}) {
    math::Vector emulsion(recipe::kNumEmulsionTypes);
    emulsion[static_cast<size_t>(e)] = 0.20;
    rheology::TpaAttributes a = model.Predict(base_gel, emulsion);
    emul.AddRow({EmulsionTypeName(e), FormatDouble(a.hardness, 2),
                 FormatDouble(a.cohesiveness, 2),
                 FormatDouble(a.adhesiveness, 2)});
  }
  std::printf("%s\n", emul.ToString().c_str());

  // One full probe trace summary for the curious.
  auto m = rheology::SimulateDish(model, base_gel,
                                  math::Vector(recipe::kNumEmulsionTypes),
                                  rheology::RheometerConfig());
  if (m.ok()) {
    std::printf(
        "two-bite probe on the 2.5%% gelatin gel: F1 %.3f RU, bite areas "
        "%.3f / %.3f RU*s, adhesion area %.3f RU*s (%zu force samples)\n",
        m->peak_force_1, m->area_1, m->area_2, m->negative_area,
        m->curve.size());
  }
  return 0;
}
