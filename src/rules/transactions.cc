#include "rules/transactions.h"

#include <algorithm>

#include "recipe/features.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace texrheo::rules {
namespace {

// Step verbs recognized in descriptions when no "steps" metadata exists.
constexpr const char* kStepVerbs[] = {"boil",  "whip", "bloom",
                                      "chill", "strain"};

}  // namespace

TransactionBuilder::TransactionBuilder() : TransactionBuilder(Config()) {}

TransactionBuilder::TransactionBuilder(Config config) : config_(config) {}

int32_t TransactionBuilder::ItemId(const std::string& label) {
  return items_.Add(label);
}

const std::string& TransactionBuilder::ItemLabel(int32_t id) const {
  return items_.WordOf(id);
}

std::vector<int32_t> TransactionBuilder::TextureItemIds() const {
  std::vector<int32_t> out;
  for (size_t id = 0; id < items_.size(); ++id) {
    if (StartsWith(items_.WordOf(static_cast<int32_t>(id)), "texture=")) {
      out.push_back(static_cast<int32_t>(id));
    }
  }
  return out;
}

Transaction TransactionBuilder::Encode(const recipe::Recipe& r,
                                       const recipe::IngredientDatabase& db,
                                       const text::TextureDictionary& dict) {
  Transaction transaction;
  auto conc_or = recipe::ComputeConcentrations(r, db);
  if (!conc_or.ok() || !conc_or->HasAnyGel()) return transaction;
  const recipe::Concentrations& conc = conc_or.value();

  auto add = [this, &transaction](const std::string& label) {
    transaction.push_back(ItemId(label));
  };

  // Dominant gel and its concentration bin.
  size_t dominant = 0;
  for (size_t g = 1; g < conc.gel.size(); ++g) {
    if (conc.gel[g] > conc.gel[dominant]) dominant = g;
  }
  double c = conc.gel[dominant];
  add(std::string("gel=") +
      GelTypeName(static_cast<recipe::GelType>(dominant)));
  add(std::string("gel_conc=") + (c < config_.gel_low_edge
                                      ? "low"
                                      : c < config_.gel_high_edge ? "mid"
                                                                  : "high"));

  // Emulsions present in meaningful amounts.
  for (size_t e = 0; e < conc.emulsion.size(); ++e) {
    if (conc.emulsion[e] >= config_.emulsion_threshold) {
      add(std::string("emul=") +
          EmulsionTypeName(static_cast<recipe::EmulsionType>(e)));
    }
  }

  // Cooking steps: metadata first, description verbs as fallback.
  auto steps_it = r.metadata.find("steps");
  if (steps_it != r.metadata.end()) {
    for (const std::string& step : Split(steps_it->second, '+')) {
      if (!step.empty()) add("step=" + step);
    }
  } else {
    for (const char* verb : kStepVerbs) {
      if (r.description.find(verb) != std::string::npos) {
        add(std::string("step=") + verb);
      }
    }
  }

  // Texture poles of the description's terms.
  int hard = 0, soft = 0, elastic = 0, crumbly = 0, sticky = 0;
  for (const std::string& surface :
       text::Tokenizer::ExtractTextureTerms(r.description, dict)) {
    const text::TextureTerm* term = dict.Find(surface);
    if (term == nullptr) continue;
    hard += text::IsHardTerm(*term);
    soft += text::IsSoftTerm(*term);
    elastic += text::IsElasticTerm(*term);
    crumbly += text::IsCrumblyTerm(*term);
    sticky += text::IsStickyTerm(*term);
  }
  if (hard >= config_.min_pole_terms) add("texture=hard");
  if (soft >= config_.min_pole_terms) add("texture=soft");
  if (elastic >= config_.min_pole_terms) add("texture=elastic");
  if (crumbly >= config_.min_pole_terms) add("texture=crumbly");
  if (sticky >= config_.min_pole_terms) add("texture=sticky");

  std::sort(transaction.begin(), transaction.end());
  transaction.erase(std::unique(transaction.begin(), transaction.end()),
                    transaction.end());
  return transaction;
}

std::vector<Transaction> TransactionBuilder::EncodeCorpus(
    const std::vector<recipe::Recipe>& corpus,
    const recipe::IngredientDatabase& db,
    const text::TextureDictionary& dict) {
  std::vector<Transaction> out;
  out.reserve(corpus.size());
  for (const auto& r : corpus) {
    Transaction t = Encode(r, db, dict);
    if (!t.empty()) out.push_back(std::move(t));
  }
  return out;
}

std::string FormatRule(const Rule& rule, const TransactionBuilder& builder) {
  std::vector<std::string> antecedent_labels;
  for (int32_t item : rule.antecedent) {
    antecedent_labels.push_back(builder.ItemLabel(item));
  }
  return Join(antecedent_labels, " & ") + " -> " +
         builder.ItemLabel(rule.consequent) +
         StrFormat("  (supp %.3f, conf %.2f, lift %.2f)", rule.support,
                   rule.confidence, rule.lift);
}

}  // namespace texrheo::rules
