#include "rules/apriori.h"

#include <algorithm>
#include <map>
#include <set>

namespace texrheo::rules {
namespace {

bool Contains(const Transaction& transaction,
              const std::vector<int32_t>& itemset) {
  // Both sides sorted: linear merge test.
  size_t t = 0;
  for (int32_t item : itemset) {
    while (t < transaction.size() && transaction[t] < item) ++t;
    if (t == transaction.size() || transaction[t] != item) return false;
    ++t;
  }
  return true;
}

int64_t CountSupport(const std::vector<Transaction>& transactions,
                     const std::vector<int32_t>& itemset) {
  int64_t count = 0;
  for (const Transaction& t : transactions) {
    if (Contains(t, itemset)) ++count;
  }
  return count;
}

// Joins two (k-1)-itemsets sharing their first k-2 items into a k-itemset.
bool TryJoin(const std::vector<int32_t>& a, const std::vector<int32_t>& b,
             std::vector<int32_t>* out) {
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  if (a.back() >= b.back()) return false;
  *out = a;
  out->push_back(b.back());
  return true;
}

}  // namespace

texrheo::StatusOr<std::vector<Itemset>> Apriori::MineItemsets(
    const std::vector<Transaction>& transactions,
    const AprioriConfig& config) {
  if (transactions.empty()) {
    return Status::InvalidArgument("apriori: no transactions");
  }
  if (config.min_support <= 0.0 || config.min_support > 1.0) {
    return Status::InvalidArgument("apriori: min_support must be in (0, 1]");
  }
  for (const Transaction& t : transactions) {
    if (!std::is_sorted(t.begin(), t.end()) ||
        std::adjacent_find(t.begin(), t.end()) != t.end()) {
      return Status::InvalidArgument(
          "apriori: transactions must be sorted and unique");
    }
  }
  int64_t min_count = static_cast<int64_t>(
      config.min_support * static_cast<double>(transactions.size()));
  if (min_count < 1) min_count = 1;

  std::vector<Itemset> result;

  // Level 1: singleton counts.
  std::map<int32_t, int64_t> singles;
  for (const Transaction& t : transactions) {
    for (int32_t item : t) ++singles[item];
  }
  std::vector<std::vector<int32_t>> frontier;
  for (const auto& [item, count] : singles) {
    if (count >= min_count) {
      result.push_back(Itemset{{item}, count});
      frontier.push_back({item});
    }
  }

  // Level-wise expansion with the downward-closure prune.
  for (size_t level = 2;
       level <= config.max_itemset_size && frontier.size() > 1; ++level) {
    // For the prune, index the previous level's frequent sets.
    std::set<std::vector<int32_t>> previous(frontier.begin(), frontier.end());
    std::vector<std::vector<int32_t>> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        std::vector<int32_t> candidate;
        if (!TryJoin(frontier[i], frontier[j], &candidate)) continue;
        // Downward closure: every (k-1)-subset must be frequent.
        bool all_frequent = true;
        for (size_t drop = 0; drop + 2 < candidate.size() && all_frequent;
             ++drop) {
          std::vector<int32_t> subset;
          for (size_t x = 0; x < candidate.size(); ++x) {
            if (x != drop) subset.push_back(candidate[x]);
          }
          all_frequent = previous.count(subset) > 0;
        }
        if (!all_frequent) continue;
        int64_t count = CountSupport(transactions, candidate);
        if (count >= min_count) {
          result.push_back(Itemset{candidate, count});
          next.push_back(std::move(candidate));
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

texrheo::StatusOr<std::vector<Rule>> Apriori::MineRules(
    const std::vector<Transaction>& transactions,
    const AprioriConfig& config) {
  TEXRHEO_ASSIGN_OR_RETURN(std::vector<Itemset> itemsets,
                           MineItemsets(transactions, config));
  double n = static_cast<double>(transactions.size());

  // Support lookup for confidence computation.
  std::map<std::vector<int32_t>, int64_t> support;
  for (const Itemset& is : itemsets) support[is.items] = is.support_count;

  std::set<int32_t> whitelist(config.consequent_whitelist.begin(),
                              config.consequent_whitelist.end());
  std::set<int32_t> blacklist(config.antecedent_blacklist.begin(),
                              config.antecedent_blacklist.end());

  std::vector<Rule> rules;
  for (const Itemset& is : itemsets) {
    if (is.items.size() < 2) continue;
    for (size_t c = 0; c < is.items.size(); ++c) {
      int32_t consequent = is.items[c];
      if (!whitelist.empty() && whitelist.count(consequent) == 0) continue;
      std::vector<int32_t> antecedent;
      bool blacklisted = false;
      for (size_t i = 0; i < is.items.size(); ++i) {
        if (i == c) continue;
        if (blacklist.count(is.items[i]) > 0) blacklisted = true;
        antecedent.push_back(is.items[i]);
      }
      if (blacklisted) continue;
      auto ante_it = support.find(antecedent);
      auto cons_it = support.find({consequent});
      if (ante_it == support.end() || cons_it == support.end()) continue;
      Rule rule;
      rule.antecedent = std::move(antecedent);
      rule.consequent = consequent;
      rule.support = static_cast<double>(is.support_count) / n;
      rule.confidence = static_cast<double>(is.support_count) /
                        static_cast<double>(ante_it->second);
      double p_consequent = static_cast<double>(cons_it->second) / n;
      rule.lift = p_consequent > 0.0 ? rule.confidence / p_consequent : 0.0;
      if (rule.confidence >= config.min_confidence &&
          rule.lift > config.min_lift) {
        rules.push_back(std::move(rule));
      }
    }
  }
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.lift != b.lift) return a.lift > b.lift;
    return a.confidence > b.confidence;
  });
  return rules;
}

}  // namespace texrheo::rules
