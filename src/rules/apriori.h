#ifndef TEXRHEO_RULES_APRIORI_H_
#define TEXRHEO_RULES_APRIORI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace texrheo::rules {

/// One transaction: a sorted, de-duplicated set of item ids.
using Transaction = std::vector<int32_t>;

/// A frequent itemset with its absolute support count.
struct Itemset {
  std::vector<int32_t> items;  ///< Sorted ascending.
  int64_t support_count = 0;
};

/// An association rule antecedent -> consequent.
struct Rule {
  std::vector<int32_t> antecedent;  ///< Sorted ascending.
  int32_t consequent = 0;           ///< Single-item consequent.
  double support = 0.0;     ///< P(antecedent and consequent).
  double confidence = 0.0;  ///< P(consequent | antecedent).
  double lift = 0.0;        ///< confidence / P(consequent).
};

/// Mining thresholds.
struct AprioriConfig {
  double min_support = 0.01;     ///< Fraction of transactions.
  double min_confidence = 0.5;
  double min_lift = 1.0;         ///< Rules at or below chance are dropped.
  size_t max_itemset_size = 4;   ///< Cap on antecedent size + 1.
  /// Only items in this list may appear as rule consequents; empty = any.
  std::vector<int32_t> consequent_whitelist;
  /// Items that may NOT appear in antecedents (e.g. other texture items,
  /// to keep rules of the form "recipe info -> texture").
  std::vector<int32_t> antecedent_blacklist;
};

/// Classic Apriori: level-wise frequent-itemset mining with the downward-
/// closure prune, then rule generation with single-item consequents.
/// The paper's conclusion proposes exactly this kind of bridge: "rules
/// bridging between recipe information including ingredient concentrations,
/// cooking steps etc., and sensory textures".
class Apriori {
 public:
  /// Mines frequent itemsets. Transactions must contain sorted unique ids.
  static texrheo::StatusOr<std::vector<Itemset>> MineItemsets(
      const std::vector<Transaction>& transactions,
      const AprioriConfig& config);

  /// Mines rules (calls MineItemsets internally). Rules are sorted by lift
  /// descending, then confidence.
  static texrheo::StatusOr<std::vector<Rule>> MineRules(
      const std::vector<Transaction>& transactions,
      const AprioriConfig& config);
};

}  // namespace texrheo::rules

#endif  // TEXRHEO_RULES_APRIORI_H_
