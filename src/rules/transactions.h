#ifndef TEXRHEO_RULES_TRANSACTIONS_H_
#define TEXRHEO_RULES_TRANSACTIONS_H_

#include <string>
#include <vector>

#include "recipe/ingredient.h"
#include "recipe/recipe.h"
#include "rules/apriori.h"
#include "text/texture_dictionary.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace texrheo::rules {

/// Converts recipes into Apriori transactions whose items encode the
/// bridge the paper's conclusion proposes:
///   gel=<type>                 which gelling agent dominates
///   gel_conc=low|mid|high      binned dominant-gel concentration
///   emul=<type>                each emulsion above a presence threshold
///   step=<name>                each cooking step ("steps" metadata,
///                              '+'-separated; also parsed from the
///                              description's step verbs as a fallback)
///   texture=hard|soft|elastic|crumbly|sticky
///                              poles of the description's texture terms.
class TransactionBuilder {
 public:
  struct Config {
    /// Dominant-gel concentration bin edges (ratio of total weight).
    double gel_low_edge = 0.008;
    double gel_high_edge = 0.02;
    /// Emulsions below this weight fraction are not itemized.
    double emulsion_threshold = 0.03;
    /// A texture pole is itemized when at least this many of the recipe's
    /// terms sit on it.
    int min_pole_terms = 1;
  };

  TransactionBuilder();
  explicit TransactionBuilder(Config config);

  /// Encodes one recipe; returns an empty transaction when the recipe has
  /// no gel or no parseable quantities.
  Transaction Encode(const recipe::Recipe& r,
                     const recipe::IngredientDatabase& db,
                     const text::TextureDictionary& dict);

  /// Encodes a corpus, dropping empty transactions.
  std::vector<Transaction> EncodeCorpus(
      const std::vector<recipe::Recipe>& corpus,
      const recipe::IngredientDatabase& db,
      const text::TextureDictionary& dict);

  /// Item id for a label (interning; stable across calls).
  int32_t ItemId(const std::string& label);
  /// Label of an item id.
  const std::string& ItemLabel(int32_t id) const;
  /// Ids of all texture=* items seen so far (natural rule consequents).
  std::vector<int32_t> TextureItemIds() const;

  size_t num_items() const { return items_.size(); }

 private:
  Config config_;
  text::Vocabulary items_;
};

/// Renders a rule using the builder's labels:
///   "gel=gelatin & step=boil -> texture=soft  (supp 0.04, conf 0.81, lift 2.3)"
std::string FormatRule(const Rule& rule, const TransactionBuilder& builder);

}  // namespace texrheo::rules

#endif  // TEXRHEO_RULES_TRANSACTIONS_H_
