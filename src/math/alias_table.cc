#include "math/alias_table.h"

#include <cassert>

namespace texrheo::math {

texrheo::StatusOr<AliasTable> AliasTable::Build(
    const std::vector<double>& weights) {
  size_t n = weights.size();
  if (n == 0) return Status::InvalidArgument("alias table: no weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("alias table: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("alias table: all weights are zero");
  }

  std::vector<double> prob(n);
  std::vector<size_t> alias(n);
  // Scaled probabilities; average is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (numerically) full.
  for (size_t s : small) {
    prob[s] = 1.0;
    alias[s] = s;
  }
  for (size_t l : large) {
    prob[l] = 1.0;
    alias[l] = l;
  }
  return AliasTable(std::move(prob), std::move(alias));
}

size_t AliasTable::Sample(Rng& rng) const {
  size_t i = rng.NextUint(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

double AliasTable::MassOf(size_t i) const {
  assert(i < prob_.size());
  double n = static_cast<double>(prob_.size());
  double mass = prob_[i] / n;
  for (size_t j = 0; j < prob_.size(); ++j) {
    if (alias_[j] == i && j != i) mass += (1.0 - prob_[j]) / n;
  }
  return mass;
}

}  // namespace texrheo::math
