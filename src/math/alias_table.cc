#include "math/alias_table.h"

#include <cassert>

namespace texrheo::math {

texrheo::StatusOr<AliasTable> AliasTable::Build(
    const std::vector<double>& weights) {
  BuildScratch scratch;
  AliasTable table;
  TEXRHEO_RETURN_IF_ERROR(BuildInto(weights, scratch, table));
  return table;
}

texrheo::Status AliasTable::BuildInto(const std::vector<double>& weights,
                                      BuildScratch& scratch, AliasTable& out) {
  size_t n = weights.size();
  if (n == 0) return Status::InvalidArgument("alias table: no weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("alias table: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("alias table: all weights are zero");
  }

  std::vector<double>& prob = out.prob_;
  std::vector<size_t>& alias = out.alias_;
  prob.resize(n);
  alias.resize(n);
  // Scaled probabilities; average is exactly 1. The expression keeps the
  // multiply-before-divide order: hoisting n / total into a reciprocal
  // overflows to inf when the weights (and hence total) are denormal.
  std::vector<double>& scaled = scratch.scaled;
  scaled.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<size_t>& small = scratch.small;
  std::vector<size_t>& large = scratch.large;
  small.clear();
  large.clear();
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (numerically) full.
  for (size_t s : small) {
    prob[s] = 1.0;
    alias[s] = s;
  }
  for (size_t l : large) {
    prob[l] = 1.0;
    alias[l] = l;
  }
  out.total_weight_ = total;
  return Status::OK();
}

size_t AliasTable::Sample(Rng& rng) const {
  size_t i = rng.NextUint(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

double AliasTable::MassOf(size_t i) const {
  assert(i < prob_.size());
  double n = static_cast<double>(prob_.size());
  double mass = prob_[i] / n;
  for (size_t j = 0; j < prob_.size(); ++j) {
    if (alias_[j] == i && j != i) mass += (1.0 - prob_[j]) / n;
  }
  return mass;
}

}  // namespace texrheo::math
