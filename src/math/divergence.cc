#include "math/divergence.h"

#include <cmath>

namespace texrheo::math {
namespace {

// Normalizes weights + smoothing into a probability vector.
texrheo::StatusOr<Vector> Normalize(const Vector& w, double smoothing) {
  if (w.empty()) return Status::InvalidArgument("empty distribution");
  Vector p(w.size());
  double total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w[i] < 0.0) {
      return Status::InvalidArgument("negative weight in distribution");
    }
    p[i] = w[i] + smoothing;
    total += p[i];
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("distribution has zero total mass");
  }
  p *= 1.0 / total;
  return p;
}

}  // namespace

texrheo::StatusOr<double> DiscreteKL(const Vector& p, const Vector& q,
                                     double smoothing) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("KL: length mismatch");
  }
  TEXRHEO_ASSIGN_OR_RETURN(Vector pn, Normalize(p, smoothing));
  TEXRHEO_ASSIGN_OR_RETURN(Vector qn, Normalize(q, smoothing));
  double kl = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    if (pn[i] > 0.0) kl += pn[i] * std::log(pn[i] / qn[i]);
  }
  // Guard tiny negative round-off.
  return kl < 0.0 ? 0.0 : kl;
}

texrheo::StatusOr<double> SymmetricDiscreteKL(const Vector& p, const Vector& q,
                                              double smoothing) {
  TEXRHEO_ASSIGN_OR_RETURN(double a, DiscreteKL(p, q, smoothing));
  TEXRHEO_ASSIGN_OR_RETURN(double b, DiscreteKL(q, p, smoothing));
  return a + b;
}

texrheo::StatusOr<double> JensenShannon(const Vector& p, const Vector& q,
                                        double smoothing) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("JS: length mismatch");
  }
  TEXRHEO_ASSIGN_OR_RETURN(Vector pn, Normalize(p, smoothing));
  TEXRHEO_ASSIGN_OR_RETURN(Vector qn, Normalize(q, smoothing));
  double js = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    double m = 0.5 * (pn[i] + qn[i]);
    if (pn[i] > 0.0) js += 0.5 * pn[i] * std::log(pn[i] / m);
    if (qn[i] > 0.0) js += 0.5 * qn[i] * std::log(qn[i] / m);
  }
  return js < 0.0 ? 0.0 : js;
}

texrheo::StatusOr<double> Hellinger(const Vector& p, const Vector& q,
                                    double smoothing) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("Hellinger: length mismatch");
  }
  TEXRHEO_ASSIGN_OR_RETURN(Vector pn, Normalize(p, smoothing));
  TEXRHEO_ASSIGN_OR_RETURN(Vector qn, Normalize(q, smoothing));
  double bc = 0.0;  // Bhattacharyya coefficient.
  for (size_t i = 0; i < pn.size(); ++i) bc += std::sqrt(pn[i] * qn[i]);
  double h2 = 1.0 - bc;
  return std::sqrt(h2 < 0.0 ? 0.0 : h2);
}

}  // namespace texrheo::math
