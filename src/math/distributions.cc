#include "math/distributions.h"

#include <cassert>
#include <cmath>

#include "math/special.h"

namespace texrheo::math {
namespace {

constexpr double kLog2Pi = 1.8378770664093454836;
constexpr double kLog2 = 0.6931471805599453094;

}  // namespace

double GammaSample(Rng& rng, double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: X ~ Gamma(a+1), U^{1/a} * X ~ Gamma(a).
    double u = rng.NextDoubleNonZero();
    return GammaSample(rng, shape + 1.0, scale) *
           std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    double u = rng.NextDoubleNonZero();
    double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double ChiSquaredSample(Rng& rng, double k) {
  return GammaSample(rng, 0.5 * k, 2.0);
}

double BetaSample(Rng& rng, double a, double b) {
  double x = GammaSample(rng, a, 1.0);
  double y = GammaSample(rng, b, 1.0);
  return x / (x + y);
}

Vector DirichletSample(Rng& rng, const Vector& alpha) {
  Vector out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = GammaSample(rng, alpha[i], 1.0);
    total += out[i];
  }
  // Guard against total underflowing to 0 for tiny concentrations.
  if (total <= 0.0) {
    size_t j = rng.NextUint(alpha.size());
    for (size_t i = 0; i < alpha.size(); ++i) out[i] = (i == j) ? 1.0 : 0.0;
    return out;
  }
  out *= 1.0 / total;
  return out;
}

Vector DirichletSample(Rng& rng, size_t dim, double alpha) {
  return DirichletSample(rng, Vector(dim, alpha));
}

Gaussian::Gaussian(Vector mean, Matrix precision, Cholesky chol)
    : mean_(std::move(mean)),
      precision_(std::move(precision)),
      precision_chol_(std::move(chol)),
      log_det_precision_(precision_chol_.LogDet()) {}

texrheo::StatusOr<Gaussian> Gaussian::FromPrecision(Vector mean,
                                                    Matrix precision) {
  if (mean.size() != precision.rows() || precision.rows() != precision.cols()) {
    return Status::InvalidArgument("mean/precision dimension mismatch");
  }
  auto chol = Cholesky::Factor(precision);
  if (!chol.ok()) {
    // Marginal (round-off non-PD) posteriors get the jitter ladder instead
    // of aborting the sampler run; the stored precision is rebuilt from the
    // damped factor so LogPdf stays internally consistent.
    TEXRHEO_ASSIGN_OR_RETURN(Cholesky damped, CholeskyWithJitter(precision));
    precision = damped.L().Multiply(damped.L().Transposed());
    return Gaussian(std::move(mean), std::move(precision), std::move(damped));
  }
  return Gaussian(std::move(mean), std::move(precision),
                  std::move(chol).value());
}

texrheo::StatusOr<Gaussian> Gaussian::FromCovariance(Vector mean,
                                                     Matrix covariance) {
  TEXRHEO_ASSIGN_OR_RETURN(Matrix precision, InversePD(covariance));
  return FromPrecision(std::move(mean), std::move(precision));
}

Matrix Gaussian::Covariance() const { return precision_chol_.Inverse(); }

double Gaussian::LogPdf(const Vector& x) const {
  assert(x.size() == dim());
  double quad = QuadraticForm(precision_, x, mean_);
  return 0.5 * (log_det_precision_ -
                static_cast<double>(dim()) * kLog2Pi - quad);
}

Vector Gaussian::Sample(Rng& rng) const {
  size_t n = dim();
  Vector z(n);
  for (size_t i = 0; i < n; ++i) z[i] = rng.NextGaussian();
  // x = mu + L^{-T} z where Lambda = L L^T gives cov (L L^T)^{-1}.
  const Matrix& l = precision_chol_.L();
  Vector w(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * w[k];
    w[ii] = s / l(ii, ii);
  }
  return mean_ + w;
}

double GaussianKL(const Gaussian& p, const Gaussian& q) {
  assert(p.dim() == q.dim());
  size_t d = p.dim();
  Matrix cov_p = p.Covariance();
  // tr(Lambda_q Sigma_p)
  double trace_term = q.precision().Multiply(cov_p).Trace();
  double quad = QuadraticForm(q.precision(), p.mean(), q.mean());
  double log_det_term = p.log_det_precision() - q.log_det_precision();
  return 0.5 * (trace_term + quad - static_cast<double>(d) + log_det_term);
}

texrheo::StatusOr<Matrix> WishartSample(Rng& rng, double nu,
                                        const Matrix& scale) {
  size_t d = scale.rows();
  if (scale.cols() != d) {
    return Status::InvalidArgument("Wishart scale must be square");
  }
  if (nu <= static_cast<double>(d) - 1.0) {
    return Status::InvalidArgument("Wishart requires nu > dim - 1");
  }
  TEXRHEO_ASSIGN_OR_RETURN(Cholesky chol, CholeskyWithJitter(scale));
  // Bartlett: A lower-triangular, A_ii = sqrt(chi2(nu - i)), A_ij ~ N(0,1).
  Matrix a(d, d);
  for (size_t i = 0; i < d; ++i) {
    a(i, i) = std::sqrt(ChiSquaredSample(rng, nu - static_cast<double>(i)));
    for (size_t j = 0; j < i; ++j) a(i, j) = rng.NextGaussian();
  }
  Matrix la = chol.L().Multiply(a);
  return la.Multiply(la.Transposed());
}

texrheo::StatusOr<double> WishartLogPdf(const Matrix& x, double nu,
                                        const Matrix& scale) {
  size_t d = scale.rows();
  if (x.rows() != d || x.cols() != d || scale.cols() != d) {
    return Status::InvalidArgument("Wishart log-pdf dimension mismatch");
  }
  TEXRHEO_ASSIGN_OR_RETURN(Cholesky x_chol, Cholesky::Factor(x));
  TEXRHEO_ASSIGN_OR_RETURN(Cholesky s_chol, Cholesky::Factor(scale));
  Matrix s_inv = s_chol.Inverse();
  double dd = static_cast<double>(d);
  double log_pdf = 0.5 * (nu - dd - 1.0) * x_chol.LogDet() -
                   0.5 * s_inv.Multiply(x).Trace() -
                   0.5 * nu * dd * kLog2 - 0.5 * nu * s_chol.LogDet() -
                   LogMultivariateGamma(d, 0.5 * nu);
  return log_pdf;
}

texrheo::Status NormalWishartParams::Validate() const {
  size_t d = mu0.size();
  if (d == 0) return Status::InvalidArgument("NW: empty mean");
  if (scale.rows() != d || scale.cols() != d) {
    return Status::InvalidArgument("NW: scale dimension mismatch");
  }
  if (beta <= 0.0) return Status::InvalidArgument("NW: beta must be > 0");
  if (nu <= static_cast<double>(d) - 1.0) {
    return Status::InvalidArgument("NW: nu must exceed dim - 1");
  }
  return Cholesky::Factor(scale).status();
}

NormalWishartParams NormalWishartParams::Posterior(
    size_t n, const Vector& mean, const Matrix& scatter) const {
  return PosteriorWeighted(static_cast<double>(n), mean, scatter);
}

NormalWishartParams NormalWishartParams::PosteriorWeighted(
    double effective_n, const Vector& mean, const Matrix& scatter) const {
  if (effective_n <= 0.0) return *this;
  double nn = effective_n;
  NormalWishartParams post;
  post.beta = beta + nn;
  post.nu = nu + nn;
  post.mu0 = (1.0 / (nn + beta)) * (nn * mean + beta * mu0);
  // S_c^{-1} = S^{-1} + scatter + n*beta/(n+beta) (mean-mu0)(mean-mu0)^T
  auto s_inv_or = InversePD(scale);
  assert(s_inv_or.ok());  // Callers validate the prior once up front.
  Matrix s_inv = std::move(s_inv_or).value();
  Vector diff = mean - mu0;
  s_inv += scatter;
  s_inv += (nn * beta / (nn + beta)) * Matrix::Outer(diff, diff);
  auto s_or = InversePD(s_inv);
  assert(s_or.ok());
  post.scale = std::move(s_or).value();
  return post;
}

texrheo::StatusOr<Gaussian> NormalWishartSample(
    Rng& rng, const NormalWishartParams& nw) {
  TEXRHEO_RETURN_IF_ERROR(nw.Validate());
  TEXRHEO_ASSIGN_OR_RETURN(Matrix lambda, WishartSample(rng, nw.nu, nw.scale));
  TEXRHEO_ASSIGN_OR_RETURN(Gaussian mu_dist,
                           Gaussian::FromPrecision(nw.mu0, nw.beta * lambda));
  Vector mu = mu_dist.Sample(rng);
  return Gaussian::FromPrecision(std::move(mu), std::move(lambda));
}

texrheo::StatusOr<Gaussian> NormalWishartMean(const NormalWishartParams& nw) {
  TEXRHEO_RETURN_IF_ERROR(nw.Validate());
  return Gaussian::FromPrecision(nw.mu0, nw.nu * nw.scale);
}

}  // namespace texrheo::math
