#ifndef TEXRHEO_MATH_RUNNING_STATS_H_
#define TEXRHEO_MATH_RUNNING_STATS_H_

#include <cstddef>

#include "math/linalg.h"

namespace texrheo::math {

/// Welford accumulator for scalar mean/variance; numerically stable for
/// long streams (used by tests validating sampler moments and by the
/// rheology calibration).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than 2 observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Multivariate mean + scatter accumulator. `Scatter()` returns
/// sum_i (x_i - mean)(x_i - mean)^T, exactly the sufficient statistic the
/// Normal–Wishart posterior (paper eq. 4) consumes.
class RunningMoments {
 public:
  explicit RunningMoments(size_t dim);

  void Add(const Vector& x);

  size_t count() const { return n_; }
  size_t dim() const { return sum_.size(); }
  Vector Mean() const;
  Matrix Scatter() const;
  /// Sample covariance (scatter / (n-1)); zero matrix when n < 2.
  Matrix Covariance() const;

 private:
  size_t n_ = 0;
  Vector sum_;
  Matrix sum_outer_;  // sum x x^T; scatter derived as sum_outer - n m m^T.
};

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_RUNNING_STATS_H_
