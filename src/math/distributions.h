#ifndef TEXRHEO_MATH_DISTRIBUTIONS_H_
#define TEXRHEO_MATH_DISTRIBUTIONS_H_

#include <vector>

#include "math/linalg.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::math {

/// Gamma(shape, scale) deviate (Marsaglia–Tsang squeeze; boosting for
/// shape < 1). Requires shape > 0 and scale > 0.
double GammaSample(Rng& rng, double shape, double scale);

/// Chi-squared deviate with k degrees of freedom.
double ChiSquaredSample(Rng& rng, double k);

/// Beta(a, b) deviate.
double BetaSample(Rng& rng, double a, double b);

/// Dirichlet deviate from a concentration vector (all entries > 0).
Vector DirichletSample(Rng& rng, const Vector& alpha);

/// Symmetric-Dirichlet convenience overload.
Vector DirichletSample(Rng& rng, size_t dim, double alpha);

/// Multivariate normal parameterized by mean and *precision* matrix, the
/// natural parameterization for the joint topic model's Gaussian topics
/// (paper eq. 1: g_d ~ N(mu_k, Lambda_k)). The Cholesky factor of the
/// precision and its log-determinant are cached at construction so that the
/// per-recipe likelihood evaluations in the Gibbs sweep (eq. 3) are cheap.
class Gaussian {
 public:
  /// Builds the distribution; FailedPrecondition when `precision` is not
  /// positive definite.
  static texrheo::StatusOr<Gaussian> FromPrecision(Vector mean,
                                                   Matrix precision);

  /// Builds from a covariance matrix (inverted internally).
  static texrheo::StatusOr<Gaussian> FromCovariance(Vector mean,
                                                    Matrix covariance);

  const Vector& mean() const { return mean_; }
  const Matrix& precision() const { return precision_; }
  double log_det_precision() const { return log_det_precision_; }
  size_t dim() const { return mean_.size(); }

  /// Covariance (precision inverse), computed on demand.
  Matrix Covariance() const;

  /// Log density at x.
  double LogPdf(const Vector& x) const;

  /// Draws a sample: x = mu + L^{-T} z where Lambda = L L^T.
  Vector Sample(Rng& rng) const;

 private:
  Gaussian(Vector mean, Matrix precision, Cholesky chol);

  Vector mean_;
  Matrix precision_;
  Cholesky precision_chol_;
  double log_det_precision_;
};

/// KL(p || q) between two Gaussians in closed form.
double GaussianKL(const Gaussian& p, const Gaussian& q);

/// Draws Lambda ~ Wishart(nu, scale) via the Bartlett decomposition.
/// Requires nu > dim - 1 and positive-definite `scale` (its Cholesky factor
/// is recomputed per call; hoist it if this ever becomes hot).
texrheo::StatusOr<Matrix> WishartSample(Rng& rng, double nu,
                                        const Matrix& scale);

/// Log density of the Wishart distribution at a positive-definite X.
texrheo::StatusOr<double> WishartLogPdf(const Matrix& x, double nu,
                                        const Matrix& scale);

/// Conjugate Normal–Wishart prior over (mean, precision) of a Gaussian:
///   Lambda ~ Wishart(nu, scale),  mu | Lambda ~ N(mu0, (beta Lambda)^{-1}).
/// This is the prior the paper places on each topic's gel and emulsion
/// Gaussians (hyperparameters mu0, beta, nu, S in eq. 1).
struct NormalWishartParams {
  Vector mu0;
  double beta = 1.0;
  double nu = 0.0;
  Matrix scale;  // "S" in the paper.

  size_t dim() const { return mu0.size(); }

  /// Validates shape/positivity constraints.
  texrheo::Status Validate() const;

  /// Posterior after observing n points with sample mean `mean` and scatter
  /// matrix sum (x_i - mean)(x_i - mean)^T (paper eq. 4's S_c, mu_c, nu_c,
  /// beta_c). With n == 0 returns the prior unchanged.
  NormalWishartParams Posterior(size_t n, const Vector& mean,
                                const Matrix& scatter) const;

  /// Same update with a fractional effective count (responsibility-weighted
  /// sufficient statistics, as used by variational inference). With
  /// effective_n <= 0 returns the prior unchanged.
  NormalWishartParams PosteriorWeighted(double effective_n,
                                        const Vector& mean,
                                        const Matrix& scatter) const;
};

/// One draw (mu_k, Lambda_k) from a Normal–Wishart distribution; the result
/// is packaged as a ready-to-evaluate Gaussian.
texrheo::StatusOr<Gaussian> NormalWishartSample(Rng& rng,
                                                const NormalWishartParams& nw);

/// Posterior-mean point estimate: Lambda = nu * scale, mu = mu0. Useful for
/// deterministic initialization and for tests.
texrheo::StatusOr<Gaussian> NormalWishartMean(const NormalWishartParams& nw);

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_DISTRIBUTIONS_H_
