#ifndef TEXRHEO_MATH_LINALG_H_
#define TEXRHEO_MATH_LINALG_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/status.h"

namespace texrheo::math {

/// Dense column vector of doubles. Dimensions in this project are small
/// (gel space is 3-D, emulsion space is 6-D), so the implementation favors
/// clarity over blocking / SIMD.
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double s);

  /// Euclidean norm.
  double Norm() const;
  /// Sum of entries.
  double Sum() const;

  std::string ToString(int digits = 4) const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(double s, Vector v);
double Dot(const Vector& a, const Vector& b);
bool operator==(const Vector& a, const Vector& b);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix scaled by `diag`.
  static Matrix Identity(size_t n, double diag = 1.0);
  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& d);
  /// Outer product a b^T.
  static Matrix Outer(const Vector& a, const Vector& b);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Matrix-vector product.
  Vector Multiply(const Vector& v) const;
  /// Matrix-matrix product.
  Matrix Multiply(const Matrix& other) const;
  Matrix Transposed() const;
  double Trace() const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// True if symmetric to within `tol`.
  bool IsSymmetric(double tol = 1e-9) const;

  std::string ToString(int digits = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(double s, Matrix m);
bool operator==(const Matrix& a, const Matrix& b);

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Factorization failure (non-PD input) is reported via Status rather than
/// by throwing.
class Cholesky {
 public:
  /// Factorizes `a`. Returns FailedPrecondition when `a` is not (numerically)
  /// positive definite.
  static texrheo::StatusOr<Cholesky> Factor(const Matrix& a);

  /// Lower-triangular factor L.
  const Matrix& L() const { return l_; }
  size_t dim() const { return l_.rows(); }

  /// log(det A) = 2 * sum(log diag(L)).
  double LogDet() const;

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves L y = b (forward substitution).
  Vector SolveLower(const Vector& b) const;

  /// A^{-1} via column-wise solves.
  Matrix Inverse() const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Cholesky factorization with a jitter ladder for numerically stressed
/// input: when the plain factorization of `a` fails, retries with
/// `initial_jitter` added to the diagonal, escalating by 100x per attempt
/// up to `max_jitter`, and only then reports FailedPrecondition. A
/// well-conditioned matrix factors on the first (jitter-free) attempt, so
/// healthy chains are bit-identical to Cholesky::Factor; a marginally
/// non-PD posterior (round-off, collapsed topics) degrades gracefully
/// instead of aborting a long sampler run. Matrices containing NaN/Inf are
/// rejected outright — jitter cannot repair them.
texrheo::StatusOr<Cholesky> CholeskyWithJitter(const Matrix& a,
                                               double initial_jitter = 1e-10,
                                               double max_jitter = 1e-6);

/// Inverse of a symmetric positive-definite matrix; FailedPrecondition when
/// the Cholesky factorization fails.
texrheo::StatusOr<Matrix> InversePD(const Matrix& a);

/// Quadratic form (x-mu)^T A (x-mu).
double QuadraticForm(const Matrix& a, const Vector& x, const Vector& mu);

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_LINALG_H_
