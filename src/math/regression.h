#ifndef TEXRHEO_MATH_REGRESSION_H_
#define TEXRHEO_MATH_REGRESSION_H_

#include <vector>

#include "util/status.h"

namespace texrheo::math {

/// Ordinary least squares y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  size_t n = 0;
};

/// Fits a line through (x, y) pairs; requires >= 2 points with non-constant
/// x. Used by the rheology module to calibrate power-law / exponential
/// constitutive parameters against the embedded literature data.
texrheo::StatusOr<LinearFit> FitLine(const std::vector<double>& x,
                                     const std::vector<double>& y);

/// Fits y = a * x^b by regressing log y on log x; requires all x, y > 0.
struct PowerLawFit {
  double amplitude = 0.0;  // a
  double exponent = 0.0;   // b
  double r_squared = 0.0;
};
texrheo::StatusOr<PowerLawFit> FitPowerLaw(const std::vector<double>& x,
                                           const std::vector<double>& y);

/// Fits y = a * exp(b x) by regressing log y on x; requires all y > 0.
struct ExponentialFit {
  double amplitude = 0.0;  // a
  double rate = 0.0;       // b
  double r_squared = 0.0;
};
texrheo::StatusOr<ExponentialFit> FitExponential(const std::vector<double>& x,
                                                 const std::vector<double>& y);

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_REGRESSION_H_
