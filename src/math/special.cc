#include "math/special.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace texrheo::math {

double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, which is a data race
  // when the parallel Gibbs workers evaluate Student-t densities
  // concurrently; lgamma_r is the reentrant variant.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double Digamma(double x) {
  assert(x > 0.0);
  double result = 0.0;
  // Recurrence psi(x) = psi(x+1) - 1/x until x is large enough for the
  // asymptotic series.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: psi(x) ~ ln x - 1/(2x) - sum B_2n / (2n x^{2n}).
  double inv = 1.0 / x;
  double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double LogMultivariateGamma(size_t p, double a) {
  assert(a > 0.5 * (static_cast<double>(p) - 1.0));
  constexpr double kLogPi = 1.1447298858494001741;
  double result =
      0.25 * static_cast<double>(p) * (static_cast<double>(p) - 1.0) * kLogPi;
  for (size_t j = 1; j <= p; ++j) {
    result += LogGamma(a + 0.5 * (1.0 - static_cast<double>(j)));
  }
  return result;
}

double LogSumExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  double m = a > b ? a : b;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(const double* values, size_t n) {
  assert(n > 0);
  double m = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) m = values[i] > m ? values[i] : m;
  if (m == -std::numeric_limits<double>::infinity()) return m;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += std::exp(values[i] - m);
  return m + std::log(s);
}

}  // namespace texrheo::math
