#include "math/linalg.h"

#include <cmath>

#include "util/string_util.h"

namespace texrheo::math {

Vector& Vector::operator+=(const Vector& other) {
  assert(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] += other[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  assert(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] -= other[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vector::Norm() const { return std::sqrt(Dot(*this, *this)); }

double Vector::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

std::string Vector::ToString(int digits) const {
  std::string out = "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(data_[i], digits);
  }
  out += "]";
  return out;
}

Vector operator+(Vector a, const Vector& b) { return a += b; }
Vector operator-(Vector a, const Vector& b) { return a -= b; }
Vector operator*(double s, Vector v) { return v *= s; }

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

bool operator==(const Vector& a, const Vector& b) {
  return a.data() == b.data();
}

Matrix Matrix::Identity(size_t n, double diag) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = diag;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector Matrix::Multiply(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::Trace() const {
  assert(rows_ == cols_);
  double s = 0.0;
  for (size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int digits) const {
  std::string out;
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += FormatDouble((*this)(r, c), digits);
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(double s, Matrix m) { return m *= s; }

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.MaxAbsDiff(b) == 0.0;
}

texrheo::StatusOr<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot " +
          FormatDouble(diag, 6) + " at column " + std::to_string(j) + ")");
    }
    l(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return Cholesky(std::move(l));
}

double Cholesky::LogDet() const {
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector Cholesky::SolveLower(const Vector& b) const {
  size_t n = dim();
  assert(b.size() == n);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector Cholesky::Solve(const Vector& b) const {
  size_t n = dim();
  Vector y = SolveLower(b);
  // Back substitution with L^T.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::Inverse() const {
  size_t n = dim();
  Matrix inv(n, n);
  for (size_t c = 0; c < n; ++c) {
    Vector e(n);
    e[c] = 1.0;
    Vector x = Solve(e);
    for (size_t r = 0; r < n; ++r) inv(r, c) = x[r];
  }
  // Symmetrize to suppress round-off drift.
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r + 1; c < n; ++c) {
      double avg = 0.5 * (inv(r, c) + inv(c, r));
      inv(r, c) = avg;
      inv(c, r) = avg;
    }
  }
  return inv;
}

texrheo::StatusOr<Cholesky> CholeskyWithJitter(const Matrix& a,
                                               double initial_jitter,
                                               double max_jitter) {
  auto plain = Cholesky::Factor(a);
  if (plain.ok()) return plain;
  if (a.rows() != a.cols()) return plain;
  for (size_t i = 0; i < a.rows() * a.cols(); ++i) {
    if (!std::isfinite(a(i / a.cols(), i % a.cols()))) {
      return Status::FailedPrecondition(
          "matrix contains non-finite entries; jitter cannot repair it");
    }
  }
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 100.0) {
    Matrix damped = a;
    for (size_t i = 0; i < a.rows(); ++i) damped(i, i) += jitter;
    auto attempt = Cholesky::Factor(damped);
    if (attempt.ok()) return attempt;
  }
  return Status::FailedPrecondition(
      plain.status().message() + "; still not PD after diagonal jitter up to " +
      FormatDouble(max_jitter, 8));
}

texrheo::StatusOr<Matrix> InversePD(const Matrix& a) {
  TEXRHEO_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::Factor(a));
  return chol.Inverse();
}

double QuadraticForm(const Matrix& a, const Vector& x, const Vector& mu) {
  assert(a.rows() == a.cols() && a.rows() == x.size() && x.size() == mu.size());
  Vector d = x;
  d -= mu;
  return Dot(d, a.Multiply(d));
}

}  // namespace texrheo::math
