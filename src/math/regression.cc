#include "math/regression.h"

#include <cmath>

namespace texrheo::math {

texrheo::StatusOr<LinearFit> FitLine(const std::vector<double>& x,
                                     const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitLine: length mismatch");
  }
  size_t n = x.size();
  if (n < 2) return Status::InvalidArgument("FitLine: need >= 2 points");
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return Status::InvalidArgument("FitLine: x values are constant");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.n = n;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

texrheo::StatusOr<PowerLawFit> FitPowerLaw(const std::vector<double>& x,
                                           const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitPowerLaw: length mismatch");
  }
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) {
      return Status::InvalidArgument("FitPowerLaw: requires positive data");
    }
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  TEXRHEO_ASSIGN_OR_RETURN(LinearFit line, FitLine(lx, ly));
  PowerLawFit fit;
  fit.amplitude = std::exp(line.intercept);
  fit.exponent = line.slope;
  fit.r_squared = line.r_squared;
  return fit;
}

texrheo::StatusOr<ExponentialFit> FitExponential(const std::vector<double>& x,
                                                 const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitExponential: length mismatch");
  }
  std::vector<double> ly;
  ly.reserve(y.size());
  for (double v : y) {
    if (v <= 0.0) {
      return Status::InvalidArgument("FitExponential: requires positive y");
    }
    ly.push_back(std::log(v));
  }
  TEXRHEO_ASSIGN_OR_RETURN(LinearFit line, FitLine(x, ly));
  ExponentialFit fit;
  fit.amplitude = std::exp(line.intercept);
  fit.rate = line.slope;
  fit.r_squared = line.r_squared;
  return fit;
}

}  // namespace texrheo::math
