#include "math/running_stats.h"

#include <cmath>

namespace texrheo::math {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningMoments::RunningMoments(size_t dim)
    : sum_(dim), sum_outer_(dim, dim) {}

void RunningMoments::Add(const Vector& x) {
  ++n_;
  sum_ += x;
  sum_outer_ += Matrix::Outer(x, x);
}

Vector RunningMoments::Mean() const {
  Vector m = sum_;
  if (n_ > 0) m *= 1.0 / static_cast<double>(n_);
  return m;
}

Matrix RunningMoments::Scatter() const {
  Matrix s = sum_outer_;
  if (n_ > 0) {
    Vector m = Mean();
    s -= static_cast<double>(n_) * Matrix::Outer(m, m);
  }
  // Symmetrize and clip tiny negative diagonal from cancellation.
  for (size_t r = 0; r < s.rows(); ++r) {
    for (size_t c = r + 1; c < s.cols(); ++c) {
      double avg = 0.5 * (s(r, c) + s(c, r));
      s(r, c) = avg;
      s(c, r) = avg;
    }
    if (s(r, r) < 0.0) s(r, r) = 0.0;
  }
  return s;
}

Matrix RunningMoments::Covariance() const {
  Matrix s = Scatter();
  if (n_ >= 2) s *= 1.0 / static_cast<double>(n_ - 1);
  return s;
}

}  // namespace texrheo::math
