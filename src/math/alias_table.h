#ifndef TEXRHEO_MATH_ALIAS_TABLE_H_
#define TEXRHEO_MATH_ALIAS_TABLE_H_

#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace texrheo::math {

/// Walker's alias method: O(n) construction, O(1) categorical sampling.
/// Used for the word2vec negative-sampling noise distribution and available
/// as a fast path for topic proposals.
class AliasTable {
 public:
  /// Reusable construction buffers for BuildInto. A caller rebuilding many
  /// tables in a loop (e.g. one per vocabulary term) keeps one of these
  /// alive to amortize the three per-build worklist allocations.
  struct BuildScratch {
    std::vector<double> scaled;
    std::vector<size_t> small;
    std::vector<size_t> large;
  };

  /// An empty table (size() == 0); the target state for BuildInto. Sampling
  /// from it is undefined.
  AliasTable() = default;

  /// Builds the table from unnormalized non-negative weights; requires at
  /// least one strictly positive weight.
  static texrheo::StatusOr<AliasTable> Build(
      const std::vector<double>& weights);

  /// Rebuilds `out` in place from `weights`, reusing its storage and the
  /// caller's scratch. The result is indistinguishable from Build(weights):
  /// same masses bit-for-bit and the same Sample stream. On error `out` is
  /// left unspecified. Same preconditions as Build.
  static texrheo::Status BuildInto(const std::vector<double>& weights,
                                   BuildScratch& scratch, AliasTable& out);

  /// Draws an index distributed proportionally to the build weights.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Sum of the (unnormalized) build weights, as accumulated at Build time.
  /// Lets callers convert a table's normalized draws back into the original
  /// weight scale without re-summing.
  double total_weight() const { return total_weight_; }

  /// Probability mass assigned to index i (reconstructed; for tests).
  double MassOf(size_t i) const;

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
  double total_weight_ = 0.0;
};

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_ALIAS_TABLE_H_
