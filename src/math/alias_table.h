#ifndef TEXRHEO_MATH_ALIAS_TABLE_H_
#define TEXRHEO_MATH_ALIAS_TABLE_H_

#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace texrheo::math {

/// Walker's alias method: O(n) construction, O(1) categorical sampling.
/// Used for the word2vec negative-sampling noise distribution and available
/// as a fast path for topic proposals.
class AliasTable {
 public:
  /// Builds the table from unnormalized non-negative weights; requires at
  /// least one strictly positive weight.
  static texrheo::StatusOr<AliasTable> Build(
      const std::vector<double>& weights);

  /// Draws an index distributed proportionally to the build weights.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  /// Probability mass assigned to index i (reconstructed; for tests).
  double MassOf(size_t i) const;

 private:
  AliasTable(std::vector<double> prob, std::vector<size_t> alias)
      : prob_(std::move(prob)), alias_(std::move(alias)) {}

  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_ALIAS_TABLE_H_
