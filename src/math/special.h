#ifndef TEXRHEO_MATH_SPECIAL_H_
#define TEXRHEO_MATH_SPECIAL_H_

#include <cstddef>

namespace texrheo::math {

/// Natural log of the gamma function (thin wrapper; kept for symmetry).
double LogGamma(double x);

/// Digamma function psi(x) = d/dx log Gamma(x), x > 0.
/// Asymptotic expansion with upward recurrence for small x; |err| < 1e-12
/// for x >= 1e-3.
double Digamma(double x);

/// Log of the multivariate gamma function
///   log Gamma_p(a) = p(p-1)/4 log(pi) + sum_{j=1..p} log Gamma(a + (1-j)/2).
/// Required by Wishart normalization constants. Requires a > (p-1)/2.
double LogMultivariateGamma(size_t p, double a);

/// log(exp(a) + exp(b)) computed stably.
double LogSumExp(double a, double b);

/// Stable log-sum-exp over an array.
double LogSumExp(const double* values, size_t n);

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_SPECIAL_H_
