#include "math/student_t.h"

#include <cmath>

#include "math/special.h"

namespace texrheo::math {
namespace {

constexpr double kLogPi = 1.1447298858494001741;

}  // namespace

StudentT::StudentT(Vector mean, Matrix scale_inverse, double log_det_scale,
                   double dof)
    : mean_(std::move(mean)),
      scale_inverse_(std::move(scale_inverse)),
      log_det_scale_(log_det_scale),
      dof_(dof) {
  double d = static_cast<double>(mean_.size());
  // LogGamma, not std::lgamma: the latter races on the global signgam when
  // parallel Gibbs workers build predictives concurrently.
  log_norm_ = LogGamma(0.5 * (dof_ + d)) - LogGamma(0.5 * dof_) -
              0.5 * d * (std::log(dof_) + kLogPi) - 0.5 * log_det_scale_;
}

texrheo::StatusOr<StudentT> StudentT::Create(Vector mean, Matrix scale_matrix,
                                             double dof) {
  if (dof <= 0.0) {
    return Status::InvalidArgument("Student-t requires dof > 0");
  }
  if (mean.size() != scale_matrix.rows() ||
      scale_matrix.rows() != scale_matrix.cols()) {
    return Status::InvalidArgument("Student-t dimension mismatch");
  }
  TEXRHEO_ASSIGN_OR_RETURN(Cholesky chol, CholeskyWithJitter(scale_matrix));
  StudentT t(std::move(mean), chol.Inverse(), chol.LogDet(), dof);
  t.scale_ = std::move(scale_matrix);
  return t;
}

texrheo::StatusOr<StudentT> StudentT::PosteriorPredictive(
    const NormalWishartParams& nw) {
  TEXRHEO_RETURN_IF_ERROR(nw.Validate());
  double d = static_cast<double>(nw.dim());
  double dof = nw.nu - d + 1.0;
  if (dof <= 0.0) {
    return Status::FailedPrecondition(
        "posterior predictive undefined: nu <= dim - 1");
  }
  // Sigma = (beta + 1) / (beta * dof) * S^{-1} for Lambda ~ W(nu, S).
  TEXRHEO_ASSIGN_OR_RETURN(Matrix s_inv, InversePD(nw.scale));
  double factor = (nw.beta + 1.0) / (nw.beta * dof);
  return Create(nw.mu0, factor * s_inv, dof);
}

double StudentT::LogPdf(const Vector& x) const {
  double quad = QuadraticForm(scale_inverse_, x, mean_);
  double d = static_cast<double>(dim());
  return log_norm_ -
         0.5 * (dof_ + d) * std::log1p(quad / dof_);
}

texrheo::StatusOr<Matrix> StudentT::Covariance() const {
  if (dof_ <= 2.0) {
    return Status::FailedPrecondition(
        "Student-t covariance undefined for dof <= 2");
  }
  return (dof_ / (dof_ - 2.0)) * scale_;
}

}  // namespace texrheo::math
