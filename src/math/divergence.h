#ifndef TEXRHEO_MATH_DIVERGENCE_H_
#define TEXRHEO_MATH_DIVERGENCE_H_

#include "math/linalg.h"
#include "util/status.h"

namespace texrheo::math {

/// KL(p || q) between discrete distributions given as unnormalized
/// non-negative weight vectors of equal length. Both are normalized
/// internally; `smoothing` is added to every component first so that
/// zero-mass components (ubiquitous in concentration vectors: most recipes
/// lack most emulsions) do not produce infinities. This is the divergence
/// the paper uses to rank recipes by emulsion-concentration similarity
/// (Section V.B, Figures 3-4).
texrheo::StatusOr<double> DiscreteKL(const Vector& p, const Vector& q,
                                     double smoothing = 1e-6);

/// Symmetrized KL: KL(p||q) + KL(q||p).
texrheo::StatusOr<double> SymmetricDiscreteKL(const Vector& p, const Vector& q,
                                              double smoothing = 1e-6);

/// Jensen–Shannon divergence (base e), bounded by log 2.
texrheo::StatusOr<double> JensenShannon(const Vector& p, const Vector& q,
                                        double smoothing = 1e-6);

/// Hellinger distance between discrete distributions, in [0, 1].
texrheo::StatusOr<double> Hellinger(const Vector& p, const Vector& q,
                                    double smoothing = 1e-6);

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_DIVERGENCE_H_
