#ifndef TEXRHEO_MATH_STUDENT_T_H_
#define TEXRHEO_MATH_STUDENT_T_H_

#include "math/distributions.h"
#include "math/linalg.h"
#include "util/status.h"

namespace texrheo::math {

/// Multivariate Student-t distribution St(x | mu, Sigma, dof), the posterior
/// predictive of a Gaussian with a Normal-Wishart prior. Used by the
/// collapsed Gibbs sampler, which integrates the per-topic (mu_k, Lambda_k)
/// out of the paper's eq. (3) instead of instantiating them.
class StudentT {
 public:
  /// Builds the distribution; FailedPrecondition when `scale_matrix` (the
  /// Sigma parameter) is not positive definite. Requires dof > 0.
  static texrheo::StatusOr<StudentT> Create(Vector mean, Matrix scale_matrix,
                                            double dof);

  /// The posterior predictive of a Normal-Wishart prior/posterior `nw`
  /// (with Lambda ~ W(nu, S)):
  ///   St(x | mu0, (beta + 1) / (beta (nu - d + 1)) S^{-1}, nu - d + 1).
  static texrheo::StatusOr<StudentT> PosteriorPredictive(
      const NormalWishartParams& nw);

  const Vector& mean() const { return mean_; }
  double dof() const { return dof_; }
  size_t dim() const { return mean_.size(); }

  /// Log density at x.
  double LogPdf(const Vector& x) const;

  /// Covariance = dof / (dof - 2) * Sigma; requires dof > 2.
  texrheo::StatusOr<Matrix> Covariance() const;

 private:
  StudentT(Vector mean, Matrix scale_inverse, double log_det_scale,
           double dof);

  Vector mean_;
  Matrix scale_inverse_;   // Sigma^{-1}, cached for LogPdf.
  Matrix scale_;           // Sigma.
  double log_det_scale_;   // log |Sigma|.
  double dof_;
  double log_norm_;        // Normalization constant of the density.
};

}  // namespace texrheo::math

#endif  // TEXRHEO_MATH_STUDENT_T_H_
