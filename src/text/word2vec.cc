#include "text/word2vec.h"

#include <algorithm>
#include <cmath>

#include "math/alias_table.h"

namespace texrheo::text {
namespace {

// Clamped logistic; the clamp keeps gradients finite for extreme scores.
float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

texrheo::StatusOr<Word2Vec> Word2Vec::Train(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecConfig& config) {
  if (config.dim <= 0 || config.window <= 0 || config.negatives < 0 ||
      config.epochs <= 0) {
    return Status::InvalidArgument("word2vec: non-positive config field");
  }
  // Pass 1: count words.
  Vocabulary full;
  for (const auto& sentence : sentences) {
    for (const auto& w : sentence) full.Add(w);
  }
  Vocabulary vocab = full.Pruned(config.min_count);
  if (vocab.size() == 0) {
    return Status::FailedPrecondition(
        "word2vec: empty vocabulary after min_count pruning");
  }

  // Encode the corpus as id sequences once.
  std::vector<std::vector<int32_t>> encoded;
  encoded.reserve(sentences.size());
  for (const auto& sentence : sentences) {
    std::vector<int32_t> ids;
    ids.reserve(sentence.size());
    for (const auto& w : sentence) {
      int32_t id = vocab.IdOf(w);
      if (id != Vocabulary::kUnknownId) ids.push_back(id);
    }
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }
  if (encoded.empty()) {
    return Status::FailedPrecondition("word2vec: no trainable sentences");
  }

  size_t v = vocab.size();
  size_t dim = static_cast<size_t>(config.dim);
  Word2Vec model(config, std::move(vocab));
  model.in_.resize(v * dim);
  model.out_.assign(v * dim, 0.0f);

  Rng rng(config.seed);
  float init_range = 0.5f / static_cast<float>(dim);
  for (float& x : model.in_) {
    x = (static_cast<float>(rng.NextDouble()) - 0.5f) * 2.0f * init_range;
  }

  // Negative-sampling noise distribution: count^0.75.
  std::vector<double> noise_weights(v);
  for (size_t i = 0; i < v; ++i) {
    noise_weights[i] =
        std::pow(static_cast<double>(model.vocab_.counts()[i]), 0.75);
  }
  TEXRHEO_ASSIGN_OR_RETURN(math::AliasTable noise,
                           math::AliasTable::Build(noise_weights));

  // Subsampling keep-probabilities (Mikolov's formula).
  std::vector<double> keep_prob(v, 1.0);
  if (config.subsample > 0.0) {
    double total = static_cast<double>(model.vocab_.total_count());
    for (size_t i = 0; i < v; ++i) {
      double f = static_cast<double>(model.vocab_.counts()[i]) / total;
      double p = (std::sqrt(f / config.subsample) + 1.0) * config.subsample / f;
      keep_prob[i] = std::min(1.0, p);
    }
  }

  int64_t total_tokens = 0;
  for (const auto& s : encoded) total_tokens += static_cast<int64_t>(s.size());
  int64_t trained = 0;
  const int64_t schedule_total = total_tokens * config.epochs;

  std::vector<float> grad_in(dim);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& sentence : encoded) {
      // Apply subsampling per epoch so different tokens survive each pass.
      std::vector<int32_t> kept;
      kept.reserve(sentence.size());
      for (int32_t id : sentence) {
        if (keep_prob[static_cast<size_t>(id)] >= 1.0 ||
            rng.NextDouble() < keep_prob[static_cast<size_t>(id)]) {
          kept.push_back(id);
        }
      }
      trained += static_cast<int64_t>(sentence.size());
      if (kept.size() < 2) continue;
      double progress =
          static_cast<double>(trained) / static_cast<double>(schedule_total);
      float lr = static_cast<float>(
          std::max(config.min_lr, config.lr * (1.0 - progress)));

      for (size_t pos = 0; pos < kept.size(); ++pos) {
        int window = 1 + static_cast<int>(
                             rng.NextUint(static_cast<uint64_t>(config.window)));
        int32_t center = kept[pos];
        float* center_vec = &model.in_[static_cast<size_t>(center) * dim];
        for (int off = -window; off <= window; ++off) {
          if (off == 0) continue;
          int64_t cpos = static_cast<int64_t>(pos) + off;
          if (cpos < 0 || cpos >= static_cast<int64_t>(kept.size())) continue;
          int32_t context = kept[static_cast<size_t>(cpos)];

          std::fill(grad_in.begin(), grad_in.end(), 0.0f);
          for (int neg = 0; neg <= config.negatives; ++neg) {
            int32_t target;
            float label;
            if (neg == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = static_cast<int32_t>(noise.Sample(rng));
              if (target == context) continue;
              label = 0.0f;
            }
            float* out_vec = &model.out_[static_cast<size_t>(target) * dim];
            float score = 0.0f;
            for (size_t i = 0; i < dim; ++i) score += center_vec[i] * out_vec[i];
            float g = (label - Sigmoid(score)) * lr;
            for (size_t i = 0; i < dim; ++i) {
              grad_in[i] += g * out_vec[i];
              out_vec[i] += g * center_vec[i];
            }
          }
          for (size_t i = 0; i < dim; ++i) center_vec[i] += grad_in[i];
        }
      }
    }
  }

  model.norms_.resize(v);
  for (size_t w = 0; w < v; ++w) {
    double s = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      s += static_cast<double>(model.in_[w * dim + i]) * model.in_[w * dim + i];
    }
    model.norms_[w] = static_cast<float>(std::sqrt(s));
  }
  return model;
}

double Word2Vec::CosineById(int32_t a, int32_t b) const {
  size_t dim = static_cast<size_t>(config_.dim);
  const float* va = &in_[static_cast<size_t>(a) * dim];
  const float* vb = &in_[static_cast<size_t>(b) * dim];
  double dot = 0.0;
  for (size_t i = 0; i < dim; ++i) dot += static_cast<double>(va[i]) * vb[i];
  double denom = static_cast<double>(norms_[static_cast<size_t>(a)]) *
                 norms_[static_cast<size_t>(b)];
  return denom > 0.0 ? dot / denom : 0.0;
}

texrheo::StatusOr<double> Word2Vec::Similarity(std::string_view a,
                                               std::string_view b) const {
  int32_t ia = vocab_.IdOf(a);
  int32_t ib = vocab_.IdOf(b);
  if (ia == Vocabulary::kUnknownId || ib == Vocabulary::kUnknownId) {
    return Status::NotFound("word not in vocabulary");
  }
  return CosineById(ia, ib);
}

texrheo::StatusOr<std::vector<std::pair<std::string, double>>>
Word2Vec::MostSimilar(std::string_view word, size_t k) const {
  int32_t id = vocab_.IdOf(word);
  if (id == Vocabulary::kUnknownId) {
    return Status::NotFound("word not in vocabulary: " + std::string(word));
  }
  std::vector<std::pair<std::string, double>> scored;
  scored.reserve(vocab_.size());
  for (size_t other = 0; other < vocab_.size(); ++other) {
    if (static_cast<int32_t>(other) == id) continue;
    scored.emplace_back(vocab_.WordOf(static_cast<int32_t>(other)),
                        CosineById(id, static_cast<int32_t>(other)));
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take),
                    scored.end(), [](const auto& x, const auto& y) {
                      return x.second > y.second;
                    });
  scored.resize(take);
  return scored;
}

texrheo::StatusOr<std::vector<float>> Word2Vec::EmbeddingOf(
    std::string_view word) const {
  int32_t id = vocab_.IdOf(word);
  if (id == Vocabulary::kUnknownId) {
    return Status::NotFound("word not in vocabulary: " + std::string(word));
  }
  size_t dim = static_cast<size_t>(config_.dim);
  const float* v = &in_[static_cast<size_t>(id) * dim];
  return std::vector<float>(v, v + dim);
}

GelRelatednessFilter::GelRelatednessFilter(
    const Word2Vec* model, std::vector<std::string> unrelated_ingredients,
    Config config)
    : model_(model),
      unrelated_(std::move(unrelated_ingredients)),
      config_(config) {}

bool GelRelatednessFilter::IsExcluded(std::string_view texture_term) const {
  if (!model_->Knows(texture_term)) return false;
  auto neighbours_or = model_->MostSimilar(texture_term, config_.top_k);
  if (!neighbours_or.ok()) return false;
  for (const auto& [word, sim] : neighbours_or.value()) {
    if (sim < config_.min_similarity) continue;
    for (const auto& bad : unrelated_) {
      if (word == bad) return true;
    }
  }
  return false;
}

std::vector<std::string> GelRelatednessFilter::ExcludedAmong(
    const std::vector<std::string>& texture_terms) const {
  std::vector<std::string> out;
  for (const auto& term : texture_terms) {
    if (std::find(out.begin(), out.end(), term) != out.end()) continue;
    if (IsExcluded(term)) out.push_back(term);
  }
  return out;
}

}  // namespace texrheo::text
