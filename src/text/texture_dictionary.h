#ifndef TEXRHEO_TEXT_TEXTURE_DICTIONARY_H_
#define TEXRHEO_TEXT_TEXTURE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace texrheo::text {

/// Rheological axis a sensory texture term describes. Mirrors the category
/// annotation of the NARO Comprehensive Japanese Texture Terms dictionary,
/// restricted — as in the paper — to the three axes measured by texture
/// profile analysis: hardness, cohesiveness, adhesiveness.
enum class TextureAxis {
  kHardness = 0,      // hard (+) ... soft (-)
  kCohesiveness = 1,  // elastic/springy (+) ... crumbly/pasty (-)
  kAdhesiveness = 2,  // sticky (+) ... dry/clean-release (-)
};

const char* TextureAxisName(TextureAxis axis);

/// One dictionary entry: a romanized Japanese texture term with its
/// rheological annotation.
struct TextureTerm {
  std::string surface;  ///< Romanized surface form, e.g. "purupuru".
  std::string gloss;    ///< Short English gloss.
  TextureAxis axis;     ///< Which quantitative axis the term describes.
  int polarity;         ///< +1 toward the axis' high end, -1 toward the low.
  double intensity;     ///< Perceived strength along the axis, in (0, 1].
  bool gel_related;     ///< False for terms typical of non-gel foods
                        ///< (crispy toppings etc.) - used to validate the
                        ///< word2vec confounder filter.
  double base_frequency = 1.0;  ///< Relative usage frequency in recipe text
                                ///< (Zipf-like: the paper's 41 common terms
                                ///< dominate; rare variants trail off).
};

/// The embedded texture-term dictionary. The real NARO dictionary is a
/// website resource; this reproduction embeds 288 romanized terms built
/// from (a) the 41 surfaces quoted in the paper and (b) systematically
/// derived morphological variants of curated onomatopoeic stems
/// (reduplication "purupuru", glottal "purit", nasal "purunpurun",
/// adverbial "-ri" forms), each annotated with axis/polarity/intensity.
class TextureDictionary {
 public:
  /// The process-wide embedded dictionary (constructed once, never freed).
  static const TextureDictionary& Embedded();

  /// Builds a dictionary from explicit entries; duplicated surfaces keep the
  /// first occurrence.
  explicit TextureDictionary(std::vector<TextureTerm> terms);

  /// Returns the entry for a surface form, or nullptr when absent.
  const TextureTerm* Find(std::string_view surface) const;

  bool Contains(std::string_view surface) const {
    return Find(surface) != nullptr;
  }

  const std::vector<TextureTerm>& terms() const { return terms_; }
  size_t size() const { return terms_.size(); }

  /// All terms on `axis` with the given polarity sign (+1 or -1).
  std::vector<const TextureTerm*> TermsOnAxis(TextureAxis axis,
                                              int polarity) const;

 private:
  std::vector<TextureTerm> terms_;
  std::unordered_map<std::string, size_t> index_;
};

/// True when the term names the hard (resp. soft) pole of the hardness axis.
bool IsHardTerm(const TextureTerm& t);
bool IsSoftTerm(const TextureTerm& t);
/// True for the elastic/springy (resp. crumbly-pasty "cohesive-low") pole.
bool IsElasticTerm(const TextureTerm& t);
bool IsCrumblyTerm(const TextureTerm& t);
/// Sticky (resp. dry) pole of the adhesiveness axis.
bool IsStickyTerm(const TextureTerm& t);

}  // namespace texrheo::text

#endif  // TEXRHEO_TEXT_TEXTURE_DICTIONARY_H_
