#include "text/vocabulary.h"

#include <cassert>

namespace texrheo::text {

int32_t Vocabulary::Add(std::string_view word) {
  auto it = index_.find(std::string(word));
  int32_t id;
  if (it == index_.end()) {
    id = static_cast<int32_t>(words_.size());
    index_.emplace(std::string(word), id);
    words_.emplace_back(word);
    counts_.push_back(0);
  } else {
    id = it->second;
  }
  ++counts_[id];
  ++total_count_;
  return id;
}

int32_t Vocabulary::AddWithCount(std::string_view word, int64_t count) {
  assert(count >= 0);
  int32_t id = Add(word);
  // Add() contributed 1; adjust to the requested delta.
  counts_[id] += count - 1;
  total_count_ += count - 1;
  return id;
}

int32_t Vocabulary::IdOf(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kUnknownId : it->second;
}

const std::string& Vocabulary::WordOf(int32_t id) const {
  assert(id >= 0 && static_cast<size_t>(id) < words_.size());
  return words_[id];
}

int64_t Vocabulary::CountOf(int32_t id) const {
  assert(id >= 0 && static_cast<size_t>(id) < counts_.size());
  return counts_[id];
}

Vocabulary Vocabulary::Pruned(int64_t min_count) const {
  Vocabulary out;
  for (size_t id = 0; id < words_.size(); ++id) {
    if (counts_[id] < min_count) continue;
    int32_t new_id = out.Add(words_[id]);
    // Add() set count 1; restore the real count.
    out.counts_[new_id] = counts_[id];
    out.total_count_ += counts_[id] - 1;
  }
  return out;
}

}  // namespace texrheo::text
