#ifndef TEXRHEO_TEXT_WORD2VEC_H_
#define TEXRHEO_TEXT_WORD2VEC_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::text {

/// Training configuration for skip-gram with negative sampling.
struct Word2VecConfig {
  int dim = 32;             ///< Embedding dimensionality.
  int window = 4;           ///< Max context offset (sampled per position).
  int negatives = 5;        ///< Negative samples per positive pair.
  int epochs = 3;           ///< Passes over the corpus.
  double lr = 0.025;        ///< Initial learning rate (linear decay).
  double min_lr = 1e-4;     ///< Learning-rate floor.
  int64_t min_count = 2;    ///< Words rarer than this are dropped.
  double subsample = 1e-3;  ///< Frequent-word subsampling threshold; 0 = off.
  uint64_t seed = 42;       ///< RNG seed; training is single-threaded and
                            ///< fully deterministic given the seed.
};

/// Word2vec (Mikolov-style skip-gram, negative sampling), trained from
/// scratch. The paper trains word2vec on recipe descriptions and excludes
/// texture terms whose neighbourhoods contain gel-unrelated ingredients;
/// GelRelatednessFilter below implements that use.
class Word2Vec {
 public:
  /// Trains on tokenized sentences. Fails when the corpus produces an empty
  /// vocabulary after min_count pruning.
  static texrheo::StatusOr<Word2Vec> Train(
      const std::vector<std::vector<std::string>>& sentences,
      const Word2VecConfig& config);

  const Vocabulary& vocab() const { return vocab_; }
  int dim() const { return config_.dim; }

  bool Knows(std::string_view word) const {
    return vocab_.IdOf(word) != Vocabulary::kUnknownId;
  }

  /// Cosine similarity between two in-vocabulary words.
  texrheo::StatusOr<double> Similarity(std::string_view a,
                                       std::string_view b) const;

  /// Top-k most cosine-similar vocabulary words (excluding `word` itself),
  /// sorted descending.
  texrheo::StatusOr<std::vector<std::pair<std::string, double>>> MostSimilar(
      std::string_view word, size_t k) const;

  /// The (input) embedding of an in-vocabulary word.
  texrheo::StatusOr<std::vector<float>> EmbeddingOf(std::string_view word) const;

 private:
  Word2Vec(Word2VecConfig config, Vocabulary vocab)
      : config_(config), vocab_(std::move(vocab)) {}

  double CosineById(int32_t a, int32_t b) const;

  Word2VecConfig config_;
  Vocabulary vocab_;
  std::vector<float> in_;   // V x dim input embeddings.
  std::vector<float> out_;  // V x dim output embeddings.
  std::vector<float> norms_;  // Cached L2 norms of input embeddings.
};

/// Implements the paper's gel-relatedness screen: a texture term is excluded
/// when its word2vec neighbourhood contains an ingredient term unrelated to
/// gels ("a recipe of mousse with topping of nuts might create texture terms
/// representing crispy ... nuts appear in similar words").
class GelRelatednessFilter {
 public:
  struct Config {
    size_t top_k = 10;            ///< Neighbourhood size examined per term.
    double min_similarity = 0.2;  ///< Neighbours below this are ignored.
  };

  /// `unrelated_ingredients` are surface forms of non-gel ingredient words
  /// (e.g. "nuts", "cookie"). The model reference must outlive the filter.
  GelRelatednessFilter(const Word2Vec* model,
                       std::vector<std::string> unrelated_ingredients,
                       Config config);

  /// True when `texture_term` should be excluded from the dataset.
  bool IsExcluded(std::string_view texture_term) const;

  /// Evaluates a batch and returns the excluded subset (each term once).
  std::vector<std::string> ExcludedAmong(
      const std::vector<std::string>& texture_terms) const;

 private:
  const Word2Vec* model_;
  std::vector<std::string> unrelated_;
  Config config_;
};

}  // namespace texrheo::text

#endif  // TEXRHEO_TEXT_WORD2VEC_H_
