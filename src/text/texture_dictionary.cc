#include "text/texture_dictionary.h"

#include <algorithm>
#include <cassert>

namespace texrheo::text {
namespace {

constexpr int kDictionarySize = 288;

struct RawTerm {
  const char* surface;
  const char* gloss;
  TextureAxis axis;
  int polarity;
  double intensity;
  bool gel_related;
};

// The 41 surfaces quoted in the paper (Table II(a) plus common gel-corpus
// terms), annotated along the three TPA axes. Polarity signs follow the
// paper's own readings: "katai"/"dossiri" are hardness terms, "furufuru"/
// "fuwafuwa" softness, "burinburin"/"purupuru" elasticity (the high-
// cohesiveness pole), "horohoro"/"bosoboso" crumbliness (low cohesiveness),
// "nettori"/"necchiri" stickiness (high adhesiveness).
constexpr RawTerm kPaperTerms[] = {
    {"furufuru", "soft and slightly wobbly, easy to break",
     TextureAxis::kHardness, -1, 0.7, true},
    {"katai", "hard, firm, stiff, tough, rigid", TextureAxis::kHardness, +1,
     0.9, true},
    {"muchimuchi", "resilient, firm and slightly sticky",
     TextureAxis::kHardness, +1, 0.6, true},
    {"gucha", "mushy; having lost its original shape",
     TextureAxis::kCohesiveness, -1, 0.8, true},
    {"potteri", "thick, resistant to flow", TextureAxis::kAdhesiveness, +1,
     0.5, true},
    {"burunburun", "elastic and slightly wobbly (strong)",
     TextureAxis::kCohesiveness, +1, 0.9, true},
    {"bosoboso", "dry, crumbly and not compact", TextureAxis::kCohesiveness,
     -1, 0.8, true},
    {"botet", "thick and heavy, resistant to flow", TextureAxis::kHardness,
     +1, 0.5, true},
    {"shakusyaku", "crisp; material is cut or sheared off easily",
     TextureAxis::kCohesiveness, -1, 0.6, true},
    {"buruburu", "elastic and slightly wobbly", TextureAxis::kCohesiveness,
     +1, 0.7, true},
    {"purupuru", "soft elastic and slightly sticky, slightly wobbly",
     TextureAxis::kCohesiveness, +1, 0.6, true},
    {"nettori", "sticky, viscous and thick", TextureAxis::kAdhesiveness, +1,
     0.9, true},
    {"purit", "springy; pops when bitten", TextureAxis::kCohesiveness, +1,
     0.5, true},
    {"mottari", "thick and viscous, resistant to flow",
     TextureAxis::kAdhesiveness, +1, 0.6, true},
    {"horohoro", "crumbly and soft", TextureAxis::kCohesiveness, -1, 0.7,
     true},
    {"necchiri", "very sticky and viscous", TextureAxis::kAdhesiveness, +1,
     1.0, true},
    {"fuwafuwa", "soft and fluffy", TextureAxis::kHardness, -1, 0.9, true},
    {"yuruyuru", "thin, loose, easy to deform", TextureAxis::kHardness, -1,
     0.8, true},
    {"bechat", "sticky, viscous and watery", TextureAxis::kAdhesiveness, +1,
     0.7, true},
    {"fukahuka", "soft, swollen and somewhat elastic", TextureAxis::kHardness,
     -1, 0.6, true},
    {"burit", "firm and resilient", TextureAxis::kCohesiveness, +1, 0.6,
     true},
    {"dossiri", "heavy, dense", TextureAxis::kHardness, +1, 0.8, true},
    {"churuchuru", "slippery, smooth and wet surface",
     TextureAxis::kAdhesiveness, -1, 0.5, true},
    {"punipuni", "soft elastic and slightly sticky",
     TextureAxis::kCohesiveness, +1, 0.5, true},
    {"kutat", "soft, not taut", TextureAxis::kHardness, -1, 0.5, true},
    {"burinburin", "firm and resilient (strong)", TextureAxis::kCohesiveness,
     +1, 1.0, true},
    {"korit", "crunchy", TextureAxis::kHardness, +1, 0.6, true},
    {"daradara", "thick, heavy, dripping slowly", TextureAxis::kAdhesiveness,
     +1, 0.4, true},
    {"karat", "dry and crispy", TextureAxis::kAdhesiveness, -1, 0.7, true},
    {"hajikeru", "cracking open, fizzy", TextureAxis::kCohesiveness, -1, 0.5,
     true},
    {"omoi", "heavy", TextureAxis::kHardness, +1, 0.5, true},
    {"mochimochi", "springy and chewy like rice cake",
     TextureAxis::kCohesiveness, +1, 0.8, true},
    {"torotoro", "melting, thick and smooth", TextureAxis::kHardness, -1, 0.6,
     true},
    {"purunpurun", "strongly jiggly and springy", TextureAxis::kCohesiveness,
     +1, 0.8, true},
    {"tsurutsuru", "slippery and smooth", TextureAxis::kAdhesiveness, -1, 0.6,
     true},
    {"shikoshiko", "firm and pleasantly chewy", TextureAxis::kCohesiveness,
     +1, 0.6, true},
    {"kachikachi", "rock hard", TextureAxis::kHardness, +1, 1.0, true},
    {"sakusaku", "crisp and light", TextureAxis::kCohesiveness, -1, 0.5,
     false},
    {"paripari", "thin and crispy", TextureAxis::kCohesiveness, -1, 0.6,
     false},
    {"karikari", "crunchy and hard", TextureAxis::kHardness, +1, 0.7, false},
    {"zarazara", "grainy, rough", TextureAxis::kAdhesiveness, -1, 0.4, false},
};

// Onomatopoeic stems used to derive the remaining dictionary entries via the
// productive morphology of Japanese mimetics. Each stem yields up to four
// forms: full reduplication ("puyo" -> "puyopuyo"), adverbial -ri, glottal
// -t, and nasal reduplication ("puyon" -> "puyonpuyon").
constexpr RawTerm kStems[] = {
    // Softness pole of hardness.
    {"funya", "limp and soft", TextureAxis::kHardness, -1, 0.7, true},
    {"howa", "airily soft", TextureAxis::kHardness, -1, 0.8, true},
    {"poyo", "soft and bouncy-light", TextureAxis::kHardness, -1, 0.5, true},
    {"fuka", "soft and fluffy-deep", TextureAxis::kHardness, -1, 0.6, true},
    {"yawa", "tender, yielding", TextureAxis::kHardness, -1, 0.7, true},
    {"fuwa", "light and airy", TextureAxis::kHardness, -1, 0.9, true},
    {"hero", "limp, flimsy", TextureAxis::kHardness, -1, 0.4, true},
    {"kuta", "wilted, not taut", TextureAxis::kHardness, -1, 0.5, true},
    {"toro", "melting, smoothly thick", TextureAxis::kHardness, -1, 0.6,
     true},
    {"yuru", "loose, barely set", TextureAxis::kHardness, -1, 0.8, true},
    {"tayu", "softly swaying", TextureAxis::kHardness, -1, 0.4, true},
    {"hnya", "floppy", TextureAxis::kHardness, -1, 0.5, true},
    // Hardness pole.
    {"kachi", "rigidly hard", TextureAxis::kHardness, +1, 1.0, true},
    {"gochi", "stiff and blocky", TextureAxis::kHardness, +1, 0.9, true},
    {"kochi", "stiffened hard", TextureAxis::kHardness, +1, 0.8, true},
    {"gachi", "solidly hard", TextureAxis::kHardness, +1, 0.9, true},
    {"kin", "taut and firm", TextureAxis::kHardness, +1, 0.6, true},
    {"gassi", "sturdy, dense", TextureAxis::kHardness, +1, 0.7, true},
    {"zusshi", "heavy in the hand", TextureAxis::kHardness, +1, 0.8, true},
    {"dosshi", "massive, weighty", TextureAxis::kHardness, +1, 0.8, true},
    {"kori", "crunchy-firm", TextureAxis::kHardness, +1, 0.6, true},
    {"gori", "coarsely hard", TextureAxis::kHardness, +1, 0.7, true},
    {"goro", "chunky, lumpy-solid", TextureAxis::kHardness, +1, 0.4, true},
    {"shika", "densely firm", TextureAxis::kHardness, +1, 0.5, true},
    // Elastic / springy pole of cohesiveness.
    {"puru", "jiggly, springy gel", TextureAxis::kCohesiveness, +1, 0.6,
     true},
    {"buru", "wobbling elastic", TextureAxis::kCohesiveness, +1, 0.7, true},
    {"puri", "springy-popping", TextureAxis::kCohesiveness, +1, 0.5, true},
    {"buri", "firmly resilient", TextureAxis::kCohesiveness, +1, 0.7, true},
    {"puni", "squishy-elastic", TextureAxis::kCohesiveness, +1, 0.5, true},
    {"muni", "pliably elastic", TextureAxis::kCohesiveness, +1, 0.4, true},
    {"mochi", "chewy like rice cake", TextureAxis::kCohesiveness, +1, 0.8,
     true},
    {"muchi", "taut and chewy", TextureAxis::kCohesiveness, +1, 0.6, true},
    {"shiko", "pleasantly chewy", TextureAxis::kCohesiveness, +1, 0.6, true},
    {"kuni", "bendy-elastic", TextureAxis::kCohesiveness, +1, 0.4, true},
    {"gumi", "gummy, dense-elastic", TextureAxis::kCohesiveness, +1, 0.7,
     true},
    {"byon", "rubbery bounce", TextureAxis::kCohesiveness, +1, 0.5, true},
    {"pucchi", "bursting-springy", TextureAxis::kCohesiveness, +1, 0.5, true},
    {"tsubu", "grainy pop", TextureAxis::kCohesiveness, +1, 0.3, true},
    // Crumbly / low-cohesiveness pole.
    {"horo", "crumbling softly apart", TextureAxis::kCohesiveness, -1, 0.7,
     true},
    {"boro", "falling apart in crumbs", TextureAxis::kCohesiveness, -1, 0.8,
     true},
    {"poro", "flaking off in bits", TextureAxis::kCohesiveness, -1, 0.6,
     true},
    {"boso", "dry and crumbly", TextureAxis::kCohesiveness, -1, 0.8, true},
    {"pasa", "dry, falling apart", TextureAxis::kCohesiveness, -1, 0.7, true},
    {"moro", "brittle, fragile", TextureAxis::kCohesiveness, -1, 0.6, true},
    {"saku", "lightly crisp", TextureAxis::kCohesiveness, -1, 0.5, false},
    {"shaku", "crisply shearing", TextureAxis::kCohesiveness, -1, 0.6, true},
    {"zaku", "coarsely crunchy", TextureAxis::kCohesiveness, -1, 0.5, false},
    {"pori", "quietly crunchy", TextureAxis::kCohesiveness, -1, 0.5, false},
    {"bari", "crackling crisp", TextureAxis::kCohesiveness, -1, 0.7, false},
    {"pari", "thin-crisp", TextureAxis::kCohesiveness, -1, 0.6, false},
    {"kari", "hard-crisp", TextureAxis::kCohesiveness, -1, 0.7, false},
    {"gucha", "mushed, collapsed", TextureAxis::kCohesiveness, -1, 0.8, true},
    {"gusha", "crushed soggy", TextureAxis::kCohesiveness, -1, 0.7, true},
    // Sticky / high-adhesiveness pole.
    {"neba", "stringy-sticky", TextureAxis::kAdhesiveness, +1, 0.9, true},
    {"beta", "clinging sticky", TextureAxis::kAdhesiveness, +1, 0.8, true},
    {"beto", "heavily tacky", TextureAxis::kAdhesiveness, +1, 0.8, true},
    {"necho", "gluey", TextureAxis::kAdhesiveness, +1, 0.9, true},
    {"nechi", "persistent sticky", TextureAxis::kAdhesiveness, +1, 0.9, true},
    {"nuru", "slimy-slick", TextureAxis::kAdhesiveness, +1, 0.5, true},
    {"nume", "slippery-slimy", TextureAxis::kAdhesiveness, +1, 0.4, true},
    {"nita", "thickly pasty", TextureAxis::kAdhesiveness, +1, 0.6, true},
    {"mota", "sluggishly thick", TextureAxis::kAdhesiveness, +1, 0.5, true},
    {"doro", "muddy-thick", TextureAxis::kAdhesiveness, +1, 0.6, true},
    {"pota", "thickly dripping", TextureAxis::kAdhesiveness, +1, 0.4, true},
    {"neto", "tackily sticky", TextureAxis::kAdhesiveness, +1, 0.8, true},
    // Dry / clean-release pole of adhesiveness.
    {"sara", "dry and smooth-flowing", TextureAxis::kAdhesiveness, -1, 0.6,
     true},
    {"kara", "dried crisp", TextureAxis::kAdhesiveness, -1, 0.7, true},
    {"tsuru", "slickly smooth", TextureAxis::kAdhesiveness, -1, 0.6, true},
    {"churu", "slurpably smooth", TextureAxis::kAdhesiveness, -1, 0.5, true},
    {"suru", "gliding smooth", TextureAxis::kAdhesiveness, -1, 0.4, true},
    {"shari", "icy-crisp, clean", TextureAxis::kAdhesiveness, -1, 0.5, true},
    {"zara", "grainy, non-sticky", TextureAxis::kAdhesiveness, -1, 0.4,
     false},
    {"hoku", "dry-mealy", TextureAxis::kAdhesiveness, -1, 0.5, false},
};

// Builds the deterministic 288-entry dictionary: the 41 paper terms first,
// then derived stem forms until the target size is reached.
std::vector<TextureTerm> BuildEmbeddedTerms() {
  std::vector<TextureTerm> terms;
  terms.reserve(kDictionarySize);
  auto contains = [&terms](const std::string& s) {
    for (const auto& t : terms) {
      if (t.surface == s) return true;
    }
    return false;
  };
  auto push = [&terms, &contains](std::string surface, std::string gloss,
                                  TextureAxis axis, int polarity,
                                  double intensity, bool gel_related) {
    if (terms.size() >= kDictionarySize) return;
    if (contains(surface)) return;
    // Zipf-like usage: the curated paper terms (first 41) are common in
    // recipe text; derived variants are long-tail.
    size_t rank = terms.size();
    double base_frequency =
        rank < 41 ? 1.0 / (1.0 + 0.05 * static_cast<double>(rank)) : 0.0002;
    terms.push_back(TextureTerm{std::move(surface), std::move(gloss), axis,
                                polarity, intensity, gel_related,
                                base_frequency});
  };

  for (const RawTerm& r : kPaperTerms) {
    push(r.surface, r.gloss, r.axis, r.polarity, r.intensity, r.gel_related);
  }
  // Derived forms, one morphological pattern at a time so the mix of forms
  // is balanced across stems even though we stop at exactly 288.
  for (const RawTerm& s : kStems) {  // Full reduplication: puyo -> puyopuyo.
    push(std::string(s.surface) + s.surface, s.gloss, s.axis, s.polarity,
         s.intensity, s.gel_related);
  }
  for (const RawTerm& s : kStems) {  // Glottal: puyo -> puyot.
    push(std::string(s.surface) + "t", std::string(s.gloss) + " (abrupt)",
         s.axis, s.polarity, s.intensity * 0.9, s.gel_related);
  }
  for (const RawTerm& s : kStems) {  // Adverbial -ri: puyo -> puyori.
    push(std::string(s.surface) + "ri", std::string(s.gloss) + " (settled)",
         s.axis, s.polarity, s.intensity * 0.8, s.gel_related);
  }
  for (const RawTerm& s : kStems) {  // Nasal reduplication: puyonpuyon.
    push(std::string(s.surface) + "n" + s.surface + "n",
         std::string(s.gloss) + " (emphatic)", s.axis, s.polarity,
         std::min(1.0, s.intensity * 1.2), s.gel_related);
  }
  assert(terms.size() == kDictionarySize &&
         "stem table too small for the 288-entry dictionary");
  return terms;
}

}  // namespace

const char* TextureAxisName(TextureAxis axis) {
  switch (axis) {
    case TextureAxis::kHardness:
      return "hardness";
    case TextureAxis::kCohesiveness:
      return "cohesiveness";
    case TextureAxis::kAdhesiveness:
      return "adhesiveness";
  }
  return "?";
}

TextureDictionary::TextureDictionary(std::vector<TextureTerm> terms) {
  terms_.reserve(terms.size());
  for (auto& t : terms) {
    if (index_.count(t.surface)) continue;
    index_.emplace(t.surface, terms_.size());
    terms_.push_back(std::move(t));
  }
}

const TextureDictionary& TextureDictionary::Embedded() {
  static const TextureDictionary& dict =
      *new TextureDictionary(BuildEmbeddedTerms());
  return dict;
}

const TextureTerm* TextureDictionary::Find(std::string_view surface) const {
  auto it = index_.find(std::string(surface));
  return it == index_.end() ? nullptr : &terms_[it->second];
}

std::vector<const TextureTerm*> TextureDictionary::TermsOnAxis(
    TextureAxis axis, int polarity) const {
  std::vector<const TextureTerm*> out;
  for (const auto& t : terms_) {
    if (t.axis == axis && t.polarity == polarity) out.push_back(&t);
  }
  return out;
}

bool IsHardTerm(const TextureTerm& t) {
  return t.axis == TextureAxis::kHardness && t.polarity > 0;
}
bool IsSoftTerm(const TextureTerm& t) {
  return t.axis == TextureAxis::kHardness && t.polarity < 0;
}
bool IsElasticTerm(const TextureTerm& t) {
  return t.axis == TextureAxis::kCohesiveness && t.polarity > 0;
}
bool IsCrumblyTerm(const TextureTerm& t) {
  return t.axis == TextureAxis::kCohesiveness && t.polarity < 0;
}
bool IsStickyTerm(const TextureTerm& t) {
  return t.axis == TextureAxis::kAdhesiveness && t.polarity > 0;
}

}  // namespace texrheo::text
