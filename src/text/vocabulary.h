#ifndef TEXRHEO_TEXT_VOCABULARY_H_
#define TEXRHEO_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace texrheo::text {

/// Bidirectional word <-> integer-id mapping with frequency counts.
/// Ids are dense and assigned in first-seen order, so a fixed corpus order
/// yields a fixed vocabulary (important for reproducible experiments).
class Vocabulary {
 public:
  static constexpr int32_t kUnknownId = -1;

  /// Interns `word`, creating an id on first sight, and bumps its count.
  int32_t Add(std::string_view word);

  /// Interns `word` and adds `count` occurrences in one step (count >= 0).
  /// Used by deserializers that must reproduce stored frequencies exactly
  /// instead of re-counting one Add() per token.
  int32_t AddWithCount(std::string_view word, int64_t count);

  /// Id of `word`, or kUnknownId.
  int32_t IdOf(std::string_view word) const;

  /// Word for a valid id.
  const std::string& WordOf(int32_t id) const;

  /// Occurrence count accumulated through Add().
  int64_t CountOf(int32_t id) const;

  size_t size() const { return words_.size(); }

  /// Total tokens added.
  int64_t total_count() const { return total_count_; }

  /// All counts, indexed by id (e.g. for building a sampling table).
  const std::vector<int64_t>& counts() const { return counts_; }

  /// Returns a vocabulary containing only words with count >= min_count,
  /// with ids re-densified in the original order.
  Vocabulary Pruned(int64_t min_count) const;

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> words_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace texrheo::text

#endif  // TEXRHEO_TEXT_VOCABULARY_H_
