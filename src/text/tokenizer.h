#ifndef TEXRHEO_TEXT_TOKENIZER_H_
#define TEXRHEO_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/texture_dictionary.h"

namespace texrheo::text {

/// Tokenizes recipe description text.
///
/// Descriptions in this reproduction are romanized, so tokenization is
/// whitespace/punctuation splitting plus lower-casing. On top of that,
/// `ExtractTextureTerms` performs dictionary matching the way the paper
/// extracts texture terms: a token counts when it exactly matches a
/// dictionary surface, and compound tokens joined by '-' are also checked
/// part-wise ("purupuru-no" -> "purupuru").
class Tokenizer {
 public:
  /// Splits into lower-cased word tokens; punctuation separates tokens.
  static std::vector<std::string> Tokenize(std::string_view description);

  /// Returns the texture-term tokens of `description`, in order of
  /// appearance (with repetitions), using `dict` for matching.
  static std::vector<std::string> ExtractTextureTerms(
      std::string_view description, const TextureDictionary& dict);
};

}  // namespace texrheo::text

#endif  // TEXRHEO_TEXT_TOKENIZER_H_
