#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace texrheo::text {
namespace {

bool IsTokenChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == '\'';
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view description) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < description.size()) {
    while (i < description.size() && !IsTokenChar(description[i])) ++i;
    size_t start = i;
    while (i < description.size() && IsTokenChar(description[i])) ++i;
    if (i > start) {
      tokens.push_back(ToLower(description.substr(start, i - start)));
    }
  }
  return tokens;
}

std::vector<std::string> Tokenizer::ExtractTextureTerms(
    std::string_view description, const TextureDictionary& dict) {
  std::vector<std::string> found;
  for (const std::string& token : Tokenize(description)) {
    if (dict.Contains(token)) {
      found.push_back(token);
      continue;
    }
    // Compound tokens such as "purupuru-no" or "katai-me": match parts.
    if (token.find('-') != std::string::npos) {
      for (const std::string& part : Split(token, '-')) {
        if (dict.Contains(part)) found.push_back(part);
      }
    }
  }
  return found;
}

}  // namespace texrheo::text
