#include "core/sparse_gibbs.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace texrheo::core {

void ActiveTopicList::Reset(const std::vector<int>& n_dk_row) {
  topics_.clear();
  pos_.assign(n_dk_row.size(), -1);
  for (size_t k = 0; k < n_dk_row.size(); ++k) {
    if (n_dk_row[k] > 0) {
      pos_[k] = static_cast<int>(topics_.size());
      topics_.push_back(static_cast<int>(k));
    }
  }
}

void StaleAliasBank::Rebuild(const std::vector<std::vector<int>>& n_kv,
                             const std::vector<int>& n_k, double gamma,
                             double gamma_v, int sweep) {
  const size_t num_topics = n_kv.size();
  assert(num_topics > 0 && n_k.size() == num_topics);
  const size_t vocab = n_kv.front().size();
  num_topics_ = num_topics;
  stale_n_kv_ = n_kv;
  stale_n_k_ = n_k;
  q_.resize(vocab * num_topics);
  q_total_.assign(vocab, 0.0);
  // One reciprocal per topic instead of one division per (term, topic): at
  // a realistic K x V this removes ~K*V hardware divides per rebuild. The
  // topic-outer fill also reads each count row sequentially instead of
  // walking the matrix down its columns.
  inv_denom_scratch_.resize(num_topics);
  for (size_t k = 0; k < num_topics; ++k) {
    inv_denom_scratch_[k] =
        1.0 / (static_cast<double>(n_k[k]) + gamma_v);
  }
  for (size_t k = 0; k < num_topics; ++k) {
    const std::vector<int>& row = n_kv[k];
    const double inv = inv_denom_scratch_[k];
    for (size_t v = 0; v < vocab; ++v) {
      // gamma > 0 makes every weight strictly positive, so BuildInto cannot
      // fail and the MH proposal keeps full support.
      const double w = (static_cast<double>(row[v]) + gamma) * inv;
      q_[v * num_topics + k] = w;
      q_total_[v] += w;
    }
  }
  // Tables are rebuilt in place: tables_, the weight slice, and the build
  // worklists all keep their storage across rebuilds, so a steady-state
  // rebuild allocates nothing.
  tables_.resize(vocab);
  for (size_t v = 0; v < vocab; ++v) {
    const double* slice = &q_[v * num_topics];
    weights_scratch_.assign(slice, slice + num_topics);
    const auto status = math::AliasTable::BuildInto(
        weights_scratch_, build_scratch_, tables_[v]);
    if (!status.ok()) {
      // gamma > 0 (validated at model creation) makes every weight strictly
      // positive, so a failed build means a violated invariant two modules
      // away. Sampling from a half-built table would silently bias the
      // chain, so fail loudly in every build mode — not just with asserts
      // enabled.
      std::fprintf(stderr,
                   "StaleAliasBank::Rebuild: alias build failed for term "
                   "%zu: %s\n",
                   v, status.ToString().c_str());
      std::abort();
    }
  }
  built_ = true;
  last_rebuild_sweep_ = sweep;
}

void StaleAliasBank::Clear() {
  built_ = false;
  last_rebuild_sweep_ = -1;
  num_topics_ = 0;
  stale_n_kv_.clear();
  stale_n_k_.clear();
  q_.clear();
  q_total_.clear();
  tables_.clear();
}

}  // namespace texrheo::core
