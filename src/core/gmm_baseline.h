#ifndef TEXRHEO_CORE_GMM_BASELINE_H_
#define TEXRHEO_CORE_GMM_BASELINE_H_

#include <cstdint>
#include <vector>

#include "math/distributions.h"
#include "math/linalg.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::core {

/// Configuration of the concentration-only Gaussian-mixture baseline
/// (clusters recipes purely on their (gel, emulsion) feature vectors).
struct GmmConfig {
  int num_components = 10;
  int max_iterations = 200;
  double tolerance = 1e-6;   ///< Relative log-likelihood improvement stop.
  double covariance_floor = 1e-4;  ///< Added to diagonals each M-step.
  uint64_t seed = 1;
};

/// Full-covariance Gaussian mixture fit by EM with k-means++-style seeding.
class GaussianMixture {
 public:
  /// Fits to `points` (all the same dimension). Fails on empty input or a
  /// degenerate configuration.
  static texrheo::StatusOr<GaussianMixture> Fit(
      const GmmConfig& config, const std::vector<math::Vector>& points);

  const std::vector<double>& weights() const { return weights_; }
  const std::vector<math::Gaussian>& components() const { return components_; }
  double final_log_likelihood() const { return final_log_likelihood_; }
  int iterations_run() const { return iterations_run_; }

  /// Most probable component per point.
  std::vector<int> HardAssignments(
      const std::vector<math::Vector>& points) const;

  /// Total log likelihood of `points` under the mixture.
  double LogLikelihood(const std::vector<math::Vector>& points) const;

 private:
  GaussianMixture() = default;

  std::vector<double> weights_;
  std::vector<math::Gaussian> components_;
  double final_log_likelihood_ = 0.0;
  int iterations_run_ = 0;
};

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_GMM_BASELINE_H_
