#ifndef TEXRHEO_CORE_CHECKPOINT_H_
#define TEXRHEO_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "math/distributions.h"
#include "recipe/dataset.h"
#include "util/atomic_file.h"
#include "util/rng.h"
#include "util/status.h"

namespace texrheo::core {

/// Crash-safe checkpointing of Gibbs sampler state.
///
/// A checkpoint is a versioned binary frame
///   magic(8) | version(u32) | payload_size(u64) | payload | crc32(u32)
/// whose CRC32 covers the payload, so a torn write, a truncation, or a
/// bit flip is detected before any state is restored. Doubles travel as
/// raw bit patterns (native endianness — the format is a single-machine
/// durability artifact, not an interchange format), which is what makes a
/// serial chain resume *bit-exactly*: 100 sweeps + checkpoint + restore +
/// 100 sweeps is indistinguishable from 200 straight sweeps.

/// Which sampler wrote a checkpoint; their latent state differs (the
/// paper's sampler instantiates per-topic Gaussians, the collapsed one
/// carries per-topic sufficient statistics instead).
enum class SamplerKind : int32_t { kJoint = 0, kCollapsed = 1 };

/// Everything that must match between the writing and the resuming run.
/// Resume is refused on any mismatch: restoring a chain under different
/// hyperparameters, seed, or thread plan would silently produce samples
/// from the wrong distribution.
struct CheckpointFingerprint {
  SamplerKind sampler = SamplerKind::kJoint;
  int32_t num_topics = 0;
  double alpha = 0.0;  ///< Initial alpha (pre optimize_alpha drift).
  double gamma = 0.0;
  uint64_t seed = 0;
  int32_t num_threads = 1;  ///< As configured (0 = hardware concurrency).
  bool optimize_alpha = false;
  bool use_emulsion_likelihood = false;
  bool gmm_init = false;
  /// Sparse/alias/MH sampler knobs (JointTopicModel only). They change the
  /// RNG consumption pattern and therefore the trajectory, so a sparse
  /// checkpoint can only resume under the identical knobs. When
  /// sparse_sampler is false the interval/steps are stored as 0 regardless
  /// of configuration — the knobs are inert on the dense path, and pinning
  /// them would spuriously refuse valid resumes.
  bool sparse_sampler = false;
  int32_t alias_rebuild_interval = 0;
  int32_t mh_steps = 0;
  uint64_t num_documents = 0;
  uint64_t vocab_size = 0;

  bool operator==(const CheckpointFingerprint&) const = default;
  std::string ToString() const;
};

/// Raw per-topic sufficient statistics of the collapsed sampler (stored
/// verbatim, round-off drift included, so restore is bit-exact).
struct TopicStatsSnapshot {
  uint64_t n = 0;
  std::vector<double> sum;        ///< dim entries.
  std::vector<double> sum_outer;  ///< dim*dim entries, row-major.
};

/// Full restorable sampler state. Count matrices are stored alongside the
/// assignments even though they are derivable from z/y + the dataset: on
/// restore they are rebuilt and compared, which catches resuming against a
/// different or modified corpus.
struct CheckpointState {
  CheckpointFingerprint fingerprint;
  int32_t completed_sweeps = 0;
  double current_alpha = 0.0;  ///< May differ from fingerprint.alpha.
  Rng::State master_rng;
  std::vector<Rng::State> shard_rngs;  ///< Empty when the parallel engine
                                       ///< was never spun up.
  std::vector<int32_t> y;
  std::vector<std::vector<int32_t>> z;
  std::vector<std::vector<int32_t>> n_dk;
  std::vector<std::vector<int32_t>> n_kv;
  std::vector<int32_t> n_k;
  std::vector<int32_t> m_k;
  /// SamplerKind::kJoint only: the instantiated eq.-4 Gaussians and the
  /// likelihood trace.
  std::vector<math::Gaussian> gel_topics;
  std::vector<math::Gaussian> emulsion_topics;
  std::vector<double> likelihood_trace;
  /// SamplerKind::kCollapsed only.
  std::vector<TopicStatsSnapshot> gel_stats;
  std::vector<TopicStatsSnapshot> emulsion_stats;
  /// Sparse sampler only: the stale alias-bank snapshot (the count matrices
  /// the proposal tables were last rebuilt from) and its rebuild epoch.
  /// Storing the integer snapshot instead of the alias tables keeps the
  /// format small and machine-independent within the chain: Rebuild() is a
  /// deterministic function of these counts, so restore reconstructs the
  /// exact proposal distribution and the resumed run replays the identical
  /// rebuild schedule — bit-exact resume even when the crash lands between
  /// rebuilds. Empty when the sparse sampler never built its tables.
  int32_t last_alias_rebuild_sweep = -1;
  std::vector<std::vector<int32_t>> stale_n_kv;
  std::vector<int32_t> stale_n_k;
};

/// Serializes `state` into a framed, checksummed byte string.
std::string EncodeCheckpoint(const CheckpointState& state);

/// Parses and validates a frame produced by EncodeCheckpoint. Any
/// truncation (every strict prefix), trailing garbage, checksum mismatch,
/// or structurally inconsistent payload is rejected with a clean Status —
/// never a crash, never a partially populated state.
StatusOr<CheckpointState> DecodeCheckpoint(std::string_view bytes);

/// Writes `state` to `path` via the atomic write-temp + fsync + rename
/// path, so a crash mid-checkpoint can never leave a torn file under the
/// checkpoint name.
Status WriteCheckpointFile(const std::string& path,
                           const CheckpointState& state,
                           FileOps& ops = FileOps::Real());

/// Reads and decodes one checkpoint file.
StatusOr<CheckpointState> ReadCheckpointFile(const std::string& path);

/// Canonical file name for the checkpoint taken after `sweep` completed
/// sweeps: "ckpt-000000123.ckpt" (zero-padded so lexicographic order is
/// sweep order).
std::string CheckpointFileName(int sweep);

/// Checkpoint files in `dir`, newest (highest sweep) first. Non-checkpoint
/// files (including *.tmp left by a crash-before-rename) are ignored.
/// Returns full paths; empty when the directory is missing or empty.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Scans `dir` newest-first and returns the first checkpoint that decodes
/// cleanly, silently skipping torn or corrupt files. NotFound when no
/// valid checkpoint exists. `path_out` (optional) receives the winning
/// file's path.
StatusOr<CheckpointState> LoadLatestValidCheckpoint(
    const std::string& dir, std::string* path_out = nullptr);

/// Deletes all but the newest `keep_last` checkpoint files in `dir`
/// (keep_last < 1 keeps one). Removal failures are reported but the newest
/// files are never touched.
Status PruneCheckpoints(const std::string& dir, int keep_last,
                        FileOps& ops = FileOps::Real());

/// Rebuilds the count matrices implied by `state`'s assignments over
/// `dataset`'s current tokens and compares them with the stored ones. A
/// mismatch means the checkpoint was taken against a different (or
/// since-modified) corpus; restoring it would silently corrupt the chain.
Status ValidateCheckpointAgainstDataset(const CheckpointState& state,
                                        const recipe::Dataset& dataset);

/// Conversions between the models' `int` state vectors and the
/// checkpoint's fixed-width int32 representation.
inline std::vector<int32_t> ToCheckpointInts(const std::vector<int>& v) {
  return std::vector<int32_t>(v.begin(), v.end());
}
inline std::vector<std::vector<int32_t>> ToCheckpointRows(
    const std::vector<std::vector<int>>& rows) {
  std::vector<std::vector<int32_t>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(ToCheckpointInts(r));
  return out;
}
inline std::vector<int> FromCheckpointInts(const std::vector<int32_t>& v) {
  return std::vector<int>(v.begin(), v.end());
}
inline std::vector<std::vector<int>> FromCheckpointRows(
    const std::vector<std::vector<int32_t>>& rows) {
  std::vector<std::vector<int>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(FromCheckpointInts(r));
  return out;
}

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_CHECKPOINT_H_
