#ifndef TEXRHEO_CORE_MODEL_BINARY_H_
#define TEXRHEO_CORE_MODEL_BINARY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/serialization.h"
#include "embed/embedding.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace texrheo::core {

/// Memory-mapped indexed model format (the `.dat`/`.idx` pairing).
///
/// A packed model is two sibling files sharing a base name:
///
///   <base>.dat - flat data file: an 8-byte magic followed by fixed-offset,
///                64-byte-aligned sections (phi topic-term table, per-topic
///                Gaussian parameters in SoA layout, Table-I linkage data,
///                vocabulary string pool).
///   <base>.idx - small index: versioned magic, model header (K, V, dims,
///                content fingerprint), a section table (id, offset, size,
///                count, per-section CRC32 over the .dat bytes), and a
///                trailing CRC32 over the index itself.
///
/// The writer emits `.dat` first and `.idx` last (both via AtomicWriteFile),
/// so a valid index implies valid data: any crash mid-pack leaves either the
/// old pair or a dangling `.dat` that no index points at. The reader mmaps
/// `.dat` read-only and serves phi rows and Gaussian blocks as spans over
/// the mapping - load cost is O(pages touched + one CRC pass), not a parse,
/// and N serving processes on one box share the page cache.
///
/// Like the checkpoint format, doubles travel as raw native-endian bit
/// patterns: this is a single-machine serving artifact, not an interchange
/// format. Pack canonicalizes through the v2 text round-trip first, so a
/// binary model is bit-identical to "save v2 then load v2" of the same
/// model, and the stored fingerprint equals the v2 load path's fingerprint.

inline constexpr uint32_t kModelBinaryVersion = 1;

/// Section ids, in canonical file order. Sections 1-9 are mandatory and
/// appear exactly once. Sections 10-11 are an optional trailing pair (both
/// present or both absent): packs written before the embedding subsystem
/// carry nine sections and stay fully servable, and a nine-section reader
/// rejects eleven-section packs by count rather than misreading them.
enum class ModelSection : uint32_t {
  kPhi = 1,                ///< K*V doubles, row-major (topic-major SoA).
  kGelMean = 2,            ///< K*Dg doubles.
  kGelPrecision = 3,       ///< K*Dg*Dg doubles, row-major per topic.
  kEmulsionMean = 4,       ///< K*De doubles.
  kEmulsionPrecision = 5,  ///< K*De*De doubles, row-major per topic.
  kRecipeCount = 6,        ///< K int64 (Table-I linkage prior weights).
  kVocabOffsets = 7,       ///< V+1 uint64: string-pool offsets, offs[V]=pool size.
  kVocabCounts = 8,        ///< V int64 occurrence counts.
  kVocabPool = 9,          ///< Concatenated word bytes (count == byte size).
  kEmbedding = 10,         ///< V*dim floats, row-major by vocab id (optional).
  kEmbeddingNorms = 11,    ///< V floats: cached L2 norms (optional).
};
inline constexpr size_t kModelSectionCount = 9;
inline constexpr size_t kModelSectionCountWithEmbeddings = 11;

/// Human-readable name of a section id ("phi", "vocab_pool", ...).
const char* ModelSectionName(ModelSection id);

/// One row of the `.idx` section table.
struct ModelSectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;  ///< Absolute byte offset in the `.dat` file.
  uint64_t size = 0;    ///< Byte length.
  uint64_t count = 0;   ///< Element count (bytes for kVocabPool).
  uint32_t crc32 = 0;   ///< CRC32 over exactly `size` bytes at `offset`.
};

/// Decoded `.idx` contents. Exposed (with Encode/Parse below) so the
/// format-torture tests and fuzzers can mutate individual fields and
/// re-emit an index whose trailing CRC is valid, reaching the deep
/// section-table validators instead of bouncing off the checksum.
struct ModelBinaryIndex {
  uint32_t version = kModelBinaryVersion;
  uint32_t num_topics = 0;
  uint64_t vocab_size = 0;
  uint32_t gel_dim = 0;
  uint32_t emulsion_dim = 0;
  uint32_t fingerprint = 0;     ///< CRC32 of the canonical v2 serialization.
  uint64_t data_file_size = 0;  ///< Exact `.dat` byte length.
  std::vector<ModelSectionEntry> sections;
};

/// Serializes an index to the on-disk `.idx` byte layout (magic through
/// trailing CRC). Always produces a well-framed file; the *fields* may
/// still be structurally invalid - that is what ValidateModelBinaryIndex
/// rejects on read.
std::string EncodeModelBinaryIndex(const ModelBinaryIndex& index);

/// Parses `.idx` bytes: magic, version, frame shape, and the trailing CRC.
/// Errors carry the byte offset of the offending field.
StatusOr<ModelBinaryIndex> ParseModelBinaryIndex(std::string_view bytes);

/// Structural validation of a parsed index against the format rules:
/// sane header bounds, every mandatory section present exactly once with
/// the count implied by the header, 64-byte-aligned in-bounds offsets, and
/// no overlapping sections. Rejection messages name the section.
Status ValidateModelBinaryIndex(const ModelBinaryIndex& index);

/// Sibling paths of a packed model. `base_or_idx` may be the bare base
/// ("dir/model"), the `.idx` path, or the `.dat` path.
struct ModelBinaryPaths {
  std::string dat;
  std::string idx;
};
ModelBinaryPaths ModelBinaryPathsFor(const std::string& base_or_idx);

/// Packs `snapshot` into `<base>.dat` + `<base>.idx`. The model is first
/// canonicalized through the v2 text round-trip (serialize + reparse), so
/// the packed doubles are bit-identical to what LoadModel of the v2 file
/// would produce and the stored fingerprint matches the v2 load path.
/// Both files are written atomically, `.idx` last.
///
/// A non-null, non-empty `embeddings` table is appended as the optional
/// trailing section pair; its vocabulary size must match the model's. The
/// fingerprint deliberately stays the CRC of the v2 *text* serialization
/// (which has no embedding representation): it identifies the topic model,
/// and a pack with and without embeddings of the same model are the same
/// model to fingerprint-keyed machinery (reload checks, router
/// convergence).
Status WriteModelBinary(const ModelSnapshot& snapshot,
                        const std::string& base_or_idx,
                        FileOps& ops = FileOps::Real(),
                        const embed::EmbeddingTable* embeddings = nullptr);

/// Converts a v2 text model file into the binary pair (LoadModel +
/// WriteModelBinary), optionally attaching an embedding table.
Status ConvertModelFileToBinary(const std::string& v2_path,
                                const std::string& base_or_idx,
                                FileOps& ops = FileOps::Real(),
                                const embed::EmbeddingTable* embeddings =
                                    nullptr);

/// Argument order matching SaveModel(path, snapshot): packs `snapshot`
/// into `<base>.dat` + `<base>.idx`.
inline Status SaveModelBinary(const std::string& base_or_idx,
                              const ModelSnapshot& snapshot,
                              FileOps& ops = FileOps::Real()) {
  return WriteModelBinary(snapshot, base_or_idx, ops);
}

/// A read-only byte range returned by MemoryMapOps::Map.
struct MappedRegion {
  const uint8_t* data = nullptr;
  size_t size = 0;
};

/// Seam over mmap/munmap, mirroring FileOps: production uses Real()
/// (open + fstat + mmap(PROT_READ, MAP_SHARED)), tests subclass it to
/// fail maps, serve from aligned heap buffers, and observe exactly when
/// a region is unmapped relative to in-flight readers.
class MemoryMapOps {
 public:
  virtual ~MemoryMapOps() = default;

  /// Maps the whole of `path` read-only.
  virtual StatusOr<MappedRegion> Map(const std::string& path);
  /// Releases a region previously returned by Map on this instance.
  virtual void Unmap(MappedRegion region);

  /// Shared pass-through instance backed by the real mmap.
  static MemoryMapOps& Real();
};

/// RAII view over a mapped, fully verified model pair.
///
/// Open() validates everything up front - index frame + CRC, section table,
/// data file size, per-section CRC32 over the mapped bytes, and vocabulary
/// pool structure - so accessors can be unchecked span math. A truncated,
/// bit-flipped, swapped, or hostile pair is rejected with a clean Status
/// naming the failing section; no partially-valid MappedModel ever exists.
///
/// The mapping is released in the destructor, so holders (ServingSnapshot,
/// and transitively every in-flight query) keep the pages alive via
/// shared_ptr until the last reference drops.
class MappedModel {
 public:
  static StatusOr<std::shared_ptr<const MappedModel>> Open(
      const std::string& base_or_idx,
      MemoryMapOps& ops = MemoryMapOps::Real());

  ~MappedModel();
  MappedModel(const MappedModel&) = delete;
  MappedModel& operator=(const MappedModel&) = delete;

  int num_topics() const { return static_cast<int>(index_.num_topics); }
  size_t vocab_size() const { return static_cast<size_t>(index_.vocab_size); }
  size_t gel_dim() const { return index_.gel_dim; }
  size_t emulsion_dim() const { return index_.emulsion_dim; }
  /// Fingerprint recorded at pack time: CRC32 of the canonical v2 text
  /// serialization, equal to what the v2 load path computes.
  uint32_t fingerprint() const { return index_.fingerprint; }
  size_t mapped_bytes() const { return region_.size; }
  const std::string& dat_path() const { return paths_.dat; }
  const std::string& idx_path() const { return paths_.idx; }

  /// P(term v | topic k) row, served directly from the mapping.
  std::span<const double> phi_row(int k) const {
    return {phi_ + static_cast<size_t>(k) * vocab_size(), vocab_size()};
  }
  std::span<const double> gel_mean(int k) const {
    return {gel_mean_ + static_cast<size_t>(k) * gel_dim(), gel_dim()};
  }
  /// Row-major Dg*Dg precision block.
  std::span<const double> gel_precision(int k) const {
    size_t n = gel_dim() * gel_dim();
    return {gel_prec_ + static_cast<size_t>(k) * n, n};
  }
  std::span<const double> emulsion_mean(int k) const {
    return {emulsion_mean_ + static_cast<size_t>(k) * emulsion_dim(),
            emulsion_dim()};
  }
  std::span<const double> emulsion_precision(int k) const {
    size_t n = emulsion_dim() * emulsion_dim();
    return {emulsion_prec_ + static_cast<size_t>(k) * n, n};
  }
  std::span<const int64_t> recipe_counts() const {
    return {recipe_counts_, static_cast<size_t>(num_topics())};
  }
  std::string_view word(size_t v) const {
    return {pool_ + vocab_offsets_[v],
            static_cast<size_t>(vocab_offsets_[v + 1] - vocab_offsets_[v])};
  }
  int64_t word_count(size_t v) const { return vocab_counts_[v]; }

  /// True when the pack carries the optional embedding section pair.
  bool has_embeddings() const { return embedding_ != nullptr; }
  size_t embedding_dim() const { return embedding_dim_; }
  /// Row vector of vocabulary id v; requires has_embeddings().
  std::span<const float> embedding(size_t v) const {
    return {embedding_ + v * embedding_dim_, embedding_dim_};
  }
  /// Whole V*dim matrix / V norms, served directly from the mapping; both
  /// empty on a legacy nine-section pack.
  std::span<const float> embedding_matrix() const {
    return embedding_ == nullptr
               ? std::span<const float>{}
               : std::span<const float>{embedding_,
                                        vocab_size() * embedding_dim_};
  }
  std::span<const float> embedding_norms() const {
    return embedding_norms_ == nullptr
               ? std::span<const float>{}
               : std::span<const float>{embedding_norms_, vocab_size()};
  }
  /// Zero-copy view usable wherever a heap table's view is (empty view on a
  /// legacy pack). Valid only while this MappedModel is alive.
  embed::EmbeddingView embedding_view() const {
    if (!has_embeddings()) return embed::EmbeddingView{};
    return embed::EmbeddingView{vocab_size(), embedding_dim_,
                                embedding_matrix(), embedding_norms()};
  }

 private:
  MappedModel(ModelBinaryPaths paths, ModelBinaryIndex index,
              MappedRegion region, MemoryMapOps* ops);

  ModelBinaryPaths paths_;
  ModelBinaryIndex index_;
  MappedRegion region_;
  MemoryMapOps* ops_;
  // Typed section bases into region_, resolved once at Open.
  const double* phi_ = nullptr;
  const double* gel_mean_ = nullptr;
  const double* gel_prec_ = nullptr;
  const double* emulsion_mean_ = nullptr;
  const double* emulsion_prec_ = nullptr;
  const int64_t* recipe_counts_ = nullptr;
  const uint64_t* vocab_offsets_ = nullptr;
  const int64_t* vocab_counts_ = nullptr;
  const char* pool_ = nullptr;
  const float* embedding_ = nullptr;        ///< Null on legacy packs.
  const float* embedding_norms_ = nullptr;  ///< Null on legacy packs.
  size_t embedding_dim_ = 0;
};

/// Deep-copies the embedding sections of a mapped pack into a heap table
/// (empty table when the pack has none). Used by `texrheo_modelpack unpack`
/// to round-trip the sections byte-for-byte into the sidecar format.
embed::EmbeddingTable CopyEmbeddingTable(const MappedModel& mapped);

/// Fully decodes a binary pair back into a heap ModelSnapshot (the inverse
/// of WriteModelBinary; used by `texrheo_modelpack unpack` and by
/// equivalence tests). Serving should prefer MappedModel - this copies.
StatusOr<ModelSnapshot> ReadModelBinary(
    const std::string& base_or_idx, MemoryMapOps& ops = MemoryMapOps::Real());

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_MODEL_BINARY_H_
