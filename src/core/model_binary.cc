#include "core/model_binary.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/csv.h"

namespace texrheo::core {
namespace {

// Eight-byte magics: a swapped or mislabelled file is caught before any
// field is interpreted. The trailing '1' is the major layout revision.
constexpr char kIdxMagic[8] = {'t', 'e', 'x', 'r', 'm', 'b', 'i', '1'};
constexpr char kDatMagic[8] = {'t', 'e', 'x', 'r', 'm', 'b', 'd', '1'};

// Every section starts on a 64-byte boundary: cache-line friendly, and
// (more importantly) it guarantees 8-byte alignment for the double/int64
// SoA blocks no matter where the mapping lands.
constexpr size_t kSectionAlignment = 64;
constexpr size_t kDatHeaderBytes = kSectionAlignment;  // magic + padding.

// Fixed .idx frame: header then section_count 32-byte entries then a CRC.
constexpr size_t kIdxHeaderBytes = 48;
constexpr size_t kIdxEntryBytes = 32;
constexpr size_t kMaxSectionCount = 64;  // Parse-time cap, pre-validation.

// Structural bounds. Far above anything this system trains, far below
// anything that could overflow the offset arithmetic (K*V*8 < 2^54).
constexpr uint64_t kMaxTopics = 1u << 20;
constexpr uint64_t kMaxVocab = 1ull << 31;
constexpr uint64_t kMaxDim = 1024;
constexpr size_t kMaxWordBytes = 4096;

template <typename T>
void Put(std::string& out, T value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out.append(bytes, sizeof(T));
}

template <typename T>
T TakeAt(std::string_view data, size_t offset) {
  T value;
  std::memcpy(&value, data.data() + offset, sizeof(T));
  return value;
}

Status IndexError(size_t byte_offset, std::string what) {
  return Status::InvalidArgument("model binary index @ byte " +
                                 std::to_string(byte_offset) + ": " +
                                 std::move(what));
}

Status SectionError(ModelSection id, std::string what) {
  return Status::InvalidArgument(std::string("model binary: section '") +
                                 ModelSectionName(id) + "': " +
                                 std::move(what));
}

/// Canonical section order and the element width of each.
struct SectionSpec {
  ModelSection id;
  size_t elem_bytes;
};
constexpr SectionSpec kSectionSpecs[kModelSectionCountWithEmbeddings] = {
    {ModelSection::kPhi, sizeof(double)},
    {ModelSection::kGelMean, sizeof(double)},
    {ModelSection::kGelPrecision, sizeof(double)},
    {ModelSection::kEmulsionMean, sizeof(double)},
    {ModelSection::kEmulsionPrecision, sizeof(double)},
    {ModelSection::kRecipeCount, sizeof(int64_t)},
    {ModelSection::kVocabOffsets, sizeof(uint64_t)},
    {ModelSection::kVocabCounts, sizeof(int64_t)},
    {ModelSection::kVocabPool, 1},
    {ModelSection::kEmbedding, sizeof(float)},
    {ModelSection::kEmbeddingNorms, sizeof(float)},
};

/// Element count each section must carry, derived from the header.
uint64_t ExpectedCount(const ModelBinaryIndex& index, ModelSection id) {
  uint64_t k = index.num_topics;
  uint64_t v = index.vocab_size;
  uint64_t dg = index.gel_dim;
  uint64_t de = index.emulsion_dim;
  switch (id) {
    case ModelSection::kPhi: return k * v;
    case ModelSection::kGelMean: return k * dg;
    case ModelSection::kGelPrecision: return k * dg * dg;
    case ModelSection::kEmulsionMean: return k * de;
    case ModelSection::kEmulsionPrecision: return k * de * de;
    case ModelSection::kRecipeCount: return k;
    case ModelSection::kVocabOffsets: return v + 1;
    case ModelSection::kVocabCounts: return v;
    case ModelSection::kVocabPool: return 0;  // Free-length; checked apart.
    case ModelSection::kEmbedding: return 0;  // V*dim; dim checked apart.
    case ModelSection::kEmbeddingNorms: return v;
  }
  return 0;
}

/// True for the two sections whose counts are not a pure function of the
/// header and get dedicated validation below.
bool FreeLengthSection(ModelSection id) {
  return id == ModelSection::kVocabPool || id == ModelSection::kEmbedding;
}

/// RAII unmapper for the window between Map and MappedModel ownership.
class ScopedRegion {
 public:
  ScopedRegion(MappedRegion region, MemoryMapOps* ops)
      : region_(region), ops_(ops) {}
  ~ScopedRegion() {
    if (ops_ != nullptr) ops_->Unmap(region_);
  }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

  const MappedRegion& region() const { return region_; }
  MappedRegion Release() {
    ops_ = nullptr;
    return region_;
  }

 private:
  MappedRegion region_;
  MemoryMapOps* ops_;
};

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

const char* ModelSectionName(ModelSection id) {
  switch (id) {
    case ModelSection::kPhi: return "phi";
    case ModelSection::kGelMean: return "gel_mean";
    case ModelSection::kGelPrecision: return "gel_precision";
    case ModelSection::kEmulsionMean: return "emulsion_mean";
    case ModelSection::kEmulsionPrecision: return "emulsion_precision";
    case ModelSection::kRecipeCount: return "recipe_count";
    case ModelSection::kVocabOffsets: return "vocab_offsets";
    case ModelSection::kVocabCounts: return "vocab_counts";
    case ModelSection::kVocabPool: return "vocab_pool";
    case ModelSection::kEmbedding: return "embedding";
    case ModelSection::kEmbeddingNorms: return "embedding_norms";
  }
  return "unknown";
}

ModelBinaryPaths ModelBinaryPathsFor(const std::string& base_or_idx) {
  std::string base = base_or_idx;
  if (EndsWith(base, ".idx") || EndsWith(base, ".dat")) {
    base.resize(base.size() - 4);
  }
  return ModelBinaryPaths{base + ".dat", base + ".idx"};
}

std::string EncodeModelBinaryIndex(const ModelBinaryIndex& index) {
  std::string out;
  out.append(kIdxMagic, sizeof(kIdxMagic));
  Put<uint32_t>(out, index.version);
  Put<uint32_t>(out, index.num_topics);
  Put<uint64_t>(out, index.vocab_size);
  Put<uint32_t>(out, index.gel_dim);
  Put<uint32_t>(out, index.emulsion_dim);
  Put<uint32_t>(out, index.fingerprint);
  Put<uint32_t>(out, static_cast<uint32_t>(index.sections.size()));
  Put<uint64_t>(out, index.data_file_size);
  for (const ModelSectionEntry& entry : index.sections) {
    Put<uint32_t>(out, entry.id);
    Put<uint32_t>(out, entry.crc32);
    Put<uint64_t>(out, entry.offset);
    Put<uint64_t>(out, entry.size);
    Put<uint64_t>(out, entry.count);
  }
  Put<uint32_t>(out, Crc32(out));
  return out;
}

StatusOr<ModelBinaryIndex> ParseModelBinaryIndex(std::string_view bytes) {
  if (bytes.size() < kIdxHeaderBytes + sizeof(uint32_t)) {
    return IndexError(bytes.size(), "truncated index (header incomplete)");
  }
  if (std::memcmp(bytes.data(), kIdxMagic, sizeof(kIdxMagic)) != 0) {
    return IndexError(0, "bad magic: not a texrheo binary model index");
  }
  ModelBinaryIndex index;
  index.version = TakeAt<uint32_t>(bytes, 8);
  if (index.version != kModelBinaryVersion) {
    return IndexError(8, "unsupported format version " +
                             std::to_string(index.version) + " (expected " +
                             std::to_string(kModelBinaryVersion) + ")");
  }
  index.num_topics = TakeAt<uint32_t>(bytes, 12);
  index.vocab_size = TakeAt<uint64_t>(bytes, 16);
  index.gel_dim = TakeAt<uint32_t>(bytes, 24);
  index.emulsion_dim = TakeAt<uint32_t>(bytes, 28);
  index.fingerprint = TakeAt<uint32_t>(bytes, 32);
  uint32_t section_count = TakeAt<uint32_t>(bytes, 36);
  index.data_file_size = TakeAt<uint64_t>(bytes, 40);
  if (section_count > kMaxSectionCount) {
    return IndexError(36, "implausible section count " +
                              std::to_string(section_count));
  }
  size_t expected_size =
      kIdxHeaderBytes + section_count * kIdxEntryBytes + sizeof(uint32_t);
  if (bytes.size() != expected_size) {
    return IndexError(bytes.size(),
                      "index size " + std::to_string(bytes.size()) +
                          " does not match section count (expected " +
                          std::to_string(expected_size) + " bytes)");
  }
  // Trailing CRC over everything before it: a torn or bit-flipped index is
  // rejected before any field below is trusted.
  uint32_t stored_crc = TakeAt<uint32_t>(bytes, bytes.size() - 4);
  uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != actual_crc) {
    return IndexError(bytes.size() - 4, "index checksum mismatch");
  }
  index.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    size_t at = kIdxHeaderBytes + i * kIdxEntryBytes;
    ModelSectionEntry entry;
    entry.id = TakeAt<uint32_t>(bytes, at);
    entry.crc32 = TakeAt<uint32_t>(bytes, at + 4);
    entry.offset = TakeAt<uint64_t>(bytes, at + 8);
    entry.size = TakeAt<uint64_t>(bytes, at + 16);
    entry.count = TakeAt<uint64_t>(bytes, at + 24);
    index.sections.push_back(entry);
  }
  return index;
}

Status ValidateModelBinaryIndex(const ModelBinaryIndex& index) {
  if (index.num_topics < 1 || index.num_topics > kMaxTopics) {
    return Status::InvalidArgument(
        "model binary: topic count out of range: " +
        std::to_string(index.num_topics));
  }
  if (index.vocab_size > kMaxVocab) {
    return Status::InvalidArgument("model binary: implausible vocab size " +
                                   std::to_string(index.vocab_size));
  }
  if (index.gel_dim < 1 || index.gel_dim > kMaxDim ||
      index.emulsion_dim < 1 || index.emulsion_dim > kMaxDim) {
    return Status::InvalidArgument(
        "model binary: gaussian dimension out of range");
  }
  if (index.data_file_size < kDatHeaderBytes) {
    return Status::InvalidArgument(
        "model binary: data file size smaller than its header");
  }
  // Nine sections is a legacy (pre-embedding) pack; eleven carries the
  // optional trailing embedding pair. Nothing in between.
  if (index.sections.size() != kModelSectionCount &&
      index.sections.size() != kModelSectionCountWithEmbeddings) {
    return Status::InvalidArgument(
        "model binary: expected " + std::to_string(kModelSectionCount) +
        " or " + std::to_string(kModelSectionCountWithEmbeddings) +
        " sections, index lists " + std::to_string(index.sections.size()));
  }
  uint64_t previous_end = kDatHeaderBytes;
  for (size_t i = 0; i < index.sections.size(); ++i) {
    const SectionSpec& spec = kSectionSpecs[i];
    const ModelSectionEntry& entry = index.sections[i];
    ModelSection id = spec.id;
    if (entry.id != static_cast<uint32_t>(id)) {
      return Status::InvalidArgument(
          "model binary: section table out of canonical order (slot " +
          std::to_string(i) + " holds id " + std::to_string(entry.id) +
          ", expected '" + ModelSectionName(id) + "')");
    }
    if (!FreeLengthSection(id) && entry.count != ExpectedCount(index, id)) {
      return SectionError(
          id, "element count " + std::to_string(entry.count) +
                  " disagrees with header (expected " +
                  std::to_string(ExpectedCount(index, id)) + ")");
    }
    if (entry.size != entry.count * spec.elem_bytes) {
      return SectionError(id, "byte size " + std::to_string(entry.size) +
                                  " != count * " +
                                  std::to_string(spec.elem_bytes));
    }
    if (entry.offset % kSectionAlignment != 0) {
      return SectionError(id, "misaligned offset " +
                                  std::to_string(entry.offset) +
                                  " (sections are 64-byte aligned)");
    }
    if (entry.offset < previous_end) {
      return SectionError(id, "offset " + std::to_string(entry.offset) +
                                  " overlaps the previous section");
    }
    if (entry.offset > index.data_file_size ||
        entry.size > index.data_file_size - entry.offset) {
      return SectionError(id, "extends past the end of the data file");
    }
    previous_end = entry.offset + entry.size;
  }
  if (index.sections.size() == kModelSectionCountWithEmbeddings) {
    if (index.vocab_size == 0) {
      return SectionError(ModelSection::kEmbedding,
                          "embedding sections require a vocabulary");
    }
    const ModelSectionEntry& matrix = index.sections[9];
    if (matrix.count == 0 || matrix.count % index.vocab_size != 0) {
      return SectionError(
          ModelSection::kEmbedding,
          "element count " + std::to_string(matrix.count) +
              " is not a positive multiple of the vocabulary size");
    }
    uint64_t dim = matrix.count / index.vocab_size;
    if (dim > kMaxDim) {
      return SectionError(ModelSection::kEmbedding,
                          "implied dimension " + std::to_string(dim) +
                              " out of range");
    }
  }
  return Status::OK();
}

Status WriteModelBinary(const ModelSnapshot& snapshot,
                        const std::string& base_or_idx, FileOps& ops,
                        const embed::EmbeddingTable* embeddings) {
  // Canonicalize through the v2 text round-trip: the packed doubles are
  // exactly what LoadModel of the v2 file would produce, so a binary model
  // and its v2 twin serve bit-identical answers, and the fingerprint below
  // is the one the v2 load path computes.
  std::string canonical = SerializeModel(snapshot);
  uint32_t fingerprint = Crc32(canonical);
  StatusOr<ModelSnapshot> canon = DeserializeModel(canonical);
  if (!canon.ok()) {
    return Status::InvalidArgument(
        "model binary: snapshot failed canonical v2 round-trip: " +
        canon.status().message());
  }
  const ModelSnapshot& model = *canon;
  const TopicEstimates& est = model.estimates;
  size_t k_count = est.phi.size();
  size_t v_count = model.vocab.size();
  if (k_count == 0) {
    return Status::InvalidArgument("model binary: model has no topics");
  }
  size_t gel_dim = est.gel_topics.front().dim();
  size_t emulsion_dim = est.emulsion_topics.front().dim();
  if (gel_dim == 0 || emulsion_dim == 0 || gel_dim > kMaxDim ||
      emulsion_dim > kMaxDim) {
    return Status::InvalidArgument(
        "model binary: gaussian dimension out of range");
  }
  for (size_t k = 0; k < k_count; ++k) {
    if (est.gel_topics[k].dim() != gel_dim ||
        est.emulsion_topics[k].dim() != emulsion_dim) {
      return Status::InvalidArgument(
          "model binary: per-topic gaussian dimensions are not uniform");
    }
  }

  // Flatten every section into its SoA buffer.
  std::vector<double> phi;
  phi.reserve(k_count * v_count);
  for (const auto& row : est.phi) phi.insert(phi.end(), row.begin(), row.end());
  std::vector<double> gel_means, gel_precs, emu_means, emu_precs;
  gel_means.reserve(k_count * gel_dim);
  gel_precs.reserve(k_count * gel_dim * gel_dim);
  emu_means.reserve(k_count * emulsion_dim);
  emu_precs.reserve(k_count * emulsion_dim * emulsion_dim);
  auto flatten = [](const math::Gaussian& g, std::vector<double>& means,
                    std::vector<double>& precs) {
    for (size_t i = 0; i < g.dim(); ++i) means.push_back(g.mean()[i]);
    for (size_t r = 0; r < g.dim(); ++r) {
      for (size_t c = 0; c < g.dim(); ++c) {
        precs.push_back(g.precision()(r, c));
      }
    }
  };
  for (size_t k = 0; k < k_count; ++k) {
    flatten(est.gel_topics[k], gel_means, gel_precs);
    flatten(est.emulsion_topics[k], emu_means, emu_precs);
  }
  std::vector<int64_t> recipe_counts(k_count, 0);
  for (size_t k = 0; k < est.topic_recipe_count.size() && k < k_count; ++k) {
    recipe_counts[k] = est.topic_recipe_count[k];
  }
  std::string pool;
  std::vector<uint64_t> offsets;
  std::vector<int64_t> word_counts;
  offsets.reserve(v_count + 1);
  word_counts.reserve(v_count);
  for (size_t v = 0; v < v_count; ++v) {
    const std::string& word = model.vocab.WordOf(static_cast<int32_t>(v));
    if (word.empty() || word.size() > kMaxWordBytes) {
      return Status::InvalidArgument(
          "model binary: vocabulary word length out of range");
    }
    offsets.push_back(pool.size());
    pool += word;
    word_counts.push_back(model.vocab.CountOf(static_cast<int32_t>(v)));
  }
  offsets.push_back(pool.size());

  // Assemble the .dat image and the section table in one pass.
  ModelBinaryIndex index;
  index.num_topics = static_cast<uint32_t>(k_count);
  index.vocab_size = v_count;
  index.gel_dim = static_cast<uint32_t>(gel_dim);
  index.emulsion_dim = static_cast<uint32_t>(emulsion_dim);
  index.fingerprint = fingerprint;
  std::string dat;
  dat.append(kDatMagic, sizeof(kDatMagic));
  auto add_section = [&dat, &index](ModelSection id, const void* data,
                                    size_t bytes, uint64_t count) {
    dat.resize((dat.size() + kSectionAlignment - 1) / kSectionAlignment *
               kSectionAlignment);
    ModelSectionEntry entry;
    entry.id = static_cast<uint32_t>(id);
    entry.offset = dat.size();
    entry.size = bytes;
    entry.count = count;
    entry.crc32 = Crc32(data, bytes);
    dat.append(static_cast<const char*>(data), bytes);
    index.sections.push_back(entry);
  };
  auto add_doubles = [&add_section](ModelSection id,
                                    const std::vector<double>& values) {
    add_section(id, values.data(), values.size() * sizeof(double),
                values.size());
  };
  add_doubles(ModelSection::kPhi, phi);
  add_doubles(ModelSection::kGelMean, gel_means);
  add_doubles(ModelSection::kGelPrecision, gel_precs);
  add_doubles(ModelSection::kEmulsionMean, emu_means);
  add_doubles(ModelSection::kEmulsionPrecision, emu_precs);
  add_section(ModelSection::kRecipeCount, recipe_counts.data(),
              recipe_counts.size() * sizeof(int64_t), recipe_counts.size());
  add_section(ModelSection::kVocabOffsets, offsets.data(),
              offsets.size() * sizeof(uint64_t), offsets.size());
  add_section(ModelSection::kVocabCounts, word_counts.data(),
              word_counts.size() * sizeof(int64_t), word_counts.size());
  add_section(ModelSection::kVocabPool, pool.data(), pool.size(),
              pool.size());
  if (embeddings != nullptr && !embeddings->empty()) {
    TEXRHEO_RETURN_IF_ERROR(embed::ValidateEmbeddingTable(*embeddings));
    if (embeddings->vocab_size() != v_count) {
      return Status::InvalidArgument(
          "model binary: embedding table covers " +
          std::to_string(embeddings->vocab_size()) +
          " words, model vocabulary has " + std::to_string(v_count));
    }
    add_section(ModelSection::kEmbedding, embeddings->vectors.data(),
                embeddings->vectors.size() * sizeof(float),
                embeddings->vectors.size());
    add_section(ModelSection::kEmbeddingNorms, embeddings->norms.data(),
                embeddings->norms.size() * sizeof(float),
                embeddings->norms.size());
  }
  index.data_file_size = dat.size();

  // .dat first, .idx last: both renames are atomic, so a crash anywhere in
  // between leaves either the previous pair or a fresh .dat that no valid
  // index references yet. A readable .idx therefore implies a fully
  // written .dat.
  ModelBinaryPaths paths = ModelBinaryPathsFor(base_or_idx);
  TEXRHEO_RETURN_IF_ERROR(AtomicWriteFile(paths.dat, dat, ops));
  return AtomicWriteFile(paths.idx, EncodeModelBinaryIndex(index), ops);
}

Status ConvertModelFileToBinary(const std::string& v2_path,
                                const std::string& base_or_idx, FileOps& ops,
                                const embed::EmbeddingTable* embeddings) {
  TEXRHEO_ASSIGN_OR_RETURN(ModelSnapshot model, LoadModel(v2_path));
  return WriteModelBinary(model, base_or_idx, ops, embeddings);
}

StatusOr<MappedRegion> MemoryMapOps::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return errno == ENOENT
               ? Status::NotFound("mmap: no such file: " + path)
               : Status::IOError("mmap: open failed for " + path + ": " +
                                 std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("mmap: fstat failed for " + path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument("mmap: empty file: " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  // MAP_SHARED + PROT_READ: every process mapping the same model file
  // shares one copy of the pages in the page cache.
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap: map failed for " + path + ": " +
                           std::strerror(errno));
  }
  return MappedRegion{static_cast<const uint8_t*>(addr), size};
}

void MemoryMapOps::Unmap(MappedRegion region) {
  if (region.data != nullptr) {
    ::munmap(const_cast<uint8_t*>(region.data), region.size);
  }
}

MemoryMapOps& MemoryMapOps::Real() {
  static MemoryMapOps* ops = new MemoryMapOps();
  return *ops;
}

MappedModel::MappedModel(ModelBinaryPaths paths, ModelBinaryIndex index,
                         MappedRegion region, MemoryMapOps* ops)
    : paths_(std::move(paths)),
      index_(std::move(index)),
      region_(region),
      ops_(ops) {
  auto base = [this](size_t slot) {
    return region_.data + index_.sections[slot].offset;
  };
  phi_ = reinterpret_cast<const double*>(base(0));
  gel_mean_ = reinterpret_cast<const double*>(base(1));
  gel_prec_ = reinterpret_cast<const double*>(base(2));
  emulsion_mean_ = reinterpret_cast<const double*>(base(3));
  emulsion_prec_ = reinterpret_cast<const double*>(base(4));
  recipe_counts_ = reinterpret_cast<const int64_t*>(base(5));
  vocab_offsets_ = reinterpret_cast<const uint64_t*>(base(6));
  vocab_counts_ = reinterpret_cast<const int64_t*>(base(7));
  pool_ = reinterpret_cast<const char*>(base(8));
  if (index_.sections.size() == kModelSectionCountWithEmbeddings) {
    embedding_ = reinterpret_cast<const float*>(base(9));
    embedding_norms_ = reinterpret_cast<const float*>(base(10));
    embedding_dim_ =
        static_cast<size_t>(index_.sections[9].count / index_.vocab_size);
  }
}

MappedModel::~MappedModel() { ops_->Unmap(region_); }

StatusOr<std::shared_ptr<const MappedModel>> MappedModel::Open(
    const std::string& base_or_idx, MemoryMapOps& ops) {
  ModelBinaryPaths paths = ModelBinaryPathsFor(base_or_idx);
  TEXRHEO_ASSIGN_OR_RETURN(std::string idx_bytes,
                           ReadFileToString(paths.idx));
  TEXRHEO_ASSIGN_OR_RETURN(ModelBinaryIndex index,
                           ParseModelBinaryIndex(idx_bytes));
  TEXRHEO_RETURN_IF_ERROR(ValidateModelBinaryIndex(index));

  TEXRHEO_ASSIGN_OR_RETURN(MappedRegion raw, ops.Map(paths.dat));
  ScopedRegion region(raw, &ops);
  const uint8_t* data = region.region().data;
  if (region.region().size != index.data_file_size) {
    return Status::InvalidArgument(
        "model binary: data file is " +
        std::to_string(region.region().size) + " bytes, index expects " +
        std::to_string(index.data_file_size) + " (truncated or swapped?)");
  }
  if (std::memcmp(data, kDatMagic, sizeof(kDatMagic)) != 0) {
    return Status::InvalidArgument(
        "model binary: bad data-file magic (is this the .dat of this .idx?)");
  }
  // Per-section CRC32 over the mapped bytes: one sequential pass that
  // detects any bit flip before a single value is served, and doubles as
  // the page-cache warmup for the serving path.
  for (const ModelSectionEntry& entry : index.sections) {
    uint32_t actual = Crc32(data + entry.offset, entry.size);
    if (actual != entry.crc32) {
      return SectionError(static_cast<ModelSection>(entry.id),
                          "crc mismatch (data file corrupted)");
    }
  }
  // Vocabulary pool structure: offsets must be a monotone fence over the
  // pool with sane word lengths and v2-compatible word bytes, or string
  // accessors could read out of bounds / serve garbage.
  {
    size_t v_count = static_cast<size_t>(index.vocab_size);
    const ModelSectionEntry& offsets_entry = index.sections[6];
    const ModelSectionEntry& pool_entry = index.sections[8];
    const uint64_t* offsets =
        reinterpret_cast<const uint64_t*>(data + offsets_entry.offset);
    if (offsets[0] != 0 || offsets[v_count] != pool_entry.count) {
      return SectionError(ModelSection::kVocabOffsets,
                          "pool fence does not span the string pool");
    }
    const char* pool = reinterpret_cast<const char*>(data + pool_entry.offset);
    for (size_t v = 0; v < v_count; ++v) {
      if (offsets[v + 1] < offsets[v]) {
        return SectionError(ModelSection::kVocabOffsets,
                            "offsets not monotone at word " +
                                std::to_string(v));
      }
      uint64_t len = offsets[v + 1] - offsets[v];
      if (len == 0 || len > kMaxWordBytes) {
        return SectionError(ModelSection::kVocabPool,
                            "word " + std::to_string(v) +
                                " has length out of range");
      }
      for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (static_cast<unsigned char>(pool[i]) <= 0x20) {
          return SectionError(ModelSection::kVocabPool,
                              "word " + std::to_string(v) +
                                  " contains whitespace or control bytes");
        }
      }
    }
  }
  // Embedding content: every float must be finite and the cached norms
  // non-negative, or cosine scans would serve NaN divergences. (Bit flips
  // are already caught by the CRC pass; this rejects hostile packs whose
  // index is internally consistent but whose payload is poisoned.)
  if (index.sections.size() == kModelSectionCountWithEmbeddings) {
    const ModelSectionEntry& matrix = index.sections[9];
    const ModelSectionEntry& norms = index.sections[10];
    const float* vectors =
        reinterpret_cast<const float*>(data + matrix.offset);
    for (uint64_t i = 0; i < matrix.count; ++i) {
      if (!std::isfinite(vectors[i])) {
        return SectionError(ModelSection::kEmbedding,
                            "non-finite value at element " +
                                std::to_string(i));
      }
    }
    const float* norm_vals =
        reinterpret_cast<const float*>(data + norms.offset);
    for (uint64_t i = 0; i < norms.count; ++i) {
      if (!std::isfinite(norm_vals[i]) || norm_vals[i] < 0.0f) {
        return SectionError(ModelSection::kEmbeddingNorms,
                            "negative or non-finite norm at element " +
                                std::to_string(i));
      }
    }
  }
  return std::shared_ptr<const MappedModel>(
      new MappedModel(std::move(paths), std::move(index), region.Release(),
                      &ops));
}

embed::EmbeddingTable CopyEmbeddingTable(const MappedModel& mapped) {
  embed::EmbeddingTable table;
  if (!mapped.has_embeddings()) return table;
  table.dim = static_cast<uint32_t>(mapped.embedding_dim());
  std::span<const float> matrix = mapped.embedding_matrix();
  std::span<const float> norms = mapped.embedding_norms();
  table.vectors.assign(matrix.begin(), matrix.end());
  table.norms.assign(norms.begin(), norms.end());
  return table;
}

StatusOr<ModelSnapshot> ReadModelBinary(const std::string& base_or_idx,
                                        MemoryMapOps& ops) {
  TEXRHEO_ASSIGN_OR_RETURN(std::shared_ptr<const MappedModel> mapped,
                           MappedModel::Open(base_or_idx, ops));
  ModelSnapshot model;
  for (size_t v = 0; v < mapped->vocab_size(); ++v) {
    model.vocab.AddWithCount(mapped->word(v), mapped->word_count(v));
  }
  if (model.vocab.size() != mapped->vocab_size()) {
    return Status::InvalidArgument(
        "model binary: vocabulary pool contains duplicate words");
  }
  int k_count = mapped->num_topics();
  model.estimates.phi.reserve(static_cast<size_t>(k_count));
  for (int k = 0; k < k_count; ++k) {
    std::span<const double> row = mapped->phi_row(k);
    model.estimates.phi.emplace_back(row.begin(), row.end());
  }
  auto rebuild = [](size_t dim, std::span<const double> mean,
                    std::span<const double> prec) -> StatusOr<math::Gaussian> {
    math::Vector mu(dim);
    for (size_t i = 0; i < dim; ++i) mu[i] = mean[i];
    math::Matrix lambda(dim, dim);
    for (size_t r = 0; r < dim; ++r) {
      for (size_t c = 0; c < dim; ++c) lambda(r, c) = prec[r * dim + c];
    }
    return math::Gaussian::FromPrecision(std::move(mu), std::move(lambda));
  };
  for (int k = 0; k < k_count; ++k) {
    TEXRHEO_ASSIGN_OR_RETURN(
        math::Gaussian gel,
        rebuild(mapped->gel_dim(), mapped->gel_mean(k),
                mapped->gel_precision(k)));
    model.estimates.gel_topics.push_back(std::move(gel));
    TEXRHEO_ASSIGN_OR_RETURN(
        math::Gaussian emulsion,
        rebuild(mapped->emulsion_dim(), mapped->emulsion_mean(k),
                mapped->emulsion_precision(k)));
    model.estimates.emulsion_topics.push_back(std::move(emulsion));
  }
  model.estimates.topic_recipe_count.reserve(static_cast<size_t>(k_count));
  for (int64_t n : mapped->recipe_counts()) {
    model.estimates.topic_recipe_count.push_back(static_cast<int>(n));
  }
  return model;
}

}  // namespace texrheo::core
