#ifndef TEXRHEO_CORE_SPARSE_GIBBS_H_
#define TEXRHEO_CORE_SPARSE_GIBBS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/alias_table.h"
#include "util/rng.h"

namespace texrheo::core {

/// Incrementally maintained list of the topics with n_dk > 0 for one
/// document. The sparse bucket of the two-bucket z-sampler enumerates only
/// these topics, so per-token cost tracks the number of *distinct* topics
/// in the document rather than K. Membership is updated on every z-flip via
/// OnIncrement/OnDecrement; position lookup is O(1) through pos_.
class ActiveTopicList {
 public:
  ActiveTopicList() = default;

  /// Rebuilds membership from a doc-topic count row (restore / init path).
  void Reset(const std::vector<int>& n_dk_row);

  /// Call after n_dk[k] went 0 -> 1.
  void OnIncrement(int k) {
    if (pos_[k] >= 0) return;
    pos_[k] = static_cast<int>(topics_.size());
    topics_.push_back(k);
  }

  /// Call after n_dk[k] went 1 -> 0 (swap-remove, order not preserved).
  void OnDecrement(int k) {
    const int p = pos_[k];
    if (p < 0) return;
    const int last = topics_.back();
    topics_[p] = last;
    pos_[last] = p;
    topics_.pop_back();
    pos_[k] = -1;
  }

  bool Contains(int k) const { return pos_[k] >= 0; }
  const std::vector<int>& topics() const { return topics_; }
  size_t size() const { return topics_.size(); }

 private:
  std::vector<int> topics_;
  std::vector<int> pos_;  ///< pos_[k] = index in topics_, or -1.
};

/// The dense "stale" bucket: a frozen snapshot of the global topic-term
/// counts plus, per vocabulary term, the smoothed topic weights
/// q(k, v) = (stale_n_kv + gamma) / (stale_n_k + gamma * V) served through
/// Walker alias tables for O(1) proposals. Rebuilt every R sweeps; between
/// rebuilds the proposal drifts from the true conditional and the
/// Metropolis-Hastings step in the sampler corrects for it exactly.
/// gamma > 0 keeps every q(k, v) strictly positive, so the proposal has
/// full support and the MH chain stays irreducible no matter how stale the
/// snapshot gets.
///
/// During a sweep the bank is strictly read-only (rebuilds happen serially
/// between sweeps), so parallel shards may share one instance.
class StaleAliasBank {
 public:
  StaleAliasBank() = default;

  /// Snapshots `n_kv` / `n_k` and rebuilds q tables + alias tables for
  /// every term. `sweep` is recorded as the rebuild epoch so the schedule
  /// is reconstructible after Resume().
  void Rebuild(const std::vector<std::vector<int>>& n_kv,
               const std::vector<int>& n_k, double gamma, double gamma_v,
               int sweep);

  void Clear();

  bool built() const { return built_; }
  int last_rebuild_sweep() const { return last_rebuild_sweep_; }

  /// Stale smoothed weight of topic k for term v.
  double q(size_t v, size_t k) const { return q_[v * num_topics_ + k]; }
  /// Sum over topics of q(v, k) — the dense-bucket total mass (pre-alpha).
  double q_total(size_t v) const { return q_total_[v]; }

  /// Draws a topic from the stale distribution q(., v) in O(1).
  int SampleStale(size_t v, Rng& rng) const {
    return static_cast<int>(tables_[v].Sample(rng));
  }

  /// Cache hint: pulls the q slice and bucket total for term v toward the
  /// core. The z sweep issues this one token ahead — the per-token state is
  /// scattered across a multi-megabyte bank, and the lookup latency is the
  /// sparse path's main cost once the buckets themselves are small.
  void PrefetchTerm(size_t v) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&q_[v * num_topics_]);
    __builtin_prefetch(&q_total_[v]);
#else
    (void)v;
#endif
  }

  const std::vector<std::vector<int>>& stale_n_kv() const { return stale_n_kv_; }
  const std::vector<int>& stale_n_k() const { return stale_n_k_; }

 private:
  bool built_ = false;
  int last_rebuild_sweep_ = -1;
  size_t num_topics_ = 0;
  std::vector<std::vector<int>> stale_n_kv_;  ///< [k][v] snapshot.
  std::vector<int> stale_n_k_;                ///< [k] snapshot.
  std::vector<double> q_;                     ///< [v * K + k].
  std::vector<double> q_total_;               ///< [v].
  std::vector<math::AliasTable> tables_;      ///< one per term.
  // Rebuild scratch, kept across epochs so steady-state rebuilds are
  // allocation-free. Rebuilds only ever run serially between sweeps, so
  // sharing these across the bank is safe.
  std::vector<double> inv_denom_scratch_;
  std::vector<double> weights_scratch_;
  math::AliasTable::BuildScratch build_scratch_;
};

}  // namespace texrheo::core

#endif  // TEXRHEO_CORE_SPARSE_GIBBS_H_
