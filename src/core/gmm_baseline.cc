#include "core/gmm_baseline.h"

#include <cmath>
#include <limits>

#include "math/running_stats.h"
#include "math/special.h"

namespace texrheo::core {
namespace {

// k-means++ style seeding: first center uniform, later centers proportional
// to squared distance from the nearest chosen center.
std::vector<math::Vector> SeedCenters(const std::vector<math::Vector>& points,
                                      int k, Rng& rng) {
  std::vector<math::Vector> centers;
  centers.push_back(points[rng.NextUint(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centers.size()) < k) {
    const math::Vector& last = centers.back();
    for (size_t i = 0; i < points.size(); ++i) {
      math::Vector diff = points[i];
      diff -= last;
      double dist2 = math::Dot(diff, diff);
      if (dist2 < d2[i]) d2[i] = dist2;
    }
    double total = 0.0;
    for (double v : d2) total += v;
    if (total <= 0.0) {
      // All points coincide with chosen centers; duplicate one.
      centers.push_back(points[rng.NextUint(points.size())]);
      continue;
    }
    centers.push_back(points[rng.NextCategorical(d2)]);
  }
  return centers;
}

texrheo::StatusOr<math::Gaussian> GaussianFromMoments(
    const math::Vector& mean, math::Matrix covariance, double floor) {
  for (size_t i = 0; i < covariance.rows(); ++i) {
    covariance(i, i) += floor;
  }
  return math::Gaussian::FromCovariance(mean, std::move(covariance));
}

}  // namespace

texrheo::StatusOr<GaussianMixture> GaussianMixture::Fit(
    const GmmConfig& config, const std::vector<math::Vector>& points) {
  if (points.empty()) return Status::InvalidArgument("gmm: no points");
  if (config.num_components < 1) {
    return Status::InvalidArgument("gmm: num_components < 1");
  }
  size_t n = points.size();
  size_t dim = points.front().size();
  int k = config.num_components;
  Rng rng(config.seed);

  GaussianMixture model;
  model.weights_.assign(static_cast<size_t>(k),
                        1.0 / static_cast<double>(k));

  // Initialize components around k-means++ seeds with the global covariance.
  math::RunningMoments global(dim);
  for (const auto& p : points) global.Add(p);
  math::Matrix global_cov = global.Covariance();
  std::vector<math::Vector> centers = SeedCenters(points, k, rng);
  for (int c = 0; c < k; ++c) {
    TEXRHEO_ASSIGN_OR_RETURN(
        math::Gaussian g,
        GaussianFromMoments(centers[static_cast<size_t>(c)], global_cov,
                            config.covariance_floor));
    model.components_.push_back(std::move(g));
  }

  std::vector<std::vector<double>> resp(
      n, std::vector<double>(static_cast<size_t>(k), 0.0));
  std::vector<double> log_w(static_cast<size_t>(k));
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // E-step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        size_t cs = static_cast<size_t>(c);
        log_w[cs] = std::log(model.weights_[cs] + 1e-300) +
                    model.components_[cs].LogPdf(points[i]);
      }
      double norm = math::LogSumExp(log_w.data(), log_w.size());
      ll += norm;
      for (int c = 0; c < k; ++c) {
        size_t cs = static_cast<size_t>(c);
        resp[i][cs] = std::exp(log_w[cs] - norm);
      }
    }
    model.final_log_likelihood_ = ll;
    model.iterations_run_ = iter + 1;
    if (iter > 0 &&
        std::fabs(ll - prev_ll) <=
            config.tolerance * (std::fabs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = ll;

    // M-step.
    std::vector<math::Gaussian> new_components;
    new_components.reserve(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      size_t cs = static_cast<size_t>(c);
      double nk = 0.0;
      math::Vector mean(dim);
      for (size_t i = 0; i < n; ++i) {
        nk += resp[i][cs];
        mean += resp[i][cs] * points[i];
      }
      if (nk < 1e-8) {
        // Dead component: re-seed at a random point with global covariance.
        TEXRHEO_ASSIGN_OR_RETURN(
            math::Gaussian g,
            GaussianFromMoments(points[rng.NextUint(n)], global_cov,
                                config.covariance_floor));
        new_components.push_back(std::move(g));
        model.weights_[cs] = 1e-6;
        continue;
      }
      mean *= 1.0 / nk;
      math::Matrix cov(dim, dim);
      for (size_t i = 0; i < n; ++i) {
        math::Vector d = points[i];
        d -= mean;
        cov += resp[i][cs] * math::Matrix::Outer(d, d);
      }
      cov *= 1.0 / nk;
      TEXRHEO_ASSIGN_OR_RETURN(
          math::Gaussian g,
          GaussianFromMoments(mean, std::move(cov), config.covariance_floor));
      new_components.push_back(std::move(g));
      model.weights_[cs] = nk / static_cast<double>(n);
    }
    model.components_ = std::move(new_components);
    // Renormalize weights (dead-component epsilon may distort the total).
    double wsum = 0.0;
    for (double w : model.weights_) wsum += w;
    for (double& w : model.weights_) w /= wsum;
  }
  return model;
}

std::vector<int> GaussianMixture::HardAssignments(
    const std::vector<math::Vector>& points) const {
  std::vector<int> out(points.size(), 0);
  for (size_t i = 0; i < points.size(); ++i) {
    double best = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < components_.size(); ++c) {
      double lw = std::log(weights_[c] + 1e-300) +
                  components_[c].LogPdf(points[i]);
      if (lw > best) {
        best = lw;
        out[i] = static_cast<int>(c);
      }
    }
  }
  return out;
}

double GaussianMixture::LogLikelihood(
    const std::vector<math::Vector>& points) const {
  std::vector<double> log_w(components_.size());
  double ll = 0.0;
  for (const auto& p : points) {
    for (size_t c = 0; c < components_.size(); ++c) {
      log_w[c] = std::log(weights_[c] + 1e-300) + components_[c].LogPdf(p);
    }
    ll += math::LogSumExp(log_w.data(), log_w.size());
  }
  return ll;
}

}  // namespace texrheo::core
